//! Generate a synthetic Twitter-like instance (the paper's I1 stand-in),
//! run the same query workload through S3k and the TopkS baseline, and
//! print the §5.4-style comparison — a miniature of `repro fig8`.
//!
//! ```sh
//! cargo run --release --example compare_systems
//! ```

use s3::core::{S3kEngine, SearchConfig};
use s3::datasets::{twitter, workload, OntologyConfig, Scale};
use s3::text::FrequencyClass;
use s3::topks::{uit_from_s3, TopkSConfig, TopkSEngine};
use std::time::Instant;

fn main() {
    // A small I1: ~80 users, 500 tweets, 85% retweets, ontology on.
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    config.users = 80;
    config.tweets = 500;
    config.ontology = OntologyConfig { classes: 20, entities: 80, properties: 5, seed: 4 };
    let t0 = Instant::now();
    let ds = twitter::generate(&config);
    let inst = &ds.instance;
    println!(
        "generated I1 stand-in in {:.1?}: {} users, {} docs, {} tags, {} retweets",
        t0.elapsed(),
        inst.num_users(),
        inst.num_documents(),
        inst.num_tags(),
        ds.meta.retweets
    );

    let adaptation = uit_from_s3(inst);
    println!(
        "TopkS adaptation: {} items, {} UIT triples\n",
        adaptation.uit.num_items(),
        adaptation.uit.num_triples()
    );

    let w = workload::generate(
        inst,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 15,
            seed: 3,
        },
    );

    let s3k = S3kEngine::new(inst, SearchConfig::default());
    let topks = TopkSEngine::new(&adaptation.uit, TopkSConfig::default());

    let mut s3k_only = 0usize;
    let mut both = 0usize;
    for q in &w.queries {
        let a = s3k.run(&q.query);
        let b = topks.run(q.query.seeker, &q.query.keywords, q.query.k);
        let b_items: std::collections::HashSet<_> = b.hits.iter().map(|h| h.item).collect();
        for h in &a.hits {
            match adaptation.item_of_doc(inst, h.doc) {
                Some(item) if b_items.contains(&item) => both += 1,
                _ => s3k_only += 1,
            }
        }
    }
    println!("over {} queries:", w.queries.len());
    println!("  results found by both systems (same item): {both}");
    println!("  results only S3k reaches (structure/links/semantics): {s3k_only}");
    println!("\n⇒ the joint social+structured+semantic dimensions surface answers the");
    println!("  flat UIT baseline misses (paper §5.4).");
}
