//! The full mutation story: tombstone deletions, updates-in-place, and
//! the off-path compaction epoch that reclaims them.
//!
//! Replays a mutating workload (deletes and updates riding along with
//! appends) against a [`s3::engine::LiveEngine`], checking every answer
//! byte-for-byte against a cold rebuild of the full event log; then runs
//! one explicit compaction epoch (verified against a cold build of the
//! *surviving* events only) and finally hands the trigger to a background
//! [`s3::engine::Compactor`].
//!
//! ```text
//! cargo run --release --example compaction
//! ```

use s3::core::Query;
use s3::datasets::workload::{live_workload, LiveWorkloadConfig};
use s3::datasets::{twitter, Scale};
use s3::engine::{CompactionPolicy, Compactor, EngineConfig, LiveEngine, S3Engine};
use std::sync::Arc;
use std::time::Duration;

fn corpus() -> s3::core::InstanceBuilder {
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    config.users = 40;
    config.tweets = 240;
    twitter::generate_builder(&config).0
}

/// Every hit must agree bit-for-bit: document, and both certified bounds.
fn assert_same_answer(live: &s3::core::TopKResult, cold: &s3::core::TopKResult) {
    assert_eq!(live.hits.len(), cold.hits.len());
    for (a, b) in live.hits.iter().zip(&cold.hits) {
        assert_eq!(a.doc, b.doc);
        assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
}

fn main() {
    // Twin builders: the live engine retains one; the other replays the
    // same batches as the cold reference every answer is checked against.
    let live = Arc::new(LiveEngine::new(
        corpus(),
        EngineConfig::builder().threads(2).cache_capacity(256).build(),
    ));
    let mut reference = corpus();
    let mut prev = Arc::new(reference.snapshot());
    println!("serving {} documents\n", live.instance().num_documents());

    // ---- Phase 1: deletes and updates ride along with appends. ----
    let steps = live_workload(
        &live.instance(),
        &LiveWorkloadConfig {
            batches: 3,
            docs_per_batch: 3,
            deletes_per_batch: 2,
            updates_per_batch: 2,
            attach_probability: 0.5,
            seed: 17,
            ..Default::default()
        },
    );
    for (i, step) in steps.iter().enumerate() {
        live.ingest(&step.batch);
        let (next, _) = reference.apply(&prev, &step.batch);
        prev = Arc::new(next);
        println!(
            "step {i}: {} tombstoned ({} deletes + update halves), dead fraction {:.3}",
            step.batch.deleted_documents().len(),
            step.batch.deleted_documents().len() - 2,
            live.dead_fraction()
        );
        // Tombstoned serving is exact: every answer matches a cold
        // rebuild of the full event log (dead events included).
        let cold = S3Engine::new(Arc::clone(&prev), EngineConfig::default());
        for spec in &step.queries {
            let kws = live.instance().query_keywords(&spec.text);
            let q = Query::new(spec.seeker, kws, spec.k);
            assert_same_answer(&live.query(&q), &cold.query(&q));
        }
        println!("        {} queries byte-identical to the cold rebuild", step.queries.len());
    }

    // ---- One explicit compaction epoch: rebuild without the dead
    // state off the serving path, swap the clean snapshot in. ----
    let report = live.compact().expect("compact");
    println!("\ncompaction: {report}");
    assert_eq!(live.dead_fraction(), 0.0, "compaction reclaims every tombstone");
    // Compaction renumbers ids densely, so the reference compacts too —
    // and the result is provably a cold build of the *survivors* only.
    let (compacted, _) = reference.compact();
    reference = compacted;
    prev = Arc::new(reference.snapshot());
    assert_eq!(live.instance().num_documents(), prev.num_documents());

    // ---- Phase 2: the compacted instance keeps serving mutations.
    // (External id holders re-resolve after a compaction epoch, so the
    // workload is generated against the post-compaction instance.) ----
    let steps = live_workload(
        &live.instance(),
        &LiveWorkloadConfig {
            batches: 1,
            docs_per_batch: 3,
            deletes_per_batch: 2,
            attach_probability: 0.5,
            seed: 18,
            ..Default::default()
        },
    );
    let step = &steps[0];
    live.ingest(&step.batch);
    let (next, _) = reference.apply(&prev, &step.batch);
    prev = Arc::new(next);
    let cold = S3Engine::new(Arc::clone(&prev), EngineConfig::default());
    for spec in &step.queries {
        let kws = live.instance().query_keywords(&spec.text);
        let q = Query::new(spec.seeker, kws, spec.k);
        assert_same_answer(&live.query(&q), &cold.query(&q));
    }
    println!(
        "post-compaction: {} more tombstones, {} queries still byte-identical",
        step.batch.deleted_documents().len(),
        step.queries.len()
    );

    // ---- Hand the trigger to a background compactor: poll every 50 ms,
    // fire as soon as anything is tombstoned (production defaults are
    // 60 s / 20% dead — a compaction epoch costs a full rebuild). ----
    let compactor = Compactor::spawn(
        Arc::clone(&live),
        CompactionPolicy { interval: Duration::from_millis(50), min_dead_fraction: 0.0 },
    );
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while live.dead_fraction() > 0.0 {
        assert!(std::time::Instant::now() < deadline, "compactor never fired");
        std::thread::sleep(Duration::from_millis(20));
    }
    let epochs = compactor.stop().expect("compactor");
    println!("background compactor reclaimed the tail in {epochs} epoch(s)");
    assert!(epochs >= 1);
    assert_eq!(live.dead_fraction(), 0.0);

    // The compacted live instance agrees with a compacted cold build.
    let (compacted, stats) = reference.compact();
    let cold = compacted.snapshot();
    assert_eq!(live.instance().num_documents(), cold.num_documents());
    println!(
        "\nfinal state: {} documents, {} dropped in the final epoch",
        cold.num_documents(),
        stats.dropped_documents
    );
}
