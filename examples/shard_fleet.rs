//! Cross-process sharding: shard servers behind wire transports.
//!
//! Spawns two fleets of shard servers — one over the in-memory loopback
//! duplex, one over real unix sockets — and drives both through a seeded
//! fleet scenario: a query-only warmup, then live ingest batches shipped
//! over the wire to every replica, with queries after each step. Every
//! answer is checked byte-for-byte against an in-process
//! [`s3::engine::ShardedEngine`] built from the same data, so the example
//! doubles as an end-to-end smoke test of the wire protocol (CI runs it).
//!
//! ```text
//! cargo run --release --example shard_fleet
//! ```

use s3::core::Query;
use s3::datasets::workload::{self, fleet_workload, FleetWorkloadConfig, LiveWorkloadConfig};
use s3::datasets::{twitter, Scale};
use s3::engine::{EngineConfig, FleetEngine, ShardHost, ShardServer, ShardedEngine};
use s3::text::FrequencyClass;
use s3::wire::ShardTransport;
use std::sync::Arc;

const SHARDS: usize = 2;

fn corpus() -> twitter::TwitterConfig {
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    config.users = 60;
    config.tweets = 400;
    config
}

/// No result cache and no warm pool: shard servers answer every scatter
/// cold, so the comparison below is propagation against propagation.
fn fleet_config() -> EngineConfig {
    EngineConfig::builder().threads(1).cache_capacity(0).warm_seekers(0).build()
}

/// Spawn one fleet; every replica regenerates the corpus from the
/// deterministic config (replicas must grow from identical data).
fn spawn(config: &twitter::TwitterConfig, unix: bool) -> (FleetEngine, Vec<ShardHost>) {
    let mut hosts = Vec::new();
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    for s in 0..SHARDS {
        let server =
            ShardServer::new(twitter::generate_builder(config).0, fleet_config(), SHARDS, s);
        let (conn, host) = if unix {
            let path = std::env::temp_dir()
                .join(format!("s3-fleet-example-{}-{s}.sock", std::process::id()));
            let (conn, host) = server.spawn_unix(&path).expect("bind unix socket");
            (Box::new(conn) as Box<dyn ShardTransport>, host)
        } else {
            let (conn, host) = server.spawn_loopback();
            (Box::new(conn) as Box<dyn ShardTransport>, host)
        };
        transports.push(conn);
        hosts.push(host);
    }
    (FleetEngine::new(twitter::generate_builder(config).0, fleet_config(), transports), hosts)
}

fn shutdown(fleet: FleetEngine, hosts: Vec<ShardHost>) {
    let stats = fleet.shutdown().expect("fleet shutdown");
    for host in hosts {
        host.join().expect("shard server exits cleanly");
    }
    for (s, t) in stats.iter().enumerate() {
        println!(
            "  shard {s}: {} frames / {} bytes sent, {} frames / {} bytes received",
            t.frames_sent, t.bytes_sent, t.frames_received, t.bytes_received
        );
    }
}

fn main() {
    let config = corpus();
    let base = Arc::new(twitter::generate_builder(&config).0.snapshot());
    println!(
        "base corpus: {} users / {} documents, served by {SHARDS} shard servers\n",
        base.num_users(),
        base.num_documents()
    );

    // One seeded scenario drives every engine below.
    let scenario = fleet_workload(
        &base,
        &FleetWorkloadConfig {
            shards: SHARDS,
            warmup_queries: 24,
            live: LiveWorkloadConfig {
                batches: 2,
                queries_per_batch: 6,
                attach_probability: 0.5,
                ..LiveWorkloadConfig::default()
            },
        },
    );

    let (mut loopback, loopback_hosts) = spawn(&config, false);
    let (mut socket, socket_hosts) = spawn(&config, true);

    // ---- Warmup: the scenario's seeded queries plus corpus-frequency
    // queries (the scenario vocabulary only enters the corpus with the
    // live batches below, so the corpus workload is what makes the
    // scatter actually propagate). Every wire answer must equal the
    // in-process engine's, hit-for-hit and candidate-for-candidate. ----
    let w = workload::generate(
        &base,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 24,
            seed: 7,
        },
    );
    let warmup: Vec<Query> = scenario
        .warmup
        .iter()
        .map(|spec| Query::new(spec.seeker, base.query_keywords(&spec.text), spec.k))
        .chain(w.queries.into_iter().map(|q| q.query))
        .collect();
    let reference = ShardedEngine::new(Arc::clone(&base), fleet_config(), SHARDS);
    let mut answered = 0;
    for q in &warmup {
        let want = reference.query(q);
        for (name, fleet) in [("loopback", &mut loopback), ("socket", &mut socket)] {
            let got = fleet.query(q).expect("fleet query");
            assert_eq!(got.hits, want.hits, "{name} hits diverge from in-process");
            assert_eq!(got.candidate_docs, want.candidate_docs, "{name} candidates diverge");
        }
        answered += usize::from(!want.hits.is_empty());
    }
    println!(
        "warmup: {} queries over both transports, {answered} answered, \
         {:.1} rounds/query, byte-identical to in-process",
        warmup.len(),
        loopback.rounds() as f64 / warmup.len() as f64
    );

    // ---- Live phase: ship each batch to every replica over the wire,
    // then check post-ingest answers against a cold in-process rebuild
    // from the very same batches. ----
    let (mut ref_builder, _, _) = twitter::generate_builder(&config);
    let mut prev = ref_builder.snapshot();
    for (i, step) in scenario.steps.iter().enumerate() {
        let summary = loopback.ingest(&step.batch).expect("loopback ingest");
        socket.ingest(&step.batch).expect("socket ingest");
        let (next, ref_summary) = ref_builder.apply(&prev, &step.batch);
        prev = next;
        assert_eq!(summary.new_users, ref_summary.new_users);
        assert_eq!(summary.detached, ref_summary.detached);

        let cold = Arc::new(ref_builder.snapshot());
        let rebuilt = ShardedEngine::new(Arc::clone(&cold), fleet_config(), SHARDS);
        for spec in &step.queries {
            let q = Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
            let want = rebuilt.query(&q);
            for (name, fleet) in [("loopback", &mut loopback), ("socket", &mut socket)] {
                let got = fleet.query(&q).expect("fleet query");
                assert_eq!(got.hits, want.hits, "{name} hits diverge after ingest");
            }
        }
        println!(
            "step {i}: shipped +{} users / +{} docs ({}), {} queries re-checked \
             against a cold rebuild, epoch {}",
            summary.new_users,
            summary.new_documents,
            if summary.detached { "detached" } else { "attached" },
            step.queries.len(),
            loopback.epoch()
        );
    }

    println!("\nloopback fleet wire traffic:");
    shutdown(loopback, loopback_hosts);
    println!("unix-socket fleet wire traffic:");
    shutdown(socket, socket_hosts);
}
