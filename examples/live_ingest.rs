//! Live ingestion: feeding documents, users, tags and social edges into a
//! serving engine without a stop-the-world rebuild.
//!
//! Builds a synthetic Twitter-shaped corpus, serves it from a
//! [`s3::engine::LiveShardedEngine`] (2 shards) and replays an update
//! workload against it: each step ingests a batch (published by an atomic
//! snapshot swap — queries never stop) and then queries the grown corpus.
//! Detached batches (new users posting new content) invalidate only the
//! shards that received the new components plus the front cache; batches
//! touching existing data bump globally.
//!
//! ```text
//! cargo run --release --example live_ingest
//! ```

use s3::core::{IngestBatch, IngestDoc, Query, UserRef};
use s3::datasets::workload::{live_workload, LiveWorkloadConfig};
use s3::datasets::{twitter, Scale};
use s3::engine::{CachePolicy, EngineConfig, LiveShardedEngine};
use std::time::Duration;

fn main() {
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    config.users = 60;
    config.tweets = 400;
    let (builder, meta, _) = twitter::generate_builder(&config);
    println!("base corpus: {} documents from {} tweets", meta.documents, meta.tweets);

    let live = LiveShardedEngine::new(
        builder,
        EngineConfig::builder()
            .threads(2)
            .cache_capacity(512)
            // Frequency-filtered admission plus a staleness bound: live
            // fleets age results out between epoch bumps instead of
            // serving arbitrarily old answers.
            .cache_policy(CachePolicy::tiny_lfu())
            .cache_ttl(Duration::from_secs(600))
            .build(),
        2,
    );
    println!(
        "serving {} users / {} documents over {} shards\n",
        live.instance().num_users(),
        live.instance().num_documents(),
        live.engine().num_shards()
    );

    // ---- A replayable update workload: ingest, then query. ----
    let steps = live_workload(
        &live.instance(),
        &LiveWorkloadConfig { batches: 3, attach_probability: 0.5, ..Default::default() },
    );
    for (i, step) in steps.iter().enumerate() {
        let report = live.ingest(&step.batch);
        println!("step {i}: {report}");
        let instance = live.instance();
        let mut answered = 0;
        for spec in &step.queries {
            let kws = instance.query_keywords(&spec.text);
            if !live.query(&Query::new(spec.seeker, kws, spec.k)).hits.is_empty() {
                answered += 1;
            }
        }
        println!(
            "        {} documents served; {answered}/{} queries answered",
            instance.num_documents(),
            step.queries.len()
        );
    }

    // ---- A hand-written detached batch: a new author's first post,
    // followed (and tagged) by a new fan. Nothing points at existing
    // data, so only the shard receiving the new component bumps. ----
    let mut batch = IngestBatch::new();
    let author = batch.add_user();
    let fan = batch.add_user();
    batch.add_social_edge(fan, author, 0.9);
    let mut doc = IngestDoc::new("post");
    doc.set_text(doc.root(), "announcing an entirely new topic");
    batch.add_document(doc, Some(author));
    batch.add_tag(
        s3::core::TagSubjectRef::Frag(s3::core::FragRef::New {
            doc: 0,
            node: s3::doc::LocalNodeId(0),
        }),
        fan,
        Some("topic"),
    );
    let report = live.ingest(&batch);
    assert!(report.summary.detached);
    println!("\nnew author onboarded: scope {:?}", report.scope);

    // Batch user ids map onto the instance in order: the author is the
    // second-to-last user now.
    assert_eq!(author, UserRef::New(0));
    let author_id = s3::core::UserId((live.instance().num_users() - 2) as u32);
    let kws = live.instance().query_keywords("topic");
    let hits = live.query(&Query::new(author_id, kws, 3)).hits.len();
    println!("the new author's search finds {hits} hit(s)");
    assert!(hits > 0);

    // The final serving report: TTL expiry (`expired`) and ingest
    // invalidation (`invalidated`) are counted separately.
    println!("\nfront cache: {}", live.cache_stats());
}
