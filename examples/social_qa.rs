//! The paper's motivating example (Figure 1), end to end.
//!
//! Users: u0 posted the article d0; u1 is a friend of u0 (the seeker);
//! u2 replied to d0 with d1 ("When I got my M.S. @UAlberta in 2012 …");
//! u3 commented on the fragment d0.3.2 with d2 ("A degree does give more
//! opportunities …"); u4 tagged the fragment d0.5.1 with "university".
//!
//! A knowledge base states that an M.S. is a Degree and whoever has a
//! degree is a Graduate. The seeker u1 searches for "graduate": without
//! semantics and the reply link nothing matches, but S3k surfaces the d1
//! snippet through the chain  u1 —friend→ u0 —posted→ d0 ←replies— d1,
//! plus Ext(graduate) ∋ M.S.
//!
//! ```sh
//! cargo run --example social_qa
//! ```

use s3::core::{InstanceBuilder, Query, SearchConfig, TagSubject};
use s3::doc::DocBuilder;
use s3::rdf::{vocabulary as voc, Term};
use s3::text::Language;

fn main() {
    let mut b = InstanceBuilder::new(Language::English);

    // ---- Users and explicit social links (requirement R0). ----
    let u0 = b.add_user();
    let u1 = b.add_user(); // the seeker
    let u2 = b.add_user();
    let u3 = b.add_user();
    let u4 = b.add_user();
    b.add_social_edge(u1, u0, 1.0); // u1 friend-of u0
    b.add_social_edge(u0, u1, 1.0);

    // ---- Knowledge base (requirement R3). ----
    // ex:MS ≺sc ex:Degree, and ex:Degree ≺sc ex:Graduate-related concept.
    let ms_kw = b.intern_entity_keyword("ex:MS");
    let _degree_kw = b.intern_entity_keyword("ex:Degree");
    let graduate_kw = b.intern_entity_keyword("ex:Graduate");
    {
        let (ms, degree, graduate) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern("ex:MS"), d.intern("ex:Degree"), d.intern("ex:Graduate"))
        };
        b.rdf_mut().insert(ms, voc::RDFS_SUBCLASS_OF, Term::Uri(degree), 1.0);
        b.rdf_mut().insert(degree, voc::RDFS_SUBCLASS_OF, Term::Uri(graduate), 1.0);
    }

    // ---- d0: u0's structured article (requirement R2). ----
    let mut d0 = DocBuilder::new("article");
    let s3_sec = d0.child(d0.root(), "section");
    let d0_3_2 = d0.child(s3_sec, "p");
    let intro_kws = b.analyze("education matters for careers");
    d0.set_content(d0_3_2, intro_kws);
    let s5_sec = d0.child(d0.root(), "section");
    let d0_5_1 = d0.child(s5_sec, "p");
    let other_kws = b.analyze("campus life is fun");
    d0.set_content(d0_5_1, other_kws);
    let t0 = b.add_document(d0, Some(u0));
    let d0_3_2 = b.doc_node(t0, d0_3_2);
    let d0_5_1 = b.doc_node(t0, d0_5_1);
    let d0_root = b.doc_root(t0);

    // ---- d1: u2's reply, mentioning the M.S. entity (requirement R1). ----
    let mut d1 = DocBuilder::new("reply");
    let d1_text = d1.child(d1.root(), "text");
    let mut d1_kws = b.analyze("when i got my @UAlberta in 2012");
    d1_kws.push(ms_kw); // the NLP/entity-linking step resolved "M.S."
    d1.set_content(d1_text, d1_kws);
    let t1 = b.add_document(d1, Some(u2));
    b.add_comment_edge(t1, d0_root);
    let d1_text = b.doc_node(t1, d1_text);

    // ---- d2: u3 comments on the fragment d0.3.2. ----
    let mut d2 = DocBuilder::new("comment");
    let d2_kws = b.analyze("a degree does give more opportunities");
    d2.set_content(d2.root(), d2_kws);
    let t2 = b.add_document(d2, Some(u3));
    b.add_comment_edge(t2, d0_3_2);

    // ---- u4 tags d0.5.1 with "university" (requirement R4-adjacent). ----
    let univ_kw = b.analyzer_mut().vocabulary_mut().intern("univers");
    b.add_tag(TagSubject::Frag(d0_5_1), u4, Some(univ_kw));

    let instance = b.build();

    // ---- u1 searches "graduate". ----
    let query = Query::new(u1, vec![graduate_kw], 3);
    let with = instance.search(&query, &SearchConfig::default());
    let without = instance
        .search(&query, &SearchConfig { semantic_expansion: false, ..SearchConfig::default() });

    println!("Ext(graduate) = {:?}", instance.expand_keyword(graduate_kw));
    println!("\nWITH semantics: {} hit(s)", with.hits.len());
    for h in &with.hits {
        println!("  fragment {} score ∈ [{:.6}, {:.6}]", h.doc, h.lower, h.upper);
    }
    println!("WITHOUT semantics: {} hit(s)", without.hits.len());

    assert!(
        with.hits
            .iter()
            .any(|h| h.doc == d1_text || instance.forest().is_vertical_neighbor(h.doc, d1_text)),
        "the M.S. snippet must be reachable through Ext(graduate)"
    );
    assert!(without.hits.is_empty(), "without the ontology nothing matches 'graduate'");
    println!("\n⇒ the d1 snippet is found only through the social + semantic chain, as in §1.");
}
