//! Serving a query workload through the `s3::engine` layer.
//!
//! Builds a synthetic Twitter-shaped instance, wraps it in an [`S3Engine`]
//! and drives it the way a server would: concurrent batches over a shared
//! engine, a result cache absorbing repeat queries, and a configuration
//! change invalidating served results.
//!
//! ```text
//! cargo run --release --example serve_workload
//! ```

use s3::core::{Query, SearchConfig};
use s3::datasets::{twitter, workload, Scale};
use s3::engine::{
    CachePolicy, EngineConfig, OverloadConfig, OverloadPolicy, S3Engine, ServeOutcome,
};
use s3::text::FrequencyClass;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);
    println!(
        "instance: {} users, {} documents, {} tags",
        instance.num_users(),
        instance.num_documents(),
        instance.num_tags()
    );

    let engine = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder()
            .threads(4)
            .cache_capacity(1024)
            // W-TinyLFU admission: one-hit-wonder queries churn the small
            // window instead of evicting the hot entries.
            .cache_policy(CachePolicy::tiny_lfu())
            .build(),
    );

    // A server sees overlapping traffic: generate a workload and replay it
    // with duplicates, as separate concurrent batches.
    let w = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 40,
            seed: 42,
        },
    );
    let queries: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();

    let first = engine.run_batch(&queries);
    let answered = first.iter().filter(|r| !r.hits.is_empty()).count();
    println!("batch 1: {} queries, {} with non-empty answers", first.len(), answered);

    // The same batch again: served from cache, identical answers.
    let second = engine.run_batch(&queries);
    assert!(first
        .iter()
        .zip(second.iter())
        .all(|(a, b)| a.hits == b.hits && a.stats.stop == b.stats.stop));
    println!("batch 2: cache {}", engine.cache_stats());

    // Several client threads sharing one engine.
    let shared = Arc::new(engine);
    std::thread::scope(|scope| {
        for t in 0..3 {
            let engine = Arc::clone(&shared);
            let queries = &queries;
            scope.spawn(move || {
                let chunk = &queries[t * 10..(t + 1) * 10];
                let results = engine.run_batch(chunk);
                assert_eq!(results.len(), chunk.len());
            });
        }
    });
    println!("3 client threads served; cache hits now {}", shared.cache_stats().hits);

    // Retuning the score bumps the config epoch: nothing stale is served.
    shared.set_search_config(SearchConfig {
        score: s3::core::S3kScore::new(2.0, 0.5),
        ..SearchConfig::default()
    });
    let retuned = shared.run_batch(&queries[..10]);
    println!(
        "after config change (epoch {}): {} answers recomputed",
        shared.config_epoch(),
        retuned.len()
    );

    // --- Overload: more clients than the engine will carry. ---
    //
    // A fresh engine with a 2-slot admission gate and the DegradeAnytime
    // policy: arrivals past capacity are still answered, but under a
    // floor budget, and each degraded answer carries a certified
    // `QualityBound` saying how far from exact it provably is.
    let gated = Arc::new(S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder()
            .threads(1)
            .cache_capacity(0) // every arrival reaches the gate
            .overload(OverloadConfig {
                max_inflight: 2,
                policy: OverloadPolicy::DegradeAnytime { floor_budget: Duration::ZERO },
            })
            .build(),
    ));
    let sample = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..6)
            .map(|_| {
                let engine = Arc::clone(&gated);
                let queries = &queries;
                scope.spawn(move || {
                    let mut degraded = None;
                    for q in queries {
                        match engine.serve(q, None) {
                            ServeOutcome::Answered(r) if !r.stats.quality.exact => {
                                degraded.get_or_insert(r);
                            }
                            ServeOutcome::Answered(_) => {}
                            outcome => panic!("DegradeAnytime never sheds, got {outcome:?}"),
                        }
                    }
                    degraded
                })
            })
            .collect();
        workers.into_iter().filter_map(|w| w.join().expect("client thread")).next()
    });
    println!("\n6 oversubscribed clients, DegradeAnytime: {}", gated.load_stats());
    if let Some(r) = sample {
        println!("sample degraded answer: {} hits, {}", r.hits.len(), r.stats.quality);
    }

    // The same pressure against Reject: overflow is shed at the door and
    // the queries that do get in keep their full budget (exact answers).
    let rejecting = Arc::new(S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder()
            .threads(1)
            .cache_capacity(0)
            .overload(Some(OverloadConfig { max_inflight: 2, policy: OverloadPolicy::Reject }))
            .build(),
    ));
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let engine = Arc::clone(&rejecting);
            let queries = &queries;
            scope.spawn(move || {
                for q in queries {
                    if let Some(r) = engine.serve(q, None).answer() {
                        assert!(r.stats.quality.exact, "admitted queries keep the full budget");
                    }
                }
            });
        }
    });
    println!("6 oversubscribed clients, Reject:         {}", rejecting.load_stats());

    // The final serving report, counters included (admission/expiry
    // counters surface here once the policy or a TTL is on).
    println!("\nfinal cache stats:  {}", shared.cache_stats());
    println!("final resume stats: {}", shared.resume_stats());
}
