//! A Vodkaster-style scenario (the paper's I2): French movie comments,
//! sentence-level fragments, follower edges — and how structure decides
//! which *fragment* is returned rather than a whole document.
//!
//! ```sh
//! cargo run --example movie_club
//! ```

use s3::core::{InstanceBuilder, Query, SearchConfig};
use s3::doc::DocBuilder;
use s3::text::Language;

fn main() {
    let mut b = InstanceBuilder::new(Language::French);

    // Three cinephiles; the seeker follows the critic.
    let seeker = b.add_user();
    let critic = b.add_user();
    let troll = b.add_user();
    b.add_social_edge(seeker, critic, 1.0);

    // The first comment on the movie is the document; each sentence is a
    // fragment (§5.1's I2 construction).
    let mut first = DocBuilder::new("comment");
    for sentence in [
        "un film magnifique et poignant",
        "la photographie est sublime",
        "le scénario traîne un peu au milieu",
    ] {
        let kws = b.analyze(sentence);
        let s = first.child(first.root(), "sentence");
        first.set_content(s, kws);
    }
    let t_first = b.add_document(first, Some(critic));
    let first_root = b.doc_root(t_first);

    // Later comments comment on the first.
    for (author, text) in [
        (troll, "film surcoté, photographie banale"),
        (critic, "je confirme un chef d'oeuvre magnifique"),
    ] {
        let kws = b.analyze(text);
        let mut c = DocBuilder::new("comment");
        c.set_content(c.root(), kws);
        let t = b.add_document(c, Some(author));
        b.add_comment_edge(t, first_root);
    }

    let instance = b.build();

    // Search "magnifique" as the seeker ("magnifique" stems like
    // "magnifiques" would — the French light stemmer folds them).
    let kws = instance.query_keywords("magnifique");
    assert!(!kws.is_empty(), "query keyword must exist in the corpus");
    let res = instance.search(&Query::new(seeker, kws, 3), &SearchConfig::default());

    println!("results for « magnifique » (seeker follows the critic):");
    for (rank, h) in res.hits.iter().enumerate() {
        let tree = instance.forest().tree_of(h.doc);
        let name = instance.forest().name(h.doc);
        println!(
            "  #{} {} node <{}> of tree {:?}, score ∈ [{:.5}, {:.5}]",
            rank + 1,
            h.doc,
            name,
            tree,
            h.lower,
            h.upper
        );
    }
    assert!(!res.hits.is_empty());

    // Structure at work: the best hit is a *fragment* (a sentence or a
    // comment), never padded out to an unrelated whole when a tighter
    // subtree scores better; and no hit is an ancestor of another.
    for (i, a) in res.hits.iter().enumerate() {
        for b in &res.hits[i + 1..] {
            assert!(!instance.forest().is_vertical_neighbor(a.doc, b.doc));
        }
    }
    println!("⇒ fragments returned at the right granularity (Definition 3.2).");
}
