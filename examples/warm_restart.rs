//! Durable serving and warm restarts through the unified [`Engine`] API.
//!
//! Opens a [`LiveEngine`] on a directory, journals live ingest into its
//! write-ahead log (fsync before every commit), checkpoints, "crashes",
//! and reopens: the snapshot loads, the WAL tail replays, and every
//! answer is byte-identical to the pre-crash engine. The same snapshot
//! file then bootstraps a [`FleetEngine`] whose shard servers receive
//! their data over the wire — no shared builder.
//!
//! Everything is driven through the [`Engine`] / [`Ingest`] traits: the
//! workload functions below never name a concrete engine type.
//!
//! ```text
//! cargo run --release --example warm_restart
//! ```

use s3::core::{read_snapshot, Query, S3Instance};
use s3::datasets::workload::{live_workload, LiveStep, LiveWorkloadConfig};
use s3::datasets::{twitter, Scale};
use s3::engine::{
    Engine, EngineConfig, FleetEngine, Ingest, LiveEngine, LocalShard, RecoverySource,
};
use s3::wire::ShardTransport;
use std::time::Instant;

fn config() -> EngineConfig {
    EngineConfig::builder().threads(2).cache_capacity(256).build()
}

/// Replay an update workload through the `Ingest` trait — engine-type
/// oblivious.
fn grow(engine: &mut dyn Ingest, steps: &[LiveStep]) {
    for step in steps {
        let summary = engine.ingest(&step.batch).expect("ingest");
        println!(
            "  ingested: +{} users, +{} documents, +{} tags (detached: {})",
            summary.new_users, summary.new_documents, summary.new_tags, summary.detached
        );
    }
}

/// Answer every step's queries through the `Engine` trait and return the
/// hit lists for byte-identity checks across restarts and engine types.
fn answer(
    engine: &mut dyn Engine,
    instance: &S3Instance,
    steps: &[LiveStep],
) -> Vec<Vec<s3::doc::DocNodeId>> {
    steps
        .iter()
        .flat_map(|s| s.queries.iter())
        .map(|spec| {
            let q = Query::new(spec.seeker, instance.query_keywords(&spec.text), spec.k);
            engine.query(&q).expect("query").hits.iter().map(|h| h.doc).collect()
        })
        .collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("s3-warm-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut corpus = twitter::TwitterConfig::scaled(Scale::Tiny);
    corpus.users = 60;
    corpus.tweets = 400;

    // ---- First life: seed the store, journal live growth. ----
    let (mut live, recovery) =
        LiveEngine::open(&dir, twitter::generate_builder(&corpus).0, config()).expect("open");
    println!("first open: {recovery}");
    let steps = live_workload(
        &live.instance(),
        &LiveWorkloadConfig { batches: 3, queries_per_batch: 4, seed: 7, ..Default::default() },
    );
    grow(&mut live, &steps[..2]);
    let absorbed = live.checkpoint().expect("checkpoint").absorbed;
    println!("checkpoint: {absorbed} journaled batches absorbed into the snapshot");
    grow(&mut live, &steps[2..]); // left in the WAL — the tail to replay
    let instance = live.instance();
    let before = answer(&mut live, &instance, &steps);
    println!("pre-crash stats:\n{}", live.stats());
    drop(live); // "crash": the WAL was fsynced before every ingest returned

    // ---- Second life: snapshot + WAL tail, byte-identical answers. ----
    let t = Instant::now();
    let (mut live, recovery) =
        LiveEngine::open(&dir, twitter::generate_builder(&corpus).0, config()).expect("reopen");
    println!("\nreopen in {:.1} ms: {recovery}", t.elapsed().as_secs_f64() * 1e3);
    assert_eq!(recovery.source, RecoverySource::Snapshot);
    assert_eq!(recovery.replayed, 1, "the uncheckpointed batch replays");
    let instance = live.instance();
    let after = answer(&mut live, &instance, &steps);
    assert_eq!(before, after, "warm restart must be byte-identical");
    println!("all {} answers byte-identical across the restart", after.len());

    // ---- Fleet bootstrap: the snapshot file ships to shard servers. ----
    let bytes = std::fs::read(dir.join("snapshot.s3k")).expect("snapshot file");
    let (_, snapshot_instance) = read_snapshot(&bytes).expect("snapshot loads");
    let transports: Vec<Box<dyn ShardTransport>> = (0..2)
        .map(|_| Box::new(LocalShard::awaiting(config())) as Box<dyn ShardTransport>)
        .collect();
    let mut fleet = FleetEngine::bootstrap(&bytes, config(), transports).expect("fleet bootstrap");
    println!(
        "\nfleet: {} shards bootstrapped from the {} B wire-shipped snapshot",
        fleet.num_shards(),
        bytes.len()
    );
    // The fleet serves the pre-tail corpus (the snapshot predates the
    // replayed batch), so compare against the snapshot's own answers.
    let fleet_hits = answer(&mut fleet, &snapshot_instance, &steps[..2]);
    println!("fleet answered {} snapshot-era queries through the same trait", fleet_hits.len());
    fleet.shutdown().expect("fleet shutdown");

    let _ = std::fs::remove_dir_all(&dir);
}
