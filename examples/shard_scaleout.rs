//! Scaling the serving layer out across shards.
//!
//! Builds a synthetic Twitter-shaped instance, partitions its content
//! components across four shards and serves a workload through
//! [`s3::engine::ShardedEngine`]: per-shard document counts, routed
//! scatter-gather with a merged top-k, the front cache absorbing repeats,
//! and a parity check against an unsharded engine.
//!
//! ```text
//! cargo run --release --example shard_scaleout
//! ```

use s3::core::Query;
use s3::datasets::{twitter, workload, Scale};
use s3::engine::{EngineConfig, S3Engine, ShardedEngine};
use s3::text::FrequencyClass;
use std::sync::Arc;

fn main() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);
    println!(
        "instance: {} users, {} documents, {} content components",
        instance.num_users(),
        instance.num_documents(),
        instance.graph().components().len()
    );

    // Partition the components across 4 shards, balanced by documents.
    let engine = ShardedEngine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(4).cache_capacity(1024).build(),
        4,
    );
    let partition = engine.partition();
    for s in 0..engine.num_shards() {
        println!(
            "  shard {s}: {:4} documents across {:4} components",
            partition.doc_count(s),
            partition.component_count(s)
        );
    }

    // Serve a workload through the sharded engine.
    let w = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 40,
            seed: 42,
        },
    );
    let queries: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();
    let results = engine.run_batch(&queries);
    let answered = results.iter().filter(|r| !r.hits.is_empty()).count();
    println!("batch: {} queries scattered, {} with non-empty answers", results.len(), answered);

    // One query in detail: routing and the merged top-k.
    let (qi, best) =
        results.iter().enumerate().max_by_key(|(_, r)| r.hits.len()).expect("non-empty batch");
    let config = engine.search_config();
    let routed = engine.router().route(&instance, &queries[qi], &config);
    println!(
        "query {:?} by u{} → scattered to shards {:?}, merged top-{}:",
        queries[qi].keywords,
        queries[qi].seeker.index(),
        routed,
        best.hits.len()
    );
    for hit in &best.hits {
        let node = instance.graph().node_of_frag(hit.doc).expect("registered");
        let comp = instance.graph().components().component_of(node);
        println!(
            "  doc {:?} from shard {} score ∈ [{:.5}, {:.5}]",
            hit.doc,
            engine.router().shard_of_component(comp),
            hit.lower,
            hit.upper
        );
    }

    // Repeats are served by the front cache: one lookup, no scatter.
    let again = engine.run_batch(&queries);
    assert!(results.iter().zip(again.iter()).all(|(a, b)| a.hits == b.hits));
    let stats = engine.cache_stats();
    println!(
        "replay: cache {} hits / {} misses (hit rate {:.0}%)",
        stats.hits,
        stats.misses,
        100.0 * stats.hit_rate()
    );

    // The defining invariant, spot-checked: byte-identical to one engine.
    let unsharded = S3Engine::new(Arc::clone(&instance), EngineConfig::default());
    let direct = unsharded.run_batch(&queries);
    assert!(results.iter().zip(direct.iter()).all(|(s, d)| {
        s.hits.len() == d.hits.len()
            && s.hits
                .iter()
                .zip(d.hits.iter())
                .all(|(x, y)| x.doc == y.doc && x.lower == y.lower && x.upper == y.upper)
    }));
    println!("parity: sharded answers are byte-identical to the unsharded engine");
}
