//! Quickstart: build a tiny S3 instance and run a social+semantic search.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use s3::core::{InstanceBuilder, Query, SearchConfig};
use s3::doc::DocBuilder;
use s3::text::Language;

fn main() {
    // 1. Users and a weighted social edge (§2.2).
    let mut b = InstanceBuilder::new(Language::English);
    let alice = b.add_user();
    let bob = b.add_user();
    let carol = b.add_user();
    b.add_social_edge(alice, bob, 0.9); // alice is close to bob
    b.add_social_edge(alice, carol, 0.2); // …and barely knows carol

    // 2. Two documents with the same topic, by different posters (§2.3).
    for (poster, text) in [
        (bob, "a university degree opens many doors"),
        (carol, "universities and degrees are overrated"),
    ] {
        let kws = b.analyze(text);
        let mut doc = DocBuilder::new("post");
        let node = doc.child(doc.root(), "text");
        doc.set_content(node, kws);
        b.add_document(doc, Some(poster));
    }

    // 3. Freeze: saturates RDF, builds the network graph, normalization
    //    weights, content components and the con(d,k) index.
    let instance = b.build();

    // 4. Search as alice: both posts match "degree", but bob's is socially
    //    closer, so it ranks first.
    let keywords = instance.query_keywords("degree");
    let result = instance.search(&Query::new(alice, keywords, 5), &SearchConfig::default());

    println!("top-{} results for alice searching \"degree\":", result.hits.len());
    for (rank, hit) in result.hits.iter().enumerate() {
        let tree = instance.forest().tree_of(hit.doc);
        let poster = instance.poster_of(tree).expect("posted");
        println!(
            "  #{} fragment {} (tree {:?}, posted by {poster}) score ∈ [{:.5}, {:.5}]",
            rank + 1,
            hit.doc,
            tree,
            hit.lower,
            hit.upper
        );
    }
    println!(
        "search stats: {} iterations, {} candidates, stop = {:?}",
        result.stats.iterations, result.stats.candidates, result.stats.stop
    );
    assert!(!result.hits.is_empty());
}
