//! §2.2 "Extensibility", end to end: social links *derived from the RDF
//! layer* by a rule.
//!
//! The paper: "if two people have worked the same year for a company of
//! less than 10 employees … they must have worked together, which could be
//! a social relationship. This is easily achieved with a query that
//! retrieves all such user pairs (in SPARQL …), and builds a
//! `u workedWith u'` triple for each such pair. Then it suffices to add
//! these triples to the instance, together with
//! `workedWith ≺sp S3:social`."
//!
//! ```sh
//! cargo run --example work_colleagues
//! ```

use s3::core::{InstanceBuilder, Query, SearchConfig};
use s3::doc::DocBuilder;
use s3::rdf::{vocabulary as voc, Pattern, Rule, Term, TermOrVar, UriOrVar};
use s3::text::Language;

fn main() {
    let mut b = InstanceBuilder::new(Language::English);

    // Users carry URIs so the RDF layer can talk about them.
    let ana = b.add_user_with_uri("ex:ana");
    let bob = b.add_user_with_uri("ex:bob");
    let cyd = b.add_user_with_uri("ex:cyd");

    // RDF facts: who worked where; which companies are small.
    {
        let rdf = b.rdf_mut();
        let worked_at = rdf.dictionary_mut().intern("ex:workedAt");
        let small = rdf.dictionary_mut().intern("ex:SmallCompany");
        for (person, company) in
            [("ex:ana", "ex:acme"), ("ex:bob", "ex:acme"), ("ex:cyd", "ex:megacorp")]
        {
            let p = rdf.dictionary_mut().intern(person);
            let c = rdf.dictionary_mut().intern(company);
            rdf.insert(p, worked_at, Term::Uri(c), 1.0);
        }
        let acme = rdf.dictionary_mut().intern("ex:acme");
        rdf.insert(acme, voc::RDF_TYPE, Term::Uri(small), 1.0);

        // The derivation rule + the sub-property declaration.
        let worked_with = rdf.dictionary_mut().intern("ex:workedWith");
        rdf.insert(worked_with, voc::RDFS_SUBPROPERTY_OF, Term::Uri(voc::S3_SOCIAL), 1.0);
        let mut body = Pattern::new();
        let a = body.var("a");
        let b_ = body.var("b");
        let c = body.var("c");
        body.triple(UriOrVar::Var(a), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        body.triple(UriOrVar::Var(b_), UriOrVar::Uri(worked_at), TermOrVar::Var(c));
        body.triple(
            UriOrVar::Var(c),
            UriOrVar::Uri(voc::RDF_TYPE),
            TermOrVar::Term(Term::Uri(small)),
        );
        let rule = Rule { body, head: (a, worked_with, b_) };
        let derived = rule.apply(rdf);
        println!("rule derived {derived} workedWith triple(s)");
    }

    // Bob posts about the topic ana will search for. No explicit social
    // edge between ana and bob was ever added!
    let kws = b.analyze("our startup ships database engines");
    let mut doc = DocBuilder::new("post");
    doc.set_content(doc.root(), kws);
    b.add_document(doc, Some(bob));

    // Cyd (no derived link to ana) posts the same content.
    let kws2 = b.analyze("big company also ships database engines");
    let mut doc2 = DocBuilder::new("post");
    doc2.set_content(doc2.root(), kws2);
    b.add_document(doc2, Some(cyd));

    let instance = b.build();

    let keywords = instance.query_keywords("database");
    let res = instance.search(&Query::new(ana, keywords, 2), &SearchConfig::default());
    println!("\nana searches \"database\":");
    for (rank, h) in res.hits.iter().enumerate() {
        let poster = instance.poster_of(instance.forest().tree_of(h.doc)).expect("posted");
        println!("  #{} {} by {poster}: score ∈ [{:.5}, {:.5}]", rank + 1, h.doc, h.lower, h.upper);
    }
    let first_poster = instance.poster_of(instance.forest().tree_of(res.hits[0].doc)).unwrap();
    assert_eq!(first_poster, bob, "the RDF-derived colleague edge must rank bob first");
    assert_ne!(first_poster, cyd);
    println!("⇒ bob outranks cyd purely through the rule-derived workedWith ≺sp S3:social edge.");
    let _ = ana;
}
