//! Ingesting real document formats (§2.3: "structured, tree-shaped
//! documents, e.g., XML, JSON"): the same article arrives once as XML and
//! once as JSON, and both land in the S3 model with identical search
//! behavior.
//!
//! ```sh
//! cargo run --example ingest_formats
//! ```

use s3::core::{InstanceBuilder, Query, SearchConfig};
use s3::doc::{parse_json, parse_xml};
use s3::text::Language;

const XML: &str = r#"<?xml version="1.0"?>
<article lang="en">
  <title>Graduate outcomes</title>
  <section>
    <p>University degrees still open doors.</p>
    <p>Graduation rates keep climbing.</p>
  </section>
</article>"#;

const JSON: &str = r#"{
  "title": "Graduate outcomes",
  "sections": [
    {"p": "University degrees still open doors."},
    {"p": "Graduation rates keep climbing."}
  ]
}"#;

fn main() {
    let mut b = InstanceBuilder::new(Language::English);
    let alice = b.add_user();
    let bob = b.add_user();
    b.add_social_edge(alice, bob, 0.9);

    // Both parsers write into the same analyzer, hence the same keyword set.
    let xml_doc = {
        let an = b.analyzer_mut();
        parse_xml(XML, |t| an.analyze(t)).expect("valid XML")
    };
    let t_xml = b.add_document(xml_doc, Some(bob));

    let json_doc = {
        let an = b.analyzer_mut();
        parse_json(JSON, "article", |t| an.analyze(t)).expect("valid JSON")
    };
    let t_json = b.add_document(json_doc, Some(bob));

    let instance = b.build();
    println!(
        "ingested XML tree: {} nodes; JSON tree: {} nodes",
        instance.forest().tree_len(t_xml),
        instance.forest().tree_len(t_json)
    );

    let kws = instance.query_keywords("graduation");
    let res = instance.search(&Query::new(alice, kws, 4), &SearchConfig::default());
    println!("\nalice searches \"graduation\" → {} hits:", res.hits.len());
    let mut trees = std::collections::HashSet::new();
    for h in &res.hits {
        let tree = instance.forest().tree_of(h.doc);
        trees.insert(tree);
        println!(
            "  fragment {} <{}> of tree {:?} — [{:.5}, {:.5}]",
            h.doc,
            instance.forest().name(h.doc),
            tree,
            h.lower,
            h.upper
        );
    }
    assert!(trees.contains(&t_xml) && trees.contains(&t_json), "both formats must match");
    println!("⇒ the XML and JSON renditions are both found, at fragment granularity.");
}
