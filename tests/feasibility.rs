//! The §3.3 score-feasibility properties, checked end-to-end on random
//! instances (Theorem 3.1 asserts the concrete score has them; these tests
//! verify our implementation does).

mod common;

use common::{random_instance, RandomSize};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3::core::oracle::{converged_proximity, score_all};
use s3::core::S3kScore;
use s3::graph::{naive::naive_prox, NodeId, Propagation};

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Property 1 (relationship with path proximity): prox≤n is computed
    /// incrementally (Uprox exists) and only grows with more paths.
    #[test]
    fn prox_monotone_in_n(seed in 0u64..2000, gamma in 1.2f64..3.0) {
        let (inst, _) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = s3::core::UserId(rng.gen_range(0..inst.num_users()) as u32);
        let mut prop_engine = Propagation::new(inst.graph(), gamma, inst.user_node(seeker));
        let n = inst.graph().num_nodes();
        let mut prev: Vec<f64> = (0..n).map(|i| prop_engine.prox_leq(NodeId(i as u32))).collect();
        for _ in 0..8 {
            prop_engine.step();
            #[allow(clippy::needless_range_loop)] // i addresses both prev and the engine
            for i in 0..n {
                let cur = prop_engine.prox_leq(NodeId(i as u32));
                prop_assert!(cur + 1e-12 >= prev[i], "prox decreased at node {i}");
                prop_assert!(cur <= 1.0 + 1e-9, "prox exceeded 1 at node {i}");
                prev[i] = cur;
            }
        }
    }

    /// Property 2 (long-path attenuation): B>n bounds the remaining
    /// proximity for every node, and tends to 0.
    #[test]
    fn attenuation_bound_is_sound(seed in 0u64..1000, gamma in 1.3f64..2.5) {
        let (inst, _) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = s3::core::UserId(rng.gen_range(0..inst.num_users()) as u32);
        let seeker_node = inst.user_node(seeker);

        let mut early = Propagation::new(inst.graph(), gamma, seeker_node);
        for _ in 0..3 { early.step(); }
        let bound = early.bound_beyond();

        let mut late = Propagation::new(inst.graph(), gamma, seeker_node);
        for _ in 0..12 { late.step(); }
        prop_assert!(late.bound_beyond() <= bound + 1e-12, "B>n must shrink");

        for i in 0..inst.graph().num_nodes() {
            let node = NodeId(i as u32);
            prop_assert!(
                early.prox_leq(node) + bound + 1e-9 >= late.prox_leq(node),
                "B>n violated at node {i}: early {} + {} < late {}",
                early.prox_leq(node), bound, late.prox_leq(node)
            );
        }
    }

    /// Property 3 (score soundness): the document score is monotone in the
    /// proximity function.
    #[test]
    fn score_monotone_in_proximity(seed in 0u64..1000, scale in 0.1f64..0.9) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let kw = pool[rng.gen_range(0..pool.len())];
        let score = S3kScore::default();
        let seeker = s3::core::UserId(rng.gen_range(0..inst.num_users()) as u32);
        let prox = converged_proximity(&inst, seeker, &score, 1e-10);
        let full = score_all(&inst, &[kw], &score, |n| prox[n.index()]);
        let scaled = score_all(&inst, &[kw], &score, |n| prox[n.index()] * scale);
        for (f, s) in full.iter().zip(&scaled) {
            prop_assert_eq!(f.doc, s.doc);
            prop_assert!(s.score <= f.score + 1e-12, "scaling prox down must not raise scores");
        }
    }

    /// The engine proximity equals literal path enumeration (Definition 3.3
    /// + §3.4) at the instance level, including tags and comments.
    #[test]
    fn instance_prox_matches_naive_paths(seed in 0u64..400) {
        let (inst, _) = random_instance(seed, RandomSize { users: 4, docs: 4, vocab: 4 });
        let gamma = 1.5;
        let seeker_node = inst.user_node(s3::core::UserId(0));
        let depth = 3;
        let mut engine = Propagation::new(inst.graph(), gamma, seeker_node);
        for _ in 0..depth { engine.step(); }
        for i in 0..inst.graph().num_nodes() {
            let node = NodeId(i as u32);
            let expected = naive_prox(inst.graph(), gamma, seeker_node, node, depth);
            prop_assert!(
                (engine.prox_leq(node) - expected).abs() < 1e-9,
                "node {i}: engine {} vs naive {}",
                engine.prox_leq(node),
                expected
            );
        }
    }

    /// Property 4 (score convergence / threshold soundness): a document
    /// whose component is undiscovered after n steps has final score below
    /// the engine's threshold bound at step n.
    #[test]
    fn threshold_bounds_undiscovered_scores(seed in 0u64..600) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x711);
        let kw = pool[rng.gen_range(0..pool.len())];
        let score = S3kScore::default();
        let seeker = s3::core::UserId(rng.gen_range(0..inst.num_users()) as u32);
        let seeker_node = inst.user_node(seeker);

        let n_steps = 2;
        let mut engine = Propagation::new(inst.graph(), gamma_of(&score), seeker_node);
        let mut visited: Vec<bool> = vec![false; inst.graph().num_nodes()];
        visited[seeker_node.index()] = true;
        for _ in 0..n_steps {
            for v in engine.step() {
                visited[v.index()] = true;
            }
        }
        let bound = engine.bound_beyond();
        // Smax for this keyword's extension.
        let smax_table = inst.connections().smax_table(score.eta);
        let smax_ext: f64 = inst
            .expand_keyword(kw)
            .iter()
            .map(|k| smax_table.get(k).copied().unwrap_or(0.0))
            .sum();
        let threshold = smax_ext * bound;

        // Final scores.
        let prox = converged_proximity(&inst, seeker, &score, 1e-12);
        let scored = score_all(&inst, &[kw], &score, |n| prox[n.index()]);
        for h in &scored {
            // Is any node of this doc's component (or a source user)
            // visited? If not — undiscovered at step n.
            let node = inst.graph().node_of_frag(h.doc).unwrap();
            let comp = inst.graph().components().component_of(node);
            let discovered = inst
                .graph()
                .components()
                .members(comp)
                .iter()
                .any(|m| visited[m.index()])
                || inst.connections().keywords_of(h.doc).count() == 0;
            // Source users: tag authors inside the component.
            let src_visited = inst
                .expand_keyword(kw)
                .iter()
                .flat_map(|&k| inst.connections().connections(h.doc, k))
                .any(|c| visited[c.src.index()]);
            if !discovered && !src_visited {
                prop_assert!(
                    h.score <= threshold + 1e-9,
                    "undiscovered doc {:?} has score {} > threshold {}",
                    h.doc,
                    h.score,
                    threshold
                );
            }
        }
    }
}

fn gamma_of(s: &S3kScore) -> f64 {
    s.gamma
}
