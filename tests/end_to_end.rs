//! End-to-end pipelines: dataset generation → workloads → S3k and TopkS →
//! comparison, mirroring exactly what the benchmark harness does.

mod common;

use s3::core::{Query, S3kEngine, SearchConfig, StopReason, UserId};
use s3::datasets::{twitter, vodkaster, workload, yelp, OntologyConfig, Scale};
use s3::topks::{uit_from_s3, TopkSConfig, TopkSEngine};

fn tiny_twitter() -> twitter::TwitterDataset {
    let mut c = twitter::TwitterConfig::scaled(Scale::Tiny);
    c.users = 80;
    c.tweets = 400;
    c.ontology = OntologyConfig { classes: 15, entities: 60, properties: 4, seed: 9 };
    twitter::generate(&c)
}

#[test]
fn twitter_pipeline_converges() {
    let ds = tiny_twitter();
    let inst = &ds.instance;
    let engine = S3kEngine::new(inst, SearchConfig::default());
    let ws = workload::paper_workloads(inst, 6);
    let mut converged = 0;
    let mut answered = 0;
    for w in &ws {
        for q in &w.queries {
            let res = engine.run(&q.query);
            if matches!(res.stats.stop, StopReason::Converged | StopReason::NoMatch) {
                converged += 1;
            }
            if !res.hits.is_empty() {
                answered += 1;
            }
        }
    }
    assert_eq!(converged, ws.len() * 6, "every query must converge");
    assert!(answered > 0, "some queries must have answers");
}

#[test]
fn vodkaster_pipeline() {
    let mut c = vodkaster::VodkasterConfig::scaled(Scale::Tiny);
    c.users = 25;
    c.movies = 30;
    let ds = vodkaster::generate(&c);
    let inst = &ds.instance;
    let engine = S3kEngine::new(inst, SearchConfig::default());
    let w = workload::generate(
        inst,
        workload::WorkloadConfig {
            frequency: s3::text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 10,
            seed: 4,
        },
    );
    let mut answered = 0;
    for q in &w.queries {
        let res = engine.run(&q.query);
        assert!(matches!(res.stats.stop, StopReason::Converged | StopReason::NoMatch));
        answered += usize::from(!res.hits.is_empty());
    }
    assert!(answered > 0);
}

#[test]
fn yelp_pipeline_with_semantics() {
    let mut c = yelp::YelpConfig::scaled(Scale::Tiny);
    c.users = 40;
    c.businesses = 12;
    c.ontology = OntologyConfig { classes: 10, entities: 40, properties: 3, seed: 2 };
    let ds = yelp::generate(&c);
    let inst = &ds.instance;
    // Query a class keyword that has specializations in the corpus: the
    // answers must include docs reachable only through Ext.
    let class_kw = ds
        .ontology
        .class_keywords
        .iter()
        .copied()
        .find(|&k| inst.expand_keyword(k).len() > 1)
        .expect("some class has corpus specializations");
    let engine = S3kEngine::new(inst, SearchConfig::default());
    let res = engine.run(&Query::new(UserId(0), vec![class_kw], 5));
    let no_ext =
        S3kEngine::new(inst, SearchConfig { semantic_expansion: false, ..SearchConfig::default() })
            .run(&Query::new(UserId(0), vec![class_kw], 5));
    assert!(
        res.stats.candidates >= no_ext.stats.candidates,
        "expansion can only widen the candidate set"
    );
}

#[test]
fn topks_comparison_pipeline() {
    let ds = tiny_twitter();
    let inst = &ds.instance;
    let adaptation = uit_from_s3(inst);
    assert!(adaptation.uit.num_items() > 0);
    assert_eq!(adaptation.uit.num_users(), inst.num_users());

    let topks = TopkSEngine::new(&adaptation.uit, TopkSConfig::default());
    let w = workload::generate(
        inst,
        workload::WorkloadConfig {
            frequency: s3::text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: 12,
            seed: 8,
        },
    );
    let mut topks_answered = 0;
    for q in &w.queries {
        let res = topks.run(q.query.seeker, &q.query.keywords, q.query.k);
        topks_answered += usize::from(!res.hits.is_empty());
        for h in &res.hits {
            assert!(h.lower <= h.upper + 1e-9);
        }
    }
    assert!(topks_answered > 0);
}

#[test]
fn random_instances_build_and_stat() {
    for seed in 0..20 {
        let (inst, _) = common::random_instance(seed, common::RandomSize::default());
        let stats = inst.stats();
        assert_eq!(stats.users, inst.num_users());
        assert_eq!(stats.documents, inst.num_documents());
        assert!(stats.nodes >= stats.users + stats.documents);
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The `s3` facade exposes every layer.
    assert!(!s3::VERSION.is_empty());
    let _ = s3::text::Language::English;
    let _ = s3::rdf::vocabulary::S3_SOCIAL;
    let _ = s3::graph::EdgeKind::Social;
    let _ = s3::core::S3kScore::default();
}

#[test]
fn seekers_see_their_own_neighborhood_first() {
    // A doc posted by the seeker outranks the same content posted by a
    // stranger with no social path.
    let ds = tiny_twitter();
    let inst = &ds.instance;
    // Find a user who posted at least one document.
    let (tree, poster) = inst
        .forest()
        .trees()
        .find_map(|t| inst.poster_of(t).map(|u| (t, u)))
        .expect("some doc has a poster");
    let root = inst.forest().root(tree);
    // Query one of the doc's own keywords.
    let kw = inst.forest().fragments(root).flat_map(|f| inst.forest().content(f)).next().copied();
    let Some(kw) = kw else { return };
    let res = inst.search(&Query::new(poster, vec![kw], 10), &SearchConfig::default());
    assert!(
        res.hits.iter().any(|h| inst.forest().tree_of(h.doc) == tree || h.lower > 0.0),
        "the poster's own document (or something better) must surface"
    );
}
