//! The paper's Figure 3 instance, built through the public API and checked
//! end-to-end: normalization, proximity, connections and search.

use s3::core::{InstanceBuilder, Query, SearchConfig, StopReason, TagSubject, UserId};
use s3::doc::DocBuilder;
use s3::graph::Propagation;
use s3::text::Language;

/// Figure 3: users u0..u3; URI0 (tree: URI0.0/URI0.0.0 and URI0.1) posted
/// by u0; URI1 posted by u1, commenting on URI0.1; tag a0 on URI0.0.0 by
/// u2 with keyword k2; social edges u0→u3 (0.3), u1→u3 (0.5), u3→u2 (0.5),
/// u2→u3 (0.7).
fn build() -> (s3::core::S3Instance, Vec<UserId>) {
    let mut b = InstanceBuilder::new(Language::English);
    let users: Vec<UserId> = (0..4).map(|_| b.add_user()).collect();
    b.add_social_edge(users[0], users[3], 0.3);
    b.add_social_edge(users[1], users[3], 0.5);
    b.add_social_edge(users[3], users[2], 0.5);
    b.add_social_edge(users[2], users[3], 0.7);

    let k0 = b.analyze("alpha")[0];
    let k1 = b.analyze("beta")[0];
    let k2 = b.analyzer_mut().vocabulary_mut().intern("gamma-tag");
    b.analyzer_mut().vocabulary_mut().add_occurrences(k2, 1);

    let mut d0 = DocBuilder::new("doc");
    let n00 = d0.child(d0.root(), "sec");
    let n000 = d0.child_with_content(n00, "p", vec![k0]);
    let _n01 = d0.child_with_content(d0.root(), "sec", vec![k1]);
    let t0 = b.add_document(d0, Some(users[0]));
    let uri0_0_0 = b.doc_node(t0, n000);
    let uri0 = b.doc_root(t0);

    let d1 = DocBuilder::new("doc");
    let t1 = b.add_document(d1, Some(users[1]));
    // URI1 comments on URI0.1 — in pre-order the tree is
    // root(+0), sec(+1), p(+2), sec2(+3).
    let uri0_1 = s3::doc::DocNodeId(uri0.0 + 3);
    b.add_comment_edge(t1, uri0_1);

    b.add_tag(TagSubject::Frag(uri0_0_0), users[2], Some(k2));

    (b.build(), users)
}

#[test]
fn social_paths_follow_figure_3_topology() {
    let (inst, users) = build();
    let g = inst.graph();
    // "there is no social path going from u2 to u1 avoiding u0, because it
    // is not possible to move from URI0.1 to URI0.0.0 through a vertical
    // neighborhood" — but paths u2 → u3 → … exist. Check that u2 reaches u1
    // only at distance ≥ 2 and that the propagation finds mass there.
    let mut p = Propagation::new(g, 1.5, inst.user_node(users[2]));
    assert_eq!(p.prox_leq(inst.user_node(users[1])), 0.0);
    for _ in 0..6 {
        p.step();
    }
    assert!(p.prox_leq(inst.user_node(users[1])) > 0.0, "u2 reaches u1 through the graph");
    // Proximity to the tagged fragment's tree flows through the tag chain.
    let uri0_node = g.node_of_frag(inst.forest().root(s3::doc::TreeId(0))).unwrap();
    assert!(p.prox_leq(uri0_node) > 0.0);
}

#[test]
fn comment_and_tag_connections_reach_the_root() {
    let (inst, _) = build();
    let forest = inst.forest();
    let uri0 = forest.root(s3::doc::TreeId(0));
    // k0 lives in URI0.0.0 → contains connection at the root with depth 2.
    let k0 = inst.vocabulary().get("alpha").unwrap();
    let conns = inst.connections().connections(uri0, k0);
    assert!(conns.iter().any(|c| c.depth == 2), "{conns:?}");
    // The tag keyword reaches the root as relatedTo.
    let k2 = inst.vocabulary().get("gamma-tag").unwrap();
    let conns = inst.connections().connections(uri0, k2);
    assert!(!conns.is_empty());
}

#[test]
fn all_users_can_search_and_converge() {
    let (inst, users) = build();
    let k0 = inst.vocabulary().get("alpha").unwrap();
    for &u in &users {
        let res = inst.search(&Query::new(u, vec![k0], 3), &SearchConfig::default());
        assert!(
            matches!(res.stats.stop, StopReason::Converged | StopReason::NoMatch),
            "seeker {u}: {:?}",
            res.stats
        );
        // u0 posted URI0, so the seeker-side proximity always exists for
        // someone; at minimum the result is well-formed.
        for h in &res.hits {
            assert!(h.lower <= h.upper + 1e-12);
        }
    }
}
