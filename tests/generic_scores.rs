//! The generic-score machinery (§3.3): the engine must accept any feasible
//! score model and stay correct. Tested with the two alternative models —
//! connection-type weighting and disjunctive (OR) aggregation.

mod common;

use common::{random_instance, RandomSize};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3::core::{
    AnyKeywordScore, Query, S3kEngine, ScoreModel, SearchConfig, StopReason, TypeWeightedScore,
    UserId,
};

/// Exhaustive reference for an arbitrary linear-per-keyword model: converge
/// proximity, score every doc, greedy-select.
fn generic_oracle<S: ScoreModel>(
    inst: &s3::core::S3Instance,
    query: &Query,
    model: &S,
) -> Vec<(s3::doc::DocNodeId, f64)> {
    use s3::graph::{NodeId, Propagation};
    let mut prop = Propagation::new(inst.graph(), model.gamma(), inst.user_node(query.seeker));
    let mut guard = 0;
    while prop.bound_beyond() > 1e-13 && guard < 50_000 {
        prop.step();
        guard += 1;
    }
    let mut kws = query.keywords.clone();
    kws.sort_unstable();
    kws.dedup();
    let exts: Vec<_> = kws.iter().map(|&k| inst.expand_keyword(k)).collect();
    let forest = inst.forest();
    let index = inst.connections();
    let mut scored: Vec<(s3::doc::DocNodeId, f64)> = Vec::new();
    for idx in 0..forest.num_nodes() {
        let d = s3::doc::DocNodeId(idx as u32);
        let mut parts = Vec::with_capacity(exts.len());
        let mut matched = 0usize;
        let mut missing = false;
        for ext in &exts {
            let mut seen = std::collections::HashSet::new();
            let mut part = 0.0f64;
            let mut any = false;
            for &k in ext.iter() {
                for c in index.connections(d, k) {
                    if seen.insert((c.ctype, c.frag, c.src)) {
                        part += model.structural_weight(c.ctype, c.depth) * prop.prox_leq(c.src);
                        any = true;
                    }
                }
            }
            if any {
                matched += 1;
            } else {
                missing = true;
            }
            parts.push(part);
        }
        let qualifies = if model.requires_all_keywords() { !missing } else { matched > 0 };
        if qualifies {
            scored.push((d, model.combine_keywords(&parts)));
        }
        let _ = NodeId(0);
    }
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    let mut out: Vec<(s3::doc::DocNodeId, f64)> = Vec::new();
    for (d, s) in scored {
        if out.len() == query.k || s <= 0.0 {
            break;
        }
        if out.iter().all(|(p, _)| !forest.is_vertical_neighbor(*p, d)) {
            out.push((d, s));
        }
    }
    out
}

fn check_model<S: ScoreModel + Clone>(seed: u64, model: S) -> Result<(), TestCaseError> {
    let (inst, pool) = random_instance(seed, RandomSize::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFACE);
    let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
    let k1 = pool[rng.gen_range(0..pool.len())];
    let k2 = pool[rng.gen_range(0..pool.len())];
    let query = Query::new(seeker, vec![k1, k2], 3);

    let engine = S3kEngine::with_model(&inst, SearchConfig::default(), model.clone());
    let res = engine.run(&query);
    prop_assert!(
        matches!(res.stats.stop, StopReason::Converged | StopReason::NoMatch),
        "seed {seed}: {:?}",
        res.stats
    );
    let oracle = generic_oracle(&inst, &query, &model);
    prop_assert_eq!(
        res.hits.len(),
        oracle.len(),
        "seed {}: engine {:?} vs oracle {:?}",
        seed,
        &res.hits,
        &oracle
    );
    let oracle_scores: std::collections::HashMap<_, _> = oracle.iter().copied().collect();
    for h in &res.hits {
        if let Some(&s) = oracle_scores.get(&h.doc) {
            prop_assert!(
                h.lower - 1e-9 <= s && s <= h.upper + 1e-9,
                "seed {seed}: score {s} outside [{}, {}]",
                h.lower,
                h.upper
            );
        } else {
            // Tie substitution: some oracle-only doc must land in the
            // engine doc's interval.
            prop_assert!(
                oracle.iter().any(|(_, s)| h.lower - 1e-9 <= *s && *s <= h.upper + 1e-9),
                "seed {seed}: engine-only hit {:?} has no tie partner",
                h
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Type-weighted conjunctive score: engine == exhaustive reference.
    #[test]
    fn type_weighted_score_is_correct(seed in 0u64..4000) {
        check_model(seed, TypeWeightedScore::default())?;
    }

    /// Disjunctive (OR) score: engine == exhaustive reference.
    #[test]
    fn any_keyword_score_is_correct(seed in 0u64..4000) {
        check_model(seed, AnyKeywordScore::default())?;
    }

    /// OR semantics strictly widens the candidate set vs AND.
    #[test]
    fn or_candidates_superset_of_and(seed in 0u64..1000) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
        let k1 = pool[rng.gen_range(0..pool.len())];
        let k2 = pool[rng.gen_range(0..pool.len())];
        let query = Query::new(seeker, vec![k1, k2], 3);
        let and_engine = S3kEngine::new(&inst, SearchConfig::default());
        let or_engine =
            S3kEngine::with_model(&inst, SearchConfig::default(), AnyKeywordScore::default());
        let and_res = and_engine.run(&query);
        let or_res = or_engine.run(&query);
        let or_set: std::collections::HashSet<_> =
            or_res.candidate_docs.iter().copied().collect();
        for d in &and_res.candidate_docs {
            prop_assert!(or_set.contains(d), "seed {seed}: AND candidate {d:?} missing from OR");
        }
    }
}
