//! Shared helpers for the workspace integration tests: seeded random S3
//! instances exercising every data-model feature (multi-node documents,
//! keyword tags, endorsements, higher-level tags, comment chains, an RDF
//! class hierarchy).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3::core::{InstanceBuilder, S3Instance, TagSubject, UserId};
use s3::doc::DocBuilder;
use s3::rdf::{vocabulary as voc, Term};
use s3::text::{KeywordId, Language};

/// Tunable size of a random instance.
#[derive(Debug, Clone, Copy)]
pub struct RandomSize {
    pub users: usize,
    pub docs: usize,
    pub vocab: usize,
}

impl Default for RandomSize {
    fn default() -> Self {
        RandomSize { users: 6, docs: 8, vocab: 8 }
    }
}

/// Build a random but fully-featured instance from a seed. Returns the
/// instance plus its content keyword pool.
pub fn random_instance(seed: u64, size: RandomSize) -> (S3Instance, Vec<KeywordId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(Language::English);

    // A small ontology: kw classes c0..c2 with specializations s0..s2.
    let mut pool: Vec<KeywordId> = Vec::new();
    let mut class_kws = Vec::new();
    for i in 0..3 {
        let class = b.intern_entity_keyword(&format!("ex:c{i}"));
        let spec = b.intern_entity_keyword(&format!("ex:s{i}"));
        let (cu, su) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern(&format!("ex:c{i}")), d.intern(&format!("ex:s{i}")))
        };
        b.rdf_mut().insert(su, voc::RDFS_SUBCLASS_OF, Term::Uri(cu), 1.0);
        class_kws.push(class);
        pool.push(spec);
    }
    for i in 0..size.vocab {
        pool.push(b.analyzer_mut().vocabulary_mut().intern(&format!("w{i}")));
    }

    let users: Vec<UserId> = (0..size.users).map(|_| b.add_user()).collect();
    for _ in 0..size.users * 2 {
        let x = rng.gen_range(0..users.len());
        let y = rng.gen_range(0..users.len());
        if x != y {
            b.add_social_edge(users[x], users[y], rng.gen_range(0.1..=1.0));
        }
    }

    let mut roots = Vec::new();
    for d in 0..size.docs {
        let mut doc = DocBuilder::new("doc");
        let n_children = rng.gen_range(0..3usize);
        let mut targets = vec![doc.root()];
        for _ in 0..n_children {
            let parent = targets[rng.gen_range(0..targets.len())];
            targets.push(doc.child(parent, "sec"));
        }
        for &node in &targets {
            let n_kw = rng.gen_range(0..4usize);
            let kws: Vec<KeywordId> =
                (0..n_kw).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            for &k in &kws {
                b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
            }
            doc.add_content(node, kws);
        }
        let poster =
            if rng.gen_bool(0.9) { Some(users[rng.gen_range(0..users.len())]) } else { None };
        let tree = b.add_document(doc, poster);
        let root = b.doc_root(tree);
        // Comment on an earlier doc?
        if d > 0 && rng.gen_bool(0.4) {
            let target = roots[rng.gen_range(0..roots.len())];
            b.add_comment_edge(tree, target);
        }
        roots.push(root);
    }

    // Tags: keyword tags, endorsements, and one higher-level tag.
    let mut tag_ids = Vec::new();
    for _ in 0..size.docs {
        if rng.gen_bool(0.6) && !roots.is_empty() {
            let subject = TagSubject::Frag(roots[rng.gen_range(0..roots.len())]);
            let author = users[rng.gen_range(0..users.len())];
            let keyword = if rng.gen_bool(0.7) {
                let k = pool[rng.gen_range(0..pool.len())];
                b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
                Some(k)
            } else {
                None
            };
            tag_ids.push(b.add_tag(subject, author, keyword));
        }
    }
    if let Some(&base) = tag_ids.first() {
        if rng.gen_bool(0.5) {
            let author = users[rng.gen_range(0..users.len())];
            let k = pool[rng.gen_range(0..pool.len())];
            b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
            b.add_tag(TagSubject::Tag(base), author, Some(k));
        }
    }

    let mut queryable = class_kws;
    queryable.extend(pool);
    (b.build(), queryable)
}
