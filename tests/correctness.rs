//! Correctness certification of the S3k engine against the brute-force
//! oracle (Theorems 4.1–4.3 of the paper), plus the structural invariants
//! of query answers, on randomized instances.

mod common;

use common::{random_instance, RandomSize};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3::core::oracle::oracle_topk;
use s3::core::{Query, SearchConfig, StopReason, UserId};

/// Compare the engine's answer with the oracle's, tolerating ties: at each
/// rank, either the same document or the same score (within tolerance).
fn assert_matches_oracle(seed: u64, gamma: f64, k: usize) -> Result<(), TestCaseError> {
    let (inst, pool) = random_instance(seed, RandomSize::default());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
    let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
    let kw = pool[rng.gen_range(0..pool.len())];
    let query = Query::new(seeker, vec![kw], k);

    let cfg =
        SearchConfig { score: s3::core::S3kScore::new(gamma, 0.5), ..SearchConfig::default() };
    let res = inst.search(&query, &cfg);
    prop_assert!(
        matches!(res.stats.stop, StopReason::Converged | StopReason::NoMatch),
        "seed {seed}: engine did not converge: {:?}",
        res.stats
    );
    let oracle = oracle_topk(&inst, &query, &cfg.score, 1e-13);
    compare_answer_sets(seed, &inst, &res, &oracle)
}

/// The stop condition (paper Algorithm 2) certifies the answer *set*; the
/// internal order is only pinned once intervals separate. Compare as sets,
/// allowing substitution of equal-score documents (ties, which "any valid
/// answer" may resolve differently — §3.1 "a query answer may not be
/// unique").
fn compare_answer_sets(
    seed: u64,
    inst: &s3::core::S3Instance,
    res: &s3::core::TopKResult,
    oracle: &[s3::core::oracle::OracleHit],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        res.hits.len(),
        oracle.len(),
        "seed {}: result sizes differ: engine {:?} oracle {:?}",
        seed,
        &res.hits,
        oracle
    );
    let oracle_score: std::collections::HashMap<_, _> =
        oracle.iter().map(|o| (o.doc, o.score)).collect();
    let engine_docs: std::collections::HashSet<_> = res.hits.iter().map(|h| h.doc).collect();
    // Shared docs: the oracle score must lie in the certified interval.
    for h in &res.hits {
        if let Some(&s) = oracle_score.get(&h.doc) {
            prop_assert!(
                h.lower - 1e-9 <= s && s <= h.upper + 1e-9,
                "seed {seed}: oracle score {s} outside [{}, {}] for {:?}",
                h.lower,
                h.upper,
                h.doc
            );
        }
    }
    // Mismatched docs must be explainable as ties/near-ties: every
    // engine-only doc's interval must overlap some oracle-only doc's score
    // and vice versa (within the certified uncertainty).
    let engine_only: Vec<_> =
        res.hits.iter().filter(|h| !oracle_score.contains_key(&h.doc)).collect();
    let oracle_only: Vec<_> = oracle.iter().filter(|o| !engine_docs.contains(&o.doc)).collect();
    prop_assert_eq!(engine_only.len(), oracle_only.len(), "seed {}", seed);
    for h in &engine_only {
        prop_assert!(
            oracle_only.iter().any(|o| h.lower - 1e-9 <= o.score && o.score <= h.upper + 1e-9),
            "seed {seed}: engine-only doc {:?} [{}, {}] not a tie with any oracle-only doc {:?}",
            h.doc,
            h.lower,
            h.upper,
            oracle_only
        );
        // And they must not be excluded as vertical neighbors of a shared hit.
        for other in &res.hits {
            if other.doc != h.doc {
                prop_assert!(!inst.forest().is_vertical_neighbor(other.doc, h.doc));
            }
        }
    }
    Ok(())
}

// Wrapper because prop_assert! needs a Result-returning context.
fn check(seed: u64, gamma: f64, k: usize) -> Result<(), TestCaseError> {
    assert_matches_oracle(seed, gamma, k)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Theorem 4.1/4.2: the engine's converged answer is a top-k answer.
    #[test]
    fn s3k_matches_brute_force_oracle(seed in 0u64..5000, gamma in 1.2f64..3.0, k in 1usize..6) {
        check(seed, gamma, k)?;
    }

    /// Definition 3.2: no two results are vertical neighbors, and results
    /// are sorted by (certified) score.
    #[test]
    fn answers_respect_vertical_neighbor_constraint(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
        let kw = pool[rng.gen_range(0..pool.len())];
        let res = inst.search(&Query::new(seeker, vec![kw], 4), &SearchConfig::default());
        for (i, a) in res.hits.iter().enumerate() {
            prop_assert!(a.lower <= a.upper + 1e-12);
            for b in &res.hits[i + 1..] {
                prop_assert!(
                    !inst.forest().is_vertical_neighbor(a.doc, b.doc),
                    "seed {seed}: {:?} and {:?} are vertical neighbors",
                    a.doc, b.doc
                );
            }
        }
    }

    /// Component pruning is a pure optimization: identical answers.
    #[test]
    fn pruning_does_not_change_answers(seed in 0u64..1500) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
        let kw = pool[rng.gen_range(0..pool.len())];
        let q = Query::new(seeker, vec![kw], 3);
        let on = inst.search(&q, &SearchConfig::default());
        let off = inst.search(
            &q,
            &SearchConfig { component_pruning: false, ..SearchConfig::default() },
        );
        let docs = |r: &s3::core::TopKResult| r.hits.iter().map(|h| h.doc).collect::<Vec<_>>();
        prop_assert_eq!(docs(&on), docs(&off));
    }

    /// The parallel explore step computes the same answers.
    #[test]
    fn parallel_explore_matches_sequential(seed in 0u64..800) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
        let kw = pool[rng.gen_range(0..pool.len())];
        let q = Query::new(seeker, vec![kw], 3);
        let seq = inst.search(&q, &SearchConfig::default());
        let par = inst.search(&q, &SearchConfig { threads: 4, ..SearchConfig::default() });
        let docs = |r: &s3::core::TopKResult| r.hits.iter().map(|h| h.doc).collect::<Vec<_>>();
        prop_assert_eq!(docs(&seq), docs(&par));
    }

    /// Theorem 4.3: any-time termination always returns a well-formed
    /// (possibly sub-optimal) answer.
    #[test]
    fn anytime_answers_are_well_formed(seed in 0u64..800, max_iters in 0u32..4) {
        let (inst, pool) = random_instance(seed, RandomSize::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
        let kw = pool[rng.gen_range(0..pool.len())];
        let q = Query::new(seeker, vec![kw], 3);
        let res = inst.search(
            &q,
            &SearchConfig { max_iterations: max_iters, ..SearchConfig::default() },
        );
        prop_assert!(res.hits.len() <= 3);
        for (i, a) in res.hits.iter().enumerate() {
            for b in &res.hits[i + 1..] {
                prop_assert!(!inst.forest().is_vertical_neighbor(a.doc, b.doc));
            }
        }
    }

    /// Two-keyword conjunctive queries also agree with the oracle.
    #[test]
    fn multi_keyword_matches_oracle(seed in 0u64..1200) {
        let (inst, pool) = random_instance(seed, RandomSize { users: 5, docs: 10, vocab: 4 });
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let seeker = UserId(rng.gen_range(0..inst.num_users()) as u32);
        let k1 = pool[rng.gen_range(0..pool.len())];
        let k2 = pool[rng.gen_range(0..pool.len())];
        let q = Query::new(seeker, vec![k1, k2], 3);
        let cfg = SearchConfig::default();
        let res = inst.search(&q, &cfg);
        let oracle = oracle_topk(&inst, &q, &cfg.score, 1e-13);
        compare_answer_sets(seed, &inst, &res, &oracle)?;
    }
}
