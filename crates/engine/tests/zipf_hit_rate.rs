//! Cache effectiveness under a realistic skew: replaying a Zipf-distributed
//! query stream (the shape real serving traffic has) against the LRU must
//! yield a high hit rate even when the cache is much smaller than the
//! distinct-query population — the ROADMAP's "measure hit rates on Zipf
//! workloads" item, kept as a regression test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::Query;
use s3_datasets::{twitter, workload, zipf::Zipf, Scale};
use s3_engine::{EngineConfig, S3Engine, ShardedEngine};
use s3_text::FrequencyClass;
use std::sync::Arc;

/// A pool of distinct queries plus a Zipf-ordered replay stream over it.
fn zipf_stream(instance: &Arc<s3_core::S3Instance>, replays: usize) -> (Vec<Query>, Vec<usize>) {
    let w = workload::generate(
        instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 120,
            seed: 7,
        },
    );
    let pool: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = StdRng::seed_from_u64(99);
    let stream = (0..replays).map(|_| zipf.sample(&mut rng)).collect();
    (pool, stream)
}

#[test]
fn zipf_workload_hit_rate() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);
    let (pool, stream) = zipf_stream(&instance, 600);

    // A cache half the distinct-query population: the Zipf head dominates
    // the stream, so the hit rate must be well above the uniform-traffic
    // expectation (~capacity/population = 0.5) and evictions must occur.
    let engine = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig { threads: 1, cache_capacity: 60, ..EngineConfig::default() },
    );
    for &i in &stream {
        engine.query(&pool[i]);
    }
    let stats = engine.cache_stats();
    let rate = stats.hit_rate();
    assert!(rate > 0.6, "Zipf skew must keep the small cache hot (rate {rate:.3})");
    assert!(rate < 1.0, "cold misses must exist (rate {rate:.3})");
    assert!(stats.evictions > 0, "capacity pressure expected on 120 distinct keys");
    assert_eq!(stats.hits + stats.misses, stream.len() as u64);

    // Caching disabled: identical answers, zero hit rate.
    let uncached = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig { threads: 1, cache_capacity: 0, ..EngineConfig::default() },
    );
    for &i in &stream[..50] {
        assert_eq!(uncached.query(&pool[i]).hits, engine.query(&pool[i]).hits);
    }
    assert_eq!(uncached.cache_stats().hit_rate(), 0.0);

    // The sharded engine's front cache sees the same skew benefit: one
    // lookup per repeat, no scatter.
    let sharded = ShardedEngine::new(
        Arc::clone(&instance),
        EngineConfig { threads: 1, cache_capacity: 60, ..EngineConfig::default() },
        4,
    );
    for &i in &stream {
        sharded.query(&pool[i]);
    }
    let srate = sharded.cache_stats().hit_rate();
    assert!(srate > 0.6, "front cache must absorb the Zipf head (rate {srate:.3})");
}
