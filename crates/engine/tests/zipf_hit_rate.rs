//! Cache effectiveness under a realistic skew: replaying a Zipf-distributed
//! query stream (the shape real serving traffic has) against the LRU must
//! yield a high hit rate even when the cache is much smaller than the
//! distinct-query population — the ROADMAP's "measure hit rates on Zipf
//! workloads" item, kept as a regression test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::{IngestBatch, IngestDoc, Query};
use s3_datasets::{twitter, workload, zipf::Zipf, Scale};
use s3_engine::{
    CachePolicy, EngineConfig, InvalidationScope, LiveShardedEngine, S3Engine, ShardedEngine,
};
use s3_text::FrequencyClass;
use std::sync::Arc;

/// A pool of distinct queries plus a Zipf-ordered replay stream over it.
fn zipf_stream(instance: &Arc<s3_core::S3Instance>, replays: usize) -> (Vec<Query>, Vec<usize>) {
    let w = workload::generate(
        instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 120,
            seed: 7,
        },
    );
    let pool: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = StdRng::seed_from_u64(99);
    let stream = (0..replays).map(|_| zipf.sample(&mut rng)).collect();
    (pool, stream)
}

#[test]
fn zipf_workload_hit_rate() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);
    let (pool, stream) = zipf_stream(&instance, 600);

    // A cache half the distinct-query population: the Zipf head dominates
    // the stream, so the hit rate must be well above the uniform-traffic
    // expectation (~capacity/population = 0.5) and evictions must occur.
    let engine = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(1).cache_capacity(60).build(),
    );
    for &i in &stream {
        engine.query(&pool[i]);
    }
    let stats = engine.cache_stats();
    let rate = stats.hit_rate();
    assert!(rate > 0.6, "Zipf skew must keep the small cache hot (rate {rate:.3})");
    assert!(rate < 1.0, "cold misses must exist (rate {rate:.3})");
    assert!(stats.evictions > 0, "capacity pressure expected on 120 distinct keys");
    assert_eq!(stats.hits + stats.misses, stream.len() as u64);

    // Caching disabled: identical answers, zero hit rate.
    let uncached = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(1).cache_capacity(0).build(),
    );
    for &i in &stream[..50] {
        assert_eq!(uncached.query(&pool[i]).hits, engine.query(&pool[i]).hits);
    }
    assert_eq!(uncached.cache_stats().hit_rate(), 0.0);

    // The sharded engine's front cache sees the same skew benefit: one
    // lookup per repeat, no scatter.
    let sharded = ShardedEngine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(1).cache_capacity(60).build(),
        4,
    );
    for &i in &stream {
        sharded.query(&pool[i]);
    }
    let srate = sharded.cache_stats().hit_rate();
    assert!(srate > 0.6, "front cache must absorb the Zipf head (rate {srate:.3})");
}

/// The admission-policy claim, kept as a regression bar (and enforced in
/// CI by `benches/cache.rs`): on the seeded Zipf workload with the cache
/// at half the distinct-query population, W-TinyLFU's hit rate is at
/// least the LRU baseline's — and when one-hit-wonder queries are mixed
/// into the stream (the traffic shape that flushes an LRU), TinyLFU's
/// frequency filter keeps the hot head resident and wins outright.
#[test]
fn tinylfu_admission_beats_lru_under_skew() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);
    let (pool, stream) = zipf_stream(&instance, 600);

    let engine_with = |policy: CachePolicy| {
        S3Engine::new(
            Arc::clone(&instance),
            EngineConfig::builder().threads(1).cache_capacity(60).cache_policy(policy).build(),
        )
    };
    let replay = |engine: &S3Engine| {
        for &i in &stream {
            engine.query(&pool[i]);
        }
        engine.cache_stats()
    };
    let lru = replay(&engine_with(CachePolicy::Lru));
    let tlfu = replay(&engine_with(CachePolicy::tiny_lfu()));
    assert!(
        tlfu.hit_rate() >= lru.hit_rate(),
        "admission must not lose to recency-only eviction under skew \
         (TinyLFU {:.3} vs LRU {:.3})",
        tlfu.hit_rate(),
        lru.hit_rate()
    );
    assert!(tlfu.hit_rate() > 0.55, "absolute floor (got {:.3})", tlfu.hit_rate());
    assert!(tlfu.admitted > 0, "candidates must flow into the main region ({tlfu})");
    assert!(tlfu.rejected > 0, "the filter must deny cold candidates ({tlfu})");

    // One-hit-wonder mixture: every other access is a fresh query seen
    // exactly once (a scan). The wonders evict the LRU's hot head;
    // TinyLFU rejects them at admission.
    let wonders = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Rare,
            keywords_per_query: 2,
            k: 7,
            queries: 300,
            seed: 23,
        },
    );
    let wonder_pool: Vec<Query> = wonders.queries.into_iter().map(|q| q.query).collect();
    let lru_scan = engine_with(CachePolicy::Lru);
    let tlfu_scan = engine_with(CachePolicy::tiny_lfu());
    for engine in [&lru_scan, &tlfu_scan] {
        for (j, &i) in stream.iter().enumerate() {
            engine.query(&pool[i]);
            if j % 2 == 0 {
                engine.query(&wonder_pool[(j / 2) % wonder_pool.len()]);
            }
        }
    }
    let (l, t) = (lru_scan.cache_stats(), tlfu_scan.cache_stats());
    assert!(
        t.hit_rate() > l.hit_rate(),
        "under a one-hit-wonder scan the filter must win outright \
         (TinyLFU {:.3} vs LRU {:.3})",
        t.hit_rate(),
        l.hit_rate()
    );

    // The policy changed whether we hit, never what we return.
    let uncached = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(1).cache_capacity(0).build(),
    );
    for &i in &stream[..40] {
        assert_eq!(uncached.query(&pool[i]).hits, tlfu_scan.query(&pool[i]).hits);
    }
}

/// Interleaved ingestion: replay a Zipf stream against the per-shard
/// caches of two identical live fleets, ingest the same detached batch
/// into both — scoped on one, forced-global on the other — and replay a
/// recovery window. Scoped invalidation drops only the touched shard's
/// entries, so the fleet's hit count during recovery must strictly beat
/// the globally-bumped twin's.
#[test]
fn interleaved_ingestion_scoped_bump_recovers_faster() {
    let builder = || {
        let mut c = twitter::TwitterConfig::scaled(Scale::Tiny);
        c.users = 50;
        c.tweets = 300;
        twitter::generate_builder(&c).0
    };
    let config = || EngineConfig::builder().threads(1).cache_capacity(256).build();
    let num_shards = 4;
    let scoped = LiveShardedEngine::new(builder(), config(), num_shards);
    let global = LiveShardedEngine::new(builder(), config(), num_shards);

    let (pool, stream) = zipf_stream(&scoped.instance(), 400);
    let shard_hits = |live: &LiveShardedEngine| -> u64 {
        let e = live.engine();
        (0..num_shards).map(|s| e.shard(s).cache_stats().hits).sum()
    };
    // Warm both fleets' per-shard caches with a round-robin direct-shard
    // replay of the stream (the per-shard caches are what scoped
    // invalidation preserves).
    for (i, &q) in stream.iter().enumerate() {
        scoped.engine().shard(i % num_shards).query(&pool[q]);
        global.engine().shard(i % num_shards).query(&pool[q]);
    }
    assert_eq!(shard_hits(&scoped), shard_hits(&global), "identical warmup");

    // The same detached batch: a new user posting a new document.
    let batch = {
        let mut b = IngestBatch::new();
        let u = b.add_user();
        let mut doc = IngestDoc::new("post");
        doc.set_text(doc.root(), "a brand new topic");
        b.add_document(doc, Some(u));
        b
    };
    let scoped_report = scoped.ingest(&batch);
    let global_report = global.ingest_with(&batch, true);
    let InvalidationScope::Scoped(ref touched) = scoped_report.scope else {
        panic!("detached batch must scope: {:?}", scoped_report.scope);
    };
    assert!(touched.len() < num_shards, "the delta lands on a strict shard subset");
    assert_eq!(global_report.scope, InvalidationScope::Global);
    assert!(
        global_report.results_invalidated > scoped_report.results_invalidated,
        "a global bump drops strictly more entries ({} vs {})",
        global_report.results_invalidated,
        scoped_report.results_invalidated
    );

    // Recovery window: replay the same stream; the scoped fleet still has
    // every untouched shard's entries.
    let (before_s, before_g) = (shard_hits(&scoped), shard_hits(&global));
    for (i, &q) in stream.iter().enumerate() {
        scoped.engine().shard(i % num_shards).query(&pool[q]);
        global.engine().shard(i % num_shards).query(&pool[q]);
    }
    let (hits_s, hits_g) = (shard_hits(&scoped) - before_s, shard_hits(&global) - before_g);
    assert!(
        hits_s > hits_g,
        "scoped invalidation must recover faster (scoped {hits_s} vs global {hits_g} hits)"
    );
}
