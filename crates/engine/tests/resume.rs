//! Same-seeker propagation resume: serving-layer parity and counters.
//!
//! The warm-propagation pool lets batched and sharded workers continue a
//! propagation already advanced for a query's seeker. These tests certify
//! the invariant that makes it safe — resumed execution is byte-identical
//! to cold execution (hits with exact bounds, candidate lists, stop
//! reasons) — across the single-query session path, the batched engine
//! and the sharded engine at 1/2/4 shards, on seeker-skewed streams; and
//! they pin the counter semantics (warm hits, resume/fallback outcomes,
//! epoch invalidation).

mod common;

use common::{assert_identical, random_instance, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{Query, S3kEngine, SearchConfig, UserId};
use s3_engine::{EngineConfig, S3Engine, ShardedEngine};
use s3_text::KeywordId;
use std::sync::Arc;

/// A seeker-skewed stream: most queries come from a couple of hot seekers
/// (the Zipf-like shape of real social-search traffic), with keywords and
/// k varied so the result cache cannot absorb the repeats.
fn skewed_queries(rng: &mut StdRng, num_users: usize, pool: &[KeywordId], n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let seeker = if rng.gen_bool(0.7) {
                UserId((i % 2) as u32) // hot pair
            } else {
                UserId(rng.gen_range(0..num_users) as u32)
            };
            let n_kw = rng.gen_range(1..3usize);
            let kws = (0..n_kw).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            Query::new(seeker, kws, rng.gen_range(1..6usize))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 30, ..ProptestConfig::default() })]

    /// A warm session (sequential resume across consecutive same-seeker
    /// queries) returns byte-identical results to cold runs on a skewed
    /// stream.
    #[test]
    fn session_resume_matches_cold_runs(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E5);
        let queries = skewed_queries(&mut rng, inst.num_users(), &pool, 14);
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let mut session = engine.session();
        for q in &queries {
            let warm = session.run(q);
            let cold = engine.run(q);
            assert_identical(&warm, &cold)?;
        }
    }

    /// The batched engine (worker-local resume + the seeker-keyed warm
    /// pool) and the sharded engine at 1/2/4 shards return byte-identical
    /// results to direct cold runs on a skewed stream, replayed twice so
    /// the second pass draws from the parked warm states.
    #[test]
    fn batched_and_sharded_resume_match_cold_runs(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let inst = Arc::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C4);
        let queries = skewed_queries(&mut rng, inst.num_users(), &pool, 10);
        // In-batch dedup collapses repeated identical queries even with
        // the cache off: only distinct ones execute a search.
        let distinct = {
            let mut keys: Vec<_> = queries
                .iter()
                .map(|q| {
                    let mut kws = q.keywords.clone();
                    kws.sort_unstable();
                    kws.dedup();
                    (q.seeker, kws, q.k)
                })
                .collect();
            keys.sort_unstable();
            keys.dedup();
            keys.len() as u64
        };

        let direct_engine = S3kEngine::new(&inst, SearchConfig::default());
        let direct: Vec<_> = queries.iter().map(|q| direct_engine.run(q)).collect();

        // Cache off: every query recomputes, so the propagation lifecycle
        // (not the result cache) is what serves the repeats.
        let serving = S3Engine::new(
            Arc::clone(&inst),
            EngineConfig::builder().threads(2).cache_capacity(0).build(),
        );
        for _pass in 0..2 {
            let got = serving.run_batch_on(&queries, 2);
            for (g, d) in got.iter().zip(direct.iter()) {
                assert_identical(g, d)?;
            }
        }

        for shards in [1usize, 2, 4] {
            let sharded = ShardedEngine::new(
                Arc::clone(&inst),
                EngineConfig::builder().threads(2).cache_capacity(0).build(),
                shards,
            );
            for _pass in 0..2 {
                let got = sharded.run_batch_on(&queries, 2);
                for (g, d) in got.iter().zip(direct.iter()) {
                    assert_identical(g, d)?;
                }
            }
            let stats = sharded.resume_stats();
            prop_assert_eq!(
                stats.cold + stats.resumed + stats.fallbacks,
                2 * distinct,
                "every executed query reports a resume outcome"
            );
        }
    }

    /// Turning `SearchConfig::resume` off forces every query cold while
    /// returning the same results.
    #[test]
    fn resume_disabled_is_equivalent(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let inst = Arc::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD15AB1E);
        let queries = skewed_queries(&mut rng, inst.num_users(), &pool, 8);
        let on = S3Engine::new(
            Arc::clone(&inst),
            EngineConfig::builder().threads(1).cache_capacity(0).build(),
        );
        let off = S3Engine::new(
            Arc::clone(&inst),
            EngineConfig::builder().search(SearchConfig { resume: false, ..SearchConfig::default() }).threads(1).cache_capacity(0).build(),
        );
        let a = on.run_batch_on(&queries, 1);
        let b = off.run_batch_on(&queries, 1);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_identical(x, y)?;
        }
        let stats = off.resume_stats();
        prop_assert_eq!(stats.resumed, 0, "resume off must never continue a propagation");
        prop_assert_eq!(stats.fallbacks, 0);
    }
}

/// Keywords of the pool that occur in the corpus (the search is not
/// `NoMatch`), so queries over them run the propagation for ≥ 1 step.
fn live_keywords(direct: &S3kEngine<'_>, pool: &[KeywordId]) -> Vec<KeywordId> {
    let live: Vec<KeywordId> = pool
        .iter()
        .copied()
        .filter(|&k| {
            direct.run(&Query::new(UserId(0), vec![k], 3)).stats.stop
                != s3_core::StopReason::NoMatch
        })
        .collect();
    assert!(live.len() >= 3, "generator must yield ≥ 3 matchable keywords");
    live
}

/// Deterministic counter semantics on a hand-built stream: a seeker whose
/// propagation was parked is served warm when it returns; a configuration
/// change (epoch bump) invalidates the parked state.
#[test]
fn warm_pool_counters_and_epoch_invalidation() {
    let (inst, pool) = random_instance(1);
    let inst = Arc::new(inst);
    let s0 = UserId(0);
    let s1 = UserId(1);
    let direct = S3kEngine::new(&inst, SearchConfig::default());
    // Keywords that actually occur (answerability is seeker-independent),
    // so every query advances the propagation at least one step.
    let live = live_keywords(&direct, &pool);
    let queries = vec![
        Query::new(s0, vec![live[0]], 3), // cold attach for s0
        Query::new(s0, vec![live[1]], 2), // same worker, same seeker: resume attempt
        Query::new(s1, vec![live[0]], 3), // park s0, cold attach for s1
        Query::new(s0, vec![live[2]], 4), // park s1, warm-hit s0 from the pool
    ];
    let engine = S3Engine::new(
        Arc::clone(&inst),
        EngineConfig::builder().threads(1).cache_capacity(0).build(),
    );
    for (got, q) in engine.run_batch_on(&queries, 1).iter().zip(&queries) {
        let cold = direct.run(q);
        assert_eq!(got.hits, cold.hits);
        assert_eq!(got.candidate_docs, cold.candidate_docs);
        assert_eq!(got.stats.stop, cold.stats.stop);
    }
    let stats = engine.resume_stats();
    assert_eq!(stats.warm_hits, 1, "s0's parked propagation must be found on return");
    assert_eq!(stats.warm_misses, 2, "first s0 and first s1 checkouts miss");
    assert!(
        stats.resumed + stats.fallbacks >= 2,
        "the repeat s0 queries must attempt a resume: {stats:?}"
    );
    assert_eq!(stats.cold + stats.resumed + stats.fallbacks, queries.len() as u64);

    // A configuration change bumps the epoch: the parked states go stale
    // and the next checkout recycles the buffers without the warmth —
    // the post-bump query must attach (and run) cold, never resume
    // pre-bump propagation work.
    engine.set_search_config(SearchConfig { epsilon: 1e-8, ..SearchConfig::default() });
    engine.query(&Query::new(s0, vec![live[0]], 3));
    let after = engine.resume_stats();
    assert_eq!(after.warm_hits, stats.warm_hits, "stale-epoch state must not hit");
    assert_eq!(after.warm_misses, stats.warm_misses + 1);
    assert_eq!(after.cold, stats.cold + 1, "the recycled stale state must start cold");
    assert_eq!(after.resumed, stats.resumed);
    assert_eq!(after.fallbacks, stats.fallbacks);
}

/// The sharded scatter shares one propagation per query across all its
/// shards; a returning seeker is served warm at the front.
#[test]
fn sharded_warm_pool_serves_returning_seekers() {
    let (inst, pool) = random_instance(2);
    let inst = Arc::new(inst);
    let s0 = UserId(0);
    let s1 = UserId(1);
    let direct = S3kEngine::new(&inst, SearchConfig::default());
    let live = live_keywords(&direct, &pool);
    let queries = vec![
        Query::new(s0, vec![live[0]], 3),
        Query::new(s1, vec![live[1]], 2),
        Query::new(s0, vec![live[2]], 4),
    ];
    let sharded = ShardedEngine::new(
        Arc::clone(&inst),
        EngineConfig::builder().threads(1).cache_capacity(0).build(),
        3,
    );
    for (got, q) in sharded.run_batch_on(&queries, 1).iter().zip(&queries) {
        let cold = direct.run(q);
        assert_eq!(got.hits, cold.hits);
        assert_eq!(got.candidate_docs, cold.candidate_docs);
        assert_eq!(got.stats.stop, cold.stats.stop);
    }
    let stats = sharded.resume_stats();
    assert_eq!(stats.warm_hits, 1, "s0 returns after s1: warm hit at the front");
    assert!(stats.resumed + stats.fallbacks >= 1, "{stats:?}");
}

/// `random_queries` (uniform seekers) through a zero-capacity warm pool:
/// worker-local consecutive resume still applies, results stay exact.
#[test]
fn zero_warm_capacity_stays_exact() {
    let (inst, pool) = random_instance(3);
    let inst = Arc::new(inst);
    let mut rng = StdRng::seed_from_u64(33);
    let queries = random_queries(&mut rng, inst.num_users(), &pool, 12);
    let engine = S3Engine::new(
        Arc::clone(&inst),
        EngineConfig::builder().threads(2).cache_capacity(0).warm_seekers(0).build(),
    );
    let direct = S3kEngine::new(&inst, SearchConfig::default());
    for (got, q) in engine.run_batch_on(&queries, 2).iter().zip(&queries) {
        let cold = direct.run(q);
        assert_eq!(got.hits, cold.hits);
        assert_eq!(got.candidate_docs, cold.candidate_docs);
        assert_eq!(got.stats.stop, cold.stats.stop);
    }
    assert_eq!(engine.resume_stats().warm_hits, 0);
}
