//! Anytime-serving acceptance properties: every answer's `QualityBound`
//! is *sound* against converged ground truth (no document the exact
//! search selects can beat an anytime answer by more than its certified
//! regret), the bound merges byte-identically across `ShardedEngine`
//! shard counts {1, 2, 4} and every fleet transport, and the overload
//! gate's contract holds: `DegradeAnytime` answers every arrival with a
//! finite certified bound while `Reject` sheds and keeps the admitted
//! answers exact.

mod common;

use common::{assert_identical, random_builder, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::{SearchConfig, StopReason};
use s3_engine::{
    EngineConfig, FleetEngine, LocalShard, OverloadConfig, OverloadPolicy, S3Engine, ServeOutcome,
    ShardHost, ShardServer, ShardedEngine,
};
use s3_wire::ShardTransport;
use std::sync::{Arc, Barrier};
use std::time::Duration;

#[derive(Clone, Copy, Debug)]
enum Transport {
    Local,
    Loopback,
    Socket,
}

/// A single-threaded, cache-less config whose searches stop after `cap`
/// explore iterations — the deterministic stand-in for a time budget.
fn capped_config(cap: u32) -> EngineConfig {
    EngineConfig::builder()
        .search(SearchConfig { max_iterations: cap, ..SearchConfig::default() })
        .threads(1)
        .cache_capacity(0)
        .warm_seekers(0)
        .build()
}

/// Spawn a fleet of `shards` servers over `transport` with an iteration
/// cap, every replica grown from `random_builder(seed)`.
fn spawn_capped_fleet(
    seed: u64,
    shards: usize,
    cap: u32,
    transport: Transport,
) -> (FleetEngine, Vec<ShardHost>) {
    let mut hosts = Vec::new();
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    for s in 0..shards {
        let server = ShardServer::new(random_builder(seed).0, capped_config(cap), shards, s);
        match transport {
            Transport::Local => transports.push(Box::new(LocalShard::new(server))),
            Transport::Loopback => {
                let (conn, host) = server.spawn_loopback();
                transports.push(Box::new(conn));
                hosts.push(host);
            }
            Transport::Socket => {
                let path = std::env::temp_dir()
                    .join(format!("s3-anytime-{}-{seed:x}-{cap}-{s}.sock", std::process::id()));
                let (conn, host) = server.spawn_unix(&path).expect("bind unix socket");
                transports.push(Box::new(conn));
                hosts.push(host);
            }
        }
    }
    (FleetEngine::new(random_builder(seed).0, capped_config(cap), transports), hosts)
}

fn shutdown(fleet: FleetEngine, hosts: Vec<ShardHost>) {
    fleet.shutdown().expect("shutdown");
    for host in hosts {
        host.join().expect("shard server exits cleanly");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Bound soundness against converged ground truth. For every query
    /// and iteration cap: hit intervals stay ordered, `floor` anchors at
    /// the weakest reported hit, exact answers match the converged
    /// reference byte-for-byte, and for anytime stops every converged
    /// hit missing from the answer (with no selected vertical neighbor
    /// standing in for it) provably scores at most `rival` — so observed
    /// regret can never exceed certified regret.
    #[test]
    fn certified_regret_bounds_every_converged_hit(seed in 0u64..2000) {
        let (builder, pool) = random_builder(seed);
        let inst = Arc::new(builder.snapshot());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA11);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 6);
        let full = S3Engine::new(Arc::clone(&inst), capped_config(u32::MAX));
        let forest = inst.forest();

        for cap in [0u32, 1, 2, 4] {
            let capped = S3Engine::new(Arc::clone(&inst), capped_config(cap));
            for q in &queries {
                let truth = full.query(q);
                prop_assert!(matches!(
                    truth.stats.stop,
                    StopReason::Converged | StopReason::NoMatch
                ));
                prop_assert!(truth.stats.quality.exact);

                let any = capped.query(q);
                let quality = any.stats.quality;
                for h in &any.hits {
                    prop_assert!(h.lower <= h.upper + 1e-9);
                }
                if !any.hits.is_empty() {
                    let floor = any.hits.iter().map(|h| h.lower).fold(f64::INFINITY, f64::min);
                    prop_assert!((quality.floor - floor).abs() <= 1e-12);
                }
                match any.stats.stop {
                    StopReason::Converged | StopReason::NoMatch => {
                        prop_assert!(quality.exact);
                        prop_assert_eq!(quality.regret, 0.0);
                        assert_identical(&any, &truth)?;
                    }
                    StopReason::MaxIterations | StopReason::TimeBudget => {
                        prop_assert!(!quality.exact);
                        prop_assert!(quality.regret.is_finite() && quality.regret >= 0.0);
                        prop_assert!(quality.rival >= quality.regret);
                        for t in &truth.hits {
                            let present = any.hits.iter().any(|h| h.doc == t.doc);
                            let neighbored = any
                                .hits
                                .iter()
                                .any(|h| forest.is_vertical_neighbor(h.doc, t.doc));
                            if !present && !neighbored {
                                prop_assert!(
                                    t.lower <= quality.rival + 1e-9,
                                    "converged hit {:?} (lower {}) beats certified rival {} \
                                     at cap {}",
                                    t.doc, t.lower, quality.rival, cap
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// The certified bound merges exactly: under iteration caps that
    /// force anytime stops, `ShardedEngine` at {1, 2, 4} shards and the
    /// fleet over every transport report the same hits, stop reason and
    /// `QualityBound` as the unsharded engine.
    #[test]
    fn anytime_quality_is_identical_across_sharding_and_transports(seed in 0u64..1500) {
        let (builder, pool) = random_builder(seed);
        let inst = Arc::new(builder.snapshot());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB22);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 5);

        for cap in [1u32, 3] {
            let reference = S3Engine::new(Arc::clone(&inst), capped_config(cap));
            let expected: Vec<_> = queries.iter().map(|q| reference.query(q)).collect();

            for shards in [1usize, 2, 4] {
                let sharded = ShardedEngine::new(Arc::clone(&inst), capped_config(cap), shards);
                for (q, want) in queries.iter().zip(&expected) {
                    let got = sharded.query(q);
                    assert_identical(&got, want)?;
                    prop_assert_eq!(got.stats.quality, want.stats.quality);
                }
            }
            for transport in [Transport::Local, Transport::Loopback, Transport::Socket] {
                let (mut fleet, hosts) = spawn_capped_fleet(seed, 2, cap, transport);
                for (q, want) in queries.iter().zip(&expected) {
                    let got = fleet.query(q).expect("fleet query");
                    assert_identical(&got, want)?;
                    prop_assert_eq!(got.stats.quality, want.stats.quality);
                }
                shutdown(fleet, hosts);
            }
            let (mut fleet, hosts) = spawn_capped_fleet(seed, 4, cap, Transport::Local);
            for (q, want) in queries.iter().zip(&expected) {
                let got = fleet.query(q).expect("fleet query");
                assert_identical(&got, want)?;
                prop_assert_eq!(got.stats.quality, want.stats.quality);
            }
            shutdown(fleet, hosts);
        }
    }
}

/// With no overload policy and no deadline, `serve` is `query` plus
/// bookkeeping: byte-identical results (including the quality bound) on
/// every engine, with every arrival admitted and nothing shed.
#[test]
fn serve_without_overload_or_deadline_matches_query() {
    let (builder, pool) = random_builder(7);
    let inst = Arc::new(builder.snapshot());
    let mut rng = StdRng::seed_from_u64(0x5E54);
    let queries = random_queries(&mut rng, inst.num_users(), &pool, 8);

    let reference = S3Engine::new(Arc::clone(&inst), capped_config(u32::MAX));
    let expected: Vec<_> = queries.iter().map(|q| reference.query(q)).collect();

    let single = S3Engine::new(Arc::clone(&inst), capped_config(u32::MAX));
    let sharded = ShardedEngine::new(Arc::clone(&inst), capped_config(u32::MAX), 2);
    let (mut fleet, hosts) = spawn_capped_fleet(7, 2, u32::MAX, Transport::Local);

    for (q, want) in queries.iter().zip(&expected) {
        for got in [
            single.serve(q, None),
            sharded.serve(q, None),
            fleet.serve(q, None).expect("fleet serve"),
        ] {
            let got = got.answer().expect("ungated serve always answers").clone();
            assert_eq!(got.hits, want.hits);
            assert_eq!(got.stats.stop, want.stats.stop);
            assert_eq!(got.stats.quality, want.stats.quality);
            assert_eq!(got.candidate_docs, want.candidate_docs);
        }
    }
    for stats in [single.load_stats(), sharded.load_stats(), fleet.load_stats()] {
        assert_eq!(stats.admitted as usize, queries.len());
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.degraded, 0);
    }
    shutdown(fleet, hosts);
}

/// A deadline that has already passed when the query reaches the engine
/// is answered with `Expired` before any search work, and counted.
#[test]
fn spent_deadline_expires_before_any_search_work() {
    let (builder, pool) = random_builder(3);
    let inst = Arc::new(builder.snapshot());
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    let queries = random_queries(&mut rng, inst.num_users(), &pool, 1);

    let engine = S3Engine::new(Arc::clone(&inst), capped_config(u32::MAX));
    assert!(matches!(engine.serve(&queries[0], Some(Duration::ZERO)), ServeOutcome::Expired));
    let stats = engine.load_stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.shed, 0);

    let (mut fleet, hosts) = spawn_capped_fleet(3, 2, u32::MAX, Transport::Local);
    assert!(matches!(
        fleet.serve(&queries[0], Some(Duration::ZERO)).expect("fleet serve"),
        ServeOutcome::Expired
    ));
    assert_eq!(fleet.load_stats().expired, 1);
    shutdown(fleet, hosts);
}

/// Only provably exact answers enter the result cache: a zero time
/// budget degrades every matching query, and repeats of the same query
/// keep reaching the gate (no stale best-effort answer is replayed),
/// while an unbudgeted engine serves the repeat from cache.
#[test]
fn only_exact_answers_enter_the_result_cache() {
    let (builder, pool) = random_builder(5);
    let inst = Arc::new(builder.snapshot());
    let mut rng = StdRng::seed_from_u64(0xCAC4E);
    let queries = random_queries(&mut rng, inst.num_users(), &pool, 24);

    let budgeted = S3Engine::new(
        Arc::clone(&inst),
        EngineConfig::builder()
            .search(SearchConfig { time_budget: Some(Duration::ZERO), ..SearchConfig::default() })
            .threads(1)
            .cache_capacity(16)
            .warm_seekers(2)
            .build(),
    );
    let degraded = queries
        .iter()
        .find(|q| {
            let out = budgeted.serve(q, None);
            !out.answer().expect("budgeted serve answers").stats.quality.exact
        })
        .expect("some query overruns a zero budget");

    let before = budgeted.load_stats().admitted;
    for _ in 0..3 {
        let out = budgeted.serve(degraded, None);
        let answer = out.answer().expect("budgeted serve answers");
        assert_eq!(answer.stats.stop, StopReason::TimeBudget);
        assert!(!answer.stats.quality.exact);
        assert!(answer.stats.quality.regret.is_finite());
    }
    // Every repeat was admitted through the gate — none came from cache.
    assert_eq!(budgeted.load_stats().admitted, before + 3);

    let unbudgeted = S3Engine::new(
        Arc::clone(&inst),
        EngineConfig::builder().threads(1).cache_capacity(16).warm_seekers(2).build(),
    );
    for _ in 0..3 {
        let out = unbudgeted.serve(degraded, None);
        assert!(out.answer().expect("unbudgeted serve answers").stats.quality.exact);
    }
    // The exact answer was cached after the first miss: later repeats
    // never reached the gate.
    assert_eq!(unbudgeted.load_stats().admitted, 1);
}

/// Hammer a gated engine from concurrent clients and return every
/// outcome plus the final load counters.
fn hammer(policy: OverloadPolicy) -> (Vec<ServeOutcome>, s3_engine::LoadStats) {
    const CLIENTS: usize = 4;
    let (builder, pool) = random_builder(11);
    let inst = Arc::new(builder.snapshot());
    let engine = S3Engine::new(
        Arc::clone(&inst),
        EngineConfig::builder()
            .threads(1)
            .cache_capacity(0)
            .warm_seekers(0)
            .overload(Some(OverloadConfig { max_inflight: 1, policy }))
            .build(),
    );
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let queries = random_queries(&mut rng, inst.num_users(), &pool, 16);
    let barrier = Barrier::new(CLIENTS);
    let outcomes = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    queries.iter().map(|q| engine.serve(q, None)).collect::<Vec<_>>()
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect::<Vec<_>>()
    });
    (outcomes, engine.load_stats())
}

/// `DegradeAnytime` never sheds: every arrival past capacity is still
/// answered, under a floor budget, with a finite certified bound.
#[test]
fn degrade_anytime_answers_every_arrival_with_a_finite_bound() {
    let (outcomes, stats) = hammer(OverloadPolicy::DegradeAnytime { floor_budget: Duration::ZERO });
    assert_eq!(stats.shed, 0, "DegradeAnytime never sheds ({stats})");
    assert_eq!(stats.admitted as usize, outcomes.len());
    for out in &outcomes {
        let answer = out.answer().expect("every arrival is answered");
        let quality = answer.stats.quality;
        assert!(quality.regret.is_finite() && quality.regret >= 0.0);
        if !quality.exact {
            assert!(matches!(
                answer.stats.stop,
                StopReason::TimeBudget | StopReason::MaxIterations
            ));
        }
    }
}

/// `Reject` sheds arrivals past capacity instead of degrading them, and
/// every answer it does give keeps the full budget — so stays exact.
#[test]
fn reject_sheds_past_capacity_and_keeps_admitted_answers_exact() {
    let (outcomes, stats) = hammer(OverloadPolicy::Reject);
    assert_eq!(stats.admitted + stats.shed, outcomes.len() as u64);
    let shed = outcomes.iter().filter(|out| matches!(out, ServeOutcome::Shed)).count();
    assert_eq!(shed as u64, stats.shed);
    for out in &outcomes {
        if let Some(answer) = out.answer() {
            assert!(answer.stats.quality.exact, "admitted queries keep the full budget");
        }
    }
}
