//! Serving-layer parity: batched, cached and warm-scratch execution must
//! be result-identical to cold `S3kEngine::run` calls — same hits in the
//! same order with the same certified bounds, same candidate set, same
//! `StopReason` — and a reused scratch must never leak state between
//! queries.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{
    InstanceBuilder, Query, S3Instance, S3kEngine, SearchConfig, TagSubject, TopKResult, UserId,
};
use s3_doc::DocBuilder;
use s3_engine::{EngineConfig, S3Engine};
use s3_text::{KeywordId, Language};
use std::sync::Arc;

/// Seeded random instance exercising every data-model feature: multi-node
/// documents, an ontology bridge, keyword tags, endorsements, comments.
fn random_instance(seed: u64) -> (S3Instance, Vec<KeywordId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(Language::English);

    // Ontology: classes c0..c1 with specializations s0..s1.
    let mut pool = Vec::new();
    let mut class_kws = Vec::new();
    for i in 0..2 {
        let class = b.intern_entity_keyword(&format!("ex:c{i}"));
        let spec = b.intern_entity_keyword(&format!("ex:s{i}"));
        let (cu, su) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern(&format!("ex:c{i}")), d.intern(&format!("ex:s{i}")))
        };
        b.rdf_mut().insert(su, s3_rdf::vocabulary::RDFS_SUBCLASS_OF, s3_rdf::Term::Uri(cu), 1.0);
        class_kws.push(class);
        pool.push(spec);
    }
    for i in 0..6 {
        pool.push(b.analyzer_mut().vocabulary_mut().intern(&format!("w{i}")));
    }

    let users: Vec<UserId> = (0..5).map(|_| b.add_user()).collect();
    for _ in 0..10 {
        let x = rng.gen_range(0..users.len());
        let y = rng.gen_range(0..users.len());
        if x != y {
            b.add_social_edge(users[x], users[y], rng.gen_range(0.1..=1.0));
        }
    }

    let mut roots = Vec::new();
    for d in 0..7 {
        let mut doc = DocBuilder::new("doc");
        let mut targets = vec![doc.root()];
        for _ in 0..rng.gen_range(0..3usize) {
            let parent = targets[rng.gen_range(0..targets.len())];
            targets.push(doc.child(parent, "sec"));
        }
        for &node in &targets {
            let kws: Vec<KeywordId> =
                (0..rng.gen_range(0..4usize)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            for &k in &kws {
                b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
            }
            doc.add_content(node, kws);
        }
        let poster =
            if rng.gen_bool(0.9) { Some(users[rng.gen_range(0..users.len())]) } else { None };
        let tree = b.add_document(doc, poster);
        if d > 0 && rng.gen_bool(0.4) {
            let target = roots[rng.gen_range(0..roots.len())];
            b.add_comment_edge(tree, target);
        }
        roots.push(b.doc_root(tree));
    }

    for _ in 0..5 {
        if rng.gen_bool(0.6) {
            let subject = TagSubject::Frag(roots[rng.gen_range(0..roots.len())]);
            let author = users[rng.gen_range(0..users.len())];
            let keyword = if rng.gen_bool(0.7) {
                let k = pool[rng.gen_range(0..pool.len())];
                b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
                Some(k)
            } else {
                None
            };
            b.add_tag(subject, author, keyword);
        }
    }

    let mut queryable = class_kws;
    queryable.extend(pool);
    (b.build(), queryable)
}

/// Random query workload over the instance's keyword pool.
fn random_queries(rng: &mut StdRng, num_users: usize, pool: &[KeywordId], n: usize) -> Vec<Query> {
    (0..n)
        .map(|_| {
            let seeker = UserId(rng.gen_range(0..num_users) as u32);
            let n_kw = rng.gen_range(1..3usize);
            let kws = (0..n_kw).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            Query::new(seeker, kws, rng.gen_range(1..5usize))
        })
        .collect()
}

fn assert_identical(a: &TopKResult, b: &TopKResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.stats.stop, b.stats.stop);
    prop_assert_eq!(&a.candidate_docs, &b.candidate_docs);
    prop_assert_eq!(a.hits.len(), b.hits.len());
    for (x, y) in a.hits.iter().zip(b.hits.iter()) {
        prop_assert_eq!(x.doc, y.doc);
        prop_assert!(x.lower == y.lower, "lower {} != {}", x.lower, y.lower);
        prop_assert!(x.upper == y.upper, "upper {} != {}", x.upper, y.upper);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Batched execution on ≥4 threads, and the warm cached re-run, both
    /// return byte-identical results to direct cold S3kEngine runs.
    #[test]
    fn batched_and_cached_match_direct_runs(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE6617E);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 12);

        let direct_engine = S3kEngine::new(&inst, SearchConfig::default());
        let direct: Vec<TopKResult> =
            queries.iter().map(|q| direct_engine.run(q)).collect();

        let serving = S3Engine::new(
            Arc::new(inst),
            EngineConfig { threads: 4, cache_capacity: 64, ..EngineConfig::default() },
        );
        let cold = serving.run_batch_on(&queries, 4);
        for (c, d) in cold.iter().zip(direct.iter()) {
            assert_identical(c, d)?;
        }
        let warm = serving.run_batch_on(&queries, 4);
        for (w, d) in warm.iter().zip(direct.iter()) {
            assert_identical(w, d)?;
        }
        let stats = serving.cache_stats();
        prop_assert!(stats.hits >= queries.len() as u64, "warm batch must be cache-served");
    }

    /// A reused scratch/session never leaks state between queries: every
    /// warm answer equals the cold answer for the same query, regardless
    /// of what ran before it in the session.
    #[test]
    fn session_scratch_never_leaks(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C1A7C4);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 16);
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let mut session = engine.session();
        for q in &queries {
            let warm = session.run(q);
            let cold = engine.run(q);
            assert_identical(&warm, &cold)?;
        }
    }
}
