//! Serving-layer parity: batched, cached and warm-scratch execution must
//! be result-identical to cold `S3kEngine::run` calls — same hits in the
//! same order with the same certified bounds, same candidate set, same
//! `StopReason` — and a reused scratch must never leak state between
//! queries.

mod common;

use common::{assert_identical, random_instance, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::{S3kEngine, SearchConfig, TopKResult};
use s3_engine::{CachePolicy, EngineConfig, S3Engine};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Batched execution on ≥4 threads, and the warm cached re-run, both
    /// return byte-identical results to direct cold S3kEngine runs.
    #[test]
    fn batched_and_cached_match_direct_runs(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE6617E);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 12);

        let direct_engine = S3kEngine::new(&inst, SearchConfig::default());
        let direct: Vec<TopKResult> =
            queries.iter().map(|q| direct_engine.run(q)).collect();

        let serving = S3Engine::new(
            Arc::new(inst),
            EngineConfig::builder().threads(4).cache_capacity(64).build(),
        );
        let cold = serving.run_batch_on(&queries, 4);
        for (c, d) in cold.iter().zip(direct.iter()) {
            assert_identical(c, d)?;
        }
        let warm = serving.run_batch_on(&queries, 4);
        for (w, d) in warm.iter().zip(direct.iter()) {
            assert_identical(w, d)?;
        }
        let stats = serving.cache_stats();
        prop_assert!(stats.hits >= queries.len() as u64, "warm batch must be cache-served");
    }

    /// The cache policy and TTL only ever change *whether* a lookup hits,
    /// never *what* is returned: under every policy/TTL configuration —
    /// including a capacity small enough to force admission contests and
    /// a TTL of zero (nothing is ever served from cache) — batched
    /// execution stays byte-identical to direct cold runs.
    #[test]
    fn cache_policy_and_ttl_preserve_results(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let inst = Arc::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xCAC4E);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 12);

        let direct_engine = S3kEngine::new(&inst, SearchConfig::default());
        let direct: Vec<TopKResult> =
            queries.iter().map(|q| direct_engine.run(q)).collect();

        let configs = [
            (CachePolicy::tiny_lfu(), None),
            (CachePolicy::tiny_lfu(), Some(Duration::ZERO)),
            (CachePolicy::TinyLfu { window_frac: 0.5, protected_frac: 0.5 }, None),
            (CachePolicy::Lru, Some(Duration::ZERO)),
        ];
        for (cache_policy, cache_ttl) in configs {
            let serving = S3Engine::new(
                Arc::clone(&inst),
                EngineConfig::builder()
                    .threads(4)
                    // Small enough that the admission window overflows and
                    // the filter actually contests entries.
                    .cache_capacity(4)
                    .cache_policy(cache_policy)
                    .cache_ttl(cache_ttl)
                    .build(),
            );
            for round in 0..2 {
                let results = serving.run_batch_on(&queries, 4);
                for (r, d) in results.iter().zip(direct.iter()) {
                    assert_identical(r, d)?;
                }
                prop_assert!(round == 0 || serving.cache_stats().misses > 0);
            }
            if cache_ttl == Some(Duration::ZERO) {
                prop_assert_eq!(
                    serving.cache_stats().hits, 0,
                    "a TTL-0 cache must never serve ({:?})", cache_policy
                );
            }
        }
    }

    /// A reused scratch/session never leaks state between queries: every
    /// warm answer equals the cold answer for the same query, regardless
    /// of what ran before it in the session.
    #[test]
    fn session_scratch_never_leaks(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5C1A7C4);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 16);
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let mut session = engine.session();
        for q in &queries {
            let warm = session.run(q);
            let cold = engine.run(q);
            assert_identical(&warm, &cold)?;
        }
    }
}
