//! Live-ingestion correctness: after **any** sequence of ingest batches,
//! the live engines answer byte-identically to a cold
//! `InstanceBuilder::snapshot` of the same final data — on the unsharded
//! path and on sharded `{1, 2, 4}` fleets (scoped or global invalidation
//! included; the front cache recomputes on the post-ingest snapshot either
//! way).
//!
//! The batches come from the replayable update-workload generator
//! (`s3_datasets::workload::live_workload`), seeded per proptest case and
//! mixing detached batches (new users/docs/tags among themselves) with
//! attached ones (social edges from existing users, tags and comments on
//! existing documents, component merges).

mod common;

use proptest::prelude::*;
use s3_core::{InstanceBuilder, Query, SearchConfig};
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_engine::{CachePolicy, EngineConfig, LiveEngine, LiveShardedEngine};
use s3_text::Language;
use std::time::Duration;

/// A small deterministic base corpus: a handful of users, documents and
/// tags over the same stem-stable word pool the generator uses.
fn base_builder(seed: u64) -> InstanceBuilder {
    let mut b = InstanceBuilder::new(Language::English);
    let users: Vec<_> = (0..4).map(|_| b.add_user()).collect();
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33) as usize
    };
    for (i, &u) in users.iter().enumerate() {
        let v = users[(i + 1 + next() % 3) % users.len()];
        if u != v {
            b.add_social_edge(u, v, 0.2 + 0.1 * ((next() % 8) as f64));
        }
    }
    let words = ["alpha", "beta", "gamma", "delta", "omega"];
    for i in 0..3 {
        let text = format!("{} {}", words[next() % words.len()], words[next() % words.len()]);
        let kws = b.analyze(&text);
        let mut doc = s3_doc::DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        let t = b.add_document(doc, Some(users[i % users.len()]));
        if next() % 2 == 0 {
            let root = b.doc_root(t);
            b.add_tag(s3_core::TagSubject::Frag(root), users[next() % users.len()], None);
        }
    }
    b
}

fn engine_builder() -> s3_engine::EngineConfigBuilder {
    EngineConfig::builder().threads(2).cache_capacity(128).warm_seekers(8)
}

fn engine_config() -> EngineConfig {
    engine_builder().build()
}

/// Per-fleet cache configurations: the live paths must stay
/// byte-identical to a cold rebuild under every admission policy and TTL
/// — TinyLFU with a churn-forcing capacity, a TTL that never serves, and
/// one that never expires.
fn policy_config(arm: usize) -> EngineConfig {
    let (cache_policy, cache_ttl, cache_capacity) = match arm {
        0 => (CachePolicy::Lru, Some(Duration::ZERO), 128),
        1 => (CachePolicy::tiny_lfu(), None, 8),
        _ => (
            CachePolicy::TinyLfu { window_frac: 0.5, protected_frac: 0.5 },
            Some(Duration::from_secs(3600)),
            128,
        ),
    };
    engine_builder()
        .cache_policy(cache_policy)
        .cache_ttl(cache_ttl)
        .cache_capacity(cache_capacity)
        .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The acceptance property: live == cold rebuild, unsharded and
    /// sharded {1, 2, 4}, for arbitrary batch sequences.
    #[test]
    fn live_engines_match_cold_rebuild(seed in 0u64..1000) {
        // One builder replica per engine (each live engine retains and
        // grows its own), plus one for the cold reference.
        let flat = LiveEngine::new(
            base_builder(seed),
            engine_builder().cache_policy(CachePolicy::tiny_lfu()).build(),
        );
        let sharded: Vec<LiveShardedEngine> = [1usize, 2, 4]
            .into_iter()
            .enumerate()
            .map(|(arm, n)| LiveShardedEngine::new(base_builder(seed), policy_config(arm), n))
            .collect();
        let mut reference = base_builder(seed);
        let mut reference_prev = reference.snapshot();

        let config = LiveWorkloadConfig {
            batches: 3,
            users_per_batch: 2,
            docs_per_batch: 2,
            tags_per_batch: 2,
            comments_per_batch: 1,
            queries_per_batch: 6,
            k: 4,
            attach_probability: 0.25 + 0.5 * ((seed % 3) as f64 / 2.0),
            seed: seed ^ 0xF00D,
            ..LiveWorkloadConfig::default()
        };
        let steps = live_workload(&flat.instance(), &config);

        for step in &steps {
            let report = flat.ingest(&step.batch);
            for engine in &sharded {
                let r = engine.ingest(&step.batch);
                prop_assert_eq!(r.summary.detached, report.summary.detached);
            }
            // The cold reference replays the same batch (apply keeps the
            // builder growing) but is judged by a full cold snapshot.
            let (next, _) = reference.apply(&reference_prev, &step.batch);
            reference_prev = next;
            let cold = reference.snapshot();
            let cold_config = SearchConfig::default();

            for spec in &step.queries {
                let kws = cold.query_keywords(&spec.text);
                let query = Query::new(spec.seeker, kws, spec.k);
                let expected = cold.search(&query, &cold_config);
                // Run twice: the second answer exercises the cache path.
                for _ in 0..2 {
                    let got = flat.query(&query);
                    prop_assert_eq!(&got.hits, &expected.hits, "unsharded vs cold");
                    prop_assert_eq!(&got.candidate_docs, &expected.candidate_docs);
                    prop_assert_eq!(got.stats.stop, expected.stats.stop);
                }
                for engine in &sharded {
                    let got = engine.query(&query);
                    prop_assert_eq!(
                        &got.hits,
                        &expected.hits,
                        "sharded({}) vs cold",
                        engine.engine().num_shards()
                    );
                    prop_assert_eq!(&got.candidate_docs, &expected.candidate_docs);
                    prop_assert_eq!(got.stats.stop, expected.stats.stop);
                }
            }
        }
    }

    /// Detached-only sequences keep the scoped path on: every ingest must
    /// scope (never bump globally), results must still match cold, and
    /// untouched shards accumulate zero invalidations.
    #[test]
    fn detached_sequences_stay_scoped_and_exact(seed in 0u64..1000) {
        let live = LiveShardedEngine::new(base_builder(seed), engine_config(), 2);
        let mut reference = base_builder(seed);
        let mut reference_prev = reference.snapshot();

        let config = LiveWorkloadConfig {
            batches: 3,
            attach_probability: 0.0,
            queries_per_batch: 4,
            seed: seed ^ 0xD157,
            ..LiveWorkloadConfig::default()
        };
        for step in live_workload(&live.instance(), &config) {
            let report = live.ingest(&step.batch);
            prop_assert!(report.summary.detached);
            prop_assert!(matches!(report.scope, s3_engine::InvalidationScope::Scoped(_)));
            let (next, _) = reference.apply(&reference_prev, &step.batch);
            reference_prev = next;
            let cold = reference.snapshot();
            for spec in &step.queries {
                let kws = cold.query_keywords(&spec.text);
                let query = Query::new(spec.seeker, kws, spec.k);
                let expected = cold.search(&query, &SearchConfig::default());
                let got = live.query(&query);
                prop_assert_eq!(&got.hits, &expected.hits);
            }
        }
    }
}
