//! The unified-API acceptance property: every engine type — frozen,
//! sharded, live, live-sharded and cross-process fleet — drives through
//! one `Box<dyn Engine>` harness and answers byte-identically to a cold
//! `S3kEngine` run of the same data; the ingest-capable trio additionally
//! drives through `Box<dyn Ingest>` and stays identical to a cold rebuild
//! after every shipped batch. The harness never names a concrete engine
//! past construction: it is the proof the trait surface is sufficient.

mod common;

use common::{assert_identical, random_builder, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::{Query, S3kEngine, SearchConfig};
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_engine::{
    Engine, EngineConfig, FleetEngine, Ingest, LiveEngine, LiveShardedEngine, LocalShard, S3Engine,
    ShardServer, ShardedEngine,
};
use s3_wire::ShardTransport;
use std::sync::Arc;

fn api_config() -> EngineConfig {
    // Cache off so `serve` reaches the admission gate on every call: the
    // harness asserts the unified `stats()` counters move in lockstep.
    EngineConfig::builder().threads(1).cache_capacity(0).warm_seekers(0).build()
}

/// A 2-shard fleet over in-process `LocalShard` transports, every
/// replica grown from `random_builder(seed)`.
fn local_fleet(seed: u64) -> FleetEngine {
    let shards = 2;
    let transports: Vec<Box<dyn ShardTransport>> = (0..shards)
        .map(|s| {
            let server = ShardServer::new(random_builder(seed).0, api_config(), shards, s);
            Box::new(LocalShard::new(server)) as Box<dyn ShardTransport>
        })
        .collect();
    FleetEngine::new(random_builder(seed).0, api_config(), transports)
}

/// All five engine types behind the one trait object the harness drives.
fn all_engines(seed: u64) -> Vec<(&'static str, Box<dyn Engine>)> {
    let inst = Arc::new(random_builder(seed).0.snapshot());
    vec![
        ("s3", Box::new(S3Engine::new(Arc::clone(&inst), api_config()))),
        ("sharded", Box::new(ShardedEngine::new(Arc::clone(&inst), api_config(), 2))),
        ("live", Box::new(LiveEngine::new(random_builder(seed).0, api_config()))),
        ("live-sharded", Box::new(LiveShardedEngine::new(random_builder(seed).0, api_config(), 2))),
        ("fleet", Box::new(local_fleet(seed))),
    ]
}

/// The ingest-capable trio behind the `Ingest` subtrait.
fn ingest_engines(seed: u64) -> Vec<(&'static str, Box<dyn Ingest>)> {
    vec![
        ("live", Box::new(LiveEngine::new(random_builder(seed).0, api_config()))),
        ("live-sharded", Box::new(LiveShardedEngine::new(random_builder(seed).0, api_config(), 2))),
        ("fleet", Box::new(local_fleet(seed))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// `query`, `serve` and `stats` through `dyn Engine`: every engine
    /// type answers byte-identically to a cold `S3kEngine` run, gated
    /// serving included, and the consolidated load counters agree.
    #[test]
    fn every_engine_type_answers_identically_through_the_trait(seed in 0u64..3000) {
        let (builder, pool) = random_builder(seed);
        let inst = builder.snapshot();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB1);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 8);

        let direct = S3kEngine::new(&inst, SearchConfig::default());
        let expected: Vec<_> = queries.iter().map(|q| direct.run(q)).collect();

        for (label, mut engine) in all_engines(seed) {
            for (q, want) in queries.iter().zip(&expected) {
                let got = engine.query(q).expect("trait query");
                prop_assert_eq!(&got.hits, &want.hits, "{} query vs cold", label);
                assert_identical(&got, want)?;

                let outcome = engine.serve(q, None).expect("trait serve");
                let served = outcome.answer().unwrap_or_else(|| panic!("{label} shed ungated"));
                assert_identical(served, want)?;
            }
            let stats = engine.stats();
            prop_assert_eq!(
                stats.load.admitted,
                queries.len() as u64,
                "{} load counters through the trait", label
            );
            prop_assert_eq!(stats.load.shed, 0);
        }
    }

    /// `ingest` through `dyn Ingest`: after every batch, each
    /// ingest-capable engine keeps answering byte-identically to a cold
    /// rebuild of the same grown data.
    #[test]
    fn ingest_capable_engines_match_a_cold_rebuild_through_the_trait(seed in 0u64..1000) {
        let steps = {
            let base = random_builder(seed).0.snapshot();
            live_workload(&base, &LiveWorkloadConfig {
                batches: 2,
                queries_per_batch: 4,
                attach_probability: 0.25 + 0.5 * ((seed % 3) as f64 / 2.0),
                seed: seed ^ 0xF00D,
                ..LiveWorkloadConfig::default()
            })
        };

        for (label, mut engine) in ingest_engines(seed) {
            let (mut reference, _) = random_builder(seed);
            let mut prev = reference.snapshot();
            for step in &steps {
                let summary = engine.ingest(&step.batch).expect("trait ingest");
                let (next, want) = reference.apply(&prev, &step.batch);
                prev = next;
                prop_assert_eq!(summary.detached, want.detached, "{} summary", label);
                prop_assert_eq!(summary.new_users, want.new_users);

                let cold = reference.snapshot();
                for spec in &step.queries {
                    let q = Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
                    let got = engine.query(&q).expect("trait query");
                    assert_identical(&got, &cold.search(&q, &SearchConfig::default()))?;
                }
            }
        }
    }
}
