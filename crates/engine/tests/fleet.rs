//! The cross-process acceptance property: for every query, the fleet —
//! shard servers behind the `Local`, `Loopback` and unix-`Socket`
//! transports — returns byte-identical results (hits with exact bounds,
//! admission-ordered candidate lists, stop reason) to the in-process
//! `ShardedEngine` with the same shard count, for shard counts {1, 2, 4},
//! **including after shipped `IngestBatch`es** (every replica applies the
//! same wire-shipped batch; the cold reference rebuilds from scratch).

mod common;

use common::{assert_identical, random_builder, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::Query;
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_engine::{EngineConfig, FleetEngine, LocalShard, ShardHost, ShardServer, ShardedEngine};
use s3_wire::ShardTransport;
use std::sync::Arc;

#[derive(Clone, Copy, Debug)]
enum Transport {
    Local,
    Loopback,
    Socket,
}

fn fleet_config() -> EngineConfig {
    EngineConfig::builder().threads(1).cache_capacity(0).warm_seekers(0).build()
}

/// Spawn a fleet of `shards` servers over `transport`, every replica
/// grown from `random_builder(seed)`.
fn spawn_fleet(seed: u64, shards: usize, transport: Transport) -> (FleetEngine, Vec<ShardHost>) {
    let mut hosts = Vec::new();
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    for s in 0..shards {
        let server = ShardServer::new(random_builder(seed).0, fleet_config(), shards, s);
        match transport {
            Transport::Local => transports.push(Box::new(LocalShard::new(server))),
            Transport::Loopback => {
                let (conn, host) = server.spawn_loopback();
                transports.push(Box::new(conn));
                hosts.push(host);
            }
            Transport::Socket => {
                let path = std::env::temp_dir()
                    .join(format!("s3-fleet-{}-{seed:x}-{shards}-{s}.sock", std::process::id()));
                let (conn, host) = server.spawn_unix(&path).expect("bind unix socket");
                transports.push(Box::new(conn));
                hosts.push(host);
            }
        }
    }
    (FleetEngine::new(random_builder(seed).0, fleet_config(), transports), hosts)
}

fn shutdown(fleet: FleetEngine, hosts: Vec<ShardHost>) {
    fleet.shutdown().expect("shutdown");
    for host in hosts {
        host.join().expect("shard server exits cleanly");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Query-only byte-identity over every transport and shard count.
    #[test]
    fn fleet_matches_sharded_engine(seed in 0u64..3000) {
        let (builder, pool) = random_builder(seed);
        let inst = Arc::new(builder.snapshot());
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE7);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 8);

        for shards in [1usize, 2, 4] {
            let reference = ShardedEngine::new(Arc::clone(&inst), fleet_config(), shards);
            let expected: Vec<_> = queries.iter().map(|q| reference.query(q)).collect();
            for transport in [Transport::Local, Transport::Loopback, Transport::Socket] {
                let (mut fleet, hosts) = spawn_fleet(seed, shards, transport);
                prop_assert_eq!(fleet.num_shards(), shards);
                for (q, want) in queries.iter().zip(&expected) {
                    let got = fleet.query(q).expect("fleet query");
                    assert_identical(&got, want)?;
                }
                // Repeat a prefix: server-side warm propagation state must
                // reset cleanly between queries.
                for (q, want) in queries.iter().zip(&expected).take(3) {
                    assert_identical(&fleet.query(q).expect("fleet requery"), want)?;
                }
                shutdown(fleet, hosts);
            }
        }
    }

    /// Ingest byte-identity: ship batches over the wire to every replica,
    /// compare post-ingest answers against an in-process `ShardedEngine`
    /// rebuilt cold from the same batches.
    #[test]
    fn fleet_matches_after_shipped_ingest(seed in 0u64..1000) {
        let base = random_builder(seed).0.snapshot();
        let config = LiveWorkloadConfig {
            batches: 2,
            queries_per_batch: 5,
            attach_probability: 0.25 + 0.5 * ((seed % 3) as f64 / 2.0),
            seed: seed ^ 0xF00D,
            ..LiveWorkloadConfig::default()
        };
        let steps = live_workload(&base, &config);

        for shards in [1usize, 2, 4] {
            let transport = match shards {
                1 => Transport::Local,
                2 => Transport::Loopback,
                _ => Transport::Socket,
            };
            let (mut fleet, hosts) = spawn_fleet(seed, shards, transport);
            let (mut ref_builder, _) = random_builder(seed);
            let mut prev = ref_builder.snapshot();
            for step in &steps {
                let summary = fleet.ingest(&step.batch).expect("fleet ingest");
                let (next, ref_summary) = ref_builder.apply(&prev, &step.batch);
                prev = next;
                prop_assert_eq!(summary.detached, ref_summary.detached);
                prop_assert_eq!(summary.new_users, ref_summary.new_users);

                let cold = Arc::new(ref_builder.snapshot());
                let reference = ShardedEngine::new(Arc::clone(&cold), fleet_config(), shards);
                for spec in &step.queries {
                    let kws = cold.query_keywords(&spec.text);
                    let q = Query::new(spec.seeker, kws, spec.k);
                    let got = fleet.query(&q).expect("fleet query");
                    assert_identical(&got, &reference.query(&q))?;
                }
            }
            let stats = fleet.transport_stats();
            prop_assert_eq!(stats.len(), shards);
            shutdown(fleet, hosts);
        }
    }
}
