//! Shared generators and assertions for the serving-layer test suites
//! (`parity.rs`, `sharding.rs`).

#![allow(dead_code)] // each test binary uses a subset

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{InstanceBuilder, Query, S3Instance, TagSubject, TopKResult, UserId};
use s3_doc::DocBuilder;
use s3_text::{KeywordId, Language};

/// Seeded random instance exercising every data-model feature: multi-node
/// documents, an ontology bridge, keyword tags, endorsements, comments.
pub fn random_instance(seed: u64) -> (S3Instance, Vec<KeywordId>) {
    let (b, queryable) = random_builder(seed);
    (b.build(), queryable)
}

/// The builder behind [`random_instance`], before freezing — fully
/// deterministic per seed, so repeated calls yield *identical* builders:
/// the replica generator for fleet tests (client and every shard server
/// must grow from the same data).
pub fn random_builder(seed: u64) -> (InstanceBuilder, Vec<KeywordId>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = InstanceBuilder::new(Language::English);

    // Ontology: classes c0..c1 with specializations s0..s1.
    let mut pool = Vec::new();
    let mut class_kws = Vec::new();
    for i in 0..2 {
        let class = b.intern_entity_keyword(&format!("ex:c{i}"));
        let spec = b.intern_entity_keyword(&format!("ex:s{i}"));
        let (cu, su) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern(&format!("ex:c{i}")), d.intern(&format!("ex:s{i}")))
        };
        b.rdf_mut().insert(su, s3_rdf::vocabulary::RDFS_SUBCLASS_OF, s3_rdf::Term::Uri(cu), 1.0);
        class_kws.push(class);
        pool.push(spec);
    }
    for i in 0..6 {
        pool.push(b.analyzer_mut().vocabulary_mut().intern(&format!("w{i}")));
    }

    let users: Vec<UserId> = (0..5).map(|_| b.add_user()).collect();
    for _ in 0..10 {
        let x = rng.gen_range(0..users.len());
        let y = rng.gen_range(0..users.len());
        if x != y {
            b.add_social_edge(users[x], users[y], rng.gen_range(0.1..=1.0));
        }
    }

    let mut roots = Vec::new();
    for d in 0..7 {
        let mut doc = DocBuilder::new("doc");
        let mut targets = vec![doc.root()];
        for _ in 0..rng.gen_range(0..3usize) {
            let parent = targets[rng.gen_range(0..targets.len())];
            targets.push(doc.child(parent, "sec"));
        }
        for &node in &targets {
            let kws: Vec<KeywordId> =
                (0..rng.gen_range(0..4usize)).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            for &k in &kws {
                b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
            }
            doc.add_content(node, kws);
        }
        let poster =
            if rng.gen_bool(0.9) { Some(users[rng.gen_range(0..users.len())]) } else { None };
        let tree = b.add_document(doc, poster);
        if d > 0 && rng.gen_bool(0.4) {
            let target = roots[rng.gen_range(0..roots.len())];
            b.add_comment_edge(tree, target);
        }
        roots.push(b.doc_root(tree));
    }

    for _ in 0..5 {
        if rng.gen_bool(0.6) {
            let subject = TagSubject::Frag(roots[rng.gen_range(0..roots.len())]);
            let author = users[rng.gen_range(0..users.len())];
            let keyword = if rng.gen_bool(0.7) {
                let k = pool[rng.gen_range(0..pool.len())];
                b.analyzer_mut().vocabulary_mut().add_occurrences(k, 1);
                Some(k)
            } else {
                None
            };
            b.add_tag(subject, author, keyword);
        }
    }

    let mut queryable = class_kws;
    queryable.extend(pool);
    (b, queryable)
}

/// Random query workload over the instance's keyword pool.
pub fn random_queries(
    rng: &mut StdRng,
    num_users: usize,
    pool: &[KeywordId],
    n: usize,
) -> Vec<Query> {
    (0..n)
        .map(|_| {
            let seeker = UserId(rng.gen_range(0..num_users) as u32);
            let n_kw = rng.gen_range(1..3usize);
            let kws = (0..n_kw).map(|_| pool[rng.gen_range(0..pool.len())]).collect();
            Query::new(seeker, kws, rng.gen_range(1..5usize))
        })
        .collect()
}

/// Byte-identical result comparison: stop reason, candidate list, hits
/// with exact bounds.
pub fn assert_identical(a: &TopKResult, b: &TopKResult) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.stats.stop, b.stats.stop);
    prop_assert_eq!(&a.candidate_docs, &b.candidate_docs);
    prop_assert_eq!(a.hits.len(), b.hits.len());
    for (x, y) in a.hits.iter().zip(b.hits.iter()) {
        prop_assert_eq!(x.doc, y.doc);
        prop_assert!(x.lower == y.lower, "lower {} != {}", x.lower, y.lower);
        prop_assert!(x.upper == y.upper, "upper {} != {}", x.upper, y.upper);
    }
    Ok(())
}
