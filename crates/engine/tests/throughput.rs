//! Warm-cache serving must beat cold execution: replaying a batch against
//! the populated cache is pure LRU lookups, orders of magnitude faster
//! than running the search. This pins the acceptance bar for the serving
//! layer (the `throughput` bench in `crates/bench` reports the full
//! 1/2/4/8-thread sweep).

use s3_core::Query;
use s3_datasets::{twitter, workload, Scale};
use s3_engine::{EngineConfig, S3Engine};
use s3_text::FrequencyClass;
use std::sync::Arc;
use std::time::Instant;

#[test]
fn warm_cache_beats_cold_execution() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);
    let w = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: 80,
            seed: 7,
        },
    );
    let queries: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();
    let engine = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(2).cache_capacity(1024).build(),
    );

    let t0 = Instant::now();
    let cold = engine.run_batch(&queries);
    let cold_elapsed = t0.elapsed();

    // Best-of-three warm passes: the warm path is ~80 LRU lookups
    // (microseconds), so a single scheduler stall on a loaded CI runner
    // could otherwise outweigh the whole measurement.
    let mut warm_elapsed = std::time::Duration::MAX;
    let mut warm = Vec::new();
    for _ in 0..3 {
        let t1 = Instant::now();
        warm = engine.run_batch(&queries);
        warm_elapsed = warm_elapsed.min(t1.elapsed());
    }

    for (c, w) in cold.iter().zip(warm.iter()) {
        assert_eq!(c.hits, w.hits);
    }
    assert!(engine.cache_stats().hits >= queries.len() as u64);
    // Pure cache lookups vs full searches: the real margin is orders of
    // magnitude; requiring 2x keeps the test robust on loaded machines.
    assert!(
        warm_elapsed.as_secs_f64() * 2.0 < cold_elapsed.as_secs_f64(),
        "warm batch ({warm_elapsed:?}) must be well under cold ({cold_elapsed:?})"
    );
}
