//! Durability acceptance properties.
//!
//! * **Corruption robustness**: truncating a snapshot or WAL file at any
//!   point, or flipping any byte, yields a clean error (or, for the WAL,
//!   a recovered prefix of the committed records) — never a panic, never
//!   silently wrong data.
//! * **Restart byte-identity**: a durable live engine reopened from its
//!   snapshot plus WAL tail answers byte-identically to a cold rebuild
//!   of the same grown data — unsharded and sharded `{1, 2, 4}`, driven
//!   through the unified `Ingest` trait.
//! * **Fleet bootstrap byte-identity**: shard servers bootstrapped from
//!   a wire-shipped snapshot (no shared builder) answer byte-identically
//!   to an in-process `ShardedEngine`, over every transport, including
//!   after post-bootstrap shipped ingest.

mod common;

use common::{assert_identical, random_builder, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_core::{read_snapshot, write_snapshot, Query, SearchConfig, WriteAheadLog};
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_engine::{
    EngineConfig, FleetEngine, Ingest, LiveEngine, LiveShardedEngine, LocalShard, RecoverySource,
    ShardServer, ShardedEngine,
};
use s3_wire::ShardTransport;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The `Ingest` trait plus the durability operations the restart
/// property needs: the local common denominator of [`LiveEngine`] and
/// [`LiveShardedEngine`].
trait Durable: Ingest {
    /// Checkpoint now; returns how many WAL records were absorbed.
    fn checkpoint_now(&self) -> u64;
}

impl Durable for LiveEngine {
    fn checkpoint_now(&self) -> u64 {
        self.checkpoint().expect("checkpoint").absorbed
    }
}

impl Durable for LiveShardedEngine {
    fn checkpoint_now(&self) -> u64 {
        self.checkpoint().expect("checkpoint").absorbed
    }
}

/// Open (or reopen) a durable engine in `dir`: `shards == 0` is the
/// unsharded `LiveEngine`, anything else a `LiveShardedEngine`.
fn open_durable(
    dir: &Path,
    seed: u64,
    shards: usize,
) -> (Box<dyn Durable>, s3_engine::RecoveryReport) {
    if shards == 0 {
        let (e, r) =
            LiveEngine::open(dir, random_builder(seed).0, test_config()).expect("open live");
        (Box::new(e), r)
    } else {
        let (e, r) = LiveShardedEngine::open(dir, random_builder(seed).0, test_config(), shards)
            .expect("open live sharded");
        (Box::new(e), r)
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "s3-persist-test-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

fn test_config() -> EngineConfig {
    EngineConfig::builder().threads(1).cache_capacity(0).warm_seekers(0).build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any truncation, any byte flip, any trailing garbage: a damaged
    /// snapshot is rejected with a clean error, never a panic.
    #[test]
    fn corrupt_snapshots_fail_cleanly(seed in 0u64..30, at in 0.0..1.0f64, mask in 1u8..=255) {
        let (builder, _) = random_builder(seed);
        let instance = builder.snapshot();
        let bytes = write_snapshot(&builder, &instance);
        prop_assert!(read_snapshot(&bytes).is_ok(), "the intact snapshot must load");

        let pos = ((bytes.len() as f64) * at) as usize;
        prop_assert!(read_snapshot(&bytes[..pos]).is_err(), "truncated at {pos}");

        let mut flipped = bytes.clone();
        flipped[pos] ^= mask;
        prop_assert!(read_snapshot(&flipped).is_err(), "byte {pos} flipped by {mask:#x}");

        let mut extended = bytes.clone();
        extended.push(mask);
        prop_assert!(read_snapshot(&extended).is_err(), "trailing garbage");
    }

    /// Any truncation or byte flip of the WAL file: reopening either
    /// fails cleanly or recovers a strict prefix of the committed
    /// records — never a panic, never a record that was not appended.
    #[test]
    fn corrupt_wals_recover_a_prefix_or_fail_cleanly(
        seed in 0u64..1000, at in 0.0..1.0f64, mask in 1u8..=255,
    ) {
        let dir = tmpdir("wal-fuzz");
        let path = dir.join("fuzz.wal");
        let mut rng = StdRng::seed_from_u64(seed);
        let records: Vec<Vec<u8>> = (0..rng.gen_range(1..5usize))
            .map(|_| (0..rng.gen_range(1..40usize)).map(|_| rng.gen::<u32>() as u8).collect())
            .collect();
        {
            let (mut wal, recovery) = WriteAheadLog::open(&path).expect("fresh wal");
            prop_assert!(recovery.records.is_empty());
            for r in &records {
                wal.append(r).expect("append");
            }
        }
        let bytes = std::fs::read(&path).expect("read wal");
        let pos = ((bytes.len() as f64) * at) as usize;

        std::fs::write(&path, &bytes[..pos]).expect("truncate wal");
        if let Ok((_, recovery)) = WriteAheadLog::open(&path) {
            prop_assert!(records.starts_with(&recovery.records), "truncated at {pos}");
        }

        let mut flipped = bytes.clone();
        flipped[pos] ^= mask;
        std::fs::write(&path, &flipped).expect("rewrite wal");
        if let Ok((_, recovery)) = WriteAheadLog::open(&path) {
            prop_assert!(
                records.starts_with(&recovery.records),
                "byte {pos} flipped by {mask:#x}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Grow a durable engine (checkpoint between batches so recovery
    /// exercises snapshot *and* WAL tail), reopen it, and require every
    /// answer to be byte-identical to a cold rebuild — unsharded and
    /// sharded {1, 2, 4}, all driven through the `Ingest` trait.
    #[test]
    fn reopened_engines_answer_byte_identically(seed in 0u64..500) {
        let steps = {
            let base = random_builder(seed).0.snapshot();
            live_workload(&base, &LiveWorkloadConfig {
                batches: 2,
                queries_per_batch: 4,
                attach_probability: 0.25 + 0.5 * ((seed % 3) as f64 / 2.0),
                seed: seed ^ 0xBEEF,
                ..LiveWorkloadConfig::default()
            })
        };
        let (mut reference, _) = random_builder(seed);
        let mut prev = reference.snapshot();
        for step in &steps {
            let (next, _) = reference.apply(&prev, &step.batch);
            prev = next;
        }
        let cold = reference.snapshot();
        let cold_config = SearchConfig::default();

        // 0 = unsharded LiveEngine; otherwise a LiveShardedEngine.
        for shards in [0usize, 1, 2, 4] {
            let dir = tmpdir(&format!("restart-{shards}"));

            // First life: batch 0, checkpoint, batch 1 left in the WAL.
            {
                let (mut engine, report) = open_durable(&dir, seed, shards);
                prop_assert_eq!(report.source, RecoverySource::Seed);
                prop_assert_eq!(report.replayed, 0);
                engine.ingest(&steps[0].batch).expect("ingest first batch");
                prop_assert_eq!(engine.checkpoint_now(), 1, "one journaled batch absorbed");
                engine.ingest(&steps[1].batch).expect("ingest wal tail");
            }

            // Second life: snapshot loads, the tail replays, answers are
            // byte-identical to the cold rebuild.
            let (mut engine, report) = open_durable(&dir, seed, shards);
            prop_assert_eq!(report.source, RecoverySource::Snapshot, "shards {}", shards);
            prop_assert_eq!(report.replayed, 1, "the WAL tail replays");
            prop_assert!(!report.dropped_tail);
            for step in &steps {
                for spec in &step.queries {
                    let q = Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
                    let got = engine.query(&q).expect("trait query");
                    assert_identical(&got, &cold.search(&q, &cold_config))?;
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Fleet shard servers bootstrapped from a wire-shipped snapshot
    /// (no shared builder) answer byte-identically to an in-process
    /// `ShardedEngine` over every transport and shard count, including
    /// after a post-bootstrap shipped ingest batch.
    #[test]
    fn fleet_bootstrap_is_byte_identical_over_every_transport(seed in 0u64..500) {
        let (builder, pool) = random_builder(seed);
        let instance = builder.snapshot();
        let snapshot = write_snapshot(&builder, &instance);
        let inst = Arc::new(instance);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB007);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 6);

        // One follow-up batch: the bootstrapped replicas must track
        // shipped ingest exactly like builder-grown ones.
        let step = {
            let steps = live_workload(&inst, &LiveWorkloadConfig {
                batches: 1,
                queries_per_batch: 4,
                seed: seed ^ 0xB00,
                ..LiveWorkloadConfig::default()
            });
            steps.into_iter().next().expect("one step")
        };
        let grown = {
            let (mut b, _) = random_builder(seed);
            let prev = b.snapshot();
            b.apply(&prev, &step.batch);
            Arc::new(b.snapshot())
        };

        for shards in [1usize, 2, 4] {
            let reference = ShardedEngine::new(Arc::clone(&inst), test_config(), shards);
            let expected: Vec<_> = queries.iter().map(|q| reference.query(q)).collect();
            let grown_reference = ShardedEngine::new(Arc::clone(&grown), test_config(), shards);

            for transport in ["local", "loopback", "socket"] {
                let mut hosts = Vec::new();
                let transports: Vec<Box<dyn ShardTransport>> = (0..shards)
                    .map(|s| match transport {
                        "local" => {
                            Box::new(LocalShard::awaiting(test_config())) as Box<dyn ShardTransport>
                        }
                        "loopback" => {
                            let (conn, host) =
                                ShardServer::spawn_loopback_bootstrap(test_config());
                            hosts.push(host);
                            Box::new(conn)
                        }
                        _ => {
                            let path = std::env::temp_dir().join(format!(
                                "s3-boot-{}-{seed:x}-{shards}-{s}.sock",
                                std::process::id()
                            ));
                            let (conn, host) =
                                ShardServer::spawn_unix_bootstrap(&path, test_config())
                                    .expect("bind unix socket");
                            hosts.push(host);
                            Box::new(conn)
                        }
                    })
                    .collect();
                let mut fleet = FleetEngine::bootstrap(&snapshot, test_config(), transports)
                    .expect("fleet bootstrap");
                prop_assert_eq!(fleet.num_shards(), shards);
                for (q, want) in queries.iter().zip(&expected) {
                    let got = fleet.query(q).expect("fleet query");
                    assert_identical(&got, want)?;
                }

                fleet.ingest(&step.batch).expect("fleet ingest");
                for spec in &step.queries {
                    let q = Query::new(spec.seeker, grown.query_keywords(&spec.text), spec.k);
                    let got = fleet.query(&q).expect("fleet query after ingest");
                    assert_identical(&got, &grown_reference.query(&q))?;
                }

                fleet.shutdown().expect("shutdown");
                for host in hosts {
                    host.join().expect("shard server exits cleanly");
                }
            }
        }
    }
}
