//! The sharded serving invariant: for every query, `ShardedEngine` with
//! any shard count returns byte-identical results — hits (documents,
//! order, certified bounds), candidate lists, stop reason — to a single
//! `S3Engine` over the unsharded instance, across the cold scattered,
//! warm cached, batched and single-query paths.

mod common;

use common::{assert_identical, random_instance, random_queries};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_core::{ComponentFilter, ComponentPartition, SearchConfig};
use s3_engine::{CachePolicy, EngineConfig, S3Engine, ShardedEngine};
use std::sync::Arc;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig { cases: 25, ..ProptestConfig::default() })]

    /// Shard counts 1, 2 and 4, cold and warm, batched and single-query.
    #[test]
    fn sharded_engine_matches_unsharded(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let inst = Arc::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AA3D);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 10);

        let baseline = S3Engine::new(
            Arc::clone(&inst),
            EngineConfig::builder().threads(2).cache_capacity(64).build(),
        );
        let direct = baseline.run_batch_on(&queries, 2);

        for shards in [1usize, 2, 4] {
            let engine = ShardedEngine::new(
                Arc::clone(&inst),
                EngineConfig::builder().threads(2).cache_capacity(64).build(),
                shards,
            );
            prop_assert_eq!(engine.num_shards(), shards);

            // Cold, batched over 2 workers: scattered and merged.
            let cold = engine.run_batch_on(&queries, 2);
            for (c, d) in cold.iter().zip(direct.iter()) {
                assert_identical(c, d)?;
            }
            // Warm: served from the front cache with one lookup.
            let warm = engine.run_batch_on(&queries, 2);
            for (w, d) in warm.iter().zip(direct.iter()) {
                assert_identical(w, d)?;
            }
            let stats = engine.cache_stats();
            prop_assert!(
                stats.hits >= queries.len() as u64,
                "warm batch must be cache-served ({} hits)", stats.hits
            );
            // Single-query path (inline scatter).
            for q in queries.iter().take(3) {
                assert_identical(&engine.query(q), &baseline.query(q))?;
            }
        }
    }

    /// The front cache's policy and TTL never change scatter-gather
    /// results: TinyLFU admission under churn-forcing capacity, and a
    /// TTL-0 front (nothing is ever served from cache), both stay
    /// byte-identical to the unsharded baseline for shard counts 1/2/4.
    #[test]
    fn cache_policy_preserves_sharded_results(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let inst = Arc::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7F1D);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 8);

        let baseline = S3Engine::new(
            Arc::clone(&inst),
            EngineConfig::builder().threads(1).cache_capacity(0).build(),
        );
        let direct = baseline.run_batch_on(&queries, 1);

        // Alternate the TTL arm by seed so both configurations soak.
        let cache_ttl = if seed % 2 == 0 { None } else { Some(Duration::ZERO) };
        for shards in [1usize, 2, 4] {
            let engine = ShardedEngine::new(
                Arc::clone(&inst),
                EngineConfig::builder().threads(2).cache_capacity(4).cache_policy(CachePolicy::tiny_lfu()).cache_ttl(cache_ttl).build(),
                shards,
            );
            for _ in 0..2 {
                let results = engine.run_batch_on(&queries, 2);
                for (r, d) in results.iter().zip(direct.iter()) {
                    assert_identical(r, d)?;
                }
            }
            if cache_ttl == Some(Duration::ZERO) {
                prop_assert_eq!(engine.cache_stats().hits, 0);
            }
        }
    }

    /// Per-shard standalone engines (component-filtered `S3Engine`s) see
    /// disjoint candidate sets that union to the unsharded one, and the
    /// scatter path agrees with the core's all-shards-active driver.
    #[test]
    fn shards_partition_the_candidate_space(seed in 0u64..3000) {
        let (inst, pool) = random_instance(seed);
        let inst = Arc::new(inst);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7C1E);
        let queries = random_queries(&mut rng, inst.num_users(), &pool, 6);
        let partition = ComponentPartition::balanced(&inst, 3);
        let baseline = S3Engine::new(Arc::clone(&inst), EngineConfig::default());

        for q in &queries {
            let full = baseline.query(q);
            let mut union: Vec<_> = Vec::new();
            for s in 0..3 {
                let filter = Arc::new(ComponentFilter::for_shard(&partition, s));
                let shard = S3Engine::new(
                    Arc::clone(&inst),
                    EngineConfig::builder().search(SearchConfig {
                            component_filter: Some(filter),
                            ..SearchConfig::default()
                        }).cache_capacity(0).build(),
                );
                union.extend(shard.query(q).candidate_docs.iter().copied());
            }
            union.sort_unstable();
            let before = union.len();
            union.dedup();
            prop_assert_eq!(union.len(), before, "shard candidate sets must be disjoint");
            // A shard short of k local answers keeps exploring until its
            // frontier closes, so it may discover *more* candidates than
            // the globally-stopped unsharded run — the union covers the
            // global candidate set but need not equal it.
            for d in &full.candidate_docs {
                prop_assert!(
                    union.binary_search(d).is_ok(),
                    "global candidate {:?} missing from every shard", d
                );
            }
        }
    }
}
