//! The mutation acceptance property: after **any** interleaving of
//! appends, deletions, updates and compactions, the live engines answer
//! byte-identically to a cold rebuild of the same event history —
//! unsharded, sharded `{1, 2, 4}`, a fleet over the `Local`, `Loopback`
//! and unix-`Socket` transports, and across a durable snapshot + WAL
//! restart.
//!
//! Two reference levels anchor the property:
//!
//! * **Pre-compaction**: live ≡ a cold replay of the *full* event log,
//!   tombstones included (dead state skipped identically on both sides).
//! * **Post-compaction**: live ≡ the compaction of the same reference
//!   builder; `s3-core`'s `compact_equals_cold_build_of_survivors` ties
//!   that in turn to a true cold build of the surviving events only.
//!
//! Plus the tombstone edge cases: deleting a component's last document,
//! deleting a bridge document (connectivity split), re-adding a deleted
//! keyword, and a wire-shipped deletion of an id no replica has seen.

mod common;

use common::{assert_identical, random_builder};
use proptest::prelude::*;
use s3_core::{InstanceBuilder, Query, SearchConfig};
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_engine::{
    EngineConfig, FleetEngine, LiveEngine, LiveShardedEngine, LocalShard, RecoverySource,
    ShardHost, ShardServer,
};
use s3_text::Language;
use s3_wire::ShardTransport;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn test_config() -> EngineConfig {
    EngineConfig::builder().threads(1).cache_capacity(64).warm_seekers(4).build()
}

fn mutating_workload(seed: u64) -> LiveWorkloadConfig {
    LiveWorkloadConfig {
        batches: 3,
        users_per_batch: 2,
        docs_per_batch: 3,
        tags_per_batch: 2,
        comments_per_batch: 1,
        deletes_per_batch: 1,
        updates_per_batch: 1,
        queries_per_batch: 5,
        k: 4,
        attach_probability: 0.25 + 0.5 * ((seed % 3) as f64 / 2.0),
        seed: seed ^ 0xDEAD,
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "s3-mutation-test-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Unsharded and sharded {1, 2, 4}: mutate, query, compact midway,
    /// mutate and query again — byte-identical to the cold reference at
    /// every step.
    #[test]
    fn mutated_live_engines_match_cold_rebuild(seed in 0u64..1000) {
        let flat = LiveEngine::new(random_builder(seed).0, test_config());
        let sharded: Vec<LiveShardedEngine> = [1usize, 2, 4]
            .into_iter()
            .map(|n| LiveShardedEngine::new(random_builder(seed).0, test_config(), n))
            .collect();
        let mut reference = random_builder(seed).0;
        let mut reference_prev = reference.snapshot();

        // Two phases around a compaction epoch: ids renumber densely when
        // the fleet compacts, so (like any real caller) the second phase's
        // batches are generated against the *compacted* state.
        for phase in 0..2u64 {
            let config = LiveWorkloadConfig {
                seed: seed ^ 0xDEAD ^ (phase << 17),
                batches: 2,
                ..mutating_workload(seed)
            };
            let steps = live_workload(&flat.instance(), &config);
            for step in &steps {
                flat.ingest(&step.batch);
                for engine in &sharded {
                    engine.ingest(&step.batch);
                }
                let (next, _) = reference.apply(&reference_prev, &step.batch);
                reference_prev = next;

                let cold = reference.snapshot();
                for spec in &step.queries {
                    let query =
                        Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
                    let expected = cold.search(&query, &SearchConfig::default());
                    // Twice: the second answer exercises the cache path.
                    for _ in 0..2 {
                        assert_identical(&flat.query(&query), &expected)?;
                    }
                    for engine in &sharded {
                        assert_identical(&engine.query(&query), &expected)?;
                    }
                }
            }

            // Compact everything between the phases: tombstones are
            // reclaimed, ids renumber densely, every cache drops — and
            // answers must not move relative to the compacted reference.
            if phase == 0 {
                prop_assert!(flat.dead_fraction() > 0.0, "mutations left tombstones");
                let report = flat.compact().expect("flat compact");
                prop_assert!(report.compaction.dropped_documents >= 1);
                prop_assert_eq!(flat.dead_fraction(), 0.0, "compaction reclaims every tombstone");
                for engine in &sharded {
                    let r = engine.compact().expect("sharded compact");
                    prop_assert_eq!(
                        r.compaction.dropped_documents,
                        report.compaction.dropped_documents
                    );
                }
                let (compacted, _) = reference.compact();
                reference = compacted;
                reference_prev = reference.snapshot();

                // Post-compaction answers match immediately, before any
                // further ingest.
                let cold = reference.snapshot();
                for (u, text) in [(0u32, "w0 w2"), (1, "w1"), (2, "ex:c0")] {
                    let query =
                        Query::new(s3_core::UserId(u), cold.query_keywords(text), 4);
                    let expected = cold.search(&query, &SearchConfig::default());
                    assert_identical(&flat.query(&query), &expected)?;
                    for engine in &sharded {
                        assert_identical(&engine.query(&query), &expected)?;
                    }
                }
            }
        }
    }

    /// The fleet: retraction batches ship over the wire to every replica,
    /// a compaction epoch runs across the whole fleet, and answers stay
    /// byte-identical to the cold reference — over all three transports.
    #[test]
    fn mutated_fleet_matches_cold_rebuild_over_transports(seed in 0u64..1000) {
        for shards in [1usize, 2, 4] {
            let mut hosts: Vec<ShardHost> = Vec::new();
            let transports: Vec<Box<dyn ShardTransport>> = (0..shards)
                .map(|s| {
                    let server =
                        ShardServer::new(random_builder(seed).0, test_config(), shards, s);
                    // One transport per shard count keeps the matrix
                    // affordable; all three kinds are exercised.
                    match shards {
                        1 => Box::new(LocalShard::new(server)) as Box<dyn ShardTransport>,
                        2 => {
                            let (conn, host) = server.spawn_loopback();
                            hosts.push(host);
                            Box::new(conn)
                        }
                        _ => {
                            let path = std::env::temp_dir().join(format!(
                                "s3-mut-{}-{seed:x}-{shards}-{s}.sock",
                                std::process::id()
                            ));
                            let (conn, host) =
                                server.spawn_unix(&path).expect("bind unix socket");
                            hosts.push(host);
                            Box::new(conn)
                        }
                    }
                })
                .collect();
            let mut fleet = FleetEngine::new(random_builder(seed).0, test_config(), transports);
            let mut reference = random_builder(seed).0;
            let mut reference_prev = reference.snapshot();

            // Phase 0: mutate, then run a fleet-wide compaction epoch.
            // Phase 1: keep mutating against the compacted state.
            for phase in 0..2u64 {
                let config = LiveWorkloadConfig {
                    seed: seed ^ 0xF1EE ^ (phase << 13),
                    batches: 1,
                    ..mutating_workload(seed)
                };
                let steps = live_workload(&reference.snapshot(), &config);
                for step in &steps {
                    fleet.ingest(&step.batch).expect("fleet ingest");
                    let (next, _) = reference.apply(&reference_prev, &step.batch);
                    reference_prev = next;

                    let cold = reference.snapshot();
                    for spec in &step.queries {
                        let q = Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
                        let got = fleet.query(&q).expect("fleet query");
                        assert_identical(&got, &cold.search(&q, &SearchConfig::default()))?;
                    }
                }

                if phase == 0 {
                    // Fleet-wide compaction epoch: every replica compacts,
                    // acks a state fingerprint, and the client cross-checks
                    // them — divergence would be a hard error here.
                    let report = fleet.compact().expect("fleet compact");
                    prop_assert!(report.dropped_documents >= 1);
                    let (compacted, _) = reference.compact();
                    reference = compacted;
                    reference_prev = reference.snapshot();

                    let cold = reference.snapshot();
                    let q = Query::new(s3_core::UserId(0), cold.query_keywords("w0 w1"), 4);
                    let got = fleet.query(&q).expect("post-compaction fleet query");
                    assert_identical(&got, &cold.search(&q, &SearchConfig::default()))?;
                }
            }
            fleet.shutdown().expect("shutdown");
            for host in hosts {
                host.join().expect("shard server exits cleanly");
            }
        }
    }

    /// Durability: retraction batches journal through the WAL and replay
    /// on restart; a compaction checkpoints (snapshot + WAL truncation)
    /// before publishing, so a post-compaction restart recovers the
    /// compacted state with nothing left to replay.
    #[test]
    fn mutated_durable_engine_survives_restart_and_compaction(seed in 0u64..500) {
        let dir = tmpdir("mutate");
        let steps = {
            let base = random_builder(seed).0.snapshot();
            live_workload(&base, &LiveWorkloadConfig { batches: 2, ..mutating_workload(seed) })
        };
        let mut reference = random_builder(seed).0;
        let mut reference_prev = reference.snapshot();
        for step in &steps {
            let (next, _) = reference.apply(&reference_prev, &step.batch);
            reference_prev = next;
        }

        // First life: batch 0 checkpointed, batch 1 (with its retraction
        // records) left as the WAL tail.
        {
            let (engine, report) =
                LiveEngine::open(&dir, random_builder(seed).0, test_config()).expect("open");
            prop_assert_eq!(report.source, RecoverySource::Seed);
            engine.ingest(&steps[0].batch);
            engine.checkpoint().expect("checkpoint");
            engine.ingest(&steps[1].batch);
        }

        // Second life: the retraction tail replays; answers match the
        // full-log cold reference.
        let cold = reference.snapshot();
        {
            let (engine, report) =
                LiveEngine::open(&dir, random_builder(seed).0, test_config()).expect("reopen");
            prop_assert_eq!(report.source, RecoverySource::Snapshot);
            prop_assert_eq!(report.replayed, 1, "the retraction batch replays from the WAL");
            for step in &steps {
                for spec in &step.queries {
                    let q = Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
                    assert_identical(&engine.query(&q), &cold.search(&q, &SearchConfig::default()))?;
                }
            }
            // Compact: the durable checkpoint happens before the swap, so
            // the WAL is empty and the on-disk snapshot is the compacted
            // state.
            let report = engine.compact().expect("compact");
            prop_assert!(report.checkpointed.is_some(), "durable compaction checkpoints");
        }

        // Third life: recovery loads the compacted snapshot directly.
        let (compacted_ref, _) = reference.compact();
        let cold = compacted_ref.snapshot();
        {
            let (engine, report) = LiveEngine::open(&dir, random_builder(seed).0, test_config())
                .expect("reopen compacted");
            prop_assert_eq!(report.source, RecoverySource::Snapshot);
            prop_assert_eq!(report.replayed, 0, "compaction left no WAL tail");
            prop_assert_eq!(engine.dead_fraction(), 0.0);
            for step in &steps {
                for spec in &step.queries {
                    let q = Query::new(spec.seeker, cold.query_keywords(&spec.text), spec.k);
                    assert_identical(&engine.query(&q), &cold.search(&q, &SearchConfig::default()))?;
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---- tombstone edge cases ------------------------------------------------

/// A two-component corpus: `alpha`-docs by an author the seeker follows,
/// and one isolated `omega` doc in a component of its own.
fn two_components() -> (InstanceBuilder, s3_core::UserId) {
    let mut b = InstanceBuilder::new(Language::English);
    let author = b.add_user();
    let seeker = b.add_user();
    b.add_social_edge(seeker, author, 1.0);
    for text in ["alpha beta", "alpha gamma"] {
        let kws = b.analyze(text);
        let mut doc = s3_doc::DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(author));
    }
    let kws = b.analyze("omega");
    let mut doc = s3_doc::DocBuilder::new("post");
    doc.set_content(doc.root(), kws);
    b.add_document(doc, Some(seeker));
    (b, seeker)
}

fn run(
    engine: &LiveEngine,
    seeker: s3_core::UserId,
    text: &str,
    k: usize,
) -> std::sync::Arc<s3_core::TopKResult> {
    let kws = engine.instance().query_keywords(text);
    engine.query(&Query::new(seeker, kws, k))
}

#[test]
fn deleting_a_components_last_document_empties_it() {
    let (b, seeker) = two_components();
    let engine = LiveEngine::new(b, test_config());
    assert_eq!(run(&engine, seeker, "omega", 5).hits.len(), 1);

    // TreeId(2) is the only document of the seeker's own component.
    let mut batch = s3_core::IngestBatch::new();
    batch.delete_document(s3_doc::TreeId(2));
    engine.ingest(&batch);
    assert!(run(&engine, seeker, "omega", 5).hits.is_empty(), "the component died with its doc");
    assert_eq!(run(&engine, seeker, "alpha", 5).hits.len(), 2, "other components unaffected");

    // Compaction reclaims the empty component without disturbing results.
    engine.compact().expect("compact");
    assert!(run(&engine, seeker, "omega", 5).hits.is_empty());
    assert_eq!(run(&engine, seeker, "alpha", 5).hits.len(), 2);
}

#[test]
fn deleting_a_bridge_document_splits_the_component() {
    // doc0 (author) ← comment doc2 (also by author) → targets doc1
    // (seeker): the comment bridges the two posters' content into one
    // component. Deleting it must split them — and the live engine must
    // agree byte-for-byte with a cold replay of the same events.
    let build = || {
        let mut b = InstanceBuilder::new(Language::English);
        let author = b.add_user();
        let seeker = b.add_user();
        b.add_social_edge(seeker, author, 1.0);
        let kws = b.analyze("alpha beta");
        let mut doc = s3_doc::DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(author));
        let kws = b.analyze("alpha gamma");
        let mut doc = s3_doc::DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        let mine = b.add_document(doc, Some(seeker));
        let kws = b.analyze("delta bridge");
        let mut doc = s3_doc::DocBuilder::new("comment");
        doc.set_content(doc.root(), kws);
        let bridge = b.add_document(doc, Some(author));
        let target = b.doc_root(mine);
        b.add_comment_edge(bridge, target);
        (b, seeker, bridge)
    };
    let (b, seeker, bridge) = build();
    let (mut reference, _, _) = build();
    let engine = LiveEngine::new(b, test_config());
    let components = |e: &LiveEngine| e.instance().graph().components().len();
    let before = components(&engine);

    let mut batch = s3_core::IngestBatch::new();
    batch.delete_document(bridge);
    engine.ingest(&batch);
    let prev = reference.snapshot();
    reference.apply(&prev, &batch);

    let after = components(&engine);
    assert!(after > before, "components split: {before} -> {after}");
    let cold = reference.snapshot();
    for text in ["alpha", "delta"] {
        let q = Query::new(seeker, cold.query_keywords(text), 5);
        let got = engine.query(&q);
        let want = cold.search(&q, &SearchConfig::default());
        assert_eq!(got.hits, want.hits);
        assert_eq!(got.candidate_docs, want.candidate_docs);
    }
}

#[test]
fn a_deleted_keyword_can_be_readded() {
    let (b, seeker) = two_components();
    let engine = LiveEngine::new(b, test_config());

    let mut batch = s3_core::IngestBatch::new();
    batch.delete_document(s3_doc::TreeId(2));
    engine.ingest(&batch);
    assert!(run(&engine, seeker, "omega", 5).hits.is_empty());

    // Re-add a document with the tombstoned keyword: the analyzer maps
    // "omega" back to the same stable KeywordId and results return.
    let mut batch = s3_core::IngestBatch::new();
    let mut doc = s3_core::IngestDoc::new("post");
    doc.set_text(doc.root(), "omega again");
    batch.add_document(doc, Some(s3_core::UserRef::Existing(seeker)));
    engine.ingest(&batch);
    let res = run(&engine, seeker, "omega", 5);
    assert_eq!(res.hits.len(), 1, "the re-added keyword is searchable again");
}

#[test]
fn wire_deletion_of_an_unseen_id_is_a_clean_no_op() {
    let seed = 7;
    let server = ShardServer::new(random_builder(seed).0, test_config(), 1, 0);
    let transports: Vec<Box<dyn ShardTransport>> = vec![Box::new(LocalShard::new(server))];
    let mut fleet = FleetEngine::new(random_builder(seed).0, test_config(), transports);

    // Delete a tree no replica has ever allocated: the batch ships, every
    // replica treats it as an idempotent no-op, and the fleet stays in
    // lock-step with the untouched reference.
    let mut batch = s3_core::IngestBatch::new();
    batch.delete_document(s3_doc::TreeId(9999));
    batch.delete_user(s3_core::UserId(9999));
    fleet.ingest(&batch).expect("unseen-id deletions must not error");

    let reference = random_builder(seed).0.snapshot();
    let q = Query::new(s3_core::UserId(0), reference.query_keywords("w0 w1"), 5);
    let got = fleet.query(&q).expect("fleet query");
    let want = reference.search(&q, &SearchConfig::default());
    assert_eq!(got.hits, want.hits);
    assert_eq!(got.candidate_docs, want.candidate_docs);
    fleet.shutdown().expect("shutdown");
}
