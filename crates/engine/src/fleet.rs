//! Cross-process sharded serving: shard servers + the fleet client.
//!
//! [`crate::ShardedEngine`] runs the iteration-synchronous scatter-gather
//! inside one process. This module runs the *same algorithm* across
//! process boundaries:
//!
//! * [`ShardServer`] owns one shard — an [`S3Engine`] restricted to its
//!   components, the deterministically re-derived instance + partition,
//!   and an [`s3_core::FleetShard`] round executor — and answers the wire
//!   protocol's round requests ([`ShardServer::serve`] loops over any
//!   `Read + Write` stream: a unix socket, an in-memory loopback, ...);
//! * [`FleetEngine`] is the client: it routes each query through the
//!   regular [`ShardRouter`], drives the fan-out over N
//!   [`ShardTransport`]s, merges per-shard admissions (by global trigger
//!   sequence) and selections ([`s3_core::selection_rank`]), and runs the
//!   merged global stop test — returning results byte-identical to
//!   [`crate::ShardedEngine`];
//! * [`LocalShard`] is the zero-cost in-process transport: replies move
//!   as typed values through option slots, no bytes on the query hot
//!   path (ingest still exercises the codec — it is rare and the round
//!   trip doubles as a serialization check).
//!
//! Round fan-out is **pipelined**: the client queues every shard's
//! request, flushes them all, then reads replies — so a round costs the
//! *slowest* shard, not the sum ([`s3_wire::ShardTransport`] docs).
//!
//! Replication model: every shard server holds the full instance (built
//! from its own [`InstanceBuilder`]) because proximity propagates over
//! the *whole* graph regardless of which shard owns a component;
//! shipping an [`IngestBatch`] to every shard keeps the replicas
//! bit-identical, since [`InstanceBuilder::apply`] and
//! [`ComponentPartition::extended`] are deterministic. The
//! [`s3_wire::IngestAck`] fingerprint (node count, detachedness, epoch)
//! cross-checks that invariant on every ingest.

use crate::gate::{self, Admission, AdmissionGate, LoadStats, ServeOutcome};
use crate::{EngineConfig, S3Engine, ShardRouter};
use s3_core::{
    read_snapshot, CompactionReport, ComponentFilter, ComponentPartition, FleetShard, Hit,
    IngestBatch, IngestSummary, InstanceBuilder, QualityBound, Query, ResumeOutcome, S3Instance,
    S3kEngine, SearchConfig, SearchStats, StopReason, TopKResult, UserId,
};
use s3_doc::DocNodeId;
use s3_text::KeywordId;
use s3_wire::{
    loopback_pair, read_frame, tag, write_frame, CompactAck, FramedTransport, IngestAck,
    LoopbackConn, RequestBuf, RequestKind, RoundReply, SelectionEntry, ShardTransport, Snapshot,
    SnapshotAck, SnapshotChunk, Start, StopCheck, TransportStats, WireError, WireIngest,
    WIRE_VERSION,
};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// One shard's server: the replica instance, the shard's serving engine,
/// and the per-round executor. Drive it through the typed handlers (the
/// [`LocalShard`] transport does) or hand a connected stream to
/// [`Self::serve`].
pub struct ShardServer {
    builder: InstanceBuilder,
    instance: Arc<S3Instance>,
    partition: Arc<ComponentPartition>,
    shard: usize,
    /// The scatter search configuration (no component filter — ownership
    /// is enforced by partition + shard id in the round executor).
    search: SearchConfig,
    /// Engine template for rebuilding the serving engine after ingests.
    config: EngineConfig,
    engine: S3Engine,
    session: FleetShard,
    epoch: u64,
}

/// The consistency fingerprint a freshly-bootstrapped replica reports:
/// coarse enough to stay cheap, precise enough that a shard built from
/// different bytes (or a different snapshot version) cannot match.
fn snapshot_fingerprint(instance: &S3Instance) -> SnapshotAck {
    SnapshotAck {
        nodes: instance.graph().num_nodes() as u64,
        users: instance.num_users() as u64,
        docs: instance.num_documents() as u64,
        connections: instance.connections().len() as u64,
    }
}

fn shard_engine(
    instance: &Arc<S3Instance>,
    partition: &ComponentPartition,
    shard: usize,
    config: &EngineConfig,
) -> S3Engine {
    let filter = Arc::new(ComponentFilter::for_shard(partition, shard));
    S3Engine::new(
        Arc::clone(instance),
        EngineConfig {
            search: SearchConfig { component_filter: Some(filter), ..config.search.clone() },
            threads: 1,
            ..config.clone()
        },
    )
}

impl ShardServer {
    /// Build shard `shard` of a `num_shards` fleet from its own instance
    /// builder. Every server of a fleet (and the [`FleetEngine`] client)
    /// must be built from identically-generated builders with the same
    /// configuration — the replicas are kept consistent by determinism,
    /// and the ingest acks verify it.
    pub fn new(
        builder: InstanceBuilder,
        config: EngineConfig,
        num_shards: usize,
        shard: usize,
    ) -> Self {
        let instance = Arc::new(builder.snapshot());
        Self::from_parts(builder, instance, config, num_shards, shard)
    }

    /// Build shard `shard` from an already-materialised replica instance
    /// (a decoded [`s3_core::read_snapshot`] pair — the snapshot bootstrap
    /// path, which must not re-run the builder).
    pub fn from_parts(
        builder: InstanceBuilder,
        instance: Arc<S3Instance>,
        config: EngineConfig,
        num_shards: usize,
        shard: usize,
    ) -> Self {
        let config = config.validated();
        let partition = Arc::new(ComponentPartition::balanced(&instance, num_shards));
        assert!(shard < partition.num_shards(), "shard index out of range");
        let mut search = config.search.clone();
        search.component_filter = None;
        let engine = shard_engine(&instance, &partition, shard, &config);
        ShardServer {
            builder,
            instance,
            partition,
            shard,
            search,
            config,
            engine,
            session: FleetShard::new(),
            epoch: 0,
        }
    }

    /// Build shard `shard` of a `num_shards` fleet from serialized
    /// snapshot bytes (the fleet bootstrap path: no shared builder, the
    /// replica is exactly the shipped bytes). Errors — never panics — on
    /// corrupt or version-mismatched snapshots.
    pub fn from_snapshot(
        snapshot: &[u8],
        config: EngineConfig,
        num_shards: usize,
        shard: usize,
    ) -> Result<Self, WireError> {
        if num_shards == 0 {
            return Err(WireError::Value("snapshot for a zero-shard fleet"));
        }
        if shard >= num_shards {
            return Err(WireError::Value("snapshot shard index out of range"));
        }
        let (builder, instance) =
            read_snapshot(snapshot).map_err(|_| WireError::Value("snapshot rejected"))?;
        Ok(Self::from_parts(builder, Arc::new(instance), config, num_shards, shard))
    }

    /// Bootstrap a shard server from a connected stream: read the
    /// [`Snapshot`] header plus its chunk frames, decode the replica, and
    /// answer with the [`SnapshotAck`] consistency fingerprint. This is
    /// the server half of [`FleetEngine::bootstrap`]; run it before
    /// [`Self::serve`] on the same stream.
    pub fn bootstrap_from<S: Read + Write>(
        stream: &mut S,
        config: EngineConfig,
    ) -> Result<Self, WireError> {
        let mut frame = Vec::new();
        read_frame(stream, &mut frame)?;
        let mut header = Snapshot::default();
        header.decode_into(&frame)?;
        let total = usize::try_from(header.total_len)
            .map_err(|_| WireError::Value("snapshot too large for this platform"))?;
        let mut bytes = Vec::new();
        let mut chunk = SnapshotChunk::default();
        for index in 0..header.num_chunks {
            read_frame(stream, &mut frame)?;
            chunk.decode_into(&frame)?;
            if chunk.index != index {
                return Err(WireError::Protocol("snapshot chunk out of order"));
            }
            if bytes.len() + chunk.bytes.len() > total {
                return Err(WireError::Protocol("snapshot longer than its header"));
            }
            bytes.extend_from_slice(&chunk.bytes);
        }
        if bytes.len() != total {
            return Err(WireError::Protocol("snapshot shorter than its header"));
        }
        let server =
            Self::from_snapshot(&bytes, config, header.num_shards as usize, header.shard as usize)?;
        let mut payload = Vec::new();
        snapshot_fingerprint(&server.instance).encode(&mut payload);
        write_frame(stream, &payload)?;
        stream.flush()?;
        Ok(server)
    }

    /// Bootstrap from the stream, then serve the wire protocol on it
    /// until shutdown ([`Self::bootstrap_from`] + [`Self::serve`]).
    pub fn serve_bootstrap<S: Read + Write>(
        mut stream: S,
        config: EngineConfig,
    ) -> Result<(), WireError> {
        let mut server = Self::bootstrap_from(&mut stream, config)?;
        server.serve(stream)
    }

    /// This shard's index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The shard's serving engine (directly queryable over its own
    /// components, like [`crate::ShardedEngine::shard`]).
    pub fn engine(&self) -> &S3Engine {
        &self.engine
    }

    /// The replica instance.
    pub fn instance(&self) -> &Arc<S3Instance> {
        &self.instance
    }

    /// Ingest epoch (bumped once per applied batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn fill_round(&self, out: &mut RoundReply, no_match: bool) {
        out.clear();
        out.no_match = no_match;
        if no_match {
            return;
        }
        out.iteration = self.session.iteration();
        out.threshold = self.session.threshold();
        out.frontier_closed = self.session.frontier_closed();
        let stats = self.session.stats();
        out.candidates = stats.candidates as u64;
        out.rejected = stats.rejected as u64;
        out.components = stats.components as u64;
        out.pruned = stats.pruned_components as u64;
        out.admitted.extend(self.session.admitted().iter().map(|&(seq, doc)| (seq, doc.0)));
        out.selection.extend(self.session.selection().map(|c| SelectionEntry {
            index: c.index,
            doc: c.doc.0,
            lower: c.lower,
            upper: c.upper,
        }));
    }

    /// Handle a [`Start`]: run round zero, fill the reply.
    pub fn start_query(&mut self, msg: &Start, out: &mut RoundReply) {
        let query = Query::new(
            UserId(msg.seeker),
            msg.keywords.iter().map(|&k| KeywordId(k)).collect(),
            msg.k as usize,
        );
        let engine = S3kEngine::new(&self.instance, self.search.clone());
        let matched = self.session.begin(&engine, &self.partition, self.shard, &query);
        self.fill_round(out, !matched);
    }

    /// Handle a next-round request: step the propagation, run the round,
    /// fill the reply.
    pub fn next_round(&mut self, out: &mut RoundReply) {
        let engine = S3kEngine::new(&self.instance, self.search.clone());
        self.session.advance(&engine, &self.partition, self.shard);
        self.fill_round(out, false);
    }

    /// Handle a [`StopCheck`]: this shard's certified rival upper bound
    /// against the merged selection (the client derives the stop vote
    /// from it; see [`FleetShard::rival_upper`]).
    pub fn stop_check(&mut self, msg: &StopCheck) -> f64 {
        let engine = S3kEngine::new(&self.instance, self.search.clone());
        self.session.rival_upper(&engine, &msg.selected)
    }

    /// Handle an end-of-query notice.
    pub fn end_query(&mut self) {
        self.session.end();
    }

    /// Handle a shipped ingest: rebuild the batch, apply it to the
    /// replica, extend the partition, swap the serving engine, bump the
    /// epoch and fill the consistency ack.
    pub fn ingest(&mut self, msg: &WireIngest, out: &mut IngestAck) {
        let batch = msg.to_batch();
        let (instance, summary) = self.builder.apply(&self.instance, &batch);
        self.instance = Arc::new(instance);
        self.partition = Arc::new(self.partition.extended(&self.instance));
        self.engine = shard_engine(&self.instance, &self.partition, self.shard, &self.config);
        self.session.invalidate();
        self.epoch += 1;
        *out = IngestAck {
            detached: summary.detached,
            epoch: self.epoch,
            nodes: self.instance.graph().num_nodes() as u64,
            touched: summary.touched_components.len() as u64,
        };
    }

    /// Handle a compaction request: rebuild the replica without
    /// tombstoned state ([`InstanceBuilder::compact`]), re-partition the
    /// clean instance, swap the serving engine, bump the epoch and fill
    /// the consistency ack. Entity ids are densely renumbered, so any
    /// in-flight session is invalidated.
    pub fn compact(&mut self, out: &mut CompactAck) -> CompactionReport {
        let (builder, report) = self.builder.compact();
        self.builder = builder;
        self.instance = Arc::new(self.builder.snapshot());
        self.partition =
            Arc::new(ComponentPartition::balanced(&self.instance, self.partition.num_shards()));
        self.engine = shard_engine(&self.instance, &self.partition, self.shard, &self.config);
        self.session.invalidate();
        self.epoch += 1;
        let fp = snapshot_fingerprint(&self.instance);
        *out = CompactAck {
            epoch: self.epoch,
            nodes: fp.nodes,
            users: fp.users,
            docs: fp.docs,
            connections: fp.connections,
        };
        report
    }

    /// Serve the wire protocol over a connected stream until the peer
    /// hangs up or sends `Shutdown`. Request bodies and the reply buffer
    /// are reused across rounds — steady-state serving does not allocate
    /// for the round exchange.
    pub fn serve<S: Read + Write>(&mut self, mut stream: S) -> Result<(), WireError> {
        let mut req = RequestBuf::default();
        let mut frame = Vec::new();
        let mut reply = RoundReply::default();
        let mut payload = Vec::new();
        loop {
            match read_frame(&mut stream, &mut frame) {
                Ok(()) => {}
                Err(WireError::Eof) => return Ok(()),
                Err(e) => return Err(e),
            }
            payload.clear();
            match req.read(&frame)? {
                RequestKind::Start => {
                    self.start_query(&req.start, &mut reply);
                    reply.encode(&mut payload);
                }
                RequestKind::NextRound => {
                    self.next_round(&mut reply);
                    reply.encode(&mut payload);
                }
                RequestKind::StopCheck => {
                    let rival = self.stop_check(&req.stop);
                    payload.extend_from_slice(&[WIRE_VERSION, tag::VOTE]);
                    payload.extend_from_slice(&rival.to_bits().to_le_bytes());
                }
                RequestKind::EndQuery => {
                    self.end_query();
                    continue;
                }
                RequestKind::Ingest => {
                    let mut ack = IngestAck::default();
                    self.ingest(&req.ingest, &mut ack);
                    ack.encode(&mut payload);
                }
                RequestKind::Shutdown => return Ok(()),
                RequestKind::Compact => {
                    let mut ack = CompactAck::default();
                    self.compact(&mut ack);
                    ack.encode(&mut payload);
                }
            }
            write_frame(&mut stream, &payload)?;
            stream.flush()?;
        }
    }

    /// Spawn this server on its own thread behind an in-memory loopback
    /// duplex; returns the client transport and the join handle.
    pub fn spawn_loopback(mut self) -> (FramedTransport<LoopbackConn>, ShardHost) {
        let (client, server_end) = loopback_pair();
        let thread = std::thread::spawn(move || self.serve(server_end));
        (FramedTransport::new(client), ShardHost { thread })
    }

    /// Bind a unix-domain socket at `path`, spawn this server on its own
    /// thread accepting one connection there, and connect to it; returns
    /// the client transport and the join handle. The socket file is
    /// unlinked once the connection is established.
    pub fn spawn_unix(
        mut self,
        path: &Path,
    ) -> std::io::Result<(FramedTransport<UnixStream>, ShardHost)> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let at = path.to_path_buf();
        let thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().map_err(WireError::from)?;
            drop(listener);
            let _ = std::fs::remove_file(&at);
            self.serve(stream)
        });
        let stream = UnixStream::connect(path)?;
        Ok((FramedTransport::new(stream), ShardHost { thread }))
    }

    /// Spawn a *snapshot-awaiting* server thread behind an in-memory
    /// loopback duplex: it has no builder yet and constructs itself from
    /// the first frames on the stream ([`Self::serve_bootstrap`]).
    /// Hand the returned transport to [`FleetEngine::bootstrap`].
    pub fn spawn_loopback_bootstrap(
        config: EngineConfig,
    ) -> (FramedTransport<LoopbackConn>, ShardHost) {
        let (client, server_end) = loopback_pair();
        let thread = std::thread::spawn(move || Self::serve_bootstrap(server_end, config));
        (FramedTransport::new(client), ShardHost { thread })
    }

    /// Spawn a snapshot-awaiting server thread accepting one connection
    /// on a unix-domain socket at `path` ([`Self::spawn_unix`], bootstrap
    /// flavour). Hand the returned transport to [`FleetEngine::bootstrap`].
    pub fn spawn_unix_bootstrap(
        path: &Path,
        config: EngineConfig,
    ) -> std::io::Result<(FramedTransport<UnixStream>, ShardHost)> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let at = path.to_path_buf();
        let thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().map_err(WireError::from)?;
            drop(listener);
            let _ = std::fs::remove_file(&at);
            Self::serve_bootstrap(stream, config)
        });
        let stream = UnixStream::connect(path)?;
        Ok((FramedTransport::new(stream), ShardHost { thread }))
    }
}

/// Join handle for a spawned [`ShardServer`] thread.
pub struct ShardHost {
    thread: std::thread::JoinHandle<Result<(), WireError>>,
}

impl ShardHost {
    /// Wait for the server to exit (send `Shutdown` or drop the client
    /// transport first, or this blocks forever).
    pub fn join(self) -> Result<(), WireError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(WireError::Protocol("shard server thread panicked")),
        }
    }
}

/// The in-process [`ShardTransport`]: wraps a [`ShardServer`] and moves
/// replies as typed values through single-message slots. The query hot
/// path is byte-free and copy-free; ingest goes through the wire form
/// like every other transport (it is rare, and the round trip keeps the
/// codec honest).
pub struct LocalShard {
    /// `None` until bootstrapped ([`Self::awaiting`] + a shipped
    /// snapshot); always `Some` when built via [`Self::new`].
    server: Option<ShardServer>,
    /// Engine template held while awaiting a snapshot.
    pending: Option<EngineConfig>,
    round: RoundReply,
    round_ready: bool,
    vote: Option<f64>,
    ack: IngestAck,
    ack_ready: bool,
    snap_ack: SnapshotAck,
    snap_ack_ready: bool,
    compact_ack: CompactAck,
    compact_ack_ready: bool,
    stats: TransportStats,
}

impl LocalShard {
    fn empty(server: Option<ShardServer>, pending: Option<EngineConfig>) -> Self {
        LocalShard {
            server,
            pending,
            round: RoundReply::default(),
            round_ready: false,
            vote: None,
            ack: IngestAck::default(),
            ack_ready: false,
            snap_ack: SnapshotAck::default(),
            snap_ack_ready: false,
            compact_ack: CompactAck::default(),
            compact_ack_ready: false,
            stats: TransportStats::default(),
        }
    }

    /// Wrap a server.
    pub fn new(server: ShardServer) -> Self {
        Self::empty(Some(server), None)
    }

    /// A snapshot-awaiting transport: it holds only the engine template
    /// and builds its [`ShardServer`] from the first shipped snapshot —
    /// the in-process analogue of [`ShardServer::spawn_loopback_bootstrap`].
    /// Hand it to [`FleetEngine::bootstrap`].
    pub fn awaiting(config: EngineConfig) -> Self {
        Self::empty(None, Some(config))
    }

    /// The wrapped server, if bootstrapped.
    pub fn server(&self) -> Option<&ShardServer> {
        self.server.as_ref()
    }

    fn server_mut(&mut self) -> Result<&mut ShardServer, WireError> {
        self.server.as_mut().ok_or(WireError::Protocol("shard not bootstrapped"))
    }
}

impl ShardTransport for LocalShard {
    fn send_start(&mut self, msg: &Start) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        let LocalShard { server, round, .. } = self;
        let server = server.as_mut().ok_or(WireError::Protocol("shard not bootstrapped"))?;
        server.start_query(msg, round);
        self.round_ready = true;
        Ok(())
    }

    fn send_next_round(&mut self) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        let LocalShard { server, round, .. } = self;
        let server = server.as_mut().ok_or(WireError::Protocol("shard not bootstrapped"))?;
        server.next_round(round);
        self.round_ready = true;
        Ok(())
    }

    fn send_stop_check(&mut self, msg: &StopCheck) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        self.vote = Some(self.server_mut()?.stop_check(msg));
        Ok(())
    }

    fn send_end_query(&mut self) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        self.server_mut()?.end_query();
        Ok(())
    }

    fn send_ingest(&mut self, msg: &WireIngest) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        let mut ack = IngestAck::default();
        self.server_mut()?.ingest(msg, &mut ack);
        self.ack = ack;
        self.ack_ready = true;
        Ok(())
    }

    fn send_snapshot(
        &mut self,
        num_shards: u32,
        shard: u32,
        snapshot: &[u8],
    ) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        let config =
            self.pending.take().ok_or(WireError::Protocol("shard already bootstrapped"))?;
        let server = match ShardServer::from_snapshot(
            snapshot,
            config.clone(),
            num_shards as usize,
            shard as usize,
        ) {
            Ok(server) => server,
            Err(e) => {
                // A rejected snapshot leaves the shard still awaiting.
                self.pending = Some(config);
                return Err(e);
            }
        };
        self.snap_ack = snapshot_fingerprint(&server.instance);
        self.snap_ack_ready = true;
        self.server = Some(server);
        Ok(())
    }

    fn send_compact(&mut self) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        let mut ack = CompactAck::default();
        self.server_mut()?.compact(&mut ack);
        self.compact_ack = ack;
        self.compact_ack_ready = true;
        Ok(())
    }

    fn send_shutdown(&mut self) -> Result<(), WireError> {
        self.stats.frames_sent += 1;
        Ok(())
    }

    fn flush(&mut self) -> Result<(), WireError> {
        Ok(())
    }

    fn recv_round(&mut self, out: &mut RoundReply) -> Result<(), WireError> {
        if !self.round_ready {
            return Err(WireError::Protocol("no round reply pending"));
        }
        self.round_ready = false;
        self.stats.frames_received += 1;
        std::mem::swap(out, &mut self.round);
        Ok(())
    }

    fn recv_vote(&mut self) -> Result<f64, WireError> {
        self.stats.frames_received += 1;
        self.vote.take().ok_or(WireError::Protocol("no vote pending"))
    }

    fn recv_ingest_ack(&mut self, out: &mut IngestAck) -> Result<(), WireError> {
        if !self.ack_ready {
            return Err(WireError::Protocol("no ingest ack pending"));
        }
        self.ack_ready = false;
        self.stats.frames_received += 1;
        *out = self.ack;
        Ok(())
    }

    fn recv_snapshot_ack(&mut self, out: &mut SnapshotAck) -> Result<(), WireError> {
        if !self.snap_ack_ready {
            return Err(WireError::Protocol("no snapshot ack pending"));
        }
        self.snap_ack_ready = false;
        self.stats.frames_received += 1;
        *out = self.snap_ack;
        Ok(())
    }

    fn recv_compact_ack(&mut self, out: &mut CompactAck) -> Result<(), WireError> {
        if !self.compact_ack_ready {
            return Err(WireError::Protocol("no compact ack pending"));
        }
        self.compact_ack_ready = false;
        self.stats.frames_received += 1;
        *out = self.compact_ack;
        Ok(())
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

/// The fleet client: the sharded scatter-gather driven over N
/// [`ShardTransport`]s.
///
/// For every query and any transport mix, the returned [`TopKResult`] is
/// byte-identical (hits, candidate order, stop reason) to
/// [`crate::ShardedEngine`] with the same shard count — including after
/// shipped ingests. Property-tested in `tests/fleet.rs`.
pub struct FleetEngine {
    builder: InstanceBuilder,
    instance: Arc<S3Instance>,
    partition: Arc<ComponentPartition>,
    router: ShardRouter,
    search: SearchConfig,
    shards: Vec<Box<dyn ShardTransport>>,
    /// Admission gate for [`Self::serve`] (behind an `Arc` so the RAII
    /// slot ticket can outlive the `&mut self` the query drive needs).
    gate: Arc<AdmissionGate>,
    epoch: u64,
    rounds: u64,
    // Reused across rounds and queries: zero steady-state allocation on
    // the round exchange (the admission log is part of each result and
    // is allocated per query by design).
    start_msg: Start,
    stop_msg: StopCheck,
    replies: Vec<RoundReply>,
    active: Vec<usize>,
    merged: Vec<(usize, u32)>,
    cursors: Vec<usize>,
}

impl FleetEngine {
    /// Build the client over connected shard transports. `builder` must
    /// be generated identically to every shard server's.
    pub fn new(
        builder: InstanceBuilder,
        config: EngineConfig,
        shards: Vec<Box<dyn ShardTransport>>,
    ) -> Self {
        let instance = Arc::new(builder.snapshot());
        Self::from_parts(builder, instance, config, shards)
    }

    /// Build the client over serialized snapshot bytes, shipping them to
    /// every shard transport first: each shard decodes the same bytes,
    /// builds its replica, and answers with a consistency fingerprint
    /// that must match the client's own — no shard shares a builder with
    /// the client, and a diverged bootstrap is a hard error. This is how
    /// a fleet is (re)started from a durable [`s3_core::save_snapshot`].
    pub fn bootstrap(
        snapshot: &[u8],
        config: EngineConfig,
        mut shards: Vec<Box<dyn ShardTransport>>,
    ) -> Result<Self, WireError> {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        let (builder, instance) =
            read_snapshot(snapshot).map_err(|_| WireError::Value("snapshot rejected"))?;
        let instance = Arc::new(instance);
        let num_shards = shards.len() as u32;
        for (shard, transport) in shards.iter_mut().enumerate() {
            transport.send_snapshot(num_shards, shard as u32, snapshot)?;
        }
        for transport in &mut shards {
            transport.flush()?;
        }
        let expected = snapshot_fingerprint(&instance);
        let mut ack = SnapshotAck::default();
        for transport in &mut shards {
            transport.recv_snapshot_ack(&mut ack)?;
            if ack != expected {
                return Err(WireError::Protocol("shard snapshot bootstrap diverged"));
            }
        }
        Ok(Self::from_parts(builder, instance, config, shards))
    }

    fn from_parts(
        builder: InstanceBuilder,
        instance: Arc<S3Instance>,
        config: EngineConfig,
        shards: Vec<Box<dyn ShardTransport>>,
    ) -> Self {
        assert!(!shards.is_empty(), "a fleet needs at least one shard");
        let config = config.validated();
        let gate = Arc::new(AdmissionGate::new(config.overload));
        let mut search = config.search;
        search.component_filter = None;
        let partition = Arc::new(ComponentPartition::balanced(&instance, shards.len()));
        let router = ShardRouter::new(&instance, Arc::clone(&partition));
        let replies = shards.iter().map(|_| RoundReply::default()).collect();
        FleetEngine {
            builder,
            instance,
            partition,
            router,
            search,
            shards,
            gate,
            epoch: 0,
            rounds: 0,
            start_msg: Start::default(),
            stop_msg: StopCheck::default(),
            replies,
            active: Vec::new(),
            merged: Vec::new(),
            cursors: Vec::new(),
        }
    }

    /// The client's replica instance.
    pub fn instance(&self) -> &Arc<S3Instance> {
        &self.instance
    }

    /// The component partition (identical on every shard server).
    pub fn partition(&self) -> &ComponentPartition {
        &self.partition
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Ingest epoch (bumped once per shipped batch).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rounds driven so far (reply waves across all queries; `NoMatch`
    /// probes count as zero rounds, matching the in-process driver).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Per-shard transport traffic counters.
    pub fn transport_stats(&self) -> Vec<TransportStats> {
        self.shards.iter().map(|t| t.stats()).collect()
    }

    /// Merge the active shards' per-round admission logs into `order_log`
    /// by global trigger sequence. One component belongs to one shard, so
    /// sequences never tie across shards and the merge reconstructs the
    /// in-process admission order exactly.
    fn merge_admissions(&mut self, order_log: &mut Vec<DocNodeId>) {
        self.cursors.clear();
        self.cursors.resize(self.active.len(), 0);
        loop {
            let mut best: Option<(u32, usize)> = None;
            for (pos, &s) in self.active.iter().enumerate() {
                if let Some(&(seq, _)) = self.replies[s].admitted.get(self.cursors[pos]) {
                    if best.is_none_or(|(bseq, _)| seq < bseq) {
                        best = Some((seq, pos));
                    }
                }
            }
            let Some((seq, pos)) = best else { break };
            let admitted = &self.replies[self.active[pos]].admitted;
            while let Some(&(sq, doc)) = admitted.get(self.cursors[pos]) {
                if sq != seq {
                    break;
                }
                order_log.push(DocNodeId(doc));
                self.cursors[pos] += 1;
            }
        }
    }

    /// Fan the merged selection out to every active shard and gather the
    /// largest certified rival upper bound (the stop test's per-shard
    /// candidate sweep; [`FleetShard::rival_upper`]).
    fn rival_fanout(&mut self, min_lower: f64, k: usize) -> Result<f64, WireError> {
        for &s in &self.active {
            self.stop_msg.clear();
            self.stop_msg.merged_full = self.merged.len() == k;
            self.stop_msg.min_lower = min_lower;
            self.stop_msg.selected.extend(
                self.merged
                    .iter()
                    .filter(|&&(ms, _)| ms == s)
                    .map(|&(ms, j)| self.replies[ms].selection[j as usize].index),
            );
            self.shards[s].send_stop_check(&self.stop_msg)?;
        }
        for &s in &self.active {
            self.shards[s].flush()?;
        }
        let mut rival = 0.0f64;
        for &s in &self.active {
            rival = rival.max(self.shards[s].recv_vote()?);
        }
        Ok(rival)
    }

    /// Answer one query over the fleet.
    pub fn query(&mut self, query: &Query) -> Result<TopKResult, WireError> {
        let started = self.search.clock.now();
        self.router.route_into(&self.instance, query, &self.search, &mut self.active);
        if self.active.is_empty() {
            // No shard can admit a candidate, but the in-process driver
            // still runs the (empty) round loop to its stop iteration;
            // one shard reproduces that with an empty candidate pool.
            self.active.push(0);
        }
        self.start_msg.clear();
        self.start_msg.seeker = query.seeker.0;
        self.start_msg.k = query.k as u64;
        self.start_msg.keywords.extend(query.keywords.iter().map(|k| k.0));
        for &s in &self.active {
            self.shards[s].send_start(&self.start_msg)?;
        }
        for &s in &self.active {
            self.shards[s].flush()?;
        }
        for &s in &self.active {
            let (shards, replies) = (&mut self.shards, &mut self.replies);
            shards[s].recv_round(&mut replies[s])?;
        }
        if self.replies[self.active[0]].no_match {
            // Expansion is deterministic: every shard must agree, and no
            // round state was kept server-side (no EndQuery needed).
            debug_assert!(self.active.iter().all(|&s| self.replies[s].no_match));
            let stats = SearchStats { stop: StopReason::NoMatch, ..SearchStats::default() };
            return Ok(TopKResult { hits: Vec::new(), candidate_docs: Vec::new(), stats });
        }

        let eps = self.search.epsilon;
        let k = query.k;
        let mut order_log: Vec<DocNodeId> = Vec::new();
        loop {
            self.rounds += 1;
            self.merge_admissions(&mut order_log);

            // Gather: merge the per-shard greedy selections exactly like
            // the in-process driver (rank by upper desc, doc asc; the
            // merged prefix is the global greedy selection).
            self.merged.clear();
            for &s in &self.active {
                for j in 0..self.replies[s].selection.len() {
                    self.merged.push((s, j as u32));
                }
            }
            let replies = &self.replies;
            self.merged.sort_unstable_by(|&(sa, ja), &(sb, jb)| {
                let a = replies[sa].selection[ja as usize];
                let b = replies[sb].selection[jb as usize];
                s3_core::selection_rank(a.upper, DocNodeId(a.doc), b.upper, DocNodeId(b.doc))
            });
            self.merged.truncate(k);
            let min_lower = self
                .merged
                .iter()
                .map(|&(s, j)| self.replies[s].selection[j as usize].lower)
                .fold(f64::INFINITY, f64::min);
            let head = &self.replies[self.active[0]];
            let (threshold, frontier_closed, iteration) =
                (head.threshold, head.frontier_closed, head.iteration);

            // The global stop test, phase one (`partition_stop`'s
            // prefix): only when the merged selection passes the global
            // precondition is the per-shard candidate sweep worth a
            // round trip.
            let precondition =
                if self.merged.len() == k { threshold <= min_lower + eps } else { frontier_closed };
            let mut stop = None;
            let mut pool_rival = None;
            if precondition {
                let rival = self.rival_fanout(min_lower, k)?;
                pool_rival = Some(rival);
                // The per-shard sweeps' unanimous vote, reconstructed
                // from the rival bound: nothing unselected can displace
                // the merged answer (within ε when it is full).
                let converged =
                    if self.merged.len() == k { rival <= min_lower + eps } else { rival <= 0.0 };
                if converged {
                    stop = Some(StopReason::Converged);
                }
            }
            if stop.is_none() && iteration >= self.search.max_iterations {
                stop = Some(StopReason::MaxIterations);
            }
            if stop.is_none()
                && self
                    .search
                    .time_budget
                    .is_some_and(|budget| self.search.clock.now().saturating_sub(started) >= budget)
            {
                stop = Some(StopReason::TimeBudget);
            }

            if let Some(reason) = stop {
                let floor = if min_lower.is_finite() { min_lower } else { 0.0 };
                let quality = match reason {
                    StopReason::MaxIterations | StopReason::TimeBudget => {
                        let rival = match pool_rival {
                            Some(r) => r,
                            // Anytime stop on a round whose precondition
                            // failed: run one fan-out so the degraded
                            // answer still ships a certified bound.
                            None => self.rival_fanout(min_lower, k)?,
                        };
                        QualityBound::anytime(floor, threshold.max(rival), self.merged.len() == k)
                    }
                    _ => QualityBound::exact(floor),
                };
                for &s in &self.active {
                    self.shards[s].send_end_query()?;
                    self.shards[s].flush()?;
                }
                let hits: Vec<Hit> = self
                    .merged
                    .iter()
                    .map(|&(s, j)| {
                        let e = self.replies[s].selection[j as usize];
                        Hit { doc: DocNodeId(e.doc), lower: e.lower, upper: e.upper }
                    })
                    .collect();
                let mut stats = SearchStats {
                    iterations: iteration,
                    stop: reason,
                    resume: ResumeOutcome::Cold,
                    quality,
                    ..SearchStats::default()
                };
                for &s in &self.active {
                    let r = &self.replies[s];
                    stats.candidates += r.candidates as usize;
                    stats.rejected += r.rejected as usize;
                    stats.components += r.components as usize;
                    stats.pruned_components += r.pruned as usize;
                }
                return Ok(TopKResult { hits, candidate_docs: order_log, stats });
            }

            for &s in &self.active {
                self.shards[s].send_next_round()?;
            }
            for &s in &self.active {
                self.shards[s].flush()?;
            }
            for &s in &self.active {
                let (shards, replies) = (&mut self.shards, &mut self.replies);
                shards[s].recv_round(&mut replies[s])?;
            }
        }
    }

    /// Load and shedding counters for [`Self::serve`].
    pub fn load_stats(&self) -> LoadStats {
        self.gate.stats()
    }

    /// Answer one query through the admission gate with an optional
    /// per-query deadline ([`S3Engine::serve`]'s contract, minus the
    /// result cache — the fleet client does not keep one). A fleet
    /// client drives queries one at a time (`&mut self`), so the gate
    /// matters mostly for deadline and load accounting; degraded and
    /// deadline-capped admissions run the fan-out under the tightened
    /// time budget and return a certified best-effort answer.
    pub fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, WireError> {
        let arrival = self.search.clock.now();
        let gate = Arc::clone(&self.gate);
        let (ticket, floor) = match gate.admit() {
            Admission::Shed => return Ok(ServeOutcome::Shed),
            Admission::Full(t) => (t, None),
            Admission::Degraded(t, floor) => (t, Some(floor)),
        };
        let remaining = match deadline {
            Some(deadline) => {
                let waited = self.search.clock.now().saturating_sub(arrival);
                if waited >= deadline {
                    gate.note_expired();
                    return Ok(ServeOutcome::Expired);
                }
                Some(deadline - waited)
            }
            None => None,
        };
        let configured = self.search.time_budget;
        self.search.time_budget = gate::effective_budget(configured, remaining, floor);
        let result = self.query(query);
        self.search.time_budget = configured;
        drop(ticket);
        Ok(ServeOutcome::Answered(Arc::new(result?)))
    }

    /// Ship a batch to every shard (pipelined), apply it locally, and
    /// cross-check the acks: every replica must land on the same node
    /// count, delta class and epoch, or the fleet is declared diverged.
    pub fn ingest(&mut self, batch: &IngestBatch) -> Result<IngestSummary, WireError> {
        let wire = WireIngest::from_batch(batch);
        for t in &mut self.shards {
            t.send_ingest(&wire)?;
        }
        for t in &mut self.shards {
            t.flush()?;
        }
        let (instance, summary) = self.builder.apply(&self.instance, batch);
        self.instance = Arc::new(instance);
        self.partition = Arc::new(self.partition.extended(&self.instance));
        self.router = ShardRouter::new(&self.instance, Arc::clone(&self.partition));
        self.epoch += 1;
        let mut ack = IngestAck::default();
        for t in &mut self.shards {
            t.recv_ingest_ack(&mut ack)?;
            let expected = IngestAck {
                detached: summary.detached,
                epoch: self.epoch,
                nodes: self.instance.graph().num_nodes() as u64,
                touched: summary.touched_components.len() as u64,
            };
            if ack != expected {
                return Err(WireError::Protocol("shard replica diverged after ingest"));
            }
        }
        Ok(summary)
    }

    /// Compact every replica: ship a compaction request to every shard
    /// (pipelined), run the same [`InstanceBuilder::compact`] locally,
    /// re-partition and re-route over the clean instance, and cross-check
    /// the acks — every replica must land on the same fingerprint and
    /// epoch, or the fleet is declared diverged. Compaction densely
    /// renumbers entity ids, so callers must refresh any ids they hold.
    pub fn compact(&mut self) -> Result<CompactionReport, WireError> {
        for t in &mut self.shards {
            t.send_compact()?;
        }
        for t in &mut self.shards {
            t.flush()?;
        }
        let (builder, report) = self.builder.compact();
        self.builder = builder;
        self.instance = Arc::new(self.builder.snapshot());
        self.partition = Arc::new(ComponentPartition::balanced(&self.instance, self.shards.len()));
        self.router = ShardRouter::new(&self.instance, Arc::clone(&self.partition));
        self.epoch += 1;
        let fp = snapshot_fingerprint(&self.instance);
        let expected = CompactAck {
            epoch: self.epoch,
            nodes: fp.nodes,
            users: fp.users,
            docs: fp.docs,
            connections: fp.connections,
        };
        let mut ack = CompactAck::default();
        for t in &mut self.shards {
            t.recv_compact_ack(&mut ack)?;
            if ack != expected {
                return Err(WireError::Protocol("shard replica diverged after compaction"));
            }
        }
        Ok(report)
    }

    /// Send every shard a shutdown request and return the final per-shard
    /// traffic counters. Remote servers exit their serve loop; join their
    /// [`ShardHost`]s afterwards.
    pub fn shutdown(mut self) -> Result<Vec<TransportStats>, WireError> {
        let mut stats = Vec::with_capacity(self.shards.len());
        for t in &mut self.shards {
            t.send_shutdown()?;
            t.flush()?;
            stats.push(t.stats());
        }
        Ok(stats)
    }
}
