//! A slab-backed LRU map for query results.
//!
//! Entries live in a slab (`Vec`) threaded by an intrusive doubly-linked
//! recency list, with a `HashMap` index by key: `get` and `insert` are
//! O(1), eviction pops the list tail, and freed slots are recycled so a
//! warm cache performs no steady-state allocation. Not thread-safe by
//! itself — the engine wraps it in a `Mutex`.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// Fixed-capacity least-recently-used map.
#[derive(Debug)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Entry<K, V>>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<K: Clone + Eq + Hash, V> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (`capacity` ≥ 1).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "LRU capacity must be at least 1");
        LruCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Look up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &idx = self.map.get(key)?;
        self.move_to_front(idx);
        Some(&self.slab[idx].value)
    }

    /// Insert (or overwrite) `key`; returns the evicted least-recently-used
    /// `(key, value)` pair when the cache was full. A full cache recycles
    /// its tail slot in place, so the slab never grows past `capacity`.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.move_to_front(idx);
            return None;
        }
        if self.map.len() == self.capacity {
            let tail = self.tail;
            self.unlink(tail);
            let entry = &mut self.slab[tail];
            let old_key = std::mem::replace(&mut entry.key, key.clone());
            let old_value = std::mem::replace(&mut entry.value, value);
            self.map.remove(&old_key);
            self.map.insert(key, tail);
            self.push_front(tail);
            Some((old_key, old_value))
        } else {
            self.slab.push(Entry { key: key.clone(), value, prev: NIL, next: NIL });
            let idx = self.slab.len() - 1;
            self.map.insert(key, idx);
            self.push_front(idx);
            None
        }
    }

    /// Drop every entry (keeps allocations).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        self.push_front(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        assert_eq!(lru.get(&"a"), Some(&1)); // refresh a; b is now LRU
        let evicted = lru.insert("c", 3).expect("must evict");
        assert_eq!(evicted, ("b", 2));
        assert_eq!(lru.get(&"b"), None);
        assert_eq!(lru.get(&"a"), Some(&1));
        assert_eq!(lru.get(&"c"), Some(&3));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn overwrite_refreshes_without_evicting() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none());
        assert_eq!(lru.get(&"a"), Some(&10));
        // "b" must have been the eviction victim candidate after the
        // overwrite refreshed "a".
        let evicted = lru.insert("c", 3).expect("full");
        assert_eq!(evicted.0, "b");
    }

    #[test]
    fn capacity_one_cycles() {
        let mut lru = LruCache::new(1);
        for i in 0..10 {
            lru.insert(i, i * 2);
            assert_eq!(lru.len(), 1);
            assert_eq!(lru.get(&i), Some(&(i * 2)));
        }
        assert_eq!(lru.get(&3), None);
    }

    #[test]
    fn clear_resets() {
        let mut lru = LruCache::new(4);
        for i in 0..4 {
            lru.insert(i, i);
        }
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.get(&1), None);
        lru.insert(9, 9);
        assert_eq!(lru.get(&9), Some(&9));
    }

    #[test]
    fn slot_recycling_bounds_slab_growth() {
        let mut lru = LruCache::new(3);
        for i in 0..100 {
            lru.insert(i, i);
        }
        assert_eq!(lru.len(), 3);
        assert!(lru.slab.len() <= 3, "slab must not grow past capacity");
        for i in 97..100 {
            assert_eq!(lru.get(&i), Some(&i));
        }
    }
}
