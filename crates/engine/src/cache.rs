//! The pluggable result-cache store: LRU or W-TinyLFU admission over a
//! segmented LRU, with optional per-entry TTL.
//!
//! [`PolicyCache`] keeps every entry in one slab (`Vec`) threaded by
//! intrusive doubly-linked recency lists — one per segment — with a
//! `HashMap` index by key, so `get` and `insert` stay O(1) and freed
//! slots are recycled through a free list. Which segments exist is the
//! [`CachePolicy`]:
//!
//! * **`Lru`** — everything lives in a single recency list (the window);
//!   a full cache evicts its tail. This is the pre-admission behaviour.
//! * **`TinyLfu`** — a small LRU *admission window* sits in front of a
//!   segmented *probation*/*protected* main region. New entries land in
//!   the window; the window's eviction candidate is admitted to
//!   probation only if a [`FrequencySketch`] (4-bit count-min counters
//!   plus a doorkeeper bloom filter, both halved/cleared every sample
//!   period) estimates it more frequent than the main region's eviction
//!   victim. A probation hit promotes to protected; protected overflow
//!   demotes back to probation. One-hit-wonder traffic therefore churns
//!   the tiny window instead of flushing the hot main region.
//!
//! TTL is expire-after-write: entries are stamped at insert (an
//! overwrite refreshes the stamp), checked **lazily on `get`** — an
//! expired entry is dropped and reported as a miss — and **swept on
//! `insert`** by trimming expired runs off each segment's LRU tail. The
//! sweep is opportunistic (recency order is not expiry order, so a
//! recently-touched expired entry can linger at a list front until its
//! next lookup); `get` is the authoritative check, so an expired value
//! is never *served*. Time comes from a [`CacheClock`] so tests can
//! drive expiry deterministically.
//!
//! The admission policy and TTL only ever decide *whether* a lookup
//! hits — never *what* is returned — so every policy/TTL configuration
//! is byte-identical to an uncached run (property-tested in
//! `tests/parity.rs`). Not thread-safe by itself — the engine wraps the
//! store in a `Mutex`.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NIL: usize = usize::MAX;

/// Admission/eviction policy for the result cache (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachePolicy {
    /// Plain least-recently-used: recency-only, no admission filter.
    Lru,
    /// W-TinyLFU: frequency-filtered admission into a probation/protected
    /// main region behind a small LRU window.
    TinyLfu {
        /// Fraction of the capacity given to the admission window
        /// (clamped so the window holds at least one entry).
        window_frac: f64,
        /// Fraction of the main region reserved for the protected
        /// segment (entries promoted by a probation hit).
        protected_frac: f64,
    },
}

impl Default for CachePolicy {
    /// `Lru` — the backward-compatible default; serving stacks opt into
    /// [`CachePolicy::tiny_lfu`].
    fn default() -> Self {
        CachePolicy::Lru
    }
}

impl CachePolicy {
    /// W-TinyLFU with this crate's default parameters: a 10% admission
    /// window and an 80%-protected main region. A window this size keeps
    /// recency-heavy streams (mild Zipf skew) at LRU-level hit rates
    /// while the filter still rejects one-hit-wonder scans; shrink it
    /// toward 1% for strongly frequency-biased traffic.
    pub fn tiny_lfu() -> Self {
        CachePolicy::TinyLfu { window_frac: 0.1, protected_frac: 0.8 }
    }

    /// Clamp the fractions into `[0, 1]`; non-finite values fall back to
    /// the [`CachePolicy::tiny_lfu`] defaults. Idempotent.
    pub fn validated(self) -> Self {
        match self {
            CachePolicy::Lru => CachePolicy::Lru,
            CachePolicy::TinyLfu { window_frac, protected_frac } => {
                let clamp =
                    |v: f64, dflt: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { dflt };
                CachePolicy::TinyLfu {
                    window_frac: clamp(window_frac, 0.1),
                    protected_frac: clamp(protected_frac, 0.8),
                }
            }
        }
    }
}

/// The cache's time source: monotonic wall clock in production, a shared
/// manually-advanced counter in tests (deterministic TTL expiry).
#[derive(Debug, Clone)]
pub enum CacheClock {
    /// Elapsed time since the clock was created.
    Monotonic(Instant),
    /// Nanoseconds read from a shared counter the test advances.
    Manual(Arc<AtomicU64>),
}

impl CacheClock {
    /// The production clock.
    pub fn monotonic() -> Self {
        CacheClock::Monotonic(Instant::now())
    }

    /// A manual clock plus the handle that advances it (in nanoseconds).
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let ticks = Arc::new(AtomicU64::new(0));
        (CacheClock::Manual(Arc::clone(&ticks)), ticks)
    }

    /// Time elapsed since the clock's origin.
    pub fn now(&self) -> Duration {
        match self {
            CacheClock::Monotonic(base) => base.elapsed(),
            CacheClock::Manual(ticks) => Duration::from_nanos(ticks.load(Ordering::Relaxed)),
        }
    }
}

/// TinyLFU's frequency estimator: a count-min sketch of 4-bit saturating
/// counters (16 per `u64` word, 4 probes per key) fronted by a doorkeeper
/// bloom filter that absorbs the first sighting of every key. Every
/// `sample_period` recorded accesses, all counters are halved and the
/// doorkeeper is cleared, so estimates track the *recent* access
/// distribution instead of all history.
#[derive(Debug)]
pub struct FrequencySketch {
    table: Vec<u64>,
    counter_mask: u64,
    doorkeeper: Vec<u64>,
    door_mask: u64,
    additions: u64,
    sample_period: u64,
    resets: u64,
}

const SEEDS: [u64; 4] =
    [0x9E37_79B9_7F4A_7C15, 0xC2B2_AE3D_27D4_EB4F, 0x1656_67B1_9E37_79F9, 0xD6E8_FEB8_6659_FD93];

impl FrequencySketch {
    /// A sketch sized for `capacity` cache entries (16 counters per
    /// entry, rounded up to a power of two; sample period 10×capacity).
    pub fn new(capacity: usize) -> Self {
        let words = capacity.max(16).next_power_of_two();
        let counters = words * 16;
        let door_words = counters / 64;
        FrequencySketch {
            table: vec![0; words],
            counter_mask: (counters - 1) as u64,
            doorkeeper: vec![0; door_words],
            door_mask: (counters - 1) as u64,
            additions: 0,
            sample_period: capacity.max(16) as u64 * 10,
            resets: 0,
        }
    }

    fn spread(hash: u64, seed: u64) -> u64 {
        let mut h = hash.wrapping_add(seed).wrapping_mul(seed | 1);
        h ^= h >> 32;
        h
    }

    fn door_bits(&self, hash: u64) -> [u64; 2] {
        [
            Self::spread(hash, SEEDS[0] ^ SEEDS[2]) & self.door_mask,
            Self::spread(hash, SEEDS[1] ^ SEEDS[3]) & self.door_mask,
        ]
    }

    fn door_contains(&self, hash: u64) -> bool {
        self.door_bits(hash)
            .iter()
            .all(|&b| self.doorkeeper[(b / 64) as usize] & (1 << (b % 64)) != 0)
    }

    /// Set the doorkeeper bits for `hash`; returns whether they were all
    /// already set (a repeat sighting within this sample period).
    fn door_insert(&mut self, hash: u64) -> bool {
        let mut seen = true;
        for b in self.door_bits(hash) {
            let (word, bit) = ((b / 64) as usize, 1u64 << (b % 64));
            if self.doorkeeper[word] & bit == 0 {
                seen = false;
                self.doorkeeper[word] |= bit;
            }
        }
        seen
    }

    fn increment(&mut self, counter: u64) {
        let word = (counter >> 4) as usize;
        let shift = (counter & 15) * 4;
        if (self.table[word] >> shift) & 0xF < 15 {
            self.table[word] += 1 << shift;
        }
    }

    /// Record one access. The first sighting of a key since the last
    /// reset only sets its doorkeeper bits; repeats count in the sketch.
    pub fn record(&mut self, hash: u64) {
        if self.door_insert(hash) {
            for seed in SEEDS {
                self.increment(Self::spread(hash, seed) & self.counter_mask);
            }
        }
        self.additions += 1;
        if self.additions >= self.sample_period {
            self.reset();
        }
    }

    /// Estimated access count of `hash` within the current sample: the
    /// minimum over the four probed counters, plus one if the doorkeeper
    /// has seen the key.
    pub fn frequency(&self, hash: u64) -> u32 {
        let mut min = u32::MAX;
        for seed in SEEDS {
            let counter = Self::spread(hash, seed) & self.counter_mask;
            let word = (counter >> 4) as usize;
            let shift = (counter & 15) * 4;
            min = min.min(((self.table[word] >> shift) & 0xF) as u32);
        }
        min + u32::from(self.door_contains(hash))
    }

    /// How many sample-period resets (counter halvings) have happened.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Forget everything: zero all counters and the doorkeeper and
    /// restart the sample. Used when the keyed population changes
    /// wholesale (an epoch bump), where aged estimates could only alias.
    pub fn clear(&mut self) {
        self.table.iter_mut().for_each(|w| *w = 0);
        self.doorkeeper.iter_mut().for_each(|w| *w = 0);
        self.additions = 0;
    }

    /// Halve every counter (dropping each nibble's low bit) and clear
    /// the doorkeeper — the aging step that keeps the estimate recent.
    fn reset(&mut self) {
        for word in &mut self.table {
            *word = (*word >> 1) & 0x7777_7777_7777_7777;
        }
        self.doorkeeper.iter_mut().for_each(|w| *w = 0);
        self.additions /= 2;
        self.resets += 1;
    }
}

fn hash_of<K: Hash + ?Sized>(key: &K) -> u64 {
    // DefaultHasher::new() hashes with fixed keys: deterministic within
    // and across runs, which keeps the sketch (and tests) reproducible.
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Window = 0,
    Probation = 1,
    Protected = 2,
}

#[derive(Debug)]
struct Node<K, V> {
    key: K,
    value: V,
    /// Clock time past which this entry may not be served (TTL stamp).
    expires_at: Option<Duration>,
    seg: Segment,
    prev: usize,
    next: usize,
}

#[derive(Debug, Clone, Copy)]
struct List {
    head: usize,
    tail: usize,
    len: usize,
}

impl Default for List {
    fn default() -> Self {
        List { head: NIL, tail: NIL, len: 0 }
    }
}

/// Why entries left the store, by cause (monotonic; survives `clear`).
/// The caller layers hit/miss/invalidation counting on top.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Window candidates admitted into the main region (TinyLFU only).
    pub admitted: u64,
    /// Window candidates denied admission by the frequency filter and
    /// dropped (TinyLFU only; *not* counted in `evictions`).
    pub rejected: u64,
    /// Entries displaced by capacity pressure: main-region victims that
    /// lost to an admitted candidate, and window-tail drops under `Lru`.
    pub evictions: u64,
    /// Entries dropped because their TTL ran out (lazily on `get` or by
    /// the insert-time sweep).
    pub expired: u64,
}

fn is_expired(expires_at: Option<Duration>, now: Duration) -> bool {
    expires_at.is_some_and(|e| e <= now)
}

/// Fixed-capacity policy-driven map (see the module docs).
#[derive(Debug)]
pub struct PolicyCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    /// Recycled slab slots (an entry's value is dropped when its slot is
    /// reused; the slab never outgrows capacity + 1).
    free: Vec<usize>,
    lists: [List; 3],
    window_cap: usize,
    main_cap: usize,
    protected_cap: usize,
    sketch: Option<FrequencySketch>,
    ttl: Option<Duration>,
    clock: CacheClock,
    counters: StoreCounters,
}

impl<K: Clone + Eq + Hash, V> PolicyCache<K, V> {
    /// An empty store holding at most `capacity` entries (`capacity` ≥ 1)
    /// under `policy`, with optional expire-after-write `ttl`.
    pub fn new(
        capacity: usize,
        policy: CachePolicy,
        ttl: Option<Duration>,
        clock: CacheClock,
    ) -> Self {
        assert!(capacity >= 1, "cache capacity must be at least 1");
        let (window_cap, main_cap, protected_cap, sketch) = match policy.validated() {
            CachePolicy::Lru => (capacity, 0, 0, None),
            CachePolicy::TinyLfu { window_frac, protected_frac } => {
                let window = ((capacity as f64 * window_frac).round() as usize).clamp(1, capacity);
                let main = capacity - window;
                let protected = ((main as f64 * protected_frac).round() as usize).min(main);
                (window, main, protected, Some(FrequencySketch::new(capacity)))
            }
        };
        PolicyCache {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity.min(1024)),
            free: Vec::new(),
            lists: [List::default(); 3],
            window_cap,
            main_cap,
            protected_cap,
            sketch,
            ttl,
            clock,
            counters: StoreCounters::default(),
        }
    }

    /// Number of live entries (may include expired entries not yet
    /// observed by a lookup or sweep).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.window_cap + self.main_cap
    }

    /// Drop-cause counters.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// Look `key` up, marking it most recently used (and promoting a
    /// probation hit) on success. A TinyLFU store records the access in
    /// its frequency sketch whether or not the lookup hits; an entry
    /// past its TTL is dropped and reported as a miss.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if let Some(sketch) = &mut self.sketch {
            sketch.record(hash_of(key));
        }
        let &idx = self.map.get(key)?;
        if is_expired(self.slab[idx].expires_at, self.clock.now()) {
            self.unlink(idx);
            self.discard(idx);
            self.counters.expired += 1;
            return None;
        }
        self.touch(idx);
        Some(&self.slab[idx].value)
    }

    /// Insert (or overwrite, refreshing the TTL stamp of) `key`. New
    /// entries enter the admission window; the displaced window tail is
    /// admitted to the main region, evicting its victim, or dropped —
    /// per the policy. Expired runs are swept off the segment tails
    /// first.
    pub fn insert(&mut self, key: K, value: V) {
        let now = self.clock.now();
        self.sweep_expired(now);
        let expires_at = self.ttl.map(|t| now.saturating_add(t));
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = value;
            self.slab[idx].expires_at = expires_at;
            self.touch(idx);
            return;
        }
        let idx = self.alloc(key, value, expires_at);
        self.push_front(Segment::Window, idx);
        if self.lists[Segment::Window as usize].len > self.window_cap {
            let candidate = self.lists[Segment::Window as usize].tail;
            self.unlink(candidate);
            self.admit(candidate);
        }
    }

    /// Drop every entry (keeps allocations and counters). The frequency
    /// sketch is cleared too: a `clear` accompanies an epoch bump, after
    /// which no old key ever recurs — stale counters would only alias
    /// into new keys' admission contests.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.lists = [List::default(); 3];
        if let Some(sketch) = &mut self.sketch {
            sketch.clear();
        }
    }

    /// The admission decision for the window's eviction candidate
    /// (already unlinked): into probation, or out of the cache.
    fn admit(&mut self, candidate: usize) {
        if self.main_cap == 0 {
            // Pure-LRU shape (or a degenerate TinyLFU capacity): the
            // window *is* the cache and its tail is evicted.
            self.counters.evictions += 1;
            self.discard(candidate);
            return;
        }
        let main_len = self.lists[Segment::Probation as usize].len
            + self.lists[Segment::Protected as usize].len;
        if main_len < self.main_cap {
            self.counters.admitted += 1;
            self.push_front(Segment::Probation, candidate);
            return;
        }
        let victim = if self.lists[Segment::Probation as usize].len > 0 {
            self.lists[Segment::Probation as usize].tail
        } else {
            self.lists[Segment::Protected as usize].tail
        };
        // The admission invariant: a candidate may only displace the
        // victim when the sketch estimates it strictly more frequent —
        // ties keep the incumbent, so one-hit wonders never flush a
        // warmer entry.
        let admit = match &self.sketch {
            Some(sketch) => {
                sketch.frequency(hash_of(&self.slab[candidate].key))
                    > sketch.frequency(hash_of(&self.slab[victim].key))
            }
            None => true,
        };
        if admit {
            self.unlink(victim);
            self.discard(victim);
            self.counters.evictions += 1;
            self.counters.admitted += 1;
            self.push_front(Segment::Probation, candidate);
        } else {
            self.counters.rejected += 1;
            self.discard(candidate);
        }
    }

    /// Mark a hit: bump recency, promoting probation hits to protected
    /// (demoting the protected tail back when over capacity).
    fn touch(&mut self, idx: usize) {
        let seg = self.slab[idx].seg;
        self.unlink(idx);
        if seg == Segment::Probation && self.protected_cap > 0 {
            self.push_front(Segment::Protected, idx);
            if self.lists[Segment::Protected as usize].len > self.protected_cap {
                let demote = self.lists[Segment::Protected as usize].tail;
                self.unlink(demote);
                self.push_front(Segment::Probation, demote);
            }
        } else {
            self.push_front(seg, idx);
        }
    }

    /// Trim expired runs off each segment's LRU tail (opportunistic; see
    /// the module docs — `get` is the authoritative expiry check).
    fn sweep_expired(&mut self, now: Duration) {
        if self.ttl.is_none() {
            return;
        }
        for seg in [Segment::Window, Segment::Probation, Segment::Protected] {
            loop {
                let tail = self.lists[seg as usize].tail;
                if tail == NIL || !is_expired(self.slab[tail].expires_at, now) {
                    break;
                }
                self.unlink(tail);
                self.discard(tail);
                self.counters.expired += 1;
            }
        }
    }

    fn alloc(&mut self, key: K, value: V, expires_at: Option<Duration>) -> usize {
        let node = Node {
            key: key.clone(),
            value,
            expires_at,
            seg: Segment::Window,
            prev: NIL,
            next: NIL,
        };
        let idx = if let Some(idx) = self.free.pop() {
            self.slab[idx] = node;
            idx
        } else {
            self.slab.push(node);
            self.slab.len() - 1
        };
        self.map.insert(key, idx);
        idx
    }

    /// Forget an already-unlinked entry. Its value stays in the slab slot
    /// until the slot is reused (bounded by capacity), so `Arc` payloads
    /// are released no later than the next insert cycle.
    fn discard(&mut self, idx: usize) {
        self.map.remove(&self.slab[idx].key);
        self.free.push(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let seg = self.slab[idx].seg as usize;
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.lists[seg].head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.lists[seg].tail = prev;
        }
        self.lists[seg].len -= 1;
        self.slab[idx].prev = NIL;
        self.slab[idx].next = NIL;
    }

    fn push_front(&mut self, seg: Segment, idx: usize) {
        let s = seg as usize;
        self.slab[idx].seg = seg;
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.lists[s].head;
        if self.lists[s].head != NIL {
            self.slab[self.lists[s].head].prev = idx;
        }
        self.lists[s].head = idx;
        if self.lists[s].tail == NIL {
            self.lists[s].tail = idx;
        }
        self.lists[s].len += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(capacity: usize) -> PolicyCache<&'static str, i32> {
        PolicyCache::new(capacity, CachePolicy::Lru, None, CacheClock::monotonic())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = lru(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        assert_eq!(cache.get(&"a"), Some(&1)); // refresh a; b is now LRU
        cache.insert("c", 3);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&1));
        assert_eq!(cache.get(&"c"), Some(&3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn lru_overwrite_refreshes_without_evicting() {
        let mut cache = lru(2);
        cache.insert("a", 1);
        cache.insert("b", 2);
        cache.insert("a", 10);
        assert_eq!(cache.counters().evictions, 0);
        assert_eq!(cache.get(&"a"), Some(&10));
        // "b" must be the eviction victim after the overwrite refreshed "a".
        cache.insert("c", 3);
        assert_eq!(cache.get(&"b"), None);
        assert_eq!(cache.get(&"a"), Some(&10));
    }

    #[test]
    fn lru_capacity_one_cycles() {
        let mut cache: PolicyCache<i32, i32> =
            PolicyCache::new(1, CachePolicy::Lru, None, CacheClock::monotonic());
        for i in 0..10 {
            cache.insert(i, i * 2);
            assert_eq!(cache.len(), 1);
        }
        assert_eq!(cache.get(&3), None);
        assert_eq!(cache.get(&9), Some(&18));
    }

    #[test]
    fn clear_resets_entries_but_keeps_counters() {
        let mut cache = lru(2);
        for (k, v) in [("a", 1), ("b", 2), ("c", 3)] {
            cache.insert(k, v);
        }
        let evicted = cache.counters().evictions;
        assert_eq!(evicted, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.get(&"c"), None);
        cache.insert("z", 9);
        assert_eq!(cache.get(&"z"), Some(&9));
        assert_eq!(cache.counters().evictions, evicted, "clear is not an eviction");
    }

    #[test]
    fn slot_recycling_bounds_slab_growth() {
        let mut cache: PolicyCache<i32, i32> =
            PolicyCache::new(3, CachePolicy::Lru, None, CacheClock::monotonic());
        for i in 0..100 {
            cache.insert(i, i);
        }
        assert_eq!(cache.len(), 3);
        assert!(cache.slab.len() <= 4, "slab must stay within capacity + 1");
    }

    fn tiny(
        capacity: usize,
        window_frac: f64,
        protected_frac: f64,
    ) -> PolicyCache<&'static str, i32> {
        PolicyCache::new(
            capacity,
            CachePolicy::TinyLfu { window_frac, protected_frac },
            None,
            CacheClock::monotonic(),
        )
    }

    #[test]
    fn capacity_splits_into_window_and_main() {
        let cache = tiny(100, 0.1, 0.5);
        assert_eq!((cache.window_cap, cache.main_cap, cache.protected_cap), (10, 90, 45));
        // The window never rounds to zero, and Lru is all window.
        let one = tiny(8, 0.0, 0.5);
        assert_eq!(one.window_cap, 1);
        let all = lru(8);
        assert_eq!((all.window_cap, all.main_cap), (8, 0));
    }

    #[test]
    fn admission_rejects_one_hit_wonders() {
        // Window 1, main 3: heat up three keys, then stream strangers.
        let mut cache = tiny(4, 0.25, 0.5);
        for key in ["a", "b", "c"] {
            cache.get(&key); // record a sighting before the insert
            cache.insert(key, 0);
        }
        // Push them through the window into main and build frequency.
        cache.insert("pusher", 0);
        for _ in 0..3 {
            for key in ["a", "b", "c"] {
                assert!(cache.get(&key).is_some(), "{key} must be resident");
            }
        }
        let rejected_before = cache.counters().rejected;
        const WONDERS: [&str; 6] = ["w0", "w1", "w2", "w3", "w4", "w5"];
        for (i, key) in WONDERS.into_iter().enumerate() {
            assert_eq!(cache.get(&key), None);
            cache.insert(key, i as i32);
        }
        for key in ["a", "b", "c"] {
            assert!(cache.get(&key).is_some(), "hot {key} must survive the scan");
        }
        assert!(
            cache.counters().rejected > rejected_before,
            "the frequency filter must deny cold candidates ({:?})",
            cache.counters()
        );
    }

    #[test]
    fn repeated_candidate_earns_admission() {
        let mut cache = tiny(4, 0.25, 0.5);
        for key in ["a", "b", "c"] {
            cache.get(&key);
            cache.insert(key, 0);
        }
        cache.insert("pusher", 0); // main now holds a, b, c
                                   // A new key seen repeatedly outscores the coldest incumbent.
        for _ in 0..4 {
            assert_eq!(cache.get(&"hot"), None);
        }
        cache.insert("hot", 1);
        cache.insert("pusher2", 0); // displace "hot" out of the window
        assert_eq!(cache.get(&"hot"), Some(&1), "frequent candidate must be admitted");
        assert!(cache.counters().admitted > 0);
    }

    #[test]
    fn probation_hit_promotes_and_protected_overflow_demotes() {
        let mut cache = tiny(8, 0.125, 0.5); // window 1, main 7, protected 4
        assert_eq!(cache.protected_cap, 4);
        for key in ["a", "b", "c", "d", "e", "f"] {
            cache.insert(key, 0);
        }
        // Everything but the window resident ("f") sits in probation.
        assert_eq!(cache.lists[Segment::Probation as usize].len, 5);
        assert_eq!(cache.lists[Segment::Protected as usize].len, 0);
        cache.get(&"a");
        cache.get(&"b");
        assert_eq!(cache.lists[Segment::Protected as usize].len, 2);
        assert_eq!(cache.lists[Segment::Probation as usize].len, 3);
        cache.get(&"c");
        cache.get(&"d");
        assert_eq!(cache.lists[Segment::Protected as usize].len, 4);
        // Promote past the protected capacity: the tail ("a") demotes back.
        cache.get(&"e");
        assert_eq!(cache.lists[Segment::Protected as usize].len, cache.protected_cap);
        assert_eq!(cache.lists[Segment::Probation as usize].len, 1, "one entry demoted");
        assert!(cache.get(&"a").is_some(), "the demoted entry stays resident");
    }

    #[test]
    fn ttl_expires_lazily_on_get() {
        let (clock, ticks) = CacheClock::manual();
        let mut cache: PolicyCache<&str, i32> =
            PolicyCache::new(4, CachePolicy::Lru, Some(Duration::from_nanos(100)), clock);
        cache.insert("a", 1);
        ticks.store(50, Ordering::Relaxed);
        assert_eq!(cache.get(&"a"), Some(&1), "still fresh at t=50");
        ticks.store(101, Ordering::Relaxed);
        assert_eq!(cache.get(&"a"), None, "expired at t=101");
        assert_eq!(cache.counters().expired, 1);
        assert_eq!(cache.len(), 0, "the expired entry is gone, not hidden");
    }

    #[test]
    fn ttl_zero_expires_immediately() {
        let (clock, _ticks) = CacheClock::manual();
        let mut cache: PolicyCache<&str, i32> =
            PolicyCache::new(4, CachePolicy::tiny_lfu(), Some(Duration::ZERO), clock);
        cache.insert("a", 1);
        assert_eq!(cache.get(&"a"), None, "TTL 0 entries are never served");
        assert_eq!(cache.counters().expired, 1);
    }

    #[test]
    fn ttl_sweep_trims_expired_tails_on_insert() {
        let (clock, ticks) = CacheClock::manual();
        let mut cache: PolicyCache<&str, i32> =
            PolicyCache::new(8, CachePolicy::Lru, Some(Duration::from_nanos(100)), clock);
        cache.insert("a", 1);
        cache.insert("b", 2);
        ticks.store(200, Ordering::Relaxed);
        cache.insert("c", 3);
        assert_eq!(cache.counters().expired, 2, "the sweep dropped both stale entries");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&"c"), Some(&3));
    }

    #[test]
    fn ttl_overwrite_refreshes_the_stamp() {
        let (clock, ticks) = CacheClock::manual();
        let mut cache: PolicyCache<&str, i32> =
            PolicyCache::new(4, CachePolicy::Lru, Some(Duration::from_nanos(100)), clock);
        cache.insert("a", 1);
        ticks.store(60, Ordering::Relaxed);
        cache.insert("a", 2);
        ticks.store(120, Ordering::Relaxed);
        assert_eq!(cache.get(&"a"), Some(&2), "overwrite at t=60 pushes expiry to t=160");
        ticks.store(161, Ordering::Relaxed);
        assert_eq!(cache.get(&"a"), None);
    }

    #[test]
    fn sketch_estimates_repeat_accesses() {
        let mut sketch = FrequencySketch::new(64);
        let (hot, cold) = (hash_of(&"hot"), hash_of(&"cold"));
        assert_eq!(sketch.frequency(hot), 0);
        sketch.record(hot);
        assert_eq!(sketch.frequency(hot), 1, "first sighting lives in the doorkeeper");
        for _ in 0..6 {
            sketch.record(hot);
        }
        assert!(sketch.frequency(hot) >= 6);
        sketch.record(cold);
        assert!(sketch.frequency(hot) > sketch.frequency(cold));
    }

    #[test]
    fn sketch_counters_saturate_at_fifteen() {
        let mut sketch = FrequencySketch::new(16);
        let h = hash_of(&42u32);
        for _ in 0..100 {
            sketch.record(h);
        }
        assert!(sketch.frequency(h) <= 16, "4-bit counters + doorkeeper cap the estimate");
    }

    #[test]
    fn clear_resets_the_sketch_with_the_entries() {
        let mut cache = tiny(4, 0.25, 0.5);
        for _ in 0..5 {
            cache.get(&"hot");
        }
        cache.insert("hot", 1);
        assert!(cache.sketch.as_ref().expect("tinylfu").frequency(hash_of(&"hot")) >= 5);
        cache.clear();
        assert_eq!(
            cache.sketch.as_ref().expect("tinylfu").frequency(hash_of(&"hot")),
            0,
            "an epoch bump must not leak stale frequencies into new contests"
        );
    }

    #[test]
    fn sample_period_halves_counters_and_clears_doorkeeper() {
        let mut sketch = FrequencySketch::new(16); // sample period 160
        let h = hash_of(&"key");
        for _ in 0..12 {
            sketch.record(h);
        }
        let before = sketch.frequency(h);
        assert!(before >= 12, "doorkeeper + counters track the accesses (got {before})");
        // Pad with distinct keys until the period triggers a reset.
        let mut i = 0u64;
        while sketch.resets() == 0 {
            sketch.record(hash_of(&i));
            i += 1;
            assert!(i < 10_000, "reset must trigger within the sample period");
        }
        let after = sketch.frequency(h);
        assert!(
            after <= before / 2,
            "halving + doorkeeper clear must at least halve the estimate \
             ({before} -> {after})"
        );
        assert_eq!(sketch.resets(), 1);
    }
}
