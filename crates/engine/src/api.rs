//! The unified serving API: one [`Engine`] trait over every engine type.
//!
//! The crate grew five ways to serve the same search — [`S3Engine`]
//! (frozen, unsharded), [`ShardedEngine`] (frozen scatter-gather),
//! [`LiveEngine`] / [`LiveShardedEngine`] (ingest while serving), and
//! [`FleetEngine`] (cross-process scatter-gather) — with slightly
//! different surfaces: `&self` vs `&mut self`, infallible vs
//! `Result<_, WireError>`, three separate stats accessors. [`Engine`]
//! is the common denominator every harness, example and benchmark can
//! be written against:
//!
//! * `query` / `serve` take `&mut self` (the fleet client drives
//!   transports serially) and return `Result` (only transports and
//!   journals can actually fail; the in-process engines never do);
//! * [`Engine::stats`] returns the consolidated [`EngineStats`] — the
//!   result-cache, warm-resume and load counters in one struct with one
//!   `Display` — instead of three separately-fetched values;
//! * engines that can ingest while serving also implement [`Ingest`].
//!
//! All five implementations answer byte-identically for the same data
//! (the crate-wide property bar), so code written against `dyn Engine`
//! is oblivious to which one it drives — `tests/api.rs` runs one shared
//! harness over all of them.

use crate::gate::{LoadStats, ServeOutcome};
use crate::persist::PersistError;
use crate::{
    CacheStats, FleetEngine, LiveEngine, LiveShardedEngine, ResumeStats, S3Engine, ShardedEngine,
};
use s3_core::{IngestBatch, IngestSummary, Query, TopKResult};
use s3_wire::WireError;
use std::sync::Arc;
use std::time::Duration;

/// Errors a serving call can surface. In-process engines never fail;
/// the fleet client surfaces transport errors, and durable live engines
/// surface journal errors on ingest.
#[derive(Debug)]
pub enum EngineError {
    /// A fleet transport failed (I/O, protocol, replica divergence).
    Wire(WireError),
    /// The durability layer failed (WAL append, snapshot write).
    Persist(PersistError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Wire(e) => write!(f, "fleet transport: {e}"),
            EngineError::Persist(e) => write!(f, "durability: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Wire(e) => Some(e),
            EngineError::Persist(e) => Some(e),
        }
    }
}

impl From<WireError> for EngineError {
    fn from(e: WireError) -> Self {
        EngineError::Wire(e)
    }
}

impl From<PersistError> for EngineError {
    fn from(e: PersistError) -> Self {
        EngineError::Persist(e)
    }
}

/// Every serving counter in one place: what [`Engine::stats`] returns.
///
/// Engines without a given subsystem report that section's defaults
/// (e.g. the fleet client keeps no result cache, so `cache` stays
/// all-zero).
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Result-cache counters.
    pub cache: CacheStats,
    /// Warm-propagation (resume) counters.
    pub resume: ResumeStats,
    /// Admission-gate load counters.
    pub load: LoadStats,
}

impl std::fmt::Display for EngineStats {
    /// Three serving-log lines: cache, resume, load.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cache: {}\nresume: {}\nload: {}", self.cache, self.resume, self.load)
    }
}

/// The unified serving interface (see the module docs).
pub trait Engine {
    /// Answer one query.
    fn query(&mut self, query: &Query) -> Result<Arc<TopKResult>, EngineError>;

    /// Answer one query through the admission gate with an optional
    /// per-query deadline.
    fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, EngineError>;

    /// The consolidated serving counters.
    fn stats(&self) -> EngineStats;
}

/// Engines that can ingest new data while serving.
pub trait Ingest: Engine {
    /// Apply one batch; queries issued after this call see its data.
    fn ingest(&mut self, batch: &IngestBatch) -> Result<IngestSummary, EngineError>;
}

impl Engine for S3Engine {
    fn query(&mut self, query: &Query) -> Result<Arc<TopKResult>, EngineError> {
        Ok(S3Engine::query(self, query))
    }

    fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, EngineError> {
        Ok(S3Engine::serve(self, query, deadline))
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache_stats(),
            resume: self.resume_stats(),
            load: self.load_stats(),
        }
    }
}

impl Engine for ShardedEngine {
    fn query(&mut self, query: &Query) -> Result<Arc<TopKResult>, EngineError> {
        Ok(ShardedEngine::query(self, query))
    }

    fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, EngineError> {
        Ok(ShardedEngine::serve(self, query, deadline))
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache_stats(),
            resume: self.resume_stats(),
            load: self.load_stats(),
        }
    }
}

impl Engine for LiveEngine {
    fn query(&mut self, query: &Query) -> Result<Arc<TopKResult>, EngineError> {
        Ok(LiveEngine::query(self, query))
    }

    fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, EngineError> {
        Ok(LiveEngine::serve(self, query, deadline))
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache_stats(),
            resume: self.resume_stats(),
            load: self.load_stats(),
        }
    }
}

impl Ingest for LiveEngine {
    fn ingest(&mut self, batch: &IngestBatch) -> Result<IngestSummary, EngineError> {
        Ok(LiveEngine::try_ingest(self, batch)?.summary)
    }
}

impl Engine for LiveShardedEngine {
    fn query(&mut self, query: &Query) -> Result<Arc<TopKResult>, EngineError> {
        Ok(LiveShardedEngine::query(self, query))
    }

    fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, EngineError> {
        Ok(LiveShardedEngine::serve(self, query, deadline))
    }

    fn stats(&self) -> EngineStats {
        EngineStats {
            cache: self.cache_stats(),
            resume: self.resume_stats(),
            load: self.load_stats(),
        }
    }
}

impl Ingest for LiveShardedEngine {
    fn ingest(&mut self, batch: &IngestBatch) -> Result<IngestSummary, EngineError> {
        Ok(LiveShardedEngine::try_ingest_with(self, batch, false)?.summary)
    }
}

impl Engine for FleetEngine {
    fn query(&mut self, query: &Query) -> Result<Arc<TopKResult>, EngineError> {
        Ok(Arc::new(FleetEngine::query(self, query)?))
    }

    fn serve(
        &mut self,
        query: &Query,
        deadline: Option<Duration>,
    ) -> Result<ServeOutcome, EngineError> {
        Ok(FleetEngine::serve(self, query, deadline)?)
    }

    fn stats(&self) -> EngineStats {
        // The fleet client keeps no result cache or warm pool of its
        // own; only the gate's load counters apply.
        EngineStats { load: self.load_stats(), ..EngineStats::default() }
    }
}

impl Ingest for FleetEngine {
    fn ingest(&mut self, batch: &IngestBatch) -> Result<IngestSummary, EngineError> {
        Ok(FleetEngine::ingest(self, batch)?)
    }
}
