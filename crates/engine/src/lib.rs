//! Placeholder; replaced by the serving layer implementation.
