//! The S3 serving layer: concurrent batched query execution over a shared
//! instance, with per-worker scratch reuse and a policy-driven result
//! cache (LRU or W-TinyLFU admission, optional TTL).
//!
//! The core crate answers one query at a time against a borrowed
//! [`S3Instance`]. This crate turns that algorithm into a substrate a
//! server can drive:
//!
//! * [`S3Engine`] owns an `Arc<S3Instance>` and is `Send + Sync`: any
//!   number of threads may call [`S3Engine::query`] /
//!   [`S3Engine::run_batch`] concurrently;
//! * batches fan out over a pool of scoped workers, each holding one
//!   [`SearchScratch`] checked out of the engine's pool — warm workers
//!   answer queries without steady-state allocation (the scratch pool
//!   persists across batches);
//! * results are cached in a [`cache::PolicyCache`] keyed by
//!   `(seeker, normalized keywords, k, config epoch)` with hit/miss/
//!   eviction counters. The eviction/admission policy is pluggable
//!   ([`CachePolicy`]: plain LRU, or W-TinyLFU frequency-filtered
//!   admission), entries can carry an expire-after-write TTL
//!   ([`EngineConfig::cache_ttl`]), and changing the search configuration
//!   bumps the epoch, so entries computed under a stale configuration can
//!   never be served — even when an in-flight batch inserts them after
//!   the change;
//! * a seeker-keyed warm propagation pool ([`ResumeStats`], epoch-stamped
//!   like the cache) routes each query to a propagation already advanced
//!   for its seeker, which the search *resumes* instead of resetting —
//!   repeat-seeker traffic skips the explore steps already taken, with
//!   byte-identical results;
//! * answers are returned as `Arc<TopKResult>`: cache hits are zero-copy.
//!
//! Batched, cached and warm-scratch execution is result-identical to a
//! cold `S3kEngine::run` — property-tested in `tests/parity.rs`.
//!
//! For scale-out beyond one instance, [`shard::ShardedEngine`] partitions
//! the content components across a fleet of `S3Engine` shards and
//! scatter-gathers each query, byte-identically to a single engine
//! (property-tested in `tests/sharding.rs`).

#![warn(missing_docs)]
// The public `EngineConfig` fields are deprecated in favour of
// `EngineConfig::builder()` and will be privatized in the next release;
// until then the crate itself still reads and fills them directly.
#![allow(deprecated)]

pub mod api;
mod batch;
pub mod cache;
pub mod fleet;
pub mod gate;
pub mod live;
pub mod persist;
pub mod shard;
mod warm;

pub use api::{Engine, EngineError, EngineStats, Ingest};
pub use cache::CachePolicy;
pub use fleet::{FleetEngine, LocalShard, ShardHost, ShardServer};
pub use gate::{LoadStats, OverloadConfig, OverloadPolicy, ServeOutcome};
pub use live::{IngestReport, InvalidationScope, LiveEngine, LiveShardedEngine};
pub use persist::{
    Checkpoint, CheckpointReport, Checkpointer, Compact, CompactReport, CompactionPolicy,
    Compactor, PersistError, RecoveryReport, RecoverySource,
};
pub use shard::{ShardRouter, ShardedEngine};
pub use warm::ResumeStats;

use batch::{CacheKey, EpochConfig, ResultCache};
use gate::{Admission, AdmissionGate};
use s3_core::{
    Propagation, Query, S3Instance, S3kEngine, ScoreModel, SearchConfig, SearchScratch, StopReason,
    TopKResult, UserId,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use warm::PropPool;

/// Hard ceiling on batch worker threads: absurd `EngineConfig::threads`
/// requests clamp here (see [`EngineConfig::validated`]).
pub const MAX_BATCH_THREADS: usize = 128;

/// Serving-layer configuration.
///
/// Build one with [`EngineConfig::builder`]:
///
/// ```
/// use s3_engine::EngineConfig;
/// let config = EngineConfig::builder().threads(2).cache_capacity(256).build();
/// assert_eq!(config.threads, 2);
/// ```
///
/// The public fields are deprecated (they will be privatized in the
/// next release): the builder validates once at [`EngineConfigBuilder::build`],
/// so hand-assembled out-of-range configurations can no longer reach an
/// engine unclamped.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The search configuration every query runs under.
    #[deprecated(note = "use EngineConfig::builder().search(..)")]
    #[doc(hidden)]
    pub search: SearchConfig,
    /// Worker threads for batched execution (1 = run the batch inline).
    /// Out-of-range values are clamped at engine construction: 0 becomes
    /// 1, anything above [`MAX_BATCH_THREADS`] becomes that ceiling.
    #[deprecated(note = "use EngineConfig::builder().threads(..)")]
    #[doc(hidden)]
    pub threads: usize,
    /// Result-cache capacity in entries; 0 disables caching cleanly
    /// (every query computes, counters still track the misses).
    #[deprecated(note = "use EngineConfig::builder().cache_capacity(..)")]
    #[doc(hidden)]
    pub cache_capacity: usize,
    /// Result-cache eviction/admission policy. `Lru` (the default) is
    /// recency-only; [`CachePolicy::tiny_lfu`] adds W-TinyLFU
    /// frequency-filtered admission, which holds hit rates under
    /// one-hit-wonder traffic. The policy only changes *whether* a
    /// lookup hits, never *what* is returned.
    #[deprecated(note = "use EngineConfig::builder().cache_policy(..)")]
    #[doc(hidden)]
    pub cache_policy: CachePolicy,
    /// Optional expire-after-write TTL for cached results: entries older
    /// than this are never served (checked lazily on lookup, swept on
    /// insert) — the age-out knob for serving stacks that want bounded
    /// staleness windows without an epoch bump. `None` (the default)
    /// keeps entries until displaced or invalidated.
    #[deprecated(note = "use EngineConfig::builder().cache_ttl(..)")]
    #[doc(hidden)]
    pub cache_ttl: Option<Duration>,
    /// Capacity of the seeker-keyed warm propagation map: how many
    /// seekers' propagations stay parked between queries for same-seeker
    /// resume ([`ResumeStats`]). Each warm entry holds O(|graph|) buffers,
    /// so this stays deliberately small; 0 disables seeker affinity
    /// (workers still resume across *consecutive* same-seeker queries
    /// they claim, unless `search.resume` is off).
    #[deprecated(note = "use EngineConfig::builder().warm_seekers(..)")]
    #[doc(hidden)]
    pub warm_seekers: usize,
    /// Overload control for the `serve` entry points: an in-flight cap
    /// plus the policy applied past it ([`OverloadPolicy`]). `None` (the
    /// default) admits everything — `serve` then behaves exactly like
    /// `query` plus deadline accounting, and the query paths are
    /// untouched either way.
    #[deprecated(note = "use EngineConfig::builder().overload(..)")]
    #[doc(hidden)]
    pub overload: Option<OverloadConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            search: SearchConfig::default(),
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            cache_capacity: 4096,
            cache_policy: CachePolicy::default(),
            cache_ttl: None,
            warm_seekers: 16,
            overload: None,
        }
    }
}

impl EngineConfig {
    /// Clamp out-of-range values to their documented fallbacks: `threads`
    /// to `1..=MAX_BATCH_THREADS`, the cache policy's fractions into
    /// `[0, 1]` ([`CachePolicy::validated`]). Called by [`S3Engine::new`]
    /// and [`ShardedEngine::new`]; idempotent.
    pub fn validated(mut self) -> Self {
        self.threads = self.threads.clamp(1, MAX_BATCH_THREADS);
        self.cache_policy = self.cache_policy.validated();
        self.overload = self.overload.map(OverloadConfig::validated);
        self
    }

    /// Start a chained builder from the defaults. [`EngineConfigBuilder::build`]
    /// runs [`Self::validated`] exactly once, so a built configuration is
    /// always in range.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: EngineConfig::default() }
    }
}

/// Chained builder for [`EngineConfig`] — see [`EngineConfig::builder`].
/// Every setter overwrites the corresponding default; [`Self::build`]
/// validates once and returns the finished configuration.
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// The search configuration every query runs under.
    pub fn search(mut self, search: SearchConfig) -> Self {
        self.config.search = search;
        self
    }

    /// Worker threads for batched execution (clamped into
    /// `1..=`[`MAX_BATCH_THREADS`] at [`Self::build`]).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Result-cache capacity in entries (0 disables caching).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Result-cache eviction/admission policy.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.config.cache_policy = policy;
        self
    }

    /// Expire-after-write TTL for cached results. Accepts a bare
    /// [`Duration`] or an `Option` (to thread a maybe-TTL through).
    pub fn cache_ttl(mut self, ttl: impl Into<Option<Duration>>) -> Self {
        self.config.cache_ttl = ttl.into();
        self
    }

    /// Capacity of the seeker-keyed warm propagation map.
    pub fn warm_seekers(mut self, seekers: usize) -> Self {
        self.config.warm_seekers = seekers;
        self
    }

    /// Overload control for the `serve` entry points. Accepts a bare
    /// [`OverloadConfig`] or an `Option`.
    pub fn overload(mut self, overload: impl Into<Option<OverloadConfig>>) -> Self {
        self.config.overload = overload.into();
        self
    }

    /// Validate ([`EngineConfig::validated`], once) and return the
    /// finished configuration.
    pub fn build(self) -> EngineConfig {
        self.config.validated()
    }
}

/// Cache effectiveness counters (monotonic since engine construction,
/// except `entries` which is the current fill).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups not served from the cache. In-batch duplicates of one
    /// uncached query each count as a miss even though only the first
    /// occurrence runs a search.
    pub misses: u64,
    /// Entries displaced by capacity pressure (main-region victims that
    /// lost an admission contest, and plain LRU tail drops). Rejected
    /// admission candidates are counted in `rejected`, not here.
    pub evictions: u64,
    /// Admission-window candidates accepted into the main cache region
    /// (always 0 under [`CachePolicy::Lru`]).
    pub admitted: u64,
    /// Admission-window candidates denied by the TinyLFU frequency
    /// filter and dropped (always 0 under [`CachePolicy::Lru`]).
    pub rejected: u64,
    /// Entries dropped because their [`EngineConfig::cache_ttl`] ran out
    /// — a *staleness* age-out, counted separately from the correctness
    /// drops in `invalidated`.
    pub expired: u64,
    /// Entries dropped by an explicit epoch-bump invalidation (a search
    /// configuration change, or a live-ingestion snapshot swap whose
    /// delta reached this cache's scope). Scoped ingestion leaves
    /// untouched shards' caches out of this count — the observable behind
    /// the shard-local invalidation claim.
    pub invalidated: u64,
    /// Current number of cached results.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0.0 when no lookups
    /// have happened yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of admission contests the candidate won (0.0 before any
    /// candidate reached the filter; 1.0 under plain LRU would mean
    /// nothing, so it also reports 0.0 when no contest happened).
    pub fn admission_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    /// One serving-log line with every counter and the (guarded) hit
    /// rate — what the examples print as their final cache report.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses (hit rate {:.2}) — {} entries, {} evicted, \
             {} admitted, {} rejected, {} expired, {} invalidated",
            self.hits,
            self.misses,
            self.hit_rate(),
            self.entries,
            self.evictions,
            self.admitted,
            self.rejected,
            self.expired,
            self.invalidated,
        )
    }
}

/// The serving engine: a shared, thread-safe façade over one instance.
///
/// ```
/// use s3_core::{InstanceBuilder, Query};
/// use s3_doc::DocBuilder;
/// use s3_engine::{EngineConfig, S3Engine};
/// use s3_text::Language;
/// use std::sync::Arc;
///
/// let mut b = InstanceBuilder::new(Language::English);
/// let u = b.add_user();
/// let kws = b.analyze("a degree");
/// let mut doc = DocBuilder::new("post");
/// doc.set_content(doc.root(), kws);
/// b.add_document(doc, Some(u));
/// let engine = S3Engine::new(Arc::new(b.build()), EngineConfig::builder().threads(2).build());
///
/// let keywords = engine.instance().query_keywords("degree");
/// let batch: Vec<Query> = (0..8).map(|_| Query::new(u, keywords.clone(), 3)).collect();
/// let results = engine.run_batch(&batch);
/// assert!(results.iter().all(|r| r.hits.len() == 1));
/// let again = engine.run_batch(&batch);
/// assert_eq!(engine.cache_stats().hits, 8, "the warm batch is served from cache");
/// assert_eq!(again[0].hits, results[0].hits);
/// ```
pub struct S3Engine {
    instance: Arc<S3Instance>,
    /// Search config + epoch, snapshotted per batch. `Arc`-shared with a
    /// live engine's successors so the one epoch line survives snapshot
    /// swaps.
    config: Arc<EpochConfig>,
    threads: usize,
    cache: Arc<ResultCache>,
    scratch_pool: Arc<Mutex<Vec<SearchScratch>>>,
    /// Seeker-keyed warm propagations for same-seeker resume.
    props: Arc<PropPool>,
    /// Admission gate for the `serve` entry point (shared with live
    /// successors so load counters and in-flight depth survive swaps).
    gate: Arc<AdmissionGate>,
}

impl S3Engine {
    /// Build a serving engine over a shared instance. The configuration
    /// is [`EngineConfig::validated`] first.
    pub fn new(instance: Arc<S3Instance>, config: EngineConfig) -> Self {
        let EngineConfig {
            search,
            threads,
            cache_capacity,
            cache_policy,
            cache_ttl,
            warm_seekers,
            overload,
        } = config.validated();
        S3Engine {
            instance,
            config: Arc::new(EpochConfig::new(search)),
            threads,
            cache: Arc::new(ResultCache::new(cache_capacity, cache_policy, cache_ttl)),
            scratch_pool: Arc::new(Mutex::new(Vec::new())),
            props: Arc::new(PropPool::new(warm_seekers)),
            gate: Arc::new(AdmissionGate::new(overload)),
        }
    }

    /// An engine over `instance` that *shares* this engine's cache, warm
    /// pools and scratch pool — the live-ingestion successor: in-flight
    /// queries keep the old engine (and its snapshot) alive, new queries
    /// see the new one, and the warm state carries across because it is
    /// the same state. The configuration/epoch line is **carried
    /// forward, not shared**: the successor gets its own `EpochConfig`
    /// at the predecessor's current value (`+1` when `bump`), so a
    /// reader still pinning the old engine can only ever stamp cache
    /// insertions with the *old* epoch — it can never poison a key the
    /// new engine would serve. The caller is responsible for cache
    /// purges / warm-pool migration matching the bump it requested.
    pub(crate) fn succeed(&self, instance: Arc<S3Instance>, bump: bool) -> S3Engine {
        let (search, epoch) = self.config.snapshot();
        S3Engine {
            instance,
            config: Arc::new(EpochConfig::new_at(search, epoch + u64::from(bump))),
            threads: self.threads,
            cache: Arc::clone(&self.cache),
            scratch_pool: Arc::clone(&self.scratch_pool),
            props: Arc::clone(&self.props),
            gate: Arc::clone(&self.gate),
        }
    }

    /// The shared warm pool (live-ingestion migration hook).
    pub(crate) fn prop_pool(&self) -> &Arc<PropPool> {
        &self.props
    }

    /// The shared result cache (live-ingestion invalidation hook).
    pub(crate) fn result_cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// The shared instance.
    pub fn instance(&self) -> &Arc<S3Instance> {
        &self.instance
    }

    /// The current search configuration.
    pub fn search_config(&self) -> SearchConfig {
        self.config.search()
    }

    /// The current configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.config.epoch()
    }

    /// Replace the search configuration, bumping the epoch: results cached
    /// under the previous configuration can no longer be served (in-flight
    /// batches may still insert stale-epoch entries; their keys never match
    /// a post-change lookup, and LRU pressure retires them). The now
    /// unservable cache entries and warm propagations are dropped and
    /// counted ([`CacheStats::invalidated`], [`ResumeStats::invalidated`]).
    pub fn set_search_config(&self, search: SearchConfig) {
        self.config.replace(search);
        self.cache.invalidate();
        self.props.invalidate_all();
    }

    /// Cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Propagation-reuse counters (seeker-affinity hits, resumed and
    /// fallback searches).
    pub fn resume_stats(&self) -> ResumeStats {
        self.props.stats()
    }

    /// Answer one query (through the cache).
    pub fn query(&self, query: &Query) -> Arc<TopKResult> {
        self.run_batch_on(std::slice::from_ref(query), 1).pop().expect("one result")
    }

    /// Load and shedding counters for the [`Self::serve`] entry point.
    pub fn load_stats(&self) -> LoadStats {
        self.gate.stats()
    }

    /// Answer one query through the admission gate, with an optional
    /// per-query deadline measured from this call by the search clock
    /// (time spent queued for a slot counts against it).
    ///
    /// A cache hit is returned without claiming a slot. On a miss the
    /// gate decides: shed ([`ServeOutcome::Shed`]), admit at full budget,
    /// or admit degraded — the query's time budget capped at the
    /// [`OverloadPolicy::DegradeAnytime`] floor and the remaining
    /// deadline, so it returns a certified best-effort answer
    /// (`stats.quality`) instead of queueing unboundedly. A query whose
    /// deadline lapses before it runs is dropped
    /// ([`ServeOutcome::Expired`]). Only exact answers enter the result
    /// cache: a degraded answer must never mask the full answer an
    /// uncongested repeat could compute — the warm propagation pool keeps
    /// its state, so that repeat resumes instead of starting over.
    ///
    /// Without an [`EngineConfig::overload`] policy and without a
    /// deadline, `serve` is [`Self::query`] with load accounting.
    pub fn serve(&self, query: &Query, deadline: Option<Duration>) -> ServeOutcome {
        let (search_config, epoch) = self.config.snapshot();
        let arrival = search_config.clock.now();
        if let Some(hit) = self.cache.lookup(&CacheKey::new(query, epoch)) {
            return ServeOutcome::Answered(hit);
        }
        let (ticket, floor) = match self.gate.admit() {
            Admission::Shed => return ServeOutcome::Shed,
            Admission::Full(t) => (t, None),
            Admission::Degraded(t, floor) => (t, Some(floor)),
        };
        let remaining = match deadline {
            Some(deadline) => {
                let waited = search_config.clock.now().saturating_sub(arrival);
                if waited >= deadline {
                    self.gate.note_expired();
                    return ServeOutcome::Expired;
                }
                Some(deadline - waited)
            }
            None => None,
        };
        let mut config = search_config;
        config.time_budget = gate::effective_budget(config.time_budget, remaining, floor);
        let mut out = self.execute(std::slice::from_ref(query), &[0], &config, epoch, 1);
        drop(ticket);
        let (_, result) = out.pop().expect("one result");
        let result = Arc::new(result);
        if matches!(result.stats.stop, StopReason::Converged | StopReason::NoMatch) {
            self.cache.insert(CacheKey::new(query, epoch), Arc::clone(&result));
        }
        ServeOutcome::Answered(result)
    }

    /// Answer a batch concurrently on the configured worker count.
    /// Results are positionally aligned with `queries` and identical to
    /// running each query alone.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Arc<TopKResult>> {
        self.run_batch_on(queries, self.threads)
    }

    /// Answer a batch on an explicit worker count (1 = inline). Worker
    /// scratches come from the engine's pool and return to it afterwards,
    /// so steady-state batches do not re-grow search buffers.
    pub fn run_batch_on(&self, queries: &[Query], threads: usize) -> Vec<Arc<TopKResult>> {
        let (search_config, epoch) = self.config.snapshot();
        self.cache.run_cached(queries, epoch, |misses| {
            self.execute(queries, misses, &search_config, epoch, threads)
        })
    }

    /// Run the missed queries, fanning out over scoped workers. Returns
    /// `(batch index, result)` pairs.
    fn execute(
        &self,
        queries: &[Query],
        misses: &[usize],
        search_config: &SearchConfig,
        epoch: u64,
        threads: usize,
    ) -> Vec<(usize, TopKResult)> {
        let workers = threads.max(1).min(misses.len());
        let cursor = AtomicUsize::new(0);
        let gamma = search_config.score.gamma();
        batch::fan_out(workers, || {
            // One S3k engine per worker: the Smax table is shared through
            // the instance cache. The scratch comes from the engine's pool
            // and returns to it afterwards. The propagation is routed by
            // seeker: each query binds the warm state parked for its
            // seeker (resumed by the search when possible), and the
            // previous seeker's state is parked back.
            let engine = S3kEngine::new(&self.instance, search_config.clone());
            let graph = self.instance.graph();
            let mut scratch = self.check_out_scratch();
            let mut prop: Option<Propagation<'_>> = None;
            let mut prop_key = UserId(0);
            let mut out = Vec::new();
            loop {
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = misses.get(slot) else { break };
                let query = &queries[i];
                if prop.is_none() || prop_key != query.seeker {
                    if let Some(p) = prop.take() {
                        self.props.check_in(prop_key, epoch, p.detach());
                    }
                    let state = self.props.check_out(query.seeker, epoch);
                    let seeker = self.instance.user_node(query.seeker);
                    prop = Some(Propagation::attach(graph, gamma, seeker, state));
                    prop_key = query.seeker;
                }
                let result = engine.run_with(query, &mut scratch, &mut prop);
                self.props.note(result.stats.resume);
                out.push((i, result));
            }
            if let Some(p) = prop.take() {
                self.props.check_in(prop_key, epoch, p.detach());
            }
            self.check_in_scratch(scratch);
            out
        })
    }

    pub(crate) fn check_out_scratch(&self) -> SearchScratch {
        self.scratch_pool.lock().expect("scratch pool poisoned").pop().unwrap_or_default()
    }

    pub(crate) fn check_in_scratch(&self, scratch: SearchScratch) {
        self.scratch_pool.lock().expect("scratch pool poisoned").push(scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_core::{InstanceBuilder, UserId};
    use s3_doc::DocBuilder;
    use s3_text::{KeywordId, Language};

    fn tiny_engine_with(config: EngineConfig) -> (S3Engine, UserId, Vec<KeywordId>) {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        b.add_social_edge(u1, u0, 1.0);
        let kws = b.analyze("universities give degrees");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(u0));
        let inst = Arc::new(b.build());
        let keywords = inst.query_keywords("degree");
        let engine = S3Engine::new(inst, config);
        (engine, u1, keywords)
    }

    fn tiny_engine(cache_capacity: usize) -> (S3Engine, UserId, Vec<KeywordId>) {
        tiny_engine_with(EngineConfig::builder().cache_capacity(cache_capacity).threads(2).build())
    }

    #[test]
    fn repeat_query_hits_cache() {
        let (engine, seeker, kws) = tiny_engine(16);
        let q = Query::new(seeker, kws, 3);
        let first = engine.query(&q);
        let second = engine.query(&q);
        assert!(Arc::ptr_eq(&first, &second), "second answer must be the cached Arc");
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn keyword_order_and_duplicates_share_an_entry() {
        let (engine, seeker, kws) = tiny_engine(16);
        let more = engine.instance().query_keywords("universities");
        let a = vec![kws[0], more[0]];
        let b = vec![more[0], kws[0], kws[0]];
        let first = engine.query(&Query::new(seeker, a, 3));
        let second = engine.query(&Query::new(seeker, b, 3));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(engine.cache_stats().hits, 1);
    }

    #[test]
    fn config_change_invalidates_served_results() {
        let (engine, seeker, kws) = tiny_engine(16);
        let q = Query::new(seeker, kws, 3);
        engine.query(&q);
        let epoch_before = engine.config_epoch();
        engine.set_search_config(SearchConfig {
            score: s3_core::S3kScore::new(2.0, 0.5),
            ..SearchConfig::default()
        });
        assert_eq!(engine.config_epoch(), epoch_before + 1);
        engine.query(&q);
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0, "post-change lookup must miss");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn cache_disabled_still_answers() {
        let (engine, seeker, kws) = tiny_engine(0);
        let q = Query::new(seeker, kws, 3);
        let a = engine.query(&q);
        let b = engine.query(&q);
        assert_eq!(a.hits, b.hits);
        assert_eq!(engine.cache_stats(), CacheStats { misses: 2, ..CacheStats::default() });
    }

    #[test]
    fn batch_with_duplicates_aligns_positionally() {
        let (engine, seeker, kws) = tiny_engine(16);
        let q = Query::new(seeker, kws.clone(), 3);
        let empty = Query::new(seeker, vec![KeywordId(9999)], 3);
        let batch = vec![q.clone(), empty.clone(), q.clone(), q, empty];
        let results = engine.run_batch(&batch);
        assert_eq!(results.len(), 5);
        assert_eq!(results[0].hits, results[2].hits);
        assert!(Arc::ptr_eq(&results[0], &results[2]));
        assert!(results[1].hits.is_empty() && results[4].hits.is_empty());
        assert!(!results[0].hits.is_empty());
    }

    #[test]
    fn eviction_counter_tracks_capacity_pressure() {
        let (engine, seeker, _) = tiny_engine(2);
        for k in 1..=5 {
            let kws = engine.instance().query_keywords("degree");
            engine.query(&Query::new(seeker, kws, k));
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 3);
    }

    #[test]
    fn engine_config_clamps_thread_counts() {
        assert_eq!(EngineConfig::builder().threads(0).build().validated().threads, 1);
        assert_eq!(
            EngineConfig::builder().threads(usize::MAX).build().validated().threads,
            MAX_BATCH_THREADS
        );
        let sane = EngineConfig::builder().threads(3).build().validated();
        assert_eq!(sane.threads, 3);

        // A zero-thread engine still answers (clamped to inline).
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        let kws = b.analyze("a degree");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(u));
        let inst = Arc::new(b.build());
        let engine = S3Engine::new(
            Arc::clone(&inst),
            EngineConfig::builder().threads(0).cache_capacity(0).build(),
        );
        let keywords = inst.query_keywords("degree");
        let batch: Vec<Query> = (0..4).map(|_| Query::new(u, keywords.clone(), 2)).collect();
        assert!(engine.run_batch(&batch).iter().all(|r| r.hits.len() == 1));
    }

    #[test]
    fn tinylfu_repeat_query_hits_like_lru() {
        let (engine, seeker, kws) = tiny_engine_with(
            EngineConfig::builder()
                .cache_capacity(16)
                .cache_policy(CachePolicy::tiny_lfu())
                .threads(2)
                .build(),
        );
        let q = Query::new(seeker, kws, 3);
        let first = engine.query(&q);
        let second = engine.query(&q);
        assert!(Arc::ptr_eq(&first, &second), "second answer must be the cached Arc");
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn tinylfu_capacity_pressure_counts_admissions() {
        let (engine, seeker, _) = tiny_engine_with(
            EngineConfig::builder()
                .cache_capacity(3)
                .cache_policy(CachePolicy::TinyLfu { window_frac: 0.34, protected_frac: 0.5 })
                .threads(1)
                .build(),
        );
        // Distinct queries (by k) overflow the 1-entry window into main.
        for k in 1..=8 {
            let kws = engine.instance().query_keywords("degree");
            engine.query(&Query::new(seeker, kws, k));
        }
        let stats = engine.cache_stats();
        assert!(stats.entries <= 3);
        assert!(stats.admitted >= 2, "main has room for two admissions ({stats})");
        assert!(
            stats.admitted + stats.rejected + stats.evictions >= 5,
            "every window overflow must be accounted for ({stats})"
        );
        assert!(stats.admission_rate() > 0.0 && stats.admission_rate() <= 1.0);
    }

    #[test]
    fn tinylfu_zero_capacity_still_answers() {
        let (engine, seeker, kws) = tiny_engine_with(
            EngineConfig::builder()
                .cache_capacity(0)
                .cache_policy(CachePolicy::tiny_lfu())
                .threads(1)
                .build(),
        );
        let q = Query::new(seeker, kws, 3);
        let a = engine.query(&q);
        let b = engine.query(&q);
        assert_eq!(a.hits, b.hits);
        assert_eq!(engine.cache_stats(), CacheStats { misses: 2, ..CacheStats::default() });
    }

    #[test]
    fn ttl_zero_expires_immediately_with_identical_answers() {
        let (engine, seeker, kws) = tiny_engine_with(
            EngineConfig::builder()
                .cache_capacity(16)
                .cache_ttl(Some(Duration::ZERO))
                .threads(1)
                .build(),
        );
        let q = Query::new(seeker, kws, 3);
        let a = engine.query(&q);
        let b = engine.query(&q);
        assert_eq!(a.hits, b.hits, "expiry may change whether we hit, never what we return");
        let stats = engine.cache_stats();
        assert_eq!(stats.hits, 0, "a TTL-0 entry is never served");
        assert_eq!(stats.misses, 2);
        assert!(stats.expired >= 1, "the stale entry must be counted expired ({stats})");
        assert_eq!(stats.invalidated, 0, "no epoch bump happened");
    }

    #[test]
    fn ttl_expiry_and_epoch_invalidation_count_separately() {
        // TTL arm: drops surface as `expired`, not `invalidated`.
        let (engine, seeker, kws) = tiny_engine_with(
            EngineConfig::builder()
                .cache_capacity(16)
                .cache_ttl(Some(Duration::ZERO))
                .threads(1)
                .build(),
        );
        let q = Query::new(seeker, kws.clone(), 3);
        engine.query(&q);
        engine.query(&q);
        let ttl_stats = engine.cache_stats();
        assert!(ttl_stats.expired >= 1 && ttl_stats.invalidated == 0, "{ttl_stats}");

        // Epoch arm: drops surface as `invalidated`, not `expired`.
        let (engine, seeker, kws) = tiny_engine_with(
            EngineConfig::builder()
                .cache_capacity(16)
                .cache_ttl(Some(Duration::from_secs(3600)))
                .threads(1)
                .build(),
        );
        engine.query(&Query::new(seeker, kws, 3));
        engine.set_search_config(SearchConfig {
            score: s3_core::S3kScore::new(2.0, 0.5),
            ..SearchConfig::default()
        });
        let epoch_stats = engine.cache_stats();
        assert_eq!(epoch_stats.invalidated, 1, "{epoch_stats}");
        assert_eq!(epoch_stats.expired, 0, "{epoch_stats}");
    }

    #[test]
    fn engine_config_validates_policy_fractions() {
        let wild = EngineConfig::builder()
            .cache_policy(CachePolicy::TinyLfu { window_frac: 7.0, protected_frac: -3.0 })
            .build()
            .validated();
        assert_eq!(
            wild.cache_policy,
            CachePolicy::TinyLfu { window_frac: 1.0, protected_frac: 0.0 }
        );
        let nan = EngineConfig::builder()
            .cache_policy(CachePolicy::TinyLfu { window_frac: f64::NAN, protected_frac: f64::NAN })
            .build()
            .validated();
        assert_eq!(nan.cache_policy, CachePolicy::tiny_lfu());
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0, "no lookups yet");
        let (engine, seeker, kws) = tiny_engine(16);
        let q = Query::new(seeker, kws, 3);
        engine.query(&q);
        assert_eq!(engine.cache_stats().hit_rate(), 0.0);
        for _ in 0..3 {
            engine.query(&q);
        }
        let rate = engine.cache_stats().hit_rate();
        assert!((rate - 0.75).abs() < 1e-12, "3 hits / 4 lookups, got {rate}");
    }
}
