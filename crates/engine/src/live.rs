//! Live serving: ingest while queries run, behind an atomically swapped
//! snapshot — no stop-the-world rebuild.
//!
//! [`LiveEngine`] (and [`LiveShardedEngine`]) wrap the frozen-snapshot
//! engines behind an `RwLock<Arc<…>>` snapshot pointer: a query clones the
//! current `Arc` and runs entirely against that snapshot; an ingest builds
//! the next snapshot **off** the serving path (via
//! [`InstanceBuilder::apply`], which extends — not rebuilds — the
//! instance) and publishes it with one pointer swap. In-flight queries
//! keep their snapshot alive; new queries see the new one. Successor
//! engines share the predecessor's result cache and warm propagation
//! pool ([`crate::S3Engine`]'s internals are `Arc`-shared), so warm
//! state persists *across* swaps and is governed purely by epochs — and
//! each generation carries its **own** epoch line (advanced, never
//! shared), so a reader still pinning an old generation can only stamp
//! old epochs into the shared cache, never a key the new one serves.
//!
//! # Epoch scoping
//!
//! Every ingest classifies its delta ([`IngestSummary::detached`]):
//!
//! * a **detached** delta (nothing points at a pre-existing node) leaves
//!   every previously computed propagation, score and result exact. The
//!   sharded engine then bumps only the **touched shards** (those
//!   receiving the new document components, placed least-loaded-first by
//!   [`s3_core::ComponentPartition::extended`]) **plus the front cache**;
//!   untouched shards keep their result-cache entries and have their warm
//!   propagation states *rebased* onto the appended graph
//!   ([`s3_graph::PropagationState::rebase`]) instead of dropped.
//! * anything else — a social edge from an existing user, a tag or
//!   comment on existing content, a new keyword bridging into the
//!   ontology — may change scores reachable through the modified nodes,
//!   so the bump is **global**: every shard and the front.
//!
//! The [`IngestReport`] makes the scoping observable: which scope was
//! chosen, how many cached results and warm states were dropped
//! ([`crate::CacheStats::invalidated`], [`ResumeStats::invalidated`]) and
//! how many warm states survived by rebase.
//!
//! Correctness bar (property-tested in `tests/ingest.rs`): after any
//! sequence of batches, query results are byte-identical to a cold
//! [`InstanceBuilder::snapshot`] of the same final data, on both the
//! unsharded and the sharded `{1, 2, 4}` paths.

use crate::gate::{LoadStats, ServeOutcome};
use crate::persist::{
    self, Checkpoint, CheckpointReport, Compact, CompactReport, PersistError, Persistence,
    RecoveryReport, RecoverySource,
};
use crate::{CacheStats, EngineConfig, ResumeStats, S3Engine, ShardedEngine};
use s3_core::{
    load_snapshot, save_snapshot, ComponentFilter, ComponentPartition, IngestBatch, IngestSummary,
    InstanceBuilder, Query, S3Instance, SearchConfig, TopKResult, WriteAheadLog,
};
use s3_snap::SnapError;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// The single-writer state behind every live engine: the retained
/// builder, plus the durability journal when the engine was [`open`]ed
/// from a directory ([`LiveEngine::open`]). Ingests hold this lock from
/// journal through apply, so the WAL order is the apply order.
struct Writer {
    builder: InstanceBuilder,
    persist: Option<Persistence>,
}

impl Writer {
    fn ephemeral(builder: InstanceBuilder) -> Mutex<Self> {
        Mutex::new(Writer { builder, persist: None })
    }
}

/// Recover `(builder, instance, report)` from a persistence directory:
/// load the snapshot (or fall back to the seed), then replay the WAL's
/// intact records. Shared by both live engines' `open`.
fn recover(
    dir: &Path,
    seed: InstanceBuilder,
) -> Result<(Writer, S3Instance, RecoveryReport), PersistError> {
    std::fs::create_dir_all(dir).map_err(SnapError::from)?;
    let snapshot_path = persist::snapshot_path(dir);
    let (source, mut builder, mut instance) = if snapshot_path.exists() {
        let (builder, instance) = load_snapshot(&snapshot_path)?;
        (RecoverySource::Snapshot, builder, instance)
    } else {
        let instance = seed.snapshot();
        (RecoverySource::Seed, seed, instance)
    };
    let (wal, recovery) = WriteAheadLog::open(&persist::wal_path(dir))?;
    for record in &recovery.records {
        let batch = persist::record_to_batch(record)?;
        let (next, _) = builder.apply(&instance, &batch);
        instance = next;
    }
    let report = RecoveryReport {
        source,
        replayed: recovery.records.len(),
        dropped_tail: recovery.dropped_tail,
    };
    let writer = Writer { builder, persist: Some(Persistence { wal, snapshot_path }) };
    Ok((writer, instance, report))
}

/// Which caches an ingest invalidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidationScope {
    /// Every shard and the front: the delta touched pre-existing nodes,
    /// so results anywhere may have changed.
    Global,
    /// Only the listed shards plus the front cache: the delta was
    /// detached, so untouched shards' caches and warm pools stayed live.
    /// (Unsharded engines report `Scoped(vec![])` for detached deltas —
    /// front only.)
    Scoped(Vec<usize>),
}

/// What one [`LiveEngine::ingest`] / [`LiveShardedEngine::ingest`] did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// The instance-level delta summary.
    pub summary: IngestSummary,
    /// Which caches were invalidated.
    pub scope: InvalidationScope,
    /// Cached results dropped across the bumped caches.
    pub results_invalidated: u64,
    /// Warm propagation states dropped across the bumped pools.
    pub warm_invalidated: u64,
    /// Warm propagation states that survived by rebasing onto the
    /// appended graph (detached deltas only).
    pub warm_rebased: u64,
}

impl std::fmt::Display for IngestReport {
    /// One serving-log line with the delta shape and the invalidation
    /// fallout — the companion of [`CacheStats`]'s and [`ResumeStats`]'s
    /// `Display`, and what the examples print after each batch.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "+{} users, +{} docs, +{} tags ({}, {} components touched) — \
             scope {}, {} results invalidated, {} warm dropped, {} warm rebased",
            self.summary.new_users,
            self.summary.new_documents,
            self.summary.new_tags,
            if self.summary.detached { "detached" } else { "attached" },
            self.summary.touched_components.len(),
            match &self.scope {
                InvalidationScope::Global => "global".to_string(),
                InvalidationScope::Scoped(shards) if shards.is_empty() => "front-only".to_string(),
                InvalidationScope::Scoped(shards) => format!("{} shards", shards.len()),
            },
            self.results_invalidated,
            self.warm_invalidated,
            self.warm_rebased,
        )
    }
}

/// A live, ingestible serving engine over one [`S3Engine`].
///
/// ```
/// use s3_core::{IngestBatch, IngestDoc, InstanceBuilder, Query};
/// use s3_engine::{EngineConfig, LiveEngine};
/// use s3_text::Language;
///
/// let mut b = InstanceBuilder::new(Language::English);
/// let u = b.add_user();
/// let kws = b.analyze("a degree");
/// let mut doc = s3_doc::DocBuilder::new("post");
/// doc.set_content(doc.root(), kws);
/// b.add_document(doc, Some(u));
/// let live = LiveEngine::new(b, EngineConfig::builder().cache_capacity(64).build());
///
/// let keywords = live.instance().query_keywords("degree");
/// assert_eq!(live.query(&Query::new(u, keywords.clone(), 3)).hits.len(), 1);
///
/// let mut batch = IngestBatch::new();
/// let poster = batch.add_user();
/// let mut post = IngestDoc::new("post");
/// post.set_text(post.root(), "another degree");
/// batch.add_document(post, Some(poster));
/// let report = live.ingest(&batch);
/// assert!(report.summary.detached);
/// assert_eq!(live.instance().num_documents(), 2);
/// ```
pub struct LiveEngine {
    current: RwLock<Arc<S3Engine>>,
    /// The retained builder (single writer; ingests serialize here),
    /// plus the durability journal for [`Self::open`]-built engines.
    writer: Mutex<Writer>,
}

impl LiveEngine {
    /// Freeze the builder's current data into the initial snapshot and
    /// start serving. The builder is retained: every
    /// [`Self::ingest`] extends it. No durability — see [`Self::open`].
    pub fn new(builder: InstanceBuilder, config: EngineConfig) -> Self {
        let instance = Arc::new(builder.snapshot());
        LiveEngine {
            current: RwLock::new(Arc::new(S3Engine::new(instance, config))),
            writer: Writer::ephemeral(builder),
        }
    }

    /// Open a *durable* live engine from a persistence directory: load
    /// `<dir>/snapshot.s3k` when present (falling back to `seed` on a
    /// fresh directory), replay the intact `<dir>/ingest.wal` tail, and
    /// serve the recovered state. Subsequent [`Self::ingest`]s journal
    /// to the WAL (fsync before apply); [`Self::checkpoint`] writes a
    /// fresh snapshot and truncates it. The recovered engine answers
    /// queries byte-identically to the pre-restart one (warm restart).
    pub fn open(
        dir: &Path,
        seed: InstanceBuilder,
        config: EngineConfig,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (writer, instance, report) = recover(dir, seed)?;
        let engine = S3Engine::new(Arc::new(instance), config);
        let live =
            LiveEngine { current: RwLock::new(Arc::new(engine)), writer: Mutex::new(writer) };
        Ok((live, report))
    }

    /// The current snapshot's engine. The returned `Arc` pins that
    /// snapshot: callers holding it across an ingest keep reading the
    /// data they started with.
    pub fn engine(&self) -> Arc<S3Engine> {
        Arc::clone(&self.current.read().expect("snapshot pointer poisoned"))
    }

    /// The current snapshot.
    pub fn instance(&self) -> Arc<S3Instance> {
        Arc::clone(self.engine().instance())
    }

    /// Answer one query against the current snapshot.
    pub fn query(&self, query: &Query) -> Arc<TopKResult> {
        self.engine().query(query)
    }

    /// Answer a batch against the current snapshot.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Arc<TopKResult>> {
        self.engine().run_batch(queries)
    }

    /// Answer one query through the admission gate against the current
    /// snapshot ([`S3Engine::serve`]). The gate is shared across
    /// snapshot swaps, so in-flight depth and load counters persist.
    pub fn serve(&self, query: &Query, deadline: Option<Duration>) -> ServeOutcome {
        self.engine().serve(query, deadline)
    }

    /// Load and shedding counters (shared across snapshots).
    pub fn load_stats(&self) -> LoadStats {
        self.engine().load_stats()
    }

    /// Result-cache counters (shared across snapshots).
    pub fn cache_stats(&self) -> CacheStats {
        self.engine().cache_stats()
    }

    /// Warm-propagation counters (shared across snapshots).
    pub fn resume_stats(&self) -> ResumeStats {
        self.engine().resume_stats()
    }

    /// Apply a batch and publish the extended snapshot atomically.
    ///
    /// The result cache is always bumped (it is this engine's "front").
    /// After a detached delta the warm pool survives: its states are
    /// rebased onto the appended graph and restamped to the new epoch, so
    /// repeat-seeker traffic keeps resuming across the ingest.
    pub fn ingest(&self, batch: &IngestBatch) -> IngestReport {
        self.try_ingest(batch).expect("ingest journaling failed")
    }

    /// [`Self::ingest`], surfacing journal failures. On a durable engine
    /// the batch is journaled and fsynced *before* it is applied (the
    /// WAL commit rule); a journal error means the batch was **not**
    /// applied and serving state is unchanged. On an ephemeral engine
    /// this never errors.
    pub fn try_ingest(&self, batch: &IngestBatch) -> Result<IngestReport, PersistError> {
        let mut writer = self.writer.lock().expect("ingest writer poisoned");
        if let Some(persist) = writer.persist.as_mut() {
            persist.journal(batch)?;
        }
        let builder = &mut writer.builder;
        let prev = self.engine();
        let (instance, summary) = builder.apply(prev.instance(), batch);
        let instance = Arc::new(instance);
        // The successor gets its own epoch line, one past the
        // predecessor's: a reader still pinning `prev` can only stamp the
        // old epoch, so it can never insert a pre-ingest result under a
        // key the new engine serves.
        let next = prev.succeed(Arc::clone(&instance), true);

        let results_invalidated = next.result_cache().invalidate();
        let (scope, warm_invalidated, warm_rebased) = if summary.detached {
            let gamma = next.search_config().score.gamma;
            let epoch = next.config_epoch();
            let (kept, dropped) = next.prop_pool().rebase_all(
                prev.instance().graph(),
                instance.graph(),
                gamma,
                epoch,
            );
            (InvalidationScope::Scoped(Vec::new()), dropped, kept)
        } else {
            (InvalidationScope::Global, next.prop_pool().invalidate_all(), 0)
        };

        *self.current.write().expect("snapshot pointer poisoned") = Arc::new(next);
        Ok(IngestReport { summary, scope, results_invalidated, warm_invalidated, warm_rebased })
    }

    /// Write a fresh snapshot of the current state atomically, then
    /// truncate the WAL ([`Checkpoint::checkpoint`]). Errors on an
    /// engine built without [`Self::open`].
    pub fn checkpoint(&self) -> Result<CheckpointReport, PersistError> {
        let mut writer = self.writer.lock().expect("ingest writer poisoned");
        // Under the writer lock the latest published snapshot is exactly
        // the builder's state: every ingest publishes before unlocking.
        let engine = self.engine();
        let Writer { builder, persist } = &mut *writer;
        let persist = persist
            .as_mut()
            .ok_or(PersistError::Snapshot(SnapError::Value("engine opened without durability")))?;
        let absorbed = persist.wal.len();
        save_snapshot(&persist.snapshot_path, builder, engine.instance())?;
        persist.wal.truncate()?;
        Ok(CheckpointReport { absorbed })
    }

    /// Records currently in the WAL (`None` without durability).
    pub fn wal_records(&self) -> Option<u64> {
        let writer = self.writer.lock().expect("ingest writer poisoned");
        writer.persist.as_ref().map(|p| p.wal.len())
    }

    /// Fraction of the current snapshot's graph nodes that are
    /// tombstoned — the compaction trigger signal.
    pub fn dead_fraction(&self) -> f64 {
        self.instance().dead_fraction()
    }

    /// Run one compaction epoch: rebuild the instance without tombstoned
    /// state off the serving path ([`InstanceBuilder::compact`]) and
    /// publish the clean snapshot atomically. Queries keep being served
    /// from the old snapshot until the swap; in-flight readers pinning it
    /// stay consistent.
    ///
    /// Compaction densely renumbers every entity id, so the invalidation
    /// is always global (caches and warm pools drop), and callers must
    /// refresh any [`s3_core::UserId`]/[`s3_doc::TreeId`]/tag ids they
    /// hold. On a durable engine the compaction **checkpoints before it
    /// publishes** — the compacted snapshot is written and the WAL
    /// truncated in the same critical section, because the journal's
    /// records reference pre-compaction ids and must never replay on top
    /// of the compacted snapshot.
    pub fn compact(&self) -> Result<CompactReport, PersistError> {
        let mut writer = self.writer.lock().expect("ingest writer poisoned");
        let (compacted, compaction) = writer.builder.compact();
        let instance = Arc::new(compacted.snapshot());
        let mut checkpointed = None;
        if let Some(persist) = writer.persist.as_mut() {
            checkpointed = Some(persist.wal.len());
            save_snapshot(&persist.snapshot_path, &compacted, &instance)?;
            persist.wal.truncate()?;
        }
        writer.builder = compacted;
        let prev = self.engine();
        let next = prev.succeed(Arc::clone(&instance), true);
        let results_invalidated = next.result_cache().invalidate();
        let warm_invalidated = next.prop_pool().invalidate_all();
        *self.current.write().expect("snapshot pointer poisoned") = Arc::new(next);
        Ok(CompactReport { compaction, results_invalidated, warm_invalidated, checkpointed })
    }
}

impl Compact for LiveEngine {
    fn dead_fraction(&self) -> f64 {
        LiveEngine::dead_fraction(self)
    }

    fn compact(&self) -> Result<CompactReport, PersistError> {
        LiveEngine::compact(self)
    }
}

impl Checkpoint for LiveEngine {
    fn wal_records(&self) -> Option<u64> {
        LiveEngine::wal_records(self)
    }

    fn checkpoint(&self) -> Result<CheckpointReport, PersistError> {
        LiveEngine::checkpoint(self)
    }
}

/// A live, ingestible serving engine over a [`ShardedEngine`] fleet with
/// shard-scoped invalidation.
///
/// Unlike the frozen [`ShardedEngine::new`], the shard engines here run
/// with their own result caches and warm pools (they are individually
/// queryable serving engines), because that per-shard state is exactly
/// what scoped invalidation preserves: an ingest whose delta is detached
/// bumps only the shards that received the new components, plus the front
/// cache — shard engines it didn't touch keep serving their cached
/// results and resuming their warm propagations.
pub struct LiveShardedEngine {
    current: RwLock<Arc<ShardedEngine>>,
    writer: Mutex<Writer>,
}

impl LiveShardedEngine {
    /// Freeze the builder's data, partition it into `num_shards` balanced
    /// shards and start serving. No durability — see [`Self::open`].
    pub fn new(builder: InstanceBuilder, config: EngineConfig, num_shards: usize) -> Self {
        let instance = Arc::new(builder.snapshot());
        let partition = Arc::new(ComponentPartition::balanced(&instance, num_shards));
        let engine = ShardedEngine::with_partition(instance, config, partition, true);
        LiveShardedEngine {
            current: RwLock::new(Arc::new(engine)),
            writer: Writer::ephemeral(builder),
        }
    }

    /// Open a *durable* sharded live engine from a persistence directory
    /// ([`LiveEngine::open`]'s contract, sharded): load the snapshot or
    /// fall back to `seed`, replay the WAL tail, partition the recovered
    /// instance into `num_shards` balanced shards and serve.
    pub fn open(
        dir: &Path,
        seed: InstanceBuilder,
        config: EngineConfig,
        num_shards: usize,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (writer, instance, report) = recover(dir, seed)?;
        let instance = Arc::new(instance);
        let partition = Arc::new(ComponentPartition::balanced(&instance, num_shards));
        let engine = ShardedEngine::with_partition(instance, config, partition, true);
        let live = LiveShardedEngine {
            current: RwLock::new(Arc::new(engine)),
            writer: Mutex::new(writer),
        };
        Ok((live, report))
    }

    /// The current snapshot's sharded engine (the `Arc` pins the
    /// snapshot; `engine().shard(i)` reaches the per-shard engines).
    pub fn engine(&self) -> Arc<ShardedEngine> {
        Arc::clone(&self.current.read().expect("snapshot pointer poisoned"))
    }

    /// The current snapshot.
    pub fn instance(&self) -> Arc<S3Instance> {
        Arc::clone(self.engine().instance())
    }

    /// Answer one query through the front cache + scatter-gather.
    pub fn query(&self, query: &Query) -> Arc<TopKResult> {
        self.engine().query(query)
    }

    /// Answer a batch through the front cache + scatter-gather.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Arc<TopKResult>> {
        self.engine().run_batch(queries)
    }

    /// Answer one query through the admission gate, then the front cache
    /// and the scatter ([`ShardedEngine::serve`]). The gate is shared
    /// across snapshot swaps, so in-flight depth and load counters
    /// persist.
    pub fn serve(&self, query: &Query, deadline: Option<Duration>) -> ServeOutcome {
        self.engine().serve(query, deadline)
    }

    /// Load and shedding counters (shared across snapshots).
    pub fn load_stats(&self) -> LoadStats {
        self.engine().load_stats()
    }

    /// Front-cache counters (shared across snapshots).
    pub fn cache_stats(&self) -> CacheStats {
        self.engine().cache_stats()
    }

    /// Warm-propagation counters across the front and every shard.
    pub fn resume_stats(&self) -> ResumeStats {
        self.engine().resume_stats()
    }

    /// Apply a batch, extend the partition and publish atomically,
    /// scoping invalidation to the touched shards when the delta allows
    /// it (see the module docs).
    pub fn ingest(&self, batch: &IngestBatch) -> IngestReport {
        self.ingest_with(batch, false)
    }

    /// [`Self::ingest`] with an escape hatch: `force_global` bumps every
    /// shard even for a detached delta (the control arm for measuring
    /// what scoped invalidation buys — see `tests/zipf_hit_rate.rs`).
    pub fn ingest_with(&self, batch: &IngestBatch, force_global: bool) -> IngestReport {
        self.try_ingest_with(batch, force_global).expect("ingest journaling failed")
    }

    /// [`Self::ingest_with`], surfacing journal failures
    /// ([`LiveEngine::try_ingest`]'s contract).
    pub fn try_ingest_with(
        &self,
        batch: &IngestBatch,
        force_global: bool,
    ) -> Result<IngestReport, PersistError> {
        let mut writer = self.writer.lock().expect("ingest writer poisoned");
        if let Some(persist) = writer.persist.as_mut() {
            persist.journal(batch)?;
        }
        let builder = &mut writer.builder;
        let prev = self.engine();
        let (instance, summary) = builder.apply(prev.instance(), batch);
        let instance = Arc::new(instance);
        // New components go to the least-loaded shards; nothing moves.
        let partition = Arc::new(prev.partition().extended(&instance));
        let next = prev.succeed(Arc::clone(&instance), Arc::clone(&partition));

        // Shards whose universe changed: owners of touched components
        // that carry documents (doc-less user singletons route nowhere).
        let touched_shards: BTreeSet<usize> = summary
            .touched_components
            .iter()
            .filter(|&&c| instance.graph().component_doc_count(c) > 0)
            .map(|&c| partition.shard_of(c))
            .collect();
        let scoped = summary.detached && !force_global;

        let mut results_invalidated = 0;
        let mut warm_invalidated = 0;
        let mut warm_rebased = 0;
        let gamma = next.search_config().score.gamma;
        // The front always bumps (its universe is the union of all
        // shards; `succeed` advanced its epoch line), but for a detached
        // delta its warm propagations are still exact — rebase and
        // restamp them instead of dropping.
        results_invalidated += next.result_cache().invalidate();
        if scoped {
            let (kept, dropped) = next.prop_pool().rebase_all(
                prev.instance().graph(),
                instance.graph(),
                gamma,
                next.config_epoch(),
            );
            warm_rebased += kept;
            warm_invalidated += dropped;
        } else {
            warm_invalidated += next.prop_pool().invalidate_all();
        }
        for s in 0..next.num_shards() {
            let shard = next.shard(s);
            if !scoped || touched_shards.contains(&s) {
                // Reinstall the shard's filter for the extended partition
                // and bump its epoch (set_search_config purges + counts).
                let filter = Arc::new(ComponentFilter::for_shard(&partition, s));
                let before = (shard.cache_stats().invalidated, shard.resume_stats().invalidated);
                let config = shard.search_config();
                shard.set_search_config(SearchConfig { component_filter: Some(filter), ..config });
                results_invalidated += shard.cache_stats().invalidated - before.0;
                warm_invalidated += shard.resume_stats().invalidated - before.1;
            } else {
                // Untouched shard under a detached delta: its universe,
                // scores and filter are unchanged — keep its cache and
                // carry its warm propagations onto the appended graph.
                let (kept, dropped) = shard.prop_pool().rebase_all(
                    prev.instance().graph(),
                    instance.graph(),
                    gamma,
                    shard.config_epoch(),
                );
                warm_rebased += kept;
                warm_invalidated += dropped;
            }
        }

        let scope = if scoped {
            InvalidationScope::Scoped(touched_shards.into_iter().collect())
        } else {
            InvalidationScope::Global
        };
        *self.current.write().expect("snapshot pointer poisoned") = Arc::new(next);
        Ok(IngestReport { summary, scope, results_invalidated, warm_invalidated, warm_rebased })
    }

    /// Write a fresh snapshot atomically, then truncate the WAL
    /// ([`LiveEngine::checkpoint`]'s contract).
    pub fn checkpoint(&self) -> Result<CheckpointReport, PersistError> {
        let mut writer = self.writer.lock().expect("ingest writer poisoned");
        let engine = self.engine();
        let Writer { builder, persist } = &mut *writer;
        let persist = persist
            .as_mut()
            .ok_or(PersistError::Snapshot(SnapError::Value("engine opened without durability")))?;
        let absorbed = persist.wal.len();
        save_snapshot(&persist.snapshot_path, builder, engine.instance())?;
        persist.wal.truncate()?;
        Ok(CheckpointReport { absorbed })
    }

    /// Records currently in the WAL (`None` without durability).
    pub fn wal_records(&self) -> Option<u64> {
        let writer = self.writer.lock().expect("ingest writer poisoned");
        writer.persist.as_ref().map(|p| p.wal.len())
    }

    /// Fraction of the current snapshot's graph nodes that are
    /// tombstoned — the compaction trigger signal.
    pub fn dead_fraction(&self) -> f64 {
        self.instance().dead_fraction()
    }

    /// Run one compaction epoch ([`LiveEngine::compact`]'s contract,
    /// sharded): rebuild without tombstoned state, re-partition the
    /// clean instance into fresh balanced shards (compaction renumbers
    /// components, so the old placement is meaningless), reinstall every
    /// shard's component filter, and publish atomically. Invalidation is
    /// global across the front and every shard; on a durable engine the
    /// compacted snapshot is checkpointed and the WAL truncated before
    /// the publish.
    pub fn compact(&self) -> Result<CompactReport, PersistError> {
        let mut writer = self.writer.lock().expect("ingest writer poisoned");
        let (compacted, compaction) = writer.builder.compact();
        let instance = Arc::new(compacted.snapshot());
        let mut checkpointed = None;
        if let Some(persist) = writer.persist.as_mut() {
            checkpointed = Some(persist.wal.len());
            save_snapshot(&persist.snapshot_path, &compacted, &instance)?;
            persist.wal.truncate()?;
        }
        writer.builder = compacted;
        let prev = self.engine();
        let partition = Arc::new(ComponentPartition::balanced(&instance, prev.num_shards()));
        let next = prev.succeed(Arc::clone(&instance), Arc::clone(&partition));
        let mut results_invalidated = next.result_cache().invalidate();
        let mut warm_invalidated = next.prop_pool().invalidate_all();
        for s in 0..next.num_shards() {
            let shard = next.shard(s);
            let filter = Arc::new(ComponentFilter::for_shard(&partition, s));
            let before = (shard.cache_stats().invalidated, shard.resume_stats().invalidated);
            let config = shard.search_config();
            shard.set_search_config(SearchConfig { component_filter: Some(filter), ..config });
            results_invalidated += shard.cache_stats().invalidated - before.0;
            warm_invalidated += shard.resume_stats().invalidated - before.1;
        }
        *self.current.write().expect("snapshot pointer poisoned") = Arc::new(next);
        Ok(CompactReport { compaction, results_invalidated, warm_invalidated, checkpointed })
    }
}

impl Compact for LiveShardedEngine {
    fn dead_fraction(&self) -> f64 {
        LiveShardedEngine::dead_fraction(self)
    }

    fn compact(&self) -> Result<CompactReport, PersistError> {
        LiveShardedEngine::compact(self)
    }
}

impl Checkpoint for LiveShardedEngine {
    fn wal_records(&self) -> Option<u64> {
        LiveShardedEngine::wal_records(self)
    }

    fn checkpoint(&self) -> Result<CheckpointReport, PersistError> {
        LiveShardedEngine::checkpoint(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_core::{FragRef, IngestDoc, TagSubjectRef, UserId, UserRef};
    use s3_doc::DocBuilder;
    use s3_text::Language;

    fn seed_builder() -> (InstanceBuilder, UserId, UserId) {
        let mut b = InstanceBuilder::new(Language::English);
        let author = b.add_user();
        let seeker = b.add_user();
        b.add_social_edge(seeker, author, 1.0);
        for text in ["rust degrees", "java degrees"] {
            let kws = b.analyze(text);
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            b.add_document(doc, Some(author));
        }
        (b, author, seeker)
    }

    fn detached_doc_batch(text: &str) -> IngestBatch {
        let mut batch = IngestBatch::new();
        let poster = batch.add_user();
        let mut doc = IngestDoc::new("post");
        doc.set_text(doc.root(), text);
        batch.add_document(doc, Some(poster));
        batch
    }

    #[test]
    fn queries_see_the_new_snapshot_and_pinned_engines_keep_the_old() {
        let (b, _, seeker) = seed_builder();
        let live = LiveEngine::new(b, EngineConfig::builder().threads(1).build());
        let kws = live.instance().query_keywords("degrees");
        let q = Query::new(seeker, kws, 5);
        assert_eq!(live.query(&q).hits.len(), 2);

        let pinned = live.engine();
        let report = live.ingest(&detached_doc_batch("more rust degrees"));
        assert!(report.summary.detached);
        assert_eq!(report.scope, InvalidationScope::Scoped(Vec::new()));
        // The pinned engine still serves the old snapshot's universe...
        assert_eq!(pinned.instance().num_documents(), 2);
        // ...while the live path sees three documents (the new doc is
        // reachable only from its new poster — old seekers still get 2).
        assert_eq!(live.instance().num_documents(), 3);
        assert_eq!(live.query(&q).hits.len(), 2);
    }

    #[test]
    fn detached_ingest_rebases_the_warm_pool() {
        let (b, _, seeker) = seed_builder();
        let live = LiveEngine::new(b, EngineConfig::builder().threads(1).cache_capacity(0).build());
        let kws = live.instance().query_keywords("degrees");
        live.query(&Query::new(seeker, kws.clone(), 2));
        let warm_before = live.resume_stats();
        assert!(warm_before.warm_misses > 0);

        let report = live.ingest(&detached_doc_batch("fresh degrees"));
        assert_eq!(report.warm_invalidated, 0, "detached delta drops nothing");
        assert!(report.warm_rebased > 0, "the parked propagation survives");
        assert!(report.results_invalidated == 0, "cache was disabled");

        // The next same-seeker query finds the rebased state warm.
        live.query(&Query::new(seeker, kws, 1));
        let warm_after = live.resume_stats();
        assert_eq!(warm_after.warm_hits, warm_before.warm_hits + 1);
        assert_eq!(warm_after.invalidated, 0);
    }

    #[test]
    fn pinned_generation_cannot_poison_the_new_epoch() {
        let (b, author, seeker) = seed_builder();
        let live = LiveEngine::new(b, EngineConfig::builder().threads(1).build());
        let kws = live.instance().query_keywords("degrees");
        let q = Query::new(seeker, kws, 5);
        let pinned = live.engine();
        let epoch = pinned.config_epoch();

        // A non-detached ingest that changes this query's answer.
        let mut batch = IngestBatch::new();
        let mut doc = IngestDoc::new("post");
        doc.set_text(doc.root(), "python degrees");
        batch.add_document(doc, Some(UserRef::Existing(author)));
        live.ingest(&batch);
        assert_eq!(pinned.config_epoch(), epoch, "a pinned generation keeps its epoch line");
        assert_eq!(live.engine().config_epoch(), epoch + 1);

        // A straggler query through the pinned engine inserts its
        // pre-ingest answer into the *shared* cache — under the old
        // epoch, where the live engine can never serve it.
        let stale = pinned.query(&q);
        assert_eq!(stale.hits.len(), 2, "the pinned snapshot still has two matching docs");
        let fresh = live.query(&q);
        assert_eq!(fresh.hits.len(), 3, "the live path must recompute, not serve the straggler");
    }

    #[test]
    fn ttl_expiry_and_ingest_invalidation_count_separately() {
        use crate::CachePolicy;
        let (b, author, seeker) = seed_builder();
        let live = LiveEngine::new(
            b,
            EngineConfig::builder()
                .threads(1)
                .cache_policy(CachePolicy::tiny_lfu())
                .cache_ttl(Some(std::time::Duration::ZERO))
                .build(),
        );
        let kws = live.instance().query_keywords("degrees");
        let q = Query::new(seeker, kws, 2);
        live.query(&q);
        live.query(&q); // observes the TTL-0 entry expired, reinserts
        let before = live.cache_stats();
        assert!(before.expired >= 1 && before.invalidated == 0, "{before}");

        // An attached ingest bumps globally: the resident (expired but
        // unobserved) entry drops as *invalidated*, not expired.
        let mut batch = IngestBatch::new();
        let u = batch.add_user();
        batch.add_social_edge(UserRef::Existing(author), u, 0.5);
        let report = live.ingest(&batch);
        assert_eq!(report.scope, InvalidationScope::Global);
        let after = live.cache_stats();
        assert_eq!(after.expired, before.expired, "the bump is not a TTL event");
        assert_eq!(after.invalidated, before.invalidated + report.results_invalidated);
        assert!(report.results_invalidated >= 1);
    }

    #[test]
    fn attached_ingest_goes_global() {
        let (b, author, seeker) = seed_builder();
        let live = LiveEngine::new(b, EngineConfig::builder().threads(1).build());
        let kws = live.instance().query_keywords("degrees");
        live.query(&Query::new(seeker, kws.clone(), 2));
        assert_eq!(live.cache_stats().entries, 1);

        // A social edge out of an existing user: scores may change anywhere.
        let mut batch = IngestBatch::new();
        let u = batch.add_user();
        batch.add_social_edge(UserRef::Existing(author), u, 0.5);
        let report = live.ingest(&batch);
        assert!(!report.summary.detached);
        assert_eq!(report.scope, InvalidationScope::Global);
        assert_eq!(report.results_invalidated, 1);
        assert_eq!(live.cache_stats().invalidated, 1);
        assert_eq!(live.cache_stats().entries, 0);
    }

    #[test]
    fn tag_on_existing_content_recomputes_its_component() {
        let (b, _, seeker) = seed_builder();
        let live = LiveEngine::new(b, EngineConfig::builder().threads(1).build());
        let root = live.instance().forest().root(s3_doc::TreeId(0));
        let mut batch = IngestBatch::new();
        let fan = batch.add_user();
        batch.add_social_edge(UserRef::Existing(seeker), fan, 0.9);
        batch.add_tag(TagSubjectRef::Frag(FragRef::Existing(root)), fan, Some("tagword"));
        let report = live.ingest(&batch);
        assert!(!report.summary.detached, "the tag points at existing content");
        let kws = live.instance().query_keywords("tagword");
        assert_eq!(kws.len(), 1);
        let res = live.query(&Query::new(seeker, kws, 3));
        assert!(!res.hits.is_empty(), "the tagged document is findable by the tag keyword");
    }

    #[test]
    fn sharded_scoped_ingest_spares_untouched_shards() {
        let (b, _, seeker) = seed_builder();
        let live = LiveShardedEngine::new(
            b,
            EngineConfig::builder().threads(1).cache_capacity(64).build(),
            2,
        );
        let engine = live.engine();
        let kws = live.instance().query_keywords("degrees");
        // Warm both shards' caches and pools with direct shard queries.
        for s in 0..2 {
            engine.shard(s).query(&Query::new(seeker, kws.clone(), 2));
        }
        let entries_before: Vec<usize> =
            (0..2).map(|s| engine.shard(s).cache_stats().entries).collect();
        assert_eq!(entries_before, vec![1, 1]);

        let report = live.ingest(&detached_doc_batch("new language degrees"));
        let InvalidationScope::Scoped(ref touched) = report.scope else {
            panic!("detached delta must scope: {:?}", report.scope);
        };
        assert_eq!(touched.len(), 1, "one new component lands on one shard");
        let touched_shard = touched[0];
        let spared_shard = 1 - touched_shard;

        let next = live.engine();
        let touched_stats = next.shard(touched_shard).cache_stats();
        let spared_stats = next.shard(spared_shard).cache_stats();
        assert_eq!(touched_stats.invalidated, 1, "touched shard dropped its entry");
        assert_eq!(touched_stats.entries, 0);
        assert_eq!(spared_stats.invalidated, 0, "spared shard kept its entry");
        assert_eq!(spared_stats.entries, 1);
        // The spared shard serves its cached result (a hit) and resumes
        // its rebased warm propagation for fresh same-seeker queries.
        let hits_before = spared_stats.hits;
        next.shard(spared_shard).query(&Query::new(seeker, kws.clone(), 2));
        assert_eq!(next.shard(spared_shard).cache_stats().hits, hits_before + 1);
        let warm_hits_before = next.shard(spared_shard).resume_stats().warm_hits;
        next.shard(spared_shard).query(&Query::new(seeker, kws.clone(), 1));
        assert_eq!(
            next.shard(spared_shard).resume_stats().warm_hits,
            warm_hits_before + 1,
            "warm propagation survived the swap by rebase"
        );
        assert_eq!(next.shard(spared_shard).resume_stats().invalidated, 0);
    }

    #[test]
    fn sharded_force_global_bumps_everything() {
        let (b, _, seeker) = seed_builder();
        let live = LiveShardedEngine::new(
            b,
            EngineConfig::builder().threads(1).cache_capacity(64).build(),
            2,
        );
        let engine = live.engine();
        let kws = live.instance().query_keywords("degrees");
        for s in 0..2 {
            engine.shard(s).query(&Query::new(seeker, kws.clone(), 2));
        }
        let report = live.ingest_with(&detached_doc_batch("forced degrees"), true);
        assert!(report.summary.detached, "the delta itself is detached");
        assert_eq!(report.scope, InvalidationScope::Global, "...but the bump was forced global");
        let next = live.engine();
        for s in 0..2 {
            assert_eq!(next.shard(s).cache_stats().entries, 0);
            assert_eq!(next.shard(s).cache_stats().invalidated, 1);
        }
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("s3k-live-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn durable_engine_replays_wal_tail_on_reopen() {
        let dir = tmpdir("wal-tail");
        let config = || EngineConfig::builder().threads(1).build();
        let (b, _, seeker) = seed_builder();
        let (live, report) = LiveEngine::open(&dir, b, config()).unwrap();
        assert_eq!(report.source, RecoverySource::Seed);
        assert_eq!(report.replayed, 0);
        live.ingest(&detached_doc_batch("persistent degrees"));
        live.ingest(&detached_doc_batch("more persistent degrees"));
        assert_eq!(live.wal_records(), Some(2));
        let kws = live.instance().query_keywords("degrees");
        let q = Query::new(seeker, kws, 8);
        let before = live.query(&q);
        drop(live);

        // Same seed + journal replay must land on byte-identical state.
        let (b2, _, _) = seed_builder();
        let (reopened, report) = LiveEngine::open(&dir, b2, config()).unwrap();
        assert_eq!(report.source, RecoverySource::Seed, "no checkpoint was taken");
        assert_eq!(report.replayed, 2);
        assert!(!report.dropped_tail);
        let after = reopened.query(&q);
        assert_eq!(before.hits, after.hits);
        assert_eq!(before.candidate_docs, after.candidate_docs);
        assert_eq!(before.stats.stop, after.stats.stop);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_the_wal_and_reopen_loads_the_snapshot() {
        let dir = tmpdir("checkpoint");
        let config = || EngineConfig::builder().threads(1).build();
        let (b, _, seeker) = seed_builder();
        let (live, _) = LiveEngine::open(&dir, b, config()).unwrap();
        live.ingest(&detached_doc_batch("checkpointed degrees"));
        let report = live.checkpoint().unwrap();
        assert_eq!(report.absorbed, 1);
        assert_eq!(live.wal_records(), Some(0));
        // A post-checkpoint ingest lands in the fresh journal.
        live.ingest(&detached_doc_batch("post checkpoint degrees"));
        assert_eq!(live.wal_records(), Some(1));
        let kws = live.instance().query_keywords("degrees");
        let q = Query::new(seeker, kws, 8);
        let before = live.query(&q);
        drop(live);

        // The seed must be ignored: the snapshot carries the state.
        let empty_seed = InstanceBuilder::new(Language::English);
        let (reopened, report) = LiveEngine::open(&dir, empty_seed, config()).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot);
        assert_eq!(report.replayed, 1);
        let after = reopened.query(&q);
        assert_eq!(before.hits, after.hits);
        assert_eq!(before.candidate_docs, after.candidate_docs);
        assert_eq!(before.stats.stop, after.stats.stop);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sharded_open_recovers_and_matches_unsharded() {
        let dir = tmpdir("sharded");
        let config = || EngineConfig::builder().threads(1).build();
        let (b, _, seeker) = seed_builder();
        let (live, _) = LiveShardedEngine::open(&dir, b, config(), 2).unwrap();
        live.ingest(&detached_doc_batch("sharded persistent degrees"));
        live.checkpoint().unwrap();
        live.ingest(&detached_doc_batch("sharded wal degrees"));
        let kws = live.instance().query_keywords("degrees");
        let q = Query::new(seeker, kws, 8);
        let before = live.query(&q);
        drop(live);

        let empty_seed = InstanceBuilder::new(Language::English);
        let (reopened, report) = LiveShardedEngine::open(&dir, empty_seed, config(), 2).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot);
        assert_eq!(report.replayed, 1);
        let after = reopened.query(&q);
        assert_eq!(before.hits, after.hits);
        assert_eq!(before.candidate_docs, after.candidate_docs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_checkpointer_absorbs_the_journal() {
        use crate::persist::Checkpointer;
        let dir = tmpdir("background");
        let (b, _, _) = seed_builder();
        let (live, _) =
            LiveEngine::open(&dir, b, EngineConfig::builder().threads(1).build()).unwrap();
        let live = Arc::new(live);
        live.ingest(&detached_doc_batch("background degrees"));
        let checkpointer = Checkpointer::spawn(Arc::clone(&live), Duration::from_millis(5), 1);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while live.wal_records() != Some(0) {
            assert!(std::time::Instant::now() < deadline, "checkpointer never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        let taken = checkpointer.stop().unwrap();
        assert!(taken >= 1);
        assert!(persist::snapshot_path(&dir).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn background_compactor_reclaims_tombstones() {
        use crate::persist::{CompactionPolicy, Compactor};
        let (b, _, seeker) = seed_builder();
        let live = Arc::new(LiveEngine::new(b, EngineConfig::builder().threads(1).build()));
        let mut batch = IngestBatch::new();
        batch.delete_document(s3_doc::TreeId(0));
        live.ingest(&batch);
        assert!(live.dead_fraction() > 0.0, "the deletion left a tombstone");

        let compactor = Compactor::spawn(
            Arc::clone(&live),
            CompactionPolicy { interval: Duration::from_millis(5), min_dead_fraction: 0.0 },
        );
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while live.dead_fraction() > 0.0 {
            assert!(std::time::Instant::now() < deadline, "compactor never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        let taken = compactor.stop().unwrap();
        assert!(taken >= 1);
        // The surviving document still answers on the compacted state.
        let kws = live.instance().query_keywords("degrees");
        let res = live.query(&Query::new(seeker, kws, 5));
        assert_eq!(res.hits.len(), 1);
    }

    #[test]
    fn sharded_results_match_unsharded_across_ingests() {
        let (b, _, seeker) = seed_builder();
        let (b2, _, _) = seed_builder();
        let sharded = LiveShardedEngine::new(b, EngineConfig::builder().threads(2).build(), 2);
        let flat = LiveEngine::new(b2, EngineConfig::builder().threads(1).build());
        for round in 0..3 {
            let batch = detached_doc_batch(&format!("degrees wave {round}"));
            sharded.ingest(&batch);
            flat.ingest(&batch);
            let kws = sharded.instance().query_keywords("degrees");
            let q = Query::new(seeker, kws, 5);
            let a = sharded.query(&q);
            let b = flat.query(&q);
            assert_eq!(a.hits, b.hits);
            assert_eq!(a.candidate_docs, b.candidate_docs);
        }
    }
}
