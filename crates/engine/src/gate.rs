//! Engine overload control: the admission gate behind every engine's
//! `serve` entry point.
//!
//! [`crate::S3Engine::query`] and friends always compute — under
//! saturation they just get slower, without bound. `serve` routes each
//! query through an admission gate instead: a cache hit is returned
//! immediately (overload never degrades traffic the cache can already
//! answer), and a miss claims an in-flight slot. When the live depth
//! reaches [`OverloadConfig::max_inflight`], the configured
//! [`OverloadPolicy`] decides the arrival's fate — shed it, admit it
//! with its time budget capped so it returns a certified best-effort
//! answer quickly ([`s3_core::QualityBound`]), or park it until a slot
//! frees. Per-query deadlines compose with the gate: the wait spent in
//! the queue counts against the deadline, and a query whose deadline
//! lapses before it runs is counted and dropped instead of burning a
//! slot on an answer nobody is waiting for.
//!
//! The counters ([`LoadStats`]) play the role [`crate::CacheStats`]
//! plays for the cache: one struct per engine, `Display` as a log line.

use s3_core::TopKResult;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What the admission gate does with an arrival once the engine is at
/// [`OverloadConfig::max_inflight`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Shed the query outright ([`ServeOutcome::Shed`]): strict capacity
    /// protection, the caller retries elsewhere.
    Reject,
    /// Admit the query anyway, but cap its time budget at `floor_budget`
    /// so it returns a certified best-effort answer quickly instead of
    /// piling full-cost work onto a saturated engine. Degraded answers
    /// never enter the result cache, and the warm propagation pool keeps
    /// their state, so an uncongested repeat upgrades them to exact.
    DegradeAnytime {
        /// Time budget for degraded queries ([`Duration::ZERO`] means
        /// "answer from the first round, whatever is certified by then").
        floor_budget: Duration,
    },
    /// Park the arrival until a slot frees or `timeout` passes (then
    /// shed). The wait counts against the query's deadline.
    Queue {
        /// Longest a query may wait for a slot.
        timeout: Duration,
    },
}

/// Admission-gate configuration ([`crate::EngineConfig::overload`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Queries allowed in flight (past the cache) before the policy
    /// engages. Clamped to at least 1 by [`Self::validated`].
    pub max_inflight: usize,
    /// What happens to arrivals beyond `max_inflight`.
    pub policy: OverloadPolicy,
}

impl OverloadConfig {
    /// Clamp `max_inflight` to at least 1 (a zero-slot gate could never
    /// admit anything under `Reject`/`Queue`). Idempotent; called by
    /// [`crate::EngineConfig::validated`].
    pub fn validated(mut self) -> Self {
        self.max_inflight = self.max_inflight.max(1);
        self
    }
}

/// Load and shedding counters (monotonic since engine construction,
/// except `peak_inflight` which is a high-water mark). Every engine with
/// a `serve` entry point reports one, cheap enough to log per request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadStats {
    /// Queries admitted past the gate (including degraded ones).
    pub admitted: u64,
    /// Queries shed by the policy (`Reject`, or `Queue` timeout).
    pub shed: u64,
    /// Queries admitted with a degraded (floor) time budget.
    pub degraded: u64,
    /// Queries dropped because their deadline lapsed before they ran.
    pub expired: u64,
    /// Most queries ever in flight at once.
    pub peak_inflight: usize,
}

impl LoadStats {
    /// Fraction of gate decisions that shed the query (0.0 before any
    /// arrival).
    pub fn shed_rate(&self) -> f64 {
        let total = self.admitted + self.shed;
        if total == 0 {
            0.0
        } else {
            self.shed as f64 / total as f64
        }
    }
}

impl std::fmt::Display for LoadStats {
    /// One serving-log line with every counter and the (guarded) shed
    /// rate — the overload-side sibling of [`crate::CacheStats`]'s line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} admitted / {} shed (shed rate {:.2}) — {} degraded, \
             {} deadline-expired, peak in-flight {}",
            self.admitted,
            self.shed,
            self.shed_rate(),
            self.degraded,
            self.expired,
            self.peak_inflight,
        )
    }
}

/// How a `serve` call ended.
#[derive(Debug, Clone)]
pub enum ServeOutcome {
    /// The query was answered (possibly degraded — check
    /// `stats.quality`).
    Answered(Arc<TopKResult>),
    /// The gate shed the query (`Reject`, or a `Queue` wait timed out).
    Shed,
    /// The query's deadline lapsed before it could run.
    Expired,
}

impl ServeOutcome {
    /// The answer, if one was produced.
    pub fn answer(&self) -> Option<&Arc<TopKResult>> {
        match self {
            ServeOutcome::Answered(result) => Some(result),
            _ => None,
        }
    }
}

/// The gate's verdict on one arrival. The [`Ticket`] is the RAII slot
/// claim: dropping it frees the slot and wakes one queued waiter.
pub(crate) enum Admission<'a> {
    /// Run at full budget.
    Full(Ticket<'a>),
    /// Run with the time budget capped at the floor.
    Degraded(Ticket<'a>, Duration),
    /// Do not run.
    Shed,
}

/// RAII in-flight slot claim (see [`Admission`]).
pub(crate) struct Ticket<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let mut state = self.gate.state.lock().expect("gate poisoned");
        state.depth -= 1;
        drop(state);
        // notify_all, not notify_one: only the waiter at the head of the
        // ticket queue may claim the slot, and the condvar does not know
        // which thread that is. Everyone re-checks; the head proceeds.
        self.gate.freed.notify_all();
    }
}

/// The gate's mutable core: the live in-flight depth plus the FIFO
/// ticket queue behind the `Queue` policy. Waiters draw a ticket on
/// arrival and only the queue head may claim a freed slot, so admission
/// order is arrival order — a late arrival can neither barge past parked
/// waiters nor win a wakeup race against an earlier one.
#[derive(Debug, Default)]
struct GateState {
    depth: usize,
    next_ticket: u64,
    queue: VecDeque<u64>,
}

/// The shared admission gate: live in-flight depth behind a mutex (the
/// `Queue` policy parks waiters on the condvar, FIFO by ticket),
/// counters in relaxed atomics. Constructed unconditionally — without an
/// [`OverloadConfig`] it admits everything and still tracks load.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    config: Option<OverloadConfig>,
    state: Mutex<GateState>,
    freed: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    expired: AtomicU64,
    peak: AtomicUsize,
}

impl AdmissionGate {
    pub(crate) fn new(config: Option<OverloadConfig>) -> Self {
        AdmissionGate {
            config: config.map(OverloadConfig::validated),
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            peak: AtomicUsize::new(0),
        }
    }

    /// Decide one arrival's fate (may block under the `Queue` policy).
    pub(crate) fn admit(&self) -> Admission<'_> {
        let mut state = self.state.lock().expect("gate poisoned");
        let Some(cfg) = self.config else {
            return Admission::Full(self.enter(&mut state));
        };
        // Under `Queue`, a non-empty ticket queue gates even a below-
        // capacity arrival: the slot a just-dropped ticket freed belongs
        // to the parked head, not to whoever locks the mutex first.
        let contended = state.depth >= cfg.max_inflight
            || (matches!(cfg.policy, OverloadPolicy::Queue { .. }) && !state.queue.is_empty());
        if !contended {
            return Admission::Full(self.enter(&mut state));
        }
        match cfg.policy {
            OverloadPolicy::Reject => {
                self.shed.fetch_add(1, Ordering::Relaxed);
                Admission::Shed
            }
            OverloadPolicy::DegradeAnytime { floor_budget } => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                Admission::Degraded(self.enter(&mut state), floor_budget)
            }
            OverloadPolicy::Queue { timeout } => {
                let ticket = state.next_ticket;
                state.next_ticket += 1;
                state.queue.push_back(ticket);
                let blocked = |s: &mut GateState| {
                    s.depth >= cfg.max_inflight || s.queue.front() != Some(&ticket)
                };
                let (mut state, wait) =
                    self.freed.wait_timeout_while(state, timeout, blocked).expect("gate poisoned");
                if state.depth >= cfg.max_inflight || state.queue.front() != Some(&ticket) {
                    debug_assert!(wait.timed_out());
                    let pos = state
                        .queue
                        .iter()
                        .position(|&t| t == ticket)
                        .expect("timed-out waiter still holds its ticket");
                    state.queue.remove(pos);
                    drop(state);
                    // A timed-out head unblocks the ticket behind it.
                    self.freed.notify_all();
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    Admission::Shed
                } else {
                    state.queue.pop_front();
                    let admitted = self.enter(&mut state);
                    drop(state);
                    // The new head may fit too if several slots freed.
                    self.freed.notify_all();
                    Admission::Full(admitted)
                }
            }
        }
    }

    fn enter(&self, state: &mut GateState) -> Ticket<'_> {
        state.depth += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak.fetch_max(state.depth, Ordering::Relaxed);
        Ticket { gate: self }
    }

    /// Count a deadline that lapsed before the query ran.
    pub(crate) fn note_expired(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> LoadStats {
        LoadStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            peak_inflight: self.peak.load(Ordering::Relaxed),
        }
    }
}

/// The time budget a gated query actually runs under: the configured
/// budget capped by the remaining deadline and (for degraded
/// admissions) the policy's floor.
pub(crate) fn effective_budget(
    configured: Option<Duration>,
    remaining: Option<Duration>,
    floor: Option<Duration>,
) -> Option<Duration> {
    let mut budget = configured;
    for cap in [remaining, floor].into_iter().flatten() {
        budget = Some(budget.map_or(cap, |b| b.min(cap)));
    }
    budget
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungated_admissions_always_pass_and_count() {
        let gate = AdmissionGate::new(None);
        let a = gate.admit();
        let b = gate.admit();
        assert!(matches!(a, Admission::Full(_)) && matches!(b, Admission::Full(_)));
        drop((a, b));
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.shed, stats.peak_inflight), (2, 0, 2));
        assert_eq!(gate.state.lock().unwrap().depth, 0, "tickets release on drop");
    }

    #[test]
    fn reject_sheds_past_capacity_and_recovers() {
        let gate = AdmissionGate::new(Some(OverloadConfig {
            max_inflight: 1,
            policy: OverloadPolicy::Reject,
        }));
        let first = gate.admit();
        assert!(matches!(first, Admission::Full(_)));
        assert!(matches!(gate.admit(), Admission::Shed));
        drop(first);
        assert!(matches!(gate.admit(), Admission::Full(_)), "slot freed by the drop");
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.shed, stats.degraded), (2, 1, 0));
        assert!((stats.shed_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degrade_admits_with_the_floor_budget() {
        let gate = AdmissionGate::new(Some(OverloadConfig {
            max_inflight: 1,
            policy: OverloadPolicy::DegradeAnytime { floor_budget: Duration::from_millis(5) },
        }));
        let _first = gate.admit();
        match gate.admit() {
            Admission::Degraded(_, floor) => assert_eq!(floor, Duration::from_millis(5)),
            _ => panic!("second arrival must be degraded, not shed"),
        }
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.degraded, stats.shed), (2, 1, 0));
        assert_eq!(stats.peak_inflight, 2, "degraded queries still occupy a slot");
    }

    #[test]
    fn queue_timeout_sheds_when_no_slot_frees() {
        let gate = AdmissionGate::new(Some(OverloadConfig {
            max_inflight: 1,
            policy: OverloadPolicy::Queue { timeout: Duration::from_millis(1) },
        }));
        let _held = gate.admit();
        assert!(matches!(gate.admit(), Admission::Shed), "timed-out wait sheds");
        assert_eq!(gate.stats().shed, 1);
    }

    #[test]
    fn queued_arrival_runs_once_a_slot_frees() {
        let gate = Arc::new(AdmissionGate::new(Some(OverloadConfig {
            max_inflight: 1,
            policy: OverloadPolicy::Queue { timeout: Duration::from_secs(30) },
        })));
        let held = gate.admit();
        assert!(matches!(held, Admission::Full(_)));
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| matches!(gate.admit(), Admission::Full(_)));
            std::thread::sleep(Duration::from_millis(10));
            drop(held);
            assert!(waiter.join().expect("waiter"), "freed slot must admit the parked arrival");
        });
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.shed), (2, 0));
    }

    #[test]
    fn queued_waiters_are_admitted_in_arrival_order() {
        let gate = Arc::new(AdmissionGate::new(Some(OverloadConfig {
            max_inflight: 1,
            policy: OverloadPolicy::Queue { timeout: Duration::from_secs(30) },
        })));
        let held = gate.admit();
        assert!(matches!(held, Admission::Full(_)));
        let order = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            let waiters: Vec<_> = (0..3)
                .map(|i| {
                    let worker = Arc::clone(&gate);
                    let order = &order;
                    let handle = scope.spawn(move || {
                        let admission = worker.admit();
                        assert!(matches!(admission, Admission::Full(_)), "waiter {i} shed");
                        // Record before releasing: with one slot, push
                        // order is exactly admission order.
                        order.lock().unwrap().push(i);
                        drop(admission);
                    });
                    // Stagger arrivals so the ticket order is 0, 1, 2.
                    while gate.state.lock().unwrap().queue.len() < i + 1 {
                        std::thread::yield_now();
                    }
                    handle
                })
                .collect();
            drop(held);
            for w in waiters {
                w.join().expect("waiter");
            }
        });
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "FIFO admission");
        let stats = gate.stats();
        assert_eq!((stats.admitted, stats.shed), (4, 0));
    }

    #[test]
    fn late_arrival_queues_behind_a_parked_waiter() {
        // Depth below capacity but a waiter parked: a newcomer must not
        // barge past it — the freed slot belongs to the queue head. The
        // parked waiter is simulated by seeding its ticket directly, so
        // the window (slot freed, head not yet woken) is held open.
        let gate = AdmissionGate::new(Some(OverloadConfig {
            max_inflight: 1,
            policy: OverloadPolicy::Queue { timeout: Duration::from_millis(5) },
        }));
        {
            let mut state = gate.state.lock().unwrap();
            state.next_ticket = 1;
            state.queue.push_back(0);
        }
        assert!(matches!(gate.admit(), Admission::Shed), "latecomer must not barge");
        assert_eq!(gate.stats().shed, 1);
        let state = gate.state.lock().unwrap();
        assert_eq!(state.queue.front(), Some(&0), "the parked ticket keeps its claim");
        assert_eq!(state.queue.len(), 1, "the latecomer's ticket is withdrawn");
    }

    #[test]
    fn effective_budget_takes_the_tightest_cap() {
        let ms = Duration::from_millis;
        assert_eq!(effective_budget(None, None, None), None);
        assert_eq!(effective_budget(Some(ms(10)), None, None), Some(ms(10)));
        assert_eq!(effective_budget(None, Some(ms(7)), None), Some(ms(7)));
        assert_eq!(effective_budget(Some(ms(10)), Some(ms(7)), Some(ms(3))), Some(ms(3)));
        assert_eq!(effective_budget(Some(ms(2)), Some(ms(7)), Some(ms(3))), Some(ms(2)));
    }

    #[test]
    fn zero_slot_gates_clamp_to_one() {
        let cfg = OverloadConfig { max_inflight: 0, policy: OverloadPolicy::Reject }.validated();
        assert_eq!(cfg.max_inflight, 1);
        let gate = AdmissionGate::new(Some(cfg));
        assert!(matches!(gate.admit(), Admission::Full(_)));
    }

    #[test]
    fn load_stats_display_reads_like_a_log_line() {
        let stats = LoadStats { admitted: 8, shed: 2, degraded: 3, expired: 1, peak_inflight: 4 };
        let line = stats.to_string();
        assert_eq!(
            line,
            "8 admitted / 2 shed (shed rate 0.20) — 3 degraded, 1 deadline-expired, \
             peak in-flight 4"
        );
    }
}
