//! Seeker-keyed warm propagation pool.
//!
//! A `Propagation` is a function of (graph, γ, seeker) only — never of the
//! query — so a propagation left at step `n` by one query can serve any
//! later query from the same seeker by resuming instead of recomputing
//! steps `0..n` (see `s3_graph::Propagation` and ARCHITECTURE.md
//! "Propagation lifecycle"). [`PropPool`] keeps a small bounded map of
//! detached [`PropagationState`]s keyed by seeker so batch workers can
//! route each query to a propagation already warm for its seeker — the
//! lever that pays off under Zipf-skewed seeker traffic, where a few hot
//! seekers dominate the stream.
//!
//! Entries are epoch-stamped with the same configuration epoch as the
//! result cache: a configuration change bumps the epoch, and a stale
//! entry's buffers are recycled instead of resumed — the one invalidation
//! story shared by every warm structure in this crate. Each warm state
//! holds O(|graph|) buffers, so the map is capacity-bounded (evicting the
//! least-recently-returned seeker) and displaced states land on a spare
//! list for reuse by cold checkouts. Spare states carry **allocations
//! only**: every state is [`PropagationState::invalidate`]d before it is
//! spared, because the spare list is not epoch-tracked — a state parked
//! under epoch `e` could otherwise be popped after a bump and silently
//! resumed.

use s3_core::{PropagationState, ResumeOutcome, UserId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Propagation-reuse counters (monotonic since engine construction), the
/// resume-side companion of `CacheStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Checkouts that found a warm same-seeker propagation (same epoch).
    pub warm_hits: u64,
    /// Checkouts served a fresh or recycled state instead.
    pub warm_misses: u64,
    /// Queries answered from a cold (step-0) propagation.
    pub cold: u64,
    /// Queries that resumed a warm propagation from a non-zero step.
    pub resumed: u64,
    /// Resume attempts replayed cold for byte-identity (the probe's first
    /// stop evaluation would have returned; see `s3_core::ResumeOutcome`).
    pub fallbacks: u64,
    /// Warm states dropped by an explicit invalidation (a live-ingestion
    /// epoch bump whose delta made resuming them unsound). States
    /// *rebased* onto the new graph after a detached delta are not
    /// counted — they stay live.
    pub invalidated: u64,
}

impl ResumeStats {
    /// Fraction of queries that actually continued a warm propagation
    /// (0.0 before any query ran).
    pub fn resume_rate(&self) -> f64 {
        let total = self.cold + self.resumed + self.fallbacks;
        if total == 0 {
            0.0
        } else {
            self.resumed as f64 / total as f64
        }
    }

    /// Fraction of checkouts that found a warm same-seeker state (0.0
    /// before any checkout happened — never NaN).
    pub fn warm_hit_rate(&self) -> f64 {
        let total = self.warm_hits + self.warm_misses;
        if total == 0 {
            0.0
        } else {
            self.warm_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for ResumeStats {
    /// One serving-log line mirroring [`crate::CacheStats`]'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} resumed / {} cold / {} fallbacks (resume rate {:.2}) — \
             {} warm hits, {} warm misses, {} invalidated",
            self.resumed,
            self.cold,
            self.fallbacks,
            self.resume_rate(),
            self.warm_hits,
            self.warm_misses,
            self.invalidated,
        )
    }
}

/// One pooled entry: the state, the epoch it was computed under, and a
/// recency stamp for eviction.
#[derive(Debug)]
struct WarmEntry {
    epoch: u64,
    last_used: u64,
    state: PropagationState,
}

#[derive(Debug, Default)]
struct WarmMap {
    by_seeker: HashMap<UserId, WarmEntry>,
    /// Invalidated states (allocations only, no warmth), reused by cold
    /// checkouts so buffer allocations amortize across the pool.
    spare: Vec<PropagationState>,
    tick: u64,
}

impl WarmMap {
    /// Retire a state to the spare list, stripping its warmth first (the
    /// spare list carries no epoch or seeker bookkeeping).
    fn spare(&mut self, mut state: PropagationState) {
        state.invalidate();
        self.spare.push(state);
    }
}

/// The bounded seeker-keyed pool of warm propagation states.
#[derive(Debug)]
pub(crate) struct PropPool {
    inner: Mutex<WarmMap>,
    /// Maximum seeker-keyed entries; 0 disables affinity (every checkout
    /// is a recycled-spare miss).
    capacity: usize,
    warm_hits: AtomicU64,
    warm_misses: AtomicU64,
    cold: AtomicU64,
    resumed: AtomicU64,
    fallbacks: AtomicU64,
    invalidated: AtomicU64,
}

impl PropPool {
    pub(crate) fn new(capacity: usize) -> Self {
        PropPool {
            inner: Mutex::new(WarmMap::default()),
            capacity,
            warm_hits: AtomicU64::new(0),
            warm_misses: AtomicU64::new(0),
            cold: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    /// Drop every warm entry's warmth (allocations are spared for reuse)
    /// and count them as invalidated. Live ingestion calls this on pools
    /// whose epoch it bumps — the entries could never resume again.
    pub(crate) fn invalidate_all(&self) -> u64 {
        let mut inner = self.inner.lock().expect("warm pool poisoned");
        let dropped = inner.by_seeker.len() as u64;
        let seekers: Vec<UserId> = inner.by_seeker.keys().copied().collect();
        for s in seekers {
            let entry = inner.by_seeker.remove(&s).expect("listed");
            inner.spare(entry.state);
        }
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Re-home every warm entry from graph `from` onto graph `to` (a
    /// strictly-appended successor — the detached-delta contract of
    /// [`s3_graph::PropagationState::rebase`]) and restamp it with
    /// `epoch` (sound for the same reason the rebase is: after a detached
    /// delta the state is exactly what a post-ingest propagation would
    /// have computed). Entries that refuse the rebase (e.g. parked under
    /// an even older graph) are spared and counted invalidated. Returns
    /// `(kept, dropped)`.
    pub(crate) fn rebase_all(
        &self,
        from: &s3_graph::SocialGraph,
        to: &s3_graph::SocialGraph,
        gamma: f64,
        epoch: u64,
    ) -> (u64, u64) {
        let mut inner = self.inner.lock().expect("warm pool poisoned");
        let seekers: Vec<UserId> = inner.by_seeker.keys().copied().collect();
        let (mut kept, mut dropped) = (0u64, 0u64);
        for s in seekers {
            let mut entry = inner.by_seeker.remove(&s).expect("listed");
            if entry.state.rebase(from, to, gamma) {
                kept += 1;
                entry.epoch = epoch;
                inner.by_seeker.insert(s, entry);
            } else {
                dropped += 1;
                inner.spare(entry.state);
            }
        }
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        (kept, dropped)
    }

    /// Take a state for `seeker`: the warm one when present and stamped
    /// with `epoch`, otherwise a recycled (or fresh) state that will
    /// attach cold.
    pub(crate) fn check_out(&self, seeker: UserId, epoch: u64) -> PropagationState {
        let mut inner = self.inner.lock().expect("warm pool poisoned");
        if let Some(entry) = inner.by_seeker.remove(&seeker) {
            if entry.epoch == epoch {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
                return entry.state;
            }
            // Configuration changed since this state was parked: only
            // the allocations survive (spare() strips the warmth, so the
            // pop below cannot hand the stale state back intact).
            inner.spare(entry.state);
        }
        self.warm_misses.fetch_add(1, Ordering::Relaxed);
        inner.spare.pop().unwrap_or_default()
    }

    /// Park a state under the seeker it is warm for. Over capacity, the
    /// least-recently-returned seeker is displaced to the spare list.
    pub(crate) fn check_in(&self, seeker: UserId, epoch: u64, state: PropagationState) {
        let mut inner = self.inner.lock().expect("warm pool poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if self.capacity == 0 {
            inner.spare(state);
        } else {
            if let Some(prev) =
                inner.by_seeker.insert(seeker, WarmEntry { epoch, last_used: tick, state })
            {
                inner.spare(prev.state);
            }
            if inner.by_seeker.len() > self.capacity {
                let victim = inner
                    .by_seeker
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(&k, _)| k)
                    .expect("over-capacity map is non-empty");
                let evicted = inner.by_seeker.remove(&victim).expect("victim present");
                inner.spare(evicted.state);
            }
        }
        // Spare states hold O(|graph|) buffers too: keep only enough to
        // serve churn, let the rest deallocate.
        let spare_cap = self.capacity.max(8);
        inner.spare.truncate(spare_cap);
    }

    /// Record how a query's search actually used its propagation.
    pub(crate) fn note(&self, outcome: ResumeOutcome) {
        let counter = match outcome {
            ResumeOutcome::Cold => &self.cold,
            ResumeOutcome::Resumed => &self.resumed,
            ResumeOutcome::Fallback => &self.fallbacks,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ResumeStats {
        ResumeStats {
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            warm_misses: self.warm_misses.load(Ordering::Relaxed),
            cold: self.cold.load(Ordering::Relaxed),
            resumed: self.resumed.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_checkout_round_trips() {
        let pool = PropPool::new(4);
        let u = UserId(3);
        let state = pool.check_out(u, 0);
        pool.check_in(u, 0, state);
        pool.check_out(u, 0);
        let stats = pool.stats();
        assert_eq!((stats.warm_hits, stats.warm_misses), (1, 1));
    }

    #[test]
    fn epoch_mismatch_recycles_instead_of_resuming() {
        let pool = PropPool::new(4);
        let u = UserId(1);
        let state = pool.check_out(u, 0);
        pool.check_in(u, 0, state);
        pool.check_out(u, 1); // epoch bumped: must miss
        let stats = pool.stats();
        assert_eq!((stats.warm_hits, stats.warm_misses), (0, 2));
    }

    #[test]
    fn capacity_evicts_least_recently_returned() {
        let pool = PropPool::new(2);
        for i in 0..3u32 {
            let state = pool.check_out(UserId(i), 0);
            pool.check_in(UserId(i), 0, state);
        }
        // UserId(0) was returned first → displaced.
        pool.check_out(UserId(0), 0);
        pool.check_out(UserId(2), 0);
        let stats = pool.stats();
        assert_eq!(stats.warm_hits, 1, "only the surviving entries hit");
        assert_eq!(stats.warm_misses, 4);
    }

    #[test]
    fn zero_capacity_disables_affinity() {
        let pool = PropPool::new(0);
        let u = UserId(9);
        let state = pool.check_out(u, 0);
        pool.check_in(u, 0, state);
        pool.check_out(u, 0);
        assert_eq!(pool.stats().warm_hits, 0);
    }

    #[test]
    fn resume_rate_tracks_outcomes() {
        let pool = PropPool::new(4);
        assert_eq!(pool.stats().resume_rate(), 0.0);
        pool.note(ResumeOutcome::Cold);
        pool.note(ResumeOutcome::Resumed);
        pool.note(ResumeOutcome::Resumed);
        pool.note(ResumeOutcome::Fallback);
        let stats = pool.stats();
        assert_eq!((stats.cold, stats.resumed, stats.fallbacks), (1, 2, 1));
        assert!((stats.resume_rate() - 0.5).abs() < 1e-12);
    }
}
