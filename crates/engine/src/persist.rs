//! Durable live serving: snapshot + ingest WAL + warm restarts.
//!
//! The live engines ([`crate::LiveEngine::open`],
//! [`crate::LiveShardedEngine::open`]) persist their state in one
//! directory:
//!
//! ```text
//! <dir>/snapshot.s3k   the last checkpoint (s3_core::save_snapshot)
//! <dir>/ingest.wal     batches applied since (s3_core::WriteAheadLog)
//! ```
//!
//! **Commit rule.** Every [`s3_core::IngestBatch`] is journaled — as an
//! encoded [`s3_wire::WireIngest`] frame — and fsynced *before* it is
//! applied, so an ingest whose effect was ever observable can always be
//! replayed after a crash.
//!
//! **Recovery** is load-snapshot-then-replay-tail: `open` loads the
//! snapshot (or seeds a fresh builder when none exists) and replays the
//! WAL's intact records through [`s3_core::InstanceBuilder::apply`].
//! Because the builder's event log is replay-stable, the recovered
//! engine answers queries byte-identically to the one that crashed.
//!
//! **Checkpointing** (`checkpoint` on the live engines, or a background
//! [`Checkpointer`]) writes a fresh snapshot atomically and then — only
//! then — truncates the WAL, upholding the invariant that
//! `snapshot + WAL tail ≡ current state` at every instant.

use s3_core::{CompactionReport, IngestBatch, WriteAheadLog};
use s3_snap::SnapError;
use s3_wire::{WireError, WireIngest};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Snapshot file name inside a persistence directory.
pub const SNAPSHOT_FILE: &str = "snapshot.s3k";

/// WAL file name inside a persistence directory.
pub const WAL_FILE: &str = "ingest.wal";

/// Errors from the durability layer.
#[derive(Debug)]
pub enum PersistError {
    /// Snapshot or WAL file error (I/O, corruption, version mismatch).
    Snapshot(SnapError),
    /// A WAL record's bytes did not decode as an ingest frame. The CRC
    /// matched, so this is version skew or a writer bug — never applied.
    Record(WireError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Snapshot(e) => write!(f, "snapshot/WAL: {e}"),
            PersistError::Record(e) => write!(f, "WAL record decode: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Snapshot(e) => Some(e),
            PersistError::Record(e) => Some(e),
        }
    }
}

impl From<SnapError> for PersistError {
    fn from(e: SnapError) -> Self {
        PersistError::Snapshot(e)
    }
}

impl From<WireError> for PersistError {
    fn from(e: WireError) -> Self {
        PersistError::Record(e)
    }
}

/// Where a recovered engine's initial state came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// No snapshot on disk: the engine started from the seed builder.
    Seed,
    /// The on-disk snapshot was loaded.
    Snapshot,
}

/// What [`crate::LiveEngine::open`] / [`crate::LiveShardedEngine::open`]
/// found and did.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Snapshot or seed start.
    pub source: RecoverySource,
    /// WAL records replayed on top of the starting state.
    pub replayed: usize,
    /// True when a torn or corrupt WAL tail was discarded.
    pub dropped_tail: bool,
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "recovered from {} + {} WAL record{}{}",
            match self.source {
                RecoverySource::Seed => "seed",
                RecoverySource::Snapshot => "snapshot",
            },
            self.replayed,
            if self.replayed == 1 { "" } else { "s" },
            if self.dropped_tail { " (torn tail dropped)" } else { "" },
        )
    }
}

/// The journal + snapshot path a durable live engine holds (under its
/// writer lock, so WAL appends serialize with the applies they precede).
pub(crate) struct Persistence {
    pub(crate) wal: WriteAheadLog,
    pub(crate) snapshot_path: PathBuf,
}

impl Persistence {
    /// Journal one batch (encoded as a [`WireIngest`] frame) and fsync it
    /// — the commit rule's first half; the caller applies afterwards.
    pub(crate) fn journal(&mut self, batch: &IngestBatch) -> Result<(), SnapError> {
        let wire = WireIngest::from_batch(batch);
        let mut payload = Vec::new();
        wire.encode(&mut payload);
        self.wal.append(&payload)
    }
}

/// Decode one WAL record back into a batch.
pub(crate) fn record_to_batch(record: &[u8]) -> Result<IngestBatch, WireError> {
    let mut wire = WireIngest::default();
    wire.decode_into(record)?;
    Ok(wire.to_batch())
}

/// The snapshot path inside a persistence directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAPSHOT_FILE)
}

/// The WAL path inside a persistence directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

/// What one checkpoint did.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// WAL records the fresh snapshot absorbed (the journal was this
    /// long before it was truncated).
    pub absorbed: u64,
}

/// A live engine that can take checkpoints — implemented by
/// [`crate::LiveEngine`] and [`crate::LiveShardedEngine`] when opened
/// with durability, and what a background [`Checkpointer`] drives.
pub trait Checkpoint: Send + Sync {
    /// Records currently in the WAL, or `None` when the engine was built
    /// without durability.
    fn wal_records(&self) -> Option<u64>;

    /// Write a fresh snapshot atomically, then truncate the WAL.
    fn checkpoint(&self) -> Result<CheckpointReport, PersistError>;
}

struct CheckpointerShared {
    stop: Mutex<bool>,
    wake: Condvar,
    taken: Mutex<u64>,
    last_error: Mutex<Option<PersistError>>,
}

/// A background checkpointing thread: every `interval`, if the WAL has
/// at least `min_records` records, take a checkpoint. Stop (and surface
/// any error) with [`Self::stop`].
pub struct Checkpointer {
    shared: Arc<CheckpointerShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Checkpointer {
    /// Spawn the thread over any [`Checkpoint`]-able engine.
    pub fn spawn<C: Checkpoint + 'static>(
        engine: Arc<C>,
        interval: Duration,
        min_records: u64,
    ) -> Self {
        let shared = Arc::new(CheckpointerShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            taken: Mutex::new(0),
            last_error: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::spawn(move || loop {
            {
                let stop = worker.stop.lock().expect("checkpointer flag poisoned");
                let (stop, _) = worker
                    .wake
                    .wait_timeout_while(stop, interval, |stopped| !*stopped)
                    .expect("checkpointer flag poisoned");
                if *stop {
                    return;
                }
            }
            if engine.wal_records().is_some_and(|n| n >= min_records.max(1)) {
                match engine.checkpoint() {
                    Ok(_) => {
                        *worker.taken.lock().expect("checkpoint counter poisoned") += 1;
                    }
                    Err(e) => {
                        *worker.last_error.lock().expect("checkpoint error slot poisoned") =
                            Some(e);
                    }
                }
            }
        });
        Checkpointer { shared, thread: Some(thread) }
    }

    /// Checkpoints taken so far.
    pub fn taken(&self) -> u64 {
        *self.shared.taken.lock().expect("checkpoint counter poisoned")
    }

    /// Signal the thread, join it, and return the number of checkpoints
    /// taken — or the last checkpoint error, if any occurred.
    pub fn stop(mut self) -> Result<u64, PersistError> {
        *self.shared.stop.lock().expect("checkpointer flag poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        if let Some(e) =
            self.shared.last_error.lock().expect("checkpoint error slot poisoned").take()
        {
            return Err(e);
        }
        Ok(self.taken())
    }
}

impl Drop for Checkpointer {
    fn drop(&mut self) {
        *self.shared.stop.lock().expect("checkpointer flag poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// What one compaction epoch did: the instance-level rebuild summary
/// plus the serving-layer fallout (compaction renumbers every entity id,
/// so the invalidation is always global).
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// The clean rebuild's drop counts ([`s3_core::InstanceBuilder::compact`]).
    pub compaction: CompactionReport,
    /// Cached results dropped across the front and every shard.
    pub results_invalidated: u64,
    /// Warm propagation states dropped across the front and every shard.
    pub warm_invalidated: u64,
    /// WAL records absorbed by the checkpoint the compaction forced
    /// (`None` on an engine without durability). A durable compaction
    /// *must* checkpoint before publishing: the journal's records
    /// reference pre-compaction ids and would replay wrongly on top of
    /// the compacted snapshot.
    pub checkpointed: Option<u64>,
}

impl std::fmt::Display for CompactReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} — {} results invalidated, {} warm dropped{}",
            self.compaction,
            self.results_invalidated,
            self.warm_invalidated,
            match self.checkpointed {
                Some(n) => format!(", checkpoint absorbed {n} WAL records"),
                None => String::new(),
            },
        )
    }
}

/// A live engine that can compact tombstoned state away — implemented by
/// [`crate::LiveEngine`] and [`crate::LiveShardedEngine`], and what a
/// background [`Compactor`] drives.
pub trait Compact: Send + Sync {
    /// Fraction of the current snapshot's graph nodes that are
    /// tombstoned (the compaction trigger signal; 0 when nothing has
    /// been deleted).
    fn dead_fraction(&self) -> f64;

    /// Rebuild the instance without tombstoned state off the serving
    /// path and swap the clean snapshot in.
    fn compact(&self) -> Result<CompactReport, PersistError>;
}

/// When a background [`Compactor`] fires.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// How often the trigger signal is polled.
    pub interval: Duration,
    /// Compact once at least this fraction of graph nodes is tombstoned
    /// (a compaction epoch costs a full rebuild, so fire only when the
    /// reclaimed memory and pruned dead-node skips pay for it).
    pub min_dead_fraction: f64,
}

impl Default for CompactionPolicy {
    /// Poll every 60 s; compact at ≥ 20 % dead nodes.
    fn default() -> Self {
        CompactionPolicy { interval: Duration::from_secs(60), min_dead_fraction: 0.2 }
    }
}

struct CompactorShared {
    stop: Mutex<bool>,
    wake: Condvar,
    taken: Mutex<u64>,
    last_error: Mutex<Option<PersistError>>,
}

/// A background compaction thread: every [`CompactionPolicy::interval`],
/// if the engine's dead-node fraction has reached
/// [`CompactionPolicy::min_dead_fraction`], run one compaction epoch.
/// Stop (and surface any error) with [`Self::stop`].
pub struct Compactor {
    shared: Arc<CompactorShared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Compactor {
    /// Spawn the thread over any [`Compact`]-able engine.
    pub fn spawn<C: Compact + 'static>(engine: Arc<C>, policy: CompactionPolicy) -> Self {
        let shared = Arc::new(CompactorShared {
            stop: Mutex::new(false),
            wake: Condvar::new(),
            taken: Mutex::new(0),
            last_error: Mutex::new(None),
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::spawn(move || loop {
            {
                let stop = worker.stop.lock().expect("compactor flag poisoned");
                let (stop, _) = worker
                    .wake
                    .wait_timeout_while(stop, policy.interval, |stopped| !*stopped)
                    .expect("compactor flag poisoned");
                if *stop {
                    return;
                }
            }
            let dead = engine.dead_fraction();
            if dead > 0.0 && dead >= policy.min_dead_fraction {
                match engine.compact() {
                    Ok(_) => {
                        *worker.taken.lock().expect("compaction counter poisoned") += 1;
                    }
                    Err(e) => {
                        *worker.last_error.lock().expect("compaction error slot poisoned") =
                            Some(e);
                    }
                }
            }
        });
        Compactor { shared, thread: Some(thread) }
    }

    /// Compaction epochs completed so far.
    pub fn taken(&self) -> u64 {
        *self.shared.taken.lock().expect("compaction counter poisoned")
    }

    /// Signal the thread, join it, and return the number of compactions
    /// taken — or the last compaction error, if any occurred.
    pub fn stop(mut self) -> Result<u64, PersistError> {
        *self.shared.stop.lock().expect("compactor flag poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        if let Some(e) =
            self.shared.last_error.lock().expect("compaction error slot poisoned").take()
        {
            return Err(e);
        }
        Ok(self.taken())
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        *self.shared.stop.lock().expect("compactor flag poisoned") = true;
        self.shared.wake.notify_all();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
