//! Sharded serving: a fleet of [`S3Engine`] shards behind one façade.
//!
//! [`ShardedEngine`] partitions the instance's content components across
//! `num_shards` shards ([`ComponentPartition::balanced`]) and serves each
//! query by scatter-gather:
//!
//! * every shard is a full [`S3Engine`] over the *shared*
//!   `Arc<S3Instance>` (zero copy) whose search is restricted to its own
//!   components via `SearchConfig::component_filter` — individually
//!   queryable, exactly as a remote shard server would be;
//! * the epoch-keyed LRU cache sits **in front of** the scatter: a hit
//!   costs one lookup regardless of shard count, and per-shard caches are
//!   disabled (they would only duplicate entries);
//! * a miss fans out through [`ShardRouter`] to the shards that can match
//!   the query and runs the core's iteration-synchronous scatter-gather
//!   (`S3kEngine::run_partitioned_with`), using one scratch checked out of
//!   *each shard's* pool — warm workers answer without steady-state
//!   allocation, per shard;
//! * batches fan out over scoped workers exactly like [`S3Engine`]'s.
//!
//! The defining invariant: for every query and any shard count,
//! `ShardedEngine` returns byte-identical hits, candidate lists and stop
//! reasons to a single `S3Engine` over the unsharded instance
//! (property-tested in `tests/sharding.rs`).

use crate::batch::{self, CacheKey, EpochConfig, ResultCache};
use crate::gate::{self, Admission, AdmissionGate, LoadStats, ServeOutcome};
use crate::warm::PropPool;
use crate::{CacheStats, EngineConfig, ResumeStats, S3Engine};
use s3_core::{
    CompId, ComponentFilter, ComponentPartition, Propagation, Query, S3Instance, S3kEngine,
    ScoreModel, SearchConfig, SearchScratch, StopReason, TopKResult, UserId,
};
use s3_text::KeywordId;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Maps seekers, components and query keywords to shards.
///
/// Keyword routing is conservative: a shard is *relevant* to a query when
/// the union of its components' keyword sets intersects every (under
/// conjunctive semantics — any, under disjunctive) query keyword
/// extension. A shard that fails the test provably admits no candidate,
/// so dropping it from the scatter preserves exactness.
#[derive(Debug)]
pub struct ShardRouter {
    partition: Arc<ComponentPartition>,
    shard_keywords: Vec<HashSet<KeywordId>>,
}

impl ShardRouter {
    /// Build the routing tables for a partitioned instance.
    pub fn new(instance: &S3Instance, partition: Arc<ComponentPartition>) -> Self {
        let mut shard_keywords = vec![HashSet::new(); partition.num_shards()];
        for comp in instance.graph().components().iter() {
            shard_keywords[partition.shard_of(comp)]
                .extend(instance.component_keywords(comp).iter().copied());
        }
        ShardRouter { partition, shard_keywords }
    }

    /// The partition behind the router.
    pub fn partition(&self) -> &ComponentPartition {
        &self.partition
    }

    /// The shard owning a content component.
    pub fn shard_of_component(&self, comp: CompId) -> usize {
        self.partition.shard_of(comp)
    }

    /// The shard owning a seeker's own (singleton) component.
    pub fn shard_of_seeker(&self, instance: &S3Instance, seeker: UserId) -> usize {
        let node = instance.user_node(seeker);
        self.partition.shard_of(instance.graph().components().component_of(node))
    }

    /// The shards relevant to a query, ascending and deduplicated, into a
    /// reusable buffer. Keyword extensions follow the configuration
    /// (`semantic_expansion`, the score's conjunctive/disjunctive
    /// semantics), mirroring what the search itself will do.
    pub fn route_into(
        &self,
        instance: &S3Instance,
        query: &Query,
        config: &SearchConfig,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let conjunctive = config.score.requires_all_keywords();
        'shards: for (s, kws) in self.shard_keywords.iter().enumerate() {
            // An empty keyword list routes everywhere; the search itself
            // rejects it as unanswerable.
            let mut any = query.keywords.is_empty();
            for &k in &query.keywords {
                let hit = if config.semantic_expansion {
                    instance.expand_keyword(k).iter().any(|e| kws.contains(e))
                } else {
                    kws.contains(&k)
                };
                if conjunctive && !hit {
                    continue 'shards;
                }
                any |= hit;
            }
            if any || conjunctive {
                out.push(s);
            }
        }
    }

    /// The shards relevant to a query (convenience over
    /// [`Self::route_into`]).
    pub fn route(&self, instance: &S3Instance, query: &Query, config: &SearchConfig) -> Vec<usize> {
        let mut out = Vec::new();
        self.route_into(instance, query, config, &mut out);
        out
    }
}

/// A sharded serving engine: `Vec<S3Engine>` + router + front cache.
///
/// ```
/// use s3_core::{InstanceBuilder, Query};
/// use s3_doc::DocBuilder;
/// use s3_engine::{EngineConfig, ShardedEngine};
/// use s3_text::Language;
/// use std::sync::Arc;
///
/// let mut b = InstanceBuilder::new(Language::English);
/// let u = b.add_user();
/// for text in ["a degree", "a second degree"] {
///     let kws = b.analyze(text);
///     let mut doc = DocBuilder::new("post");
///     doc.set_content(doc.root(), kws);
///     b.add_document(doc, Some(u));
/// }
/// let engine = ShardedEngine::new(Arc::new(b.build()), EngineConfig::builder().build(), 2);
/// assert_eq!(engine.num_shards(), 2);
///
/// let keywords = engine.instance().query_keywords("degree");
/// let result = engine.query(&Query::new(u, keywords.clone(), 3));
/// assert_eq!(result.hits.len(), 2, "hits gathered across both shards");
/// let again = engine.query(&Query::new(u, keywords, 3));
/// assert_eq!(engine.cache_stats().hits, 1, "one lookup, no scatter");
/// assert_eq!(again.hits, result.hits);
/// ```
pub struct ShardedEngine {
    instance: Arc<S3Instance>,
    /// The partition lives inside the router; each shard's filter lives
    /// inside that shard's configuration — no duplicated state to drift.
    router: ShardRouter,
    shards: Vec<S3Engine>,
    /// Top-level search config + epoch (the scatter path's config; shard
    /// engines carry the same config plus their component filter).
    /// `Arc`-shared with live-ingestion successors.
    config: Arc<EpochConfig>,
    threads: usize,
    cache: Arc<ResultCache>,
    /// Pool of carrier scratches (the scatter driver's query-global
    /// state; per-shard scratches live in each shard's own pool and are
    /// checked out lazily, per query, for the routed shards only).
    carriers: Arc<Mutex<Vec<SearchScratch>>>,
    /// Seeker-keyed warm propagations — one per query, shared by every
    /// shard of its scatter, so affinity lives at the front, not per
    /// shard.
    props: Arc<PropPool>,
    /// Admission gate for the `serve` entry point — in front of the
    /// scatter, like the cache, so shedding one query spares every shard.
    gate: Arc<AdmissionGate>,
}

impl ShardedEngine {
    /// Partition `instance`'s components into `num_shards` (clamped to at
    /// least 1) balanced shards and build a serving engine over them. The
    /// configuration is [`EngineConfig::validated`] first; any
    /// `component_filter` it carries is ignored (the engine installs its
    /// own per-shard filters).
    pub fn new(instance: Arc<S3Instance>, config: EngineConfig, num_shards: usize) -> Self {
        let partition = Arc::new(ComponentPartition::balanced(&instance, num_shards));
        ShardedEngine::with_partition(instance, config, partition, false)
    }

    /// Build over an explicit component partition. `shard_serving` turns
    /// the per-shard result caches and warm pools **on** (sized like the
    /// front's): the live sharded engine uses this so each shard is a
    /// fully-serving, individually queryable engine whose warm state can
    /// survive ingests that don't touch it. The plain [`Self::new`] path
    /// keeps them off — behind one front cache they would only duplicate
    /// entries.
    pub(crate) fn with_partition(
        instance: Arc<S3Instance>,
        config: EngineConfig,
        partition: Arc<ComponentPartition>,
        shard_serving: bool,
    ) -> Self {
        let EngineConfig {
            mut search,
            threads,
            cache_capacity,
            cache_policy,
            cache_ttl,
            warm_seekers,
            overload,
        } = config.validated();
        search.component_filter = None;
        let router = ShardRouter::new(&instance, Arc::clone(&partition));
        let shards = (0..partition.num_shards())
            .map(|s| {
                let filter = Arc::new(ComponentFilter::for_shard(&partition, s));
                S3Engine::new(
                    Arc::clone(&instance),
                    EngineConfig {
                        search: SearchConfig { component_filter: Some(filter), ..search.clone() },
                        // The scatter is driven per query by the batch
                        // workers; shard-local batching stays off either
                        // way, and without `shard_serving` so do caching
                        // and seeker affinity (the front engine already
                        // covers all three). Policy and TTL are inherited
                        // so a serving shard ages and admits exactly like
                        // the front.
                        threads: 1,
                        cache_capacity: if shard_serving { cache_capacity } else { 0 },
                        cache_policy,
                        cache_ttl,
                        warm_seekers: if shard_serving { warm_seekers } else { 0 },
                        // Overload control lives at the front: per-shard
                        // gates would double-count one scatter's load.
                        overload: None,
                    },
                )
            })
            .collect();
        ShardedEngine {
            instance,
            router,
            shards,
            config: Arc::new(EpochConfig::new(search)),
            threads,
            cache: Arc::new(ResultCache::new(cache_capacity, cache_policy, cache_ttl)),
            carriers: Arc::new(Mutex::new(Vec::new())),
            props: Arc::new(PropPool::new(warm_seekers)),
            gate: Arc::new(AdmissionGate::new(overload)),
        }
    }

    /// A sharded engine over a new snapshot + partition that *shares* this
    /// one's front cache, warm pool and carrier pool, and whose shard
    /// engines share their predecessors' state likewise (see
    /// [`S3Engine::succeed`]). Config/epoch lines are carried forward per
    /// generation, never shared: the front's epoch advances by one (a
    /// snapshot swap always invalidates the front), each shard's is
    /// carried unchanged — the live engine bumps exactly the shards whose
    /// universe changed by reinstalling their filters through
    /// `set_search_config` on the *new* generation. A reader pinning the
    /// old generation therefore stamps only old epochs. The router is
    /// rebuilt for the new snapshot; stale filters on unbumped shards
    /// stay correct (unknown component ids are rejected).
    pub(crate) fn succeed(
        &self,
        instance: Arc<S3Instance>,
        partition: Arc<ComponentPartition>,
    ) -> ShardedEngine {
        assert_eq!(partition.num_shards(), self.shards.len(), "shard count is fixed");
        let router = ShardRouter::new(&instance, partition);
        let shards = self.shards.iter().map(|s| s.succeed(Arc::clone(&instance), false)).collect();
        let (search, epoch) = self.config.snapshot();
        ShardedEngine {
            instance,
            router,
            shards,
            config: Arc::new(EpochConfig::new_at(search, epoch + 1)),
            threads: self.threads,
            cache: Arc::clone(&self.cache),
            carriers: Arc::clone(&self.carriers),
            props: Arc::clone(&self.props),
            gate: Arc::clone(&self.gate),
        }
    }

    /// The shared front result cache (live-ingestion invalidation hook).
    pub(crate) fn result_cache(&self) -> &Arc<ResultCache> {
        &self.cache
    }

    /// The shared front warm pool (live-ingestion migration hook).
    pub(crate) fn prop_pool(&self) -> &Arc<PropPool> {
        &self.props
    }

    /// The shared instance.
    pub fn instance(&self) -> &Arc<S3Instance> {
        &self.instance
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard engines (each a standalone, individually queryable
    /// `S3Engine` restricted to its own components; note that a direct
    /// shard query stops on the shard's own schedule, so its certified
    /// bounds may be looser than the scatter path's).
    pub fn shards(&self) -> &[S3Engine] {
        &self.shards
    }

    /// One shard engine.
    pub fn shard(&self, shard: usize) -> &S3Engine {
        &self.shards[shard]
    }

    /// The component partition.
    pub fn partition(&self) -> &ComponentPartition {
        self.router.partition()
    }

    /// The router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// The current search configuration (without per-shard filters).
    pub fn search_config(&self) -> SearchConfig {
        self.config.search()
    }

    /// The current configuration epoch.
    pub fn config_epoch(&self) -> u64 {
        self.config.epoch()
    }

    /// Replace the search configuration, bumping the epoch (stale cache
    /// entries can never be served) and re-configuring every shard with
    /// its own filter re-installed. Shard reconfiguration happens under
    /// the front config's write lock, so concurrent callers cannot leave
    /// the fleet running a mix of two configurations.
    pub fn set_search_config(&self, mut search: SearchConfig) {
        search.component_filter = None;
        self.config.replace_with(search.clone(), || {
            for shard in &self.shards {
                let filter = shard.search_config().component_filter;
                shard
                    .set_search_config(SearchConfig { component_filter: filter, ..search.clone() });
            }
        });
        self.cache.invalidate();
        self.props.invalidate_all();
    }

    /// Front-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Propagation-reuse counters (seeker-affinity hits, resumed and
    /// fallback scatters). The propagation is shared by every shard of a
    /// query's scatter, so one resume saves the explore work fleet-wide.
    pub fn resume_stats(&self) -> ResumeStats {
        self.props.stats()
    }

    /// Answer one query (through the front cache, then the scatter).
    pub fn query(&self, query: &Query) -> Arc<TopKResult> {
        self.run_batch_on(std::slice::from_ref(query), 1).pop().expect("one result")
    }

    /// Load and shedding counters for the [`Self::serve`] entry point.
    pub fn load_stats(&self) -> LoadStats {
        self.gate.stats()
    }

    /// Answer one query through the admission gate, with an optional
    /// per-query deadline (same contract as [`S3Engine::serve`]): cache
    /// hits bypass the gate, shed queries never reach the scatter,
    /// degraded admissions run the whole scatter under the floor budget,
    /// and only exact answers enter the front cache.
    pub fn serve(&self, query: &Query, deadline: Option<Duration>) -> ServeOutcome {
        let (search_config, epoch) = self.config.snapshot();
        let arrival = search_config.clock.now();
        if let Some(hit) = self.cache.lookup(&CacheKey::new(query, epoch)) {
            return ServeOutcome::Answered(hit);
        }
        let (ticket, floor) = match self.gate.admit() {
            Admission::Shed => return ServeOutcome::Shed,
            Admission::Full(t) => (t, None),
            Admission::Degraded(t, floor) => (t, Some(floor)),
        };
        let remaining = match deadline {
            Some(deadline) => {
                let waited = search_config.clock.now().saturating_sub(arrival);
                if waited >= deadline {
                    self.gate.note_expired();
                    return ServeOutcome::Expired;
                }
                Some(deadline - waited)
            }
            None => None,
        };
        let mut config = search_config;
        config.time_budget = gate::effective_budget(config.time_budget, remaining, floor);
        let mut out = self.scatter(std::slice::from_ref(query), &[0], &config, epoch, 1);
        drop(ticket);
        let (_, result) = out.pop().expect("one result");
        let result = Arc::new(result);
        if matches!(result.stats.stop, StopReason::Converged | StopReason::NoMatch) {
            self.cache.insert(CacheKey::new(query, epoch), Arc::clone(&result));
        }
        ServeOutcome::Answered(result)
    }

    /// Answer a batch concurrently on the configured worker count.
    pub fn run_batch(&self, queries: &[Query]) -> Vec<Arc<TopKResult>> {
        self.run_batch_on(queries, self.threads)
    }

    /// Answer a batch on an explicit worker count (1 = inline). Each
    /// worker checks one scratch out of every shard's pool and drives the
    /// exact scatter-gather per missed query.
    pub fn run_batch_on(&self, queries: &[Query], threads: usize) -> Vec<Arc<TopKResult>> {
        let (search_config, epoch) = self.config.snapshot();
        self.cache.run_cached(queries, epoch, |misses| {
            self.scatter(queries, misses, &search_config, epoch, threads)
        })
    }

    /// Run the missed queries, fanning out over scoped workers; each
    /// worker scatters its queries over the relevant shards. Returns
    /// `(batch index, result)` pairs.
    fn scatter(
        &self,
        queries: &[Query],
        misses: &[usize],
        search_config: &SearchConfig,
        epoch: u64,
        threads: usize,
    ) -> Vec<(usize, TopKResult)> {
        let workers = threads.max(1).min(misses.len());
        let cursor = AtomicUsize::new(0);
        let gamma = search_config.score.gamma();
        batch::fan_out(workers, || {
            // One worker: per claimed query, check a scratch out of the
            // pools of exactly the shards the query routes to (warm
            // memory in use scales with scatter width, not workers ×
            // shards), bind the propagation parked for the query's
            // seeker, run the iteration-synchronous partitioned search,
            // and return the shard scratches immediately.
            let engine = S3kEngine::new(&self.instance, search_config.clone());
            let graph = self.instance.graph();
            let mut carrier = self.check_out_carrier();
            let mut scratches: Vec<Option<SearchScratch>> =
                self.shards.iter().map(|_| None).collect();
            let mut prop: Option<Propagation<'_>> = None;
            let mut prop_key = UserId(0);
            let mut active: Vec<usize> = Vec::new();
            let mut out = Vec::new();
            loop {
                let slot = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = misses.get(slot) else { break };
                let q = &queries[i];
                self.router.route_into(&self.instance, q, search_config, &mut active);
                for &s in &active {
                    scratches[s] = Some(self.shards[s].check_out_scratch());
                }
                if prop.is_none() || prop_key != q.seeker {
                    if let Some(p) = prop.take() {
                        self.props.check_in(prop_key, epoch, p.detach());
                    }
                    let state = self.props.check_out(q.seeker, epoch);
                    let seeker = self.instance.user_node(q.seeker);
                    prop = Some(Propagation::attach(graph, gamma, seeker, state));
                    prop_key = q.seeker;
                }
                let result = engine.run_partitioned_with(
                    q,
                    self.router.partition(),
                    &active,
                    &mut carrier,
                    &mut scratches,
                    &mut prop,
                );
                for &s in &active {
                    self.shards[s].check_in_scratch(scratches[s].take().expect("checked out"));
                }
                self.props.note(result.stats.resume);
                out.push((i, result));
            }
            if let Some(p) = prop.take() {
                self.props.check_in(prop_key, epoch, p.detach());
            }
            self.check_in_carrier(carrier);
            out
        })
    }

    fn check_out_carrier(&self) -> SearchScratch {
        self.carriers.lock().expect("carrier pool poisoned").pop().unwrap_or_default()
    }

    fn check_in_carrier(&self, carrier: SearchScratch) {
        self.carriers.lock().expect("carrier pool poisoned").push(carrier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_core::InstanceBuilder;
    use s3_doc::DocBuilder;
    use s3_text::Language;

    /// Two disconnected posts by different users plus a seeker who follows
    /// both — two content components that a 2-shard partition separates.
    fn sharded(num_shards: usize) -> (ShardedEngine, UserId) {
        let mut b = InstanceBuilder::new(Language::English);
        let a = b.add_user();
        let c = b.add_user();
        let seeker = b.add_user();
        b.add_social_edge(seeker, a, 1.0);
        b.add_social_edge(seeker, c, 0.5);
        for (text, poster) in [("rust degrees", a), ("java degrees", c)] {
            let kws = b.analyze(text);
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            b.add_document(doc, Some(poster));
        }
        let engine = ShardedEngine::new(
            Arc::new(b.build()),
            EngineConfig::builder().threads(2).cache_capacity(16).build(),
            num_shards,
        );
        (engine, seeker)
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let (engine, _) = sharded(0);
        assert_eq!(engine.num_shards(), 1);
    }

    #[test]
    fn router_routes_by_keyword_ownership() {
        let (engine, seeker) = sharded(2);
        let inst = engine.instance();
        let config = engine.search_config();
        let rust = inst.query_keywords("rust");
        let degrees = inst.query_keywords("degrees");
        let routed = engine.router().route(inst, &Query::new(seeker, rust, 3), &config);
        assert_eq!(routed.len(), 1, "'rust' lives in exactly one shard");
        let both = engine.router().route(inst, &Query::new(seeker, degrees, 3), &config);
        assert_eq!(both.len(), 2, "'degrees' lives in both shards");
        let ghost =
            engine.router().route(inst, &Query::new(seeker, vec![KeywordId(9999)], 3), &config);
        assert!(ghost.is_empty(), "unknown keywords route nowhere");
    }

    #[test]
    fn seekers_map_to_their_singleton_component_shard() {
        let (engine, seeker) = sharded(2);
        let inst = engine.instance();
        let home = engine.router().shard_of_seeker(inst, seeker);
        assert!(home < engine.num_shards());
        let node = inst.user_node(seeker);
        let comp = inst.graph().components().component_of(node);
        assert_eq!(home, engine.router().shard_of_component(comp));
        assert_eq!(
            inst.graph().component_users(comp).collect::<Vec<_>>(),
            vec![node],
            "a seeker's component is their own singleton"
        );
    }

    #[test]
    fn scatter_gathers_across_shards() {
        let (engine, seeker) = sharded(2);
        let degrees = engine.instance().query_keywords("degrees");
        let result = engine.query(&Query::new(seeker, degrees, 5));
        assert_eq!(result.hits.len(), 2, "one hit per shard, merged");
        // Shards hold disjoint document sets.
        let p = engine.partition();
        assert_eq!(p.doc_count(0) + p.doc_count(1), 2);
        assert!(p.doc_count(0) == 1 && p.doc_count(1) == 1);
    }

    #[test]
    fn front_cache_absorbs_repeats_and_epoch_invalidates() {
        let (engine, seeker) = sharded(2);
        let degrees = engine.instance().query_keywords("degrees");
        let q = Query::new(seeker, degrees, 5);
        let first = engine.query(&q);
        let second = engine.query(&q);
        assert!(Arc::ptr_eq(&first, &second), "served from the front cache");
        assert_eq!(engine.cache_stats().hits, 1);
        for shard in engine.shards() {
            assert_eq!(shard.cache_stats().entries, 0, "per-shard caches stay off");
        }
        let epoch = engine.config_epoch();
        engine.set_search_config(SearchConfig {
            score: s3_core::S3kScore::new(2.0, 0.5),
            ..SearchConfig::default()
        });
        assert_eq!(engine.config_epoch(), epoch + 1);
        engine.query(&q);
        assert_eq!(engine.cache_stats().hits, 1, "post-change lookup must miss");
    }

    #[test]
    fn direct_shard_queries_cover_their_own_documents() {
        let (engine, seeker) = sharded(2);
        let degrees = engine.instance().query_keywords("degrees");
        let q = Query::new(seeker, degrees, 5);
        let mut total = 0;
        for shard in engine.shards() {
            total += shard.query(&q).hits.len();
        }
        assert_eq!(total, 2, "each shard answers over its own documents");
    }
}
