//! Cache-fronted batch execution, shared by [`crate::S3Engine`] and
//! [`crate::ShardedEngine`].
//!
//! Both engines answer batches the same way — serve cache hits, dedupe
//! in-batch repeats, compute the distinct misses, insert, resolve
//! duplicates — and differ only in *how* a miss is computed (direct
//! search vs sharded scatter-gather). [`ResultCache::run_cached`] owns the
//! shared front so the sharded engine's cache sits before the scatter: a
//! hit costs one lookup regardless of shard count.

use crate::cache::{CacheClock, CachePolicy, PolicyCache};
use crate::CacheStats;
use s3_core::{Query, SearchConfig, TopKResult, UserId};
use s3_text::KeywordId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Epoch-stamped search configuration, shared by both engines: every
/// replacement bumps the epoch, and the epoch is part of the cache key,
/// so results computed under a stale configuration can never be served —
/// even when an in-flight batch inserts them after the change (their keys
/// never match a post-change lookup, and LRU pressure retires them).
#[derive(Debug)]
pub(crate) struct EpochConfig {
    inner: RwLock<(SearchConfig, u64)>,
}

impl EpochConfig {
    pub(crate) fn new(search: SearchConfig) -> Self {
        EpochConfig::new_at(search, 0)
    }

    /// A config line starting at an explicit epoch — how a live-ingestion
    /// successor engine continues (and advances) its predecessor's line
    /// without *sharing* it: a reader pinning the old engine can then
    /// never observe the new epoch, so it can never insert a stale result
    /// under a servable key.
    pub(crate) fn new_at(search: SearchConfig, epoch: u64) -> Self {
        EpochConfig { inner: RwLock::new((search, epoch)) }
    }

    /// The configuration and its epoch, snapshotted together (what a
    /// batch runs under).
    pub(crate) fn snapshot(&self) -> (SearchConfig, u64) {
        let guard = self.inner.read().expect("config poisoned");
        (guard.0.clone(), guard.1)
    }

    pub(crate) fn search(&self) -> SearchConfig {
        self.inner.read().expect("config poisoned").0.clone()
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.inner.read().expect("config poisoned").1
    }

    /// Replace the configuration, bumping the epoch.
    pub(crate) fn replace(&self, search: SearchConfig) {
        self.replace_with(search, || {});
    }

    /// Replace the configuration and run `reconfigure` while still
    /// holding the write lock, so dependent state (e.g. per-shard
    /// configs) updates atomically with respect to concurrent replacers
    /// and snapshots.
    pub(crate) fn replace_with(&self, search: SearchConfig, reconfigure: impl FnOnce()) {
        let mut guard = self.inner.write().expect("config poisoned");
        guard.0 = search;
        guard.1 += 1;
        reconfigure();
    }
}

/// Fan miss execution out over `workers` scoped threads (1 = inline).
/// Each invocation of `worker` is one thread's whole run: it claims
/// queries from a caller-owned cursor, owns its warm state (scratches,
/// propagation) and returns its `(batch index, result)` pairs, which are
/// concatenated. Shared by both engines so the spawn/join scaffolding
/// cannot drift between them.
pub(crate) fn fan_out<F>(workers: usize, worker: F) -> Vec<(usize, TopKResult)>
where
    F: Fn() -> Vec<(usize, TopKResult)> + Sync,
{
    if workers <= 1 {
        return worker();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers).map(|_| scope.spawn(&worker)).collect();
        handles.into_iter().flat_map(|h| h.join().expect("batch worker panicked")).collect()
    })
}

/// Cache key: seeker, normalized (sorted, deduplicated) keywords, k, and
/// the config epoch under which the result was computed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    seeker: UserId,
    keywords: Vec<KeywordId>,
    k: usize,
    epoch: u64,
}

impl CacheKey {
    pub(crate) fn new(query: &Query, epoch: u64) -> Self {
        let mut keywords = query.keywords.clone();
        keywords.sort_unstable();
        keywords.dedup();
        CacheKey { seeker: query.seeker, keywords, k: query.k, epoch }
    }
}

/// The epoch-keyed, policy-driven result cache plus its effectiveness
/// counters. Capacity 0 disables caching (every lookup is a counted
/// miss). The policy ([`CachePolicy`]) and optional TTL only decide
/// *whether* a lookup hits, never *what* is returned — see
/// [`crate::cache`].
#[derive(Debug)]
pub(crate) struct ResultCache {
    cache: Option<Mutex<PolicyCache<CacheKey, Arc<TopKResult>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
}

impl ResultCache {
    pub(crate) fn new(capacity: usize, policy: CachePolicy, ttl: Option<Duration>) -> Self {
        ResultCache {
            cache: (capacity > 0).then(|| {
                Mutex::new(PolicyCache::new(capacity, policy, ttl, CacheClock::monotonic()))
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let (entries, store) = self.cache.as_ref().map_or_else(Default::default, |c| {
            let cache = c.lock().expect("cache poisoned");
            (cache.len(), cache.counters())
        });
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: store.evictions,
            admitted: store.admitted,
            rejected: store.rejected,
            expired: store.expired,
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Drop every entry (they were computed under an epoch that just got
    /// bumped and could never be served again) and count them as
    /// invalidated. Returns how many were dropped. An in-flight batch may
    /// still insert stale-epoch entries afterwards; their keys never match
    /// a post-bump lookup, and LRU pressure retires them.
    pub(crate) fn invalidate(&self) -> u64 {
        let Some(cache) = &self.cache else { return 0 };
        let dropped = {
            let mut cache = cache.lock().expect("cache poisoned");
            let n = cache.len() as u64;
            cache.clear();
            n
        };
        self.invalidated.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Look `key` up, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: &CacheKey) -> Option<Arc<TopKResult>> {
        if let Some(cache) = &self.cache {
            if let Some(hit) = cache.lock().expect("cache poisoned").get(key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(Arc::clone(hit));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a computed result; the policy decides admission/eviction
    /// and counts drops by cause.
    pub(crate) fn insert(&self, key: CacheKey, result: Arc<TopKResult>) {
        if let Some(cache) = &self.cache {
            cache.lock().expect("cache poisoned").insert(key, result);
        }
    }

    /// Answer a batch through the cache: hits are served up front, each
    /// distinct missed key is computed once by `exec` (which receives the
    /// batch indices of the first occurrences and returns `(index,
    /// result)` pairs), and in-batch duplicates resolve against the first
    /// occurrence. Results are positionally aligned with `queries`.
    pub(crate) fn run_cached<F>(
        &self,
        queries: &[Query],
        epoch: u64,
        exec: F,
    ) -> Vec<Arc<TopKResult>>
    where
        F: FnOnce(&[usize]) -> Vec<(usize, TopKResult)>,
    {
        let mut results: Vec<Option<Arc<TopKResult>>> = vec![None; queries.len()];
        let mut misses: Vec<usize> = Vec::new();
        let mut first_of: HashMap<CacheKey, usize> = HashMap::new();
        for (i, q) in queries.iter().enumerate() {
            let key = CacheKey::new(q, epoch);
            if let Some(hit) = self.lookup(&key) {
                results[i] = Some(hit);
                continue;
            }
            if let std::collections::hash_map::Entry::Vacant(slot) = first_of.entry(key) {
                slot.insert(i);
                misses.push(i);
            }
        }

        if !misses.is_empty() {
            for (i, result) in exec(&misses) {
                let result = Arc::new(result);
                self.insert(CacheKey::new(&queries[i], epoch), Arc::clone(&result));
                results[i] = Some(result);
            }
        }

        // Duplicates of in-batch misses (and the cache-disabled path)
        // resolve against the freshly-computed first occurrence.
        for i in 0..queries.len() {
            if results[i].is_some() {
                continue;
            }
            let donor = first_of[&CacheKey::new(&queries[i], epoch)];
            results[i] = results[donor].clone();
        }
        results.into_iter().map(|r| r.expect("filled")).collect()
    }
}
