//! Dewey-style positions (paper §2.3, "Fragment position").
//!
//! `pos(d, f)` is the list of integers `(i1, …, in)` such that starting from
//! the root of `d`, moving to its `i1`-th child, then that node's `i2`-th
//! child, etc., ends at the root of the fragment `f`. The paper implements
//! it with Dewey-style node IDs as in ORDPATH \[19\] and \[22\]; we do the same.
//!
//! The score function only uses `|pos(d, f)|` (the structural distance), but
//! Dewey labels also give document order and ancestry tests, which the test
//! suite exercises.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A Dewey label: the child-rank path from an (implicit) root. The root
/// itself has the empty label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Dewey {
    path: Vec<u16>,
}

impl Dewey {
    /// The empty label (the document root relative to itself).
    pub fn root() -> Self {
        Dewey { path: Vec::new() }
    }

    /// Build from explicit child ranks (1-based).
    pub fn from_path(path: Vec<u16>) -> Self {
        debug_assert!(path.iter().all(|&r| r >= 1), "child ranks are 1-based");
        Dewey { path }
    }

    /// The label of this node's `rank`-th child (1-based).
    pub fn child(&self, rank: u16) -> Self {
        let mut path = self.path.clone();
        path.push(rank);
        Dewey { path }
    }

    /// The parent label; `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.path.is_empty() {
            return None;
        }
        Dewey { path: self.path[..self.path.len() - 1].to_vec() }.into()
    }

    /// The number of steps, i.e. the paper's `|pos(d, f)|`.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// True for the root label.
    pub fn is_empty(&self) -> bool {
        self.path.is_empty()
    }

    /// The raw rank path.
    pub fn as_slice(&self) -> &[u16] {
        &self.path
    }

    /// Is `self` an ancestor of (or equal to) `other`? With Dewey labels
    /// this is exactly the prefix test.
    pub fn is_ancestor_or_self(&self, other: &Dewey) -> bool {
        other.path.len() >= self.path.len() && other.path[..self.path.len()] == self.path[..]
    }

    /// Vertical-neighbor test at the label level (Definition 2.2): one of
    /// the two is a prefix of the other.
    pub fn is_vertical_neighbor(&self, other: &Dewey) -> bool {
        self.is_ancestor_or_self(other) || other.is_ancestor_or_self(self)
    }
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Document order: pre-order traversal order, i.e. lexicographic order on
/// rank paths with the ancestor before its descendants.
impl Ord for Dewey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.path.cmp(&other.path)
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.path.is_empty() {
            return write!(f, "ε");
        }
        let parts: Vec<String> = self.path.iter().map(|r| r.to_string()).collect();
        write!(f, "{}", parts.join("."))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_position() {
        // Figure 1 / §2.3: pos(d0.3.2, d0) "may be (3, 2)".
        let d0 = Dewey::root();
        let d0_3 = d0.child(3);
        let d0_3_2 = d0_3.child(2);
        assert_eq!(d0_3_2.as_slice(), &[3, 2]);
        assert_eq!(d0_3_2.len(), 2);
        assert_eq!(d0_3_2.parent(), Some(d0_3));
    }

    #[test]
    fn ancestry_is_prefix() {
        let a = Dewey::from_path(vec![1, 2]);
        let b = Dewey::from_path(vec![1, 2, 4]);
        let c = Dewey::from_path(vec![1, 3]);
        assert!(a.is_ancestor_or_self(&b));
        assert!(!b.is_ancestor_or_self(&a));
        assert!(!a.is_ancestor_or_self(&c));
        assert!(a.is_ancestor_or_self(&a));
    }

    #[test]
    fn vertical_neighbors_match_figure_3() {
        // URI0 and URI0.0.0 are vertical neighbors, so are URI0 and URI0.1,
        // but URI0.0.0 and URI0.1 are not (§2.5).
        let uri0 = Dewey::root();
        let uri0_0_0 = Dewey::from_path(vec![1, 1]);
        let uri0_1 = Dewey::from_path(vec![2]);
        assert!(uri0.is_vertical_neighbor(&uri0_0_0));
        assert!(uri0.is_vertical_neighbor(&uri0_1));
        assert!(!uri0_0_0.is_vertical_neighbor(&uri0_1));
    }

    #[test]
    fn document_order() {
        let mut labels = [
            Dewey::from_path(vec![2]),
            Dewey::from_path(vec![1, 2]),
            Dewey::root(),
            Dewey::from_path(vec![1]),
            Dewey::from_path(vec![1, 1]),
        ];
        labels.sort();
        let rendered: Vec<String> = labels.iter().map(|d| d.to_string()).collect();
        assert_eq!(rendered, vec!["ε", "1", "1.1", "1.2", "2"]);
    }

    #[test]
    fn display() {
        assert_eq!(Dewey::from_path(vec![3, 2]).to_string(), "3.2");
        assert_eq!(Dewey::root().to_string(), "ε");
    }
}
