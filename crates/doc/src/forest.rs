//! The document forest: every tree of an S3 instance in one arena.
//!
//! Nodes of a tree occupy a **contiguous id range in pre-order**, so that a
//! subtree is exactly the id interval `[n, n + subtree_size(n))`. The
//! proximity-propagation engine of `s3-graph` exploits this: sums over
//! vertical neighborhoods (ancestors + descendants, Definition 2.2) become
//! an ancestor walk plus one contiguous range sum.

use crate::builder::DocBuilder;
use crate::dewey::Dewey;
use s3_snap::{put_str, put_u32v, put_usize, SnapError, SnapReader};
use s3_text::KeywordId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Global id of a document node (= of the fragment rooted there).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocNodeId(pub u32);

impl DocNodeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for DocNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Id of a document tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TreeId(pub u32);

impl TreeId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TreeData {
    /// First node id of the tree (its root).
    first: u32,
    /// Number of nodes.
    len: u32,
    /// Resolution of builder-local ids to global ids.
    local_map: Vec<DocNodeId>,
    /// Optional external URI of the document.
    uri: Option<String>,
}

/// The forest arena. See the crate docs for an example.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Forest {
    trees: Vec<TreeData>,
    // Struct-of-arrays node storage, indexed by DocNodeId.
    tree_of: Vec<TreeId>,
    parent: Vec<Option<DocNodeId>>,
    depth: Vec<u32>,
    child_rank: Vec<u16>,
    subtree_size: Vec<u32>,
    name: Vec<u32>,
    content: Vec<Vec<KeywordId>>,
    // Node-name interning.
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
}

impl Forest {
    /// Empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Freeze a [`DocBuilder`] into the forest; returns the new tree's id.
    pub fn add_document(&mut self, builder: DocBuilder) -> TreeId {
        let tree_id = TreeId(self.trees.len() as u32);
        let first = self.tree_of.len() as u32;
        let n = builder.nodes.len();
        let mut local_map = vec![DocNodeId(u32::MAX); n];

        // Pre-order traversal assigning contiguous global ids.
        // Stack entries: (local id, parent global id, depth, child rank).
        let mut stack: Vec<(u32, Option<DocNodeId>, u32, u16)> = vec![(0, None, 0, 0)];
        while let Some((local, parent, depth, rank)) = stack.pop() {
            let global = DocNodeId(self.tree_of.len() as u32);
            local_map[local as usize] = global;
            let pending = &builder.nodes[local as usize];
            self.tree_of.push(tree_id);
            self.parent.push(parent);
            self.depth.push(depth);
            self.child_rank.push(rank);
            self.subtree_size.push(1); // fixed up below
            let name_id = self.intern_name(&pending.name);
            self.name.push(name_id);
            self.content.push(pending.content.clone());
            // Push children in reverse so they pop in document order.
            for (i, &child) in pending.children.iter().enumerate().rev() {
                stack.push((child.0, Some(global), depth + 1, (i + 1) as u16));
            }
        }

        // Subtree sizes: reverse pre-order accumulation onto parents.
        let last = self.tree_of.len() - 1;
        for i in (first as usize..=last).rev() {
            if let Some(p) = self.parent[i] {
                self.subtree_size[p.index()] += self.subtree_size[i];
            }
        }

        self.trees.push(TreeData { first, len: n as u32, local_map, uri: builder.uri });
        tree_id
    }

    fn intern_name(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.names.push(name.to_string());
        self.name_ids.insert(name.to_string(), id);
        id
    }

    /// Resolve a builder-local node id within `tree`.
    pub fn resolve(&self, tree: TreeId, local: crate::builder::LocalNodeId) -> DocNodeId {
        self.trees[tree.index()].local_map[local.0 as usize]
    }

    /// The root node of a tree.
    pub fn root(&self, tree: TreeId) -> DocNodeId {
        DocNodeId(self.trees[tree.index()].first)
    }

    /// The tree a node belongs to.
    pub fn tree_of(&self, node: DocNodeId) -> TreeId {
        self.tree_of[node.index()]
    }

    /// External URI of a tree's document, if one was set.
    pub fn uri(&self, tree: TreeId) -> Option<&str> {
        self.trees[tree.index()].uri.as_deref()
    }

    /// Parent of a node (`None` at roots).
    pub fn parent(&self, node: DocNodeId) -> Option<DocNodeId> {
        self.parent[node.index()]
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, node: DocNodeId) -> u32 {
        self.depth[node.index()]
    }

    /// Node name.
    pub fn name(&self, node: DocNodeId) -> &str {
        &self.names[self.name[node.index()] as usize]
    }

    /// Keyword content of a node (paper: `n S3:contains k` triples).
    pub fn content(&self, node: DocNodeId) -> &[KeywordId] {
        &self.content[node.index()]
    }

    /// Number of nodes in the whole forest.
    pub fn num_nodes(&self) -> usize {
        self.tree_of.len()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Iterate over all tree ids.
    pub fn trees(&self) -> impl Iterator<Item = TreeId> {
        (0..self.trees.len() as u32).map(TreeId)
    }

    /// The contiguous global-id range of a tree's nodes (pre-order).
    pub fn tree_range(&self, tree: TreeId) -> std::ops::Range<usize> {
        let t = &self.trees[tree.index()];
        t.first as usize..(t.first + t.len) as usize
    }

    /// Number of nodes in one tree.
    pub fn tree_len(&self, tree: TreeId) -> usize {
        self.trees[tree.index()].len as usize
    }

    /// The contiguous global-id range of the subtree rooted at `node`
    /// (`Frag(node)`, including `node` itself).
    pub fn subtree_range(&self, node: DocNodeId) -> std::ops::Range<usize> {
        node.index()..node.index() + self.subtree_size[node.index()] as usize
    }

    /// Iterate over the fragments of a document/fragment, i.e. its subtree
    /// in pre-order (paper: `Frag(d)`).
    pub fn fragments(&self, node: DocNodeId) -> impl Iterator<Item = DocNodeId> {
        self.subtree_range(node).map(|i| DocNodeId(i as u32))
    }

    /// Ancestors of a node, nearest first, excluding the node itself.
    pub fn ancestors(&self, node: DocNodeId) -> impl Iterator<Item = DocNodeId> + '_ {
        std::iter::successors(self.parent(node), move |&n| self.parent(n))
    }

    /// Ancestor-or-self chain, from the node up to the root.
    pub fn ancestors_or_self(&self, node: DocNodeId) -> impl Iterator<Item = DocNodeId> + '_ {
        std::iter::successors(Some(node), move |&n| self.parent(n))
    }

    /// Is `a` an ancestor of (or equal to) `f`? O(1) via id intervals.
    pub fn is_ancestor_or_self(&self, a: DocNodeId, f: DocNodeId) -> bool {
        self.tree_of(a) == self.tree_of(f) && self.subtree_range(a).contains(&f.index())
    }

    /// Vertical-neighbor test (Definition 2.2): one is a fragment of the
    /// other. A node is conventionally in its own neighborhood.
    pub fn is_vertical_neighbor(&self, a: DocNodeId, b: DocNodeId) -> bool {
        self.is_ancestor_or_self(a, b) || self.is_ancestor_or_self(b, a)
    }

    /// The paper's `pos(d, f)`: the Dewey path from `d` down to `f`;
    /// `None` when `d` is not an ancestor-or-self of `f`.
    pub fn pos(&self, d: DocNodeId, f: DocNodeId) -> Option<Dewey> {
        if !self.is_ancestor_or_self(d, f) {
            return None;
        }
        let mut ranks = Vec::with_capacity((self.depth(f) - self.depth(d)) as usize);
        let mut cur = f;
        while cur != d {
            ranks.push(self.child_rank[cur.index()]);
            cur = self.parent(cur).expect("d is an ancestor, walk cannot pass the root");
        }
        ranks.reverse();
        Some(Dewey::from_path(ranks))
    }

    /// `|pos(d, f)|` without materializing the path: the structural distance
    /// used by the concrete score (Definition 3.5).
    pub fn structural_distance(&self, d: DocNodeId, f: DocNodeId) -> Option<u32> {
        if !self.is_ancestor_or_self(d, f) {
            return None;
        }
        Some(self.depth(f) - self.depth(d))
    }

    /// Children of a node, in document order.
    pub fn children(&self, node: DocNodeId) -> Vec<DocNodeId> {
        let mut out = Vec::new();
        let range = self.subtree_range(node);
        let mut i = node.index() + 1;
        while i < range.end {
            out.push(DocNodeId(i as u32));
            i += self.subtree_size[i] as usize;
        }
        out
    }

    /// Total number of keyword occurrences stored in the forest.
    pub fn total_keywords(&self) -> usize {
        self.content.iter().map(|c| c.len()).sum()
    }

    /// Rebuild a [`DocBuilder`] equivalent to one frozen tree: re-adding
    /// the returned builder to any forest reproduces the tree's pre-order
    /// shape, names, content and URI exactly, so a node at offset `i`
    /// within the tree's range lands at offset `i` again. Compaction
    /// relies on this to remap fragment ids across a rebuild.
    pub fn extract(&self, tree: TreeId) -> DocBuilder {
        let range = self.tree_range(tree);
        let root = self.root(tree);
        let mut b = DocBuilder::new(self.name(root));
        b.set_content(b.root(), self.content(root).to_vec());
        // Nodes are pre-order contiguous, so walking the range in order
        // visits every parent before its children, and appending each
        // child in ascending id order preserves document order — the
        // re-frozen pre-order assigns the same offsets.
        for i in range.start + 1..range.end {
            let node = DocNodeId(i as u32);
            let parent = self.parent(node).expect("non-root node has a parent");
            let local = b.child(
                crate::builder::LocalNodeId((parent.index() - range.start) as u32),
                self.name(node),
            );
            debug_assert_eq!(local.0 as usize, i - range.start);
            b.set_content(local, self.content(node).to_vec());
        }
        match self.uri(tree) {
            Some(uri) => b.with_uri(uri),
            None => b,
        }
    }

    /// Serialize for the durable snapshot format: the tree directory and
    /// the struct-of-arrays node storage, verbatim. The name-interning
    /// index is rebuilt on read, so the encoding is independent of
    /// hash-map iteration order.
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        put_usize(out, self.names.len());
        for name in &self.names {
            put_str(out, name);
        }
        put_usize(out, self.trees.len());
        for t in &self.trees {
            put_u32v(out, t.first);
            put_u32v(out, t.len);
            put_usize(out, t.local_map.len());
            for &n in &t.local_map {
                put_u32v(out, n.0);
            }
            match &t.uri {
                None => out.push(0),
                Some(uri) => {
                    out.push(1);
                    put_str(out, uri);
                }
            }
        }
        put_usize(out, self.tree_of.len());
        for i in 0..self.tree_of.len() {
            put_u32v(out, self.tree_of[i].0);
            match self.parent[i] {
                None => out.push(0),
                Some(p) => {
                    out.push(1);
                    put_u32v(out, p.0);
                }
            }
            put_u32v(out, self.depth[i]);
            put_u32v(out, self.child_rank[i] as u32);
            put_u32v(out, self.subtree_size[i]);
            put_u32v(out, self.name[i]);
            put_usize(out, self.content[i].len());
            for &k in &self.content[i] {
                put_u32v(out, k.0);
            }
        }
    }

    /// Decode a forest written by [`Self::snap_write`]. Structural
    /// indices (tree ids, parents, name ids) are validated; never panics
    /// on malformed input.
    pub fn snap_read(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut f = Forest::default();
        let names = r.seq(1)?;
        for i in 0..names {
            let name = r.str()?;
            if f.name_ids.insert(name.to_owned(), i as u32).is_some() {
                return Err(SnapError::Value("duplicate forest node name"));
            }
            f.names.push(name.to_owned());
        }
        let trees = r.seq(3)?;
        for _ in 0..trees {
            let first = r.u32v()?;
            let len = r.u32v()?;
            let locals = r.seq(1)?;
            let mut local_map = Vec::with_capacity(locals);
            for _ in 0..locals {
                local_map.push(DocNodeId(r.u32v()?));
            }
            let uri = match r.u8()? {
                0 => None,
                1 => Some(r.str()?.to_owned()),
                _ => return Err(SnapError::Value("tree uri option discriminant")),
            };
            f.trees.push(TreeData { first, len, local_map, uri });
        }
        let nodes = r.seq(7)?;
        for i in 0..nodes {
            let tree = r.u32v()?;
            if tree as usize >= f.trees.len() {
                return Err(SnapError::Value("node tree id out of range"));
            }
            f.tree_of.push(TreeId(tree));
            f.parent.push(match r.u8()? {
                0 => None,
                1 => {
                    let p = r.u32v()?;
                    if p as usize >= i {
                        return Err(SnapError::Value("node parent not an earlier node"));
                    }
                    Some(DocNodeId(p))
                }
                _ => return Err(SnapError::Value("node parent option discriminant")),
            });
            f.depth.push(r.u32v()?);
            let rank = r.u32v()?;
            f.child_rank
                .push(u16::try_from(rank).map_err(|_| SnapError::Value("child rank overflow"))?);
            f.subtree_size.push(r.u32v()?);
            let name = r.u32v()?;
            if name as usize >= f.names.len() {
                return Err(SnapError::Value("node name id out of range"));
            }
            f.name.push(name);
            let kws = r.seq(1)?;
            let mut content = Vec::with_capacity(kws);
            for _ in 0..kws {
                content.push(KeywordId(r.u32v()?));
            }
            f.content.push(content);
        }
        // The tree directory must tile the node range exactly, or the
        // interval arithmetic (subtree/tree ranges) would index out of
        // bounds later.
        let mut expect_first = 0u32;
        for t in &f.trees {
            if t.first != expect_first || t.local_map.len() != t.len as usize {
                return Err(SnapError::Value("tree directory does not tile the node range"));
            }
            for &n in &t.local_map {
                if n.index() < t.first as usize || n.index() >= (t.first + t.len) as usize {
                    return Err(SnapError::Value("local map outside its tree range"));
                }
            }
            expect_first =
                expect_first.checked_add(t.len).ok_or(SnapError::Value("tree range overflow"))?;
        }
        if expect_first as usize != f.tree_of.len() {
            return Err(SnapError::Value("tree directory does not cover every node"));
        }
        for (i, &size) in f.subtree_size.iter().enumerate() {
            let end = (i as u64) + size as u64;
            if size == 0 || end > f.tree_of.len() as u64 {
                return Err(SnapError::Value("subtree size out of range"));
            }
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DocBuilder;

    /// The running-example document d0 with fragments d0.3.2 and d0.5.1
    /// (Figure 1), shrunk to ranks (1.1) and (2.1) for test brevity plus a
    /// full-rank variant below.
    fn sample() -> (Forest, DocNodeId, DocNodeId, DocNodeId, DocNodeId, DocNodeId) {
        let mut forest = Forest::new();
        let mut b = DocBuilder::new("article");
        let s3 = b.child(b.root(), "section");
        let s3_2 = b.child(s3, "p");
        let s5 = b.child(b.root(), "section");
        let s5_1 = b.child(s5, "p");
        let t = forest.add_document(b);
        forest.clone_with(t, s3, s3_2, s5, s5_1)
    }

    impl Forest {
        fn clone_with(
            self,
            t: TreeId,
            s3: crate::builder::LocalNodeId,
            s3_2: crate::builder::LocalNodeId,
            s5: crate::builder::LocalNodeId,
            s5_1: crate::builder::LocalNodeId,
        ) -> (Forest, DocNodeId, DocNodeId, DocNodeId, DocNodeId, DocNodeId) {
            let root = self.root(t);
            let a = self.resolve(t, s3);
            let b = self.resolve(t, s3_2);
            let c = self.resolve(t, s5);
            let d = self.resolve(t, s5_1);
            (self, root, a, b, c, d)
        }
    }

    #[test]
    fn preorder_contiguity() {
        let (f, root, s3, s3_2, s5, s5_1) = sample();
        assert_eq!(root.0 + 1, s3.0);
        assert_eq!(s3.0 + 1, s3_2.0);
        assert_eq!(s3_2.0 + 1, s5.0);
        assert_eq!(s5.0 + 1, s5_1.0);
        assert_eq!(f.subtree_range(root).len(), 5);
        assert_eq!(f.subtree_range(s3).len(), 2);
        assert_eq!(f.subtree_range(s5_1).len(), 1);
    }

    #[test]
    fn positions() {
        let (f, root, s3, s3_2, _s5, s5_1) = sample();
        assert_eq!(f.pos(root, s3_2).unwrap().as_slice(), &[1, 1]);
        assert_eq!(f.pos(root, s5_1).unwrap().as_slice(), &[2, 1]);
        assert_eq!(f.pos(s3, s3_2).unwrap().as_slice(), &[1]);
        assert_eq!(f.pos(root, root).unwrap().as_slice(), &[] as &[u16]);
        assert_eq!(f.pos(s3, s5_1), None);
        assert_eq!(f.structural_distance(root, s3_2), Some(2));
    }

    #[test]
    fn vertical_neighborhood_per_definition_2_2() {
        let (f, root, s3, s3_2, s5, s5_1) = sample();
        assert!(f.is_vertical_neighbor(root, s3_2));
        assert!(f.is_vertical_neighbor(s3_2, root));
        assert!(f.is_vertical_neighbor(s3, s3_2));
        // Disjoint subtrees are NOT vertical neighbors (u3/u4 in Figure 1).
        assert!(!f.is_vertical_neighbor(s3_2, s5_1));
        assert!(!f.is_vertical_neighbor(s3, s5));
        // Reflexive by convention.
        assert!(f.is_vertical_neighbor(s3, s3));
    }

    #[test]
    fn two_trees_are_independent() {
        let mut f = Forest::new();
        let t1 = f.add_document(DocBuilder::new("a"));
        let mut b2 = DocBuilder::new("b");
        let child = b2.child(b2.root(), "c");
        let t2 = f.add_document(b2);
        let r1 = f.root(t1);
        let r2 = f.root(t2);
        let c2 = f.resolve(t2, child);
        assert_ne!(f.tree_of(r1), f.tree_of(r2));
        assert!(!f.is_vertical_neighbor(r1, r2));
        assert!(!f.is_ancestor_or_self(r1, c2));
        assert_eq!(f.num_trees(), 2);
        assert_eq!(f.num_nodes(), 3);
    }

    #[test]
    fn children_in_document_order() {
        let mut fst = Forest::new();
        let mut b = DocBuilder::new("r");
        let c1 = b.child(b.root(), "c1");
        let c2 = b.child(b.root(), "c2");
        let c3 = b.child(b.root(), "c3");
        b.child(c2, "g");
        let t = fst.add_document(b);
        let root = fst.root(t);
        let kids = fst.children(root);
        assert_eq!(kids, vec![fst.resolve(t, c1), fst.resolve(t, c2), fst.resolve(t, c3)]);
        assert_eq!(fst.name(kids[1]), "c2");
        // Dewey ranks follow document order.
        assert_eq!(fst.pos(root, kids[2]).unwrap().as_slice(), &[3]);
    }

    #[test]
    fn content_and_names() {
        let mut fst = Forest::new();
        let mut b = DocBuilder::new("tweet");
        let text = b.child_with_content(b.root(), "text", vec![s3_text::KeywordId(5)]);
        let t = fst.add_document(b);
        let text = fst.resolve(t, text);
        assert_eq!(fst.content(text), &[s3_text::KeywordId(5)]);
        assert_eq!(fst.name(text), "text");
        assert_eq!(fst.total_keywords(), 1);
    }

    #[test]
    fn extract_round_trips_a_tree() {
        let mut fst = Forest::new();
        let mut b = DocBuilder::new("article");
        let s1 = b.child(b.root(), "section");
        b.child_with_content(s1, "p", vec![KeywordId(3), KeywordId(9)]);
        let s2 = b.child(b.root(), "section");
        b.child_with_content(s2, "p", vec![KeywordId(5)]);
        b.set_content(b.root(), vec![KeywordId(1)]);
        let filler = fst.add_document(DocBuilder::new("noise"));
        let t = fst.add_document(b.with_uri("ex:d0"));

        let mut copy = Forest::new();
        let t2 = copy.add_document(fst.extract(t));
        assert_eq!(copy.tree_len(t2), fst.tree_len(t));
        assert_eq!(copy.uri(t2), Some("ex:d0"));
        let (old_range, new_range) = (fst.tree_range(t), copy.tree_range(t2));
        for offset in 0..fst.tree_len(t) {
            let old = DocNodeId((old_range.start + offset) as u32);
            let new = DocNodeId((new_range.start + offset) as u32);
            assert_eq!(fst.name(old), copy.name(new));
            assert_eq!(fst.content(old), copy.content(new));
            assert_eq!(fst.depth(old), copy.depth(new));
            assert_eq!(
                fst.parent(old).map(|p| p.index() - old_range.start),
                copy.parent(new).map(|p| p.index() - new_range.start),
            );
        }
        let _ = filler;
    }

    #[test]
    fn ancestors_iterate_to_root() {
        let (f, root, s3, s3_2, _, _) = sample();
        let ancs: Vec<DocNodeId> = f.ancestors(s3_2).collect();
        assert_eq!(ancs, vec![s3, root]);
        let chain: Vec<DocNodeId> = f.ancestors_or_self(s3_2).collect();
        assert_eq!(chain, vec![s3_2, s3, root]);
    }
}
