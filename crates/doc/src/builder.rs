//! Incremental construction of one document tree, before it is frozen into
//! the [`crate::Forest`].

use s3_text::KeywordId;

/// Node id local to one [`DocBuilder`]; resolved to a global
/// [`crate::DocNodeId`] once the document is added to a forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalNodeId(pub u32);

/// A node under construction. (Parent linkage is implied by membership in
/// the parent's `children`; the frozen `Forest` rebuilds parent pointers
/// during its pre-order traversal.)
#[derive(Debug, Clone)]
pub(crate) struct PendingNode {
    pub(crate) name: String,
    pub(crate) content: Vec<KeywordId>,
    pub(crate) children: Vec<LocalNodeId>,
}

/// Builder for one tree-shaped document (paper §2.3: unranked ordered tree;
/// children keep insertion order, which defines their 1-based Dewey ranks).
#[derive(Debug, Clone)]
pub struct DocBuilder {
    pub(crate) nodes: Vec<PendingNode>,
    /// Optional external URI string for the document root (kept for
    /// debugging/interop; internal identity is the node id).
    pub(crate) uri: Option<String>,
}

impl DocBuilder {
    /// Start a document whose root node has the given name.
    pub fn new(root_name: impl Into<String>) -> Self {
        DocBuilder {
            nodes: vec![PendingNode {
                name: root_name.into(),
                content: Vec::new(),
                children: Vec::new(),
            }],
            uri: None,
        }
    }

    /// The root node id.
    pub fn root(&self) -> LocalNodeId {
        LocalNodeId(0)
    }

    /// Attach an external URI string to the document.
    pub fn with_uri(mut self, uri: impl Into<String>) -> Self {
        self.uri = Some(uri.into());
        self
    }

    /// Append a child node under `parent`; returns its id.
    pub fn child(&mut self, parent: LocalNodeId, name: impl Into<String>) -> LocalNodeId {
        let id = LocalNodeId(self.nodes.len() as u32);
        self.nodes.push(PendingNode {
            name: name.into(),
            content: Vec::new(),
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Append a child that immediately carries content.
    pub fn child_with_content(
        &mut self,
        parent: LocalNodeId,
        name: impl Into<String>,
        content: Vec<KeywordId>,
    ) -> LocalNodeId {
        let id = self.child(parent, name);
        self.set_content(id, content);
        id
    }

    /// Set (replace) the keyword content of a node.
    pub fn set_content(&mut self, node: LocalNodeId, content: Vec<KeywordId>) {
        self.nodes[node.0 as usize].content = content;
    }

    /// Add keywords to a node's content.
    pub fn add_content(&mut self, node: LocalNodeId, content: impl IntoIterator<Item = KeywordId>) {
        self.nodes[node.0 as usize].content.extend(content);
    }

    /// The name of a node.
    pub fn name(&self, node: LocalNodeId) -> &str {
        &self.nodes[node.0 as usize].name
    }

    /// The children of a node, in insertion order (their Dewey ranks).
    /// Node ids are assigned sequentially, so re-adding every node in id
    /// order with its recorded parent reproduces each child list exactly
    /// — the invariant the wire form of an ingest document relies on.
    pub fn children(&self, node: LocalNodeId) -> &[LocalNodeId] {
        &self.nodes[node.0 as usize].children
    }

    /// Number of nodes so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A builder always has at least the root.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_shape() {
        let mut b = DocBuilder::new("tweet");
        let text = b.child(b.root(), "text");
        let date = b.child(b.root(), "date");
        b.set_content(text, vec![KeywordId(7)]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.nodes[0].children, vec![text, date]);
        assert!(b.nodes[b.root().0 as usize].children.contains(&text));
        assert_eq!(b.nodes[text.0 as usize].content, vec![KeywordId(7)]);
    }

    #[test]
    fn uri_is_kept() {
        let b = DocBuilder::new("doc").with_uri("ex:d0");
        assert_eq!(b.uri.as_deref(), Some("ex:d0"));
    }
}
