//! Structured-document substrate (paper §2.3).
//!
//! S3 documents are unranked, ordered trees of nodes (think XML or JSON):
//! every node has a URI, a name from a set `N` of node names, and a content
//! seen as a set of keywords (tokenized, stop-word-filtered, stemmed — see
//! the `s3-text` crate). Any subtree rooted at a node of document `d` is a
//! *fragment* of `d`; documents and fragments are identified by the URI of
//! their root node.
//!
//! This crate provides:
//!
//! * [`Forest`]: an arena holding every document tree of an instance, with
//!   per-node parent/children/depth and Euler-tour intervals (the basis of
//!   all subtree operations);
//! * [`dewey`]: Dewey-style positions — the paper's `pos(d, f)` function
//!   (§2.3 "Fragment position", implemented in the style of ORDPATH / Dewey
//!   labels as in the cited [19, 22]);
//! * vertical neighborhoods (Definition 2.2): two nodes are vertical
//!   neighbors iff one is a fragment of the other, i.e. the
//!   ancestor/descendant relation — *not* membership in the same tree;
//! * [`DocBuilder`]: an ergonomic way to construct documents.
//!
//! # Example
//!
//! ```
//! use s3_doc::{DocBuilder, Forest};
//!
//! let mut forest = Forest::new();
//! let mut b = DocBuilder::new("article");
//! let section = b.child(b.root(), "section");
//! let para = b.child(section, "p");
//! let other = b.child(b.root(), "aside");
//! let doc = forest.add_document(b);
//!
//! let root = forest.root(doc);
//! let para = forest.resolve(doc, para);
//! let other = forest.resolve(doc, other);
//! // pos(d, f): the paper's Dewey position of a fragment in a document.
//! assert_eq!(forest.pos(root, para).unwrap().as_slice(), &[1, 1]);
//! // Vertical neighborhood: root~para holds, but the two leaves are not
//! // vertical neighbors of each other (Definition 2.2).
//! assert!(forest.is_vertical_neighbor(root, para));
//! assert!(!forest.is_vertical_neighbor(para, other));
//! ```

#![warn(missing_docs)]
pub mod builder;
pub mod dewey;
pub mod forest;
pub mod json;
pub mod xml;

pub use builder::{DocBuilder, LocalNodeId};
pub use dewey::Dewey;
pub use forest::{DocNodeId, Forest, TreeId};
pub use json::{parse_json, JsonError};
pub use xml::{parse_xml, XmlError};
