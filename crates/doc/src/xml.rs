//! Minimal XML ingestion (paper §2.3: "content is created under the form
//! of structured, tree-shaped documents, e.g., XML, JSON").
//!
//! Parses a pragmatic XML subset — elements, attributes, text, comments,
//! XML declarations, the five predefined entities — directly into a
//! [`crate::DocBuilder`]. Attributes become child nodes named `@attr`
//! (attribute names are node names in the paper's `N`), and text is
//! analyzed by the caller-supplied closure (typically
//! `s3_text::Analyzer::analyze`), so the content lands in the keyword set
//! `K` already tokenized/stemmed.

use crate::builder::{DocBuilder, LocalNodeId};
use s3_text::KeywordId;
use std::fmt;

/// XML parsing error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parse an XML document into a [`DocBuilder`]; `analyze` converts raw text
/// into content keywords.
pub fn parse_xml(
    input: &str,
    mut analyze: impl FnMut(&str) -> Vec<KeywordId>,
) -> Result<DocBuilder, XmlError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_prolog();
    let (name, attrs, self_closing) = p.open_tag()?;
    let mut builder = DocBuilder::new(name.clone());
    let root = builder.root();
    attach_attributes(&mut builder, root, &attrs, &mut analyze);
    if !self_closing {
        p.element_body(&name, &mut builder, root, &mut analyze)?;
    }
    p.skip_ws_and_comments();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after the root element"));
    }
    Ok(builder)
}

fn attach_attributes(
    builder: &mut DocBuilder,
    node: LocalNodeId,
    attrs: &[(String, String)],
    analyze: &mut impl FnMut(&str) -> Vec<KeywordId>,
) {
    for (k, v) in attrs {
        let child = builder.child(node, format!("@{k}"));
        builder.set_content(child, analyze(v));
    }
}

/// Parsed open tag: name, attributes, self-closing flag.
type OpenTag = (String, Vec<(String, String)>, bool);

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) {
        self.skip_ws_and_comments();
        if self.starts_with("<?") {
            while self.pos < self.bytes.len() && !self.starts_with("?>") {
                self.pos += 1;
            }
            self.pos = (self.pos + 2).min(self.bytes.len());
        }
        self.skip_ws_and_comments();
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.pos += 4;
                while self.pos < self.bytes.len() && !self.starts_with("-->") {
                    self.pos += 1;
                }
                self.pos = (self.pos + 3).min(self.bytes.len());
            } else {
                return;
            }
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// Parse `<name a="v" …>` or `<name …/>`. Assumes `<` is next.
    fn open_tag(&mut self) -> Result<OpenTag, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((name, attrs, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok((name, attrs, true));
                }
                Some(_) => {
                    let key = self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(self.err("expected a quoted attribute value"));
                    }
                    let q = quote.expect("checked");
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != q) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push((key, decode_entities(&raw)));
                }
                None => return Err(self.err("unterminated tag")),
            }
        }
    }

    /// Parse children + text until `</name>`.
    fn element_body(
        &mut self,
        name: &str,
        builder: &mut DocBuilder,
        node: LocalNodeId,
        analyze: &mut impl FnMut(&str) -> Vec<KeywordId>,
    ) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated element")),
                Some(b'<') => {
                    if self.starts_with("<!--") {
                        self.skip_ws_and_comments();
                        continue;
                    }
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != name {
                            return Err(self.err("mismatched closing tag"));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>'"));
                        }
                        self.pos += 1;
                        let trimmed = text.trim();
                        if !trimmed.is_empty() {
                            builder.add_content(node, analyze(trimmed));
                        }
                        return Ok(());
                    }
                    // Child element.
                    let (child_name, attrs, self_closing) = self.open_tag()?;
                    let child = builder.child(node, child_name.clone());
                    attach_attributes(builder, child, &attrs, analyze);
                    if !self_closing {
                        self.element_body(&child_name, builder, child, analyze)?;
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'<') {
                        self.pos += 1;
                    }
                    text.push_str(&decode_entities(&String::from_utf8_lossy(
                        &self.bytes[start..self.pos],
                    )));
                    text.push(' ');
                }
            }
        }
    }
}

/// Decode the five predefined XML entities.
fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::Forest;
    use s3_text::{Analyzer, Language};

    fn parse(xml: &str) -> (Forest, crate::forest::TreeId, Analyzer) {
        let mut analyzer = Analyzer::new(Language::English);
        let builder = parse_xml(xml, |t| analyzer.analyze(t)).expect("parse");
        let mut forest = Forest::new();
        let tree = forest.add_document(builder);
        (forest, tree, analyzer)
    }

    #[test]
    fn parses_nested_structure() {
        let (forest, tree, _) =
            parse("<article><section><p>universities and degrees</p></section><aside/></article>");
        let root = forest.root(tree);
        assert_eq!(forest.name(root), "article");
        let kids = forest.children(root);
        assert_eq!(kids.len(), 2);
        assert_eq!(forest.name(kids[0]), "section");
        assert_eq!(forest.name(kids[1]), "aside");
        let p = forest.children(kids[0])[0];
        assert_eq!(forest.name(p), "p");
        assert_eq!(forest.content(p).len(), 2); // "univers", "degre"
    }

    #[test]
    fn attributes_become_nodes() {
        let (forest, tree, analyzer) =
            parse(r#"<tweet lang="english"><text>hello world</text></tweet>"#);
        let root = forest.root(tree);
        let kids = forest.children(root);
        assert_eq!(forest.name(kids[0]), "@lang");
        let english = analyzer.vocabulary().get("english").unwrap();
        assert_eq!(forest.content(kids[0]), &[english]);
    }

    #[test]
    fn prolog_comments_and_entities() {
        let (forest, tree, analyzer) = parse(
            "<?xml version=\"1.0\"?><!-- a comment --><doc>ties &amp; bonds</doc><!-- end -->",
        );
        let root = forest.root(tree);
        assert_eq!(forest.name(root), "doc");
        // "&" disappears at tokenization; "ties"→"ti", "bonds"→"bond".
        assert!(analyzer.vocabulary().get("bond").is_some());
        assert_eq!(forest.content(root).len(), 2);
    }

    #[test]
    fn mismatched_tags_error() {
        let mut analyzer = Analyzer::new(Language::English);
        let err = parse_xml("<a><b></a></b>", |t| analyzer.analyze(t)).unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut analyzer = Analyzer::new(Language::English);
        let err = parse_xml("<a/>junk", |t| analyzer.analyze(t)).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn unterminated_errors() {
        let mut analyzer = Analyzer::new(Language::English);
        assert!(parse_xml("<a><b>", |t| analyzer.analyze(t)).is_err());
        assert!(parse_xml("<a attr=>x</a>", |t| analyzer.analyze(t)).is_err());
    }

    #[test]
    fn mixed_text_and_children() {
        let (forest, tree, _) = parse("<p>alpha <b>beta</b> gamma</p>");
        let root = forest.root(tree);
        // Text accumulates on the parent ("alpha", "gamma"), child holds
        // "beta".
        assert_eq!(forest.content(root).len(), 2);
        let b = forest.children(root)[0];
        assert_eq!(forest.content(b).len(), 1);
    }

    #[test]
    fn dewey_positions_from_xml() {
        let (forest, tree, _) = parse("<r><a/><b><c/></b></r>");
        let root = forest.root(tree);
        let b = forest.children(root)[1];
        let c = forest.children(b)[0];
        assert_eq!(forest.pos(root, c).unwrap().as_slice(), &[2, 1]);
    }
}
