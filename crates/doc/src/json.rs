//! Minimal JSON ingestion (paper §2.3: documents are tree-shaped, "e.g.,
//! XML, JSON, etc.").
//!
//! Maps a JSON value onto the S3 document model:
//!
//! * an object becomes a node whose children are its members (member names
//!   are node names from the paper's `N`), in source order;
//! * an array becomes a node with one `item` child per element;
//! * strings are analyzed into content keywords of the enclosing node;
//! * numbers and booleans become single verbatim keywords;
//! * `null` contributes nothing.
//!
//! The parser is a small recursive-descent JSON reader (strings with
//! escapes, numbers, literals) — no third-party dependency.

use crate::builder::{DocBuilder, LocalNodeId};
use s3_text::KeywordId;
use std::fmt;

/// JSON parsing error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document into a [`DocBuilder`] whose root node carries
/// `root_name`; `analyze` converts string values into content keywords.
pub fn parse_json(
    input: &str,
    root_name: &str,
    mut analyze: impl FnMut(&str) -> Vec<KeywordId>,
) -> Result<DocBuilder, JsonError> {
    let mut p = JsonParser { bytes: input.as_bytes(), pos: 0 };
    let mut builder = DocBuilder::new(root_name);
    let root = builder.root();
    p.skip_ws();
    p.value(&mut builder, root, &mut analyze)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after the JSON value"));
    }
    Ok(builder)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(
        &mut self,
        builder: &mut DocBuilder,
        node: LocalNodeId,
        analyze: &mut impl FnMut(&str) -> Vec<KeywordId>,
    ) -> Result<(), JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(builder, node, analyze),
            Some(b'[') => self.array(builder, node, analyze),
            Some(b'"') => {
                let s = self.string()?;
                builder.add_content(node, analyze(&s));
                Ok(())
            }
            Some(b't') => self.literal("true", builder, node, analyze),
            Some(b'f') => self.literal("false", builder, node, analyze),
            Some(b'n') => {
                self.keyword_literal("null")?;
                Ok(())
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let n = self.number()?;
                builder.add_content(node, analyze(&n));
                Ok(())
            }
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(
        &mut self,
        word: &'static str,
        builder: &mut DocBuilder,
        node: LocalNodeId,
        analyze: &mut impl FnMut(&str) -> Vec<KeywordId>,
    ) -> Result<(), JsonError> {
        self.keyword_literal(word)?;
        builder.add_content(node, analyze(word));
        Ok(())
    }

    fn keyword_literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(
        &mut self,
        builder: &mut DocBuilder,
        node: LocalNodeId,
        analyze: &mut impl FnMut(&str) -> Vec<KeywordId>,
    ) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let child = builder.child(node, key);
            self.value(builder, child, analyze)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(
        &mut self,
        builder: &mut DocBuilder,
        node: LocalNodeId,
        analyze: &mut impl FnMut(&str) -> Vec<KeywordId>,
    ) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let child = builder.child(node, "item");
            self.value(builder, child, analyze)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<String, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::Forest;
    use s3_text::{Analyzer, Language};

    fn parse(json: &str) -> (Forest, crate::forest::TreeId, Analyzer) {
        let mut analyzer = Analyzer::new(Language::English);
        let builder = parse_json(json, "tweet", |t| analyzer.analyze(t)).expect("parse");
        let mut forest = Forest::new();
        let tree = forest.add_document(builder);
        (forest, tree, analyzer)
    }

    #[test]
    fn tweet_shaped_object() {
        // The paper's I1 documents: text/date/geo — exactly a JSON object.
        let (forest, tree, _) =
            parse(r#"{"text": "universities matter", "date": "2014-05-02", "geo": "Bordeaux"}"#);
        let root = forest.root(tree);
        let kids = forest.children(root);
        assert_eq!(kids.len(), 3);
        assert_eq!(forest.name(kids[0]), "text");
        assert_eq!(forest.name(kids[1]), "date");
        assert_eq!(forest.content(kids[0]).len(), 2);
    }

    #[test]
    fn arrays_become_item_children() {
        let (forest, tree, _) = parse(r#"{"tags": ["alpha", "beta"]}"#);
        let root = forest.root(tree);
        let tags = forest.children(root)[0];
        let items = forest.children(tags);
        assert_eq!(items.len(), 2);
        assert_eq!(forest.name(items[0]), "item");
        assert_eq!(forest.content(items[1]).len(), 1);
    }

    #[test]
    fn nested_objects_and_positions() {
        let (forest, tree, _) = parse(r#"{"a": {"b": {"c": "deep words here"}}}"#);
        let root = forest.root(tree);
        let a = forest.children(root)[0];
        let b = forest.children(a)[0];
        let c = forest.children(b)[0];
        assert_eq!(forest.pos(root, c).unwrap().as_slice(), &[1, 1, 1]);
        // "here" is a stop word; "deep" and "words" survive.
        assert_eq!(forest.content(c).len(), 2);
    }

    #[test]
    fn numbers_and_booleans_are_keywords() {
        let (forest, tree, analyzer) = parse(r#"{"year": 2012, "grad": true}"#);
        let root = forest.root(tree);
        let year = forest.children(root)[0];
        let y2012 = analyzer.vocabulary().get("2012").unwrap();
        assert_eq!(forest.content(year), &[y2012]);
        let grad = forest.children(root)[1];
        assert_eq!(forest.content(grad).len(), 1);
    }

    #[test]
    fn null_contributes_nothing() {
        let (forest, tree, _) = parse(r#"{"geo": null}"#);
        let root = forest.root(tree);
        let geo = forest.children(root)[0];
        assert!(forest.content(geo).is_empty());
    }

    #[test]
    fn string_escapes() {
        let (forest, tree, analyzer) = parse(r#"{"text": "says \"hello\"\nworld"}"#);
        let root = forest.root(tree);
        let text = forest.children(root)[0];
        assert!(forest.content(text).len() >= 3);
        assert!(analyzer.vocabulary().get("world").is_some());
    }

    #[test]
    fn errors_are_located() {
        let mut analyzer = Analyzer::new(Language::English);
        let e = parse_json("{\"a\": }", "d", |t| analyzer.analyze(t)).unwrap_err();
        assert!(e.offset > 0);
        assert!(parse_json("[1, 2,]", "d", |t| analyzer.analyze(t)).is_err());
        assert!(parse_json("{}extra", "d", |t| analyzer.analyze(t)).is_err());
    }

    #[test]
    fn unicode_escape() {
        let (_, _, analyzer) = parse(r#"{"text": "café time"}"#);
        assert!(analyzer.vocabulary().get("café").is_some());
    }
}
