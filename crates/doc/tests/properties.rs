//! Property tests for the forest and Dewey labels on random trees.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use s3_doc::{Dewey, DocBuilder, Forest};

/// Build a random tree of up to `max_nodes` nodes from a seed.
fn random_tree(seed: u64, max_nodes: usize) -> (Forest, s3_doc::TreeId) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DocBuilder::new("root");
    let mut nodes = vec![b.root()];
    let extra = rng.gen_range(0..max_nodes);
    for _ in 0..extra {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        nodes.push(b.child(parent, "n"));
    }
    let mut forest = Forest::new();
    let tree = forest.add_document(b);
    (forest, tree)
}

proptest! {
    /// Pre-order contiguity: every subtree is exactly its id interval, and
    /// parent intervals contain child intervals.
    #[test]
    fn subtree_ranges_nest(seed in 0u64..5000) {
        let (forest, tree) = random_tree(seed, 30);
        for node in forest.fragments(forest.root(tree)) {
            let range = forest.subtree_range(node);
            prop_assert!(range.contains(&node.index()));
            if let Some(p) = forest.parent(node) {
                let pr = forest.subtree_range(p);
                prop_assert!(pr.start <= range.start && range.end <= pr.end);
            }
        }
    }

    /// `pos(d, f)` walks exactly to `f`: replaying the Dewey ranks through
    /// `children()` lands on the fragment, and `|pos|` equals the depth gap.
    #[test]
    fn pos_roundtrips(seed in 0u64..3000) {
        let (forest, tree) = random_tree(seed, 25);
        let root = forest.root(tree);
        for f in forest.fragments(root) {
            let pos = forest.pos(root, f).expect("root is an ancestor");
            prop_assert_eq!(pos.len() as u32, forest.depth(f));
            let mut cur = root;
            for &rank in pos.as_slice() {
                let kids = forest.children(cur);
                prop_assert!(rank as usize <= kids.len());
                cur = kids[rank as usize - 1];
            }
            prop_assert_eq!(cur, f);
        }
    }

    /// Vertical neighborhood is symmetric, reflexive, and equals the
    /// ancestor-or-descendant relation.
    #[test]
    fn vertical_neighborhood_properties(seed in 0u64..2000) {
        let (forest, tree) = random_tree(seed, 15);
        let nodes: Vec<_> = forest.fragments(forest.root(tree)).collect();
        for &a in &nodes {
            prop_assert!(forest.is_vertical_neighbor(a, a));
            for &b in &nodes {
                let direct = forest.is_ancestor_or_self(a, b) || forest.is_ancestor_or_self(b, a);
                prop_assert_eq!(forest.is_vertical_neighbor(a, b), direct);
                prop_assert_eq!(
                    forest.is_vertical_neighbor(a, b),
                    forest.is_vertical_neighbor(b, a)
                );
            }
        }
    }

    /// Dewey prefix-order agrees with the forest's ancestor relation.
    #[test]
    fn dewey_prefix_equals_ancestry(seed in 0u64..2000) {
        let (forest, tree) = random_tree(seed, 20);
        let root = forest.root(tree);
        let labels: Vec<(s3_doc::DocNodeId, Dewey)> = forest
            .fragments(root)
            .map(|f| (f, forest.pos(root, f).expect("ancestor")))
            .collect();
        for (a, la) in &labels {
            for (b, lb) in &labels {
                prop_assert_eq!(
                    la.is_ancestor_or_self(lb),
                    forest.is_ancestor_or_self(*a, *b),
                    "{} vs {}",
                    a,
                    b
                );
            }
        }
    }

    /// Document order (Dewey lexicographic) equals pre-order id order.
    #[test]
    fn document_order_is_preorder(seed in 0u64..2000) {
        let (forest, tree) = random_tree(seed, 20);
        let root = forest.root(tree);
        let mut labels: Vec<(Dewey, s3_doc::DocNodeId)> = forest
            .fragments(root)
            .map(|f| (forest.pos(root, f).expect("ancestor"), f))
            .collect();
        labels.sort();
        for w in labels.windows(2) {
            prop_assert!(w[0].1 < w[1].1, "Dewey order must equal id (pre-)order");
        }
    }
}
