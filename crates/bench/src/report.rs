//! Machine-readable bench artifacts: flat `BENCH_<name>.json` files.
//!
//! Log text is fine for a human reading one run; tracking a perf
//! trajectory across PRs needs numbers a script can diff. Each bench
//! builds a [`JsonReport`] alongside its printed tables and calls
//! [`JsonReport::write`]: when the `BENCH_JSON_DIR` environment variable
//! is set (CI's smoke job sets it and uploads the directory as a
//! workflow artifact), the report lands there as `BENCH_<name>.json`;
//! otherwise the call is a no-op, so local runs stay clean.
//!
//! The format is deliberately flat — one JSON object, dotted keys in
//! insertion order, numeric or string values — so downstream tooling
//! needs nothing beyond a JSON parser. The writer is hand-rolled
//! (serde lives behind an offline shim in this workspace) and guards
//! every number: non-finite values are recorded as `0.0` rather than
//! emitting invalid JSON.

use std::path::PathBuf;

/// An ordered flat key/value report serialized as one JSON object.
#[derive(Debug, Clone)]
pub struct JsonReport {
    name: String,
    fields: Vec<(String, String)>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl JsonReport {
    /// A report that will serialize to `BENCH_<name>.json`.
    pub fn new(name: &str) -> Self {
        JsonReport { name: name.to_string(), fields: Vec::new() }
    }

    /// The bench name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record a float metric (non-finite values become `0.0`).
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        let value = if value.is_finite() { value } else { 0.0 };
        self.fields.push((key.to_string(), format!("{value}")));
        self
    }

    /// Record an integer metric.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Record a string field (escaped).
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields.push((key.to_string(), format!("\"{}\"", escape(value))));
        self
    }

    /// The serialized JSON object (keys in insertion order).
    pub fn render(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\"", escape(&self.name)));
        for (key, value) in &self.fields {
            out.push_str(&format!(",\n  \"{}\": {}", escape(key), value));
        }
        out.push_str("\n}\n");
        out
    }

    /// Write `BENCH_<name>.json` under `$BENCH_JSON_DIR` (creating the
    /// directory), returning the path. A no-op returning `None` when the
    /// variable is unset or the filesystem refuses.
    pub fn write(&self) -> Option<PathBuf> {
        let dir = PathBuf::from(std::env::var_os("BENCH_JSON_DIR")?);
        std::fs::create_dir_all(&dir).ok()?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render()).ok()?;
        Some(path)
    }

    /// [`Self::write`] plus a log line saying where the artifact went.
    pub fn write_and_announce(&self) {
        if let Some(path) = self.write() {
            println!("\nbench artifact: {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_object_in_insertion_order() {
        let mut r = JsonReport::new("cache");
        r.num("zipf.lru.hit_rate", 0.5).int("zipf.replays", 600).str("scale", "tiny");
        let json = r.render();
        assert!(json.starts_with("{\n  \"bench\": \"cache\""));
        let lru = json.find("zipf.lru.hit_rate").unwrap();
        let replays = json.find("zipf.replays").unwrap();
        assert!(lru < replays, "insertion order preserved");
        assert!(json.contains("\"zipf.replays\": 600"));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn non_finite_numbers_are_guarded() {
        let mut r = JsonReport::new("x");
        r.num("nan", f64::NAN).num("inf", f64::INFINITY);
        let json = r.render();
        assert!(json.contains("\"nan\": 0"));
        assert!(json.contains("\"inf\": 0"));
        assert!(!json.contains("NaN") && !json.contains("inf\": inf"));
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = JsonReport::new("x");
        r.str("label", "a \"quoted\"\nline\\");
        assert!(r.render().contains("\"label\": \"a \\\"quoted\\\"\\nline\\\\\""));
    }

    #[test]
    fn write_is_a_noop_without_the_env_var() {
        // The test environment does not set BENCH_JSON_DIR.
        if std::env::var_os("BENCH_JSON_DIR").is_none() {
            assert!(JsonReport::new("never").write().is_none());
        }
    }
}
