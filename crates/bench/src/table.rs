//! Plain-text table rendering for the harness output.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let cell = &cells[i];
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            out.trim_end().to_string()
        };
        let mut out = line(&self.header);
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "10000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
