//! Benchmark-harness library: workload runners, quartile statistics,
//! qualitative-comparison metrics (Figure 8) and table rendering.
//!
//! The `repro` binary (see `src/bin/repro.rs`) drives these to regenerate
//! every figure and table of the paper's evaluation section; the Criterion
//! benches under `benches/` use the same pieces for micro-measurements.

#![warn(missing_docs)]
pub mod metrics;
pub mod report;
pub mod runner;
pub mod table;

pub use metrics::{compare_runs, QualitativeMeasures};
pub use report::JsonReport;
pub use runner::{run_s3k_workload, run_topks_workload, RuntimeSummary, WorkloadTimes};
pub use table::Table;
