//! `repro` — regenerate every table and figure of the paper's evaluation
//! (§5), on the synthetic stand-in instances.
//!
//! ```text
//! repro [--scale tiny|small|medium] [--queries N] <command>
//!
//! commands:
//!   fig4      instance statistics tables (paper Figure 4) + the §5.1
//!             keyword-extension growth statistic
//!   fig5      median query times on I1, S3k γ∈{1.25,1.5,2} vs TopkS
//!             α∈{0.25,0.5,0.75}, 8 workloads (paper Figure 5)
//!   fig6      the same on I3/Yelp (paper Figure 6)
//!   fig_i2    the same on I2/Vodkaster (§5.3 "results on the smaller
//!             instance I2 are similar")
//!   fig7      min/Q1/median/Q3/max times on I1 varying k∈{1,5,10,50},
//!             γ∈{1.5,4} (paper Figure 7)
//!   fig8      qualitative S3k-vs-TopkS measures on I1/I2/I3
//!             (paper Figure 8)
//!   parallel  explore-step thread sweep (§5.2 reports ~2× at 8 threads)
//!   anytime   answer quality vs iteration cap (§4.1 any-time termination)
//!   ablation  component-pruning on/off and eager-vs-no semantic expansion
//!   all       everything above
//! ```

use s3_bench::{compare_runs, run_s3k_workload, run_topks_workload, Table};
use s3_core::{S3Instance, S3kEngine, SearchConfig};
use s3_datasets::{twitter, vodkaster, workload, yelp, Scale};
use s3_topks::{uit_from_s3, TopkSConfig, TopkSEngine};
use std::time::Duration;

#[derive(Debug, Clone, Copy)]
struct Options {
    scale: Scale,
    queries: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut queries = 30usize;
    let mut command = String::from("all");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("medium") => Scale::Medium,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--queries" => {
                i += 1;
                queries = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--queries needs a number");
                    std::process::exit(2);
                });
            }
            c => command = c.to_string(),
        }
        i += 1;
    }
    let opt = Options { scale, queries };
    println!("== S3 reproduction harness (scale {:?}, {} queries/workload) ==\n", scale, queries);
    match command.as_str() {
        "fig4" => fig4(opt),
        "fig5" => fig5(opt),
        "fig6" => fig6(opt),
        "fig_i2" => fig_i2(opt),
        "fig7" => fig7(opt),
        "fig8" => fig8(opt),
        "parallel" => parallel(opt),
        "anytime" => anytime(opt),
        "ablation" => ablation(opt),
        "all" => {
            fig4(opt);
            fig5(opt);
            fig6(opt);
            fig_i2(opt);
            fig7(opt);
            fig8(opt);
            parallel(opt);
            anytime(opt);
            ablation(opt);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn build_i1(opt: Options) -> twitter::TwitterDataset {
    twitter::generate(&twitter::TwitterConfig::scaled(opt.scale))
}

fn build_i2(opt: Options) -> vodkaster::VodkasterDataset {
    vodkaster::generate(&vodkaster::VodkasterConfig::scaled(opt.scale))
}

fn build_i3(opt: Options) -> yelp::YelpDataset {
    yelp::generate(&yelp::YelpConfig::scaled(opt.scale))
}

// ---------------------------------------------------------------- fig4 --

fn fig4(opt: Options) {
    println!("-- Figure 4: instance statistics --\n");
    let i1 = build_i1(opt);
    let i2 = build_i2(opt);
    let i3 = build_i3(opt);

    let mut t = Table::new(&["statistic", "I1 (Twitter)", "I2 (Vodkaster)", "I3 (Yelp)"]);
    let s = [i1.instance.stats(), i2.instance.stats(), i3.instance.stats()];
    let row = |name: &str, f: &dyn Fn(&s3_core::InstanceStats) -> String| {
        vec![name.to_string(), f(&s[0]), f(&s[1]), f(&s[2])]
    };
    t.row(row("users", &|x| x.users.to_string()));
    t.row(row("S3:social edges", &|x| x.social_edges.to_string()));
    t.row(row("documents", &|x| x.documents.to_string()));
    t.row(row("fragments (non-root)", &|x| x.fragments_non_root.to_string()));
    t.row(row("tags", &|x| x.tags.to_string()));
    t.row(row("keyword occurrences", &|x| x.keywords.to_string()));
    t.row(row("distinct keywords", &|x| x.distinct_keywords.to_string()));
    t.row(row("graph nodes", &|x| x.nodes.to_string()));
    t.row(row("graph edges", &|x| x.edges.to_string()));
    t.row(row("con(d,k) tuples", &|x| x.connections.to_string()));
    println!("{}", t.render());

    let mut t2 = Table::new(&["I1 tweet statistic", "value"]);
    t2.row(vec!["tweets".into(), i1.meta.tweets.to_string()]);
    t2.row(vec![
        "retweets".into(),
        format!(
            "{} ({:.0}%)",
            i1.meta.retweets,
            100.0 * i1.meta.retweets as f64 / i1.meta.tweets as f64
        ),
    ]);
    t2.row(vec![
        "replies".into(),
        format!(
            "{} ({:.1}% of tweets)",
            i1.meta.replies,
            100.0 * i1.meta.replies as f64 / i1.meta.tweets.max(1) as f64
        ),
    ]);
    println!("{}", t2.render());

    // §5.1: semantic extension grew workload queries by ~50%.
    for (name, inst) in [("I1", &i1.instance), ("I3", &i3.instance)] {
        let ws = workload::paper_workloads(inst, opt.queries);
        let growth = workload::extension_growth(inst, &ws);
        println!("{name}: keyword extension grows queries by {:.0}% (paper: ~50%)", growth * 100.0);
    }
    println!();
}

// ---------------------------------------------------------- fig5 / fig6 --

fn runtime_figure(name: &str, instance: &S3Instance, opt: Options) {
    println!("-- {name}: median query time (ms) per workload --\n");
    let workloads = workload::paper_workloads(instance, opt.queries);
    let adaptation = uit_from_s3(instance);

    let gammas = [1.25, 1.5, 2.0];
    let alphas = [0.75, 0.5, 0.25];
    let mut header: Vec<String> = vec!["workload".into()];
    header.extend(gammas.iter().map(|g| format!("S3k γ={g}")));
    header.extend(alphas.iter().map(|a| format!("TopkS α={a}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    let engines: Vec<S3kEngine<'_>> =
        gammas.iter().map(|&g| S3kEngine::new(instance, s3_bench::runner::s3k_config(g))).collect();

    for w in &workloads {
        let mut cells = vec![w.label.clone()];
        for engine in &engines {
            let (times, _) = run_s3k_workload(engine, w);
            cells.push(ms(times.summary().median));
        }
        for &alpha in &alphas {
            let (times, _) =
                run_topks_workload(&adaptation, TopkSConfig { alpha, epsilon: 1e-9 }, w);
            cells.push(ms(times.summary().median));
        }
        t.row(cells);
    }
    println!("{}", t.render());
    println!(
        "(paper shape: TopkS consistently faster; γ drives cost (stronger damping, larger γ,\n converges earlier — the attenuation bound M_n/γ^(n+1) shrinks faster);\n rare-keyword workloads (−) faster than common (+))\n"
    );
}

fn fig5(opt: Options) {
    let ds = build_i1(opt);
    runtime_figure("Figure 5 (I1 / Twitter)", &ds.instance, opt);
}

fn fig6(opt: Options) {
    let ds = build_i3(opt);
    runtime_figure("Figure 6 (I3 / Yelp)", &ds.instance, opt);
}

fn fig_i2(opt: Options) {
    let ds = build_i2(opt);
    runtime_figure("I2 runtimes (Vodkaster; §5.3 'similar')", &ds.instance, opt);
}

// ---------------------------------------------------------------- fig7 --

fn fig7(opt: Options) {
    println!("-- Figure 7: I1 runtime quartiles varying k (ms) --\n");
    let ds = build_i1(opt);
    let instance = &ds.instance;
    let workloads = workload::figure7_workloads(instance, opt.queries);
    let mut t = Table::new(&["workload", "γ", "min", "Q1", "median", "Q3", "max"]);
    for &gamma in &[1.5, 4.0] {
        let engine = S3kEngine::new(instance, s3_bench::runner::s3k_config(gamma));
        for w in &workloads {
            let (times, _) = run_s3k_workload(&engine, w);
            let s = times.summary();
            t.row(vec![
                w.label.clone(),
                format!("{gamma}"),
                ms(s.min),
                ms(s.q1),
                ms(s.median),
                ms(s.q3),
                ms(s.max),
            ]);
        }
    }
    println!("{}", t.render());
    println!("(paper shape: with frequent keywords (+) larger k slows the slowest quartile;\n rare keywords (−) run faster overall)\n");
}

// ---------------------------------------------------------------- fig8 --

fn fig8(opt: Options) {
    println!("-- Figure 8: S3k vs TopkS qualitative measures --\n");
    let i1 = build_i1(opt);
    let i2 = build_i2(opt);
    let i3 = build_i3(opt);
    let mut t = Table::new(&["measure", "I1", "I2", "I3"]);
    let mut rows: Vec<[f64; 3]> = vec![[0.0; 3]; 4];
    for (col, inst) in [&i1.instance, &i2.instance, &i3.instance].into_iter().enumerate() {
        let adaptation = uit_from_s3(inst);
        let cfg = s3_bench::runner::s3k_config(1.5);
        let ws = workload::paper_workloads(inst, opt.queries);
        let mut acc = s3_bench::metrics::QualAccumulator::default();
        let engine = S3kEngine::new(inst, cfg.clone());
        let topks_engine =
            TopkSEngine::new(&adaptation.uit, TopkSConfig { alpha: 0.5, epsilon: 1e-9 });
        for w in &ws {
            let (_, s3k_results) = run_s3k_workload(&engine, w);
            let topks_results: Vec<_> = w
                .queries
                .iter()
                .map(|q| topks_engine.run(q.query.seeker, &q.query.keywords, q.query.k))
                .collect();
            acc.merge(&compare_runs(inst, &adaptation, w, &s3k_results, &topks_results, &cfg));
        }
        let m = acc.finish();
        rows[0][col] = m.graph_reachability * 100.0;
        rows[1][col] = m.semantic_reachability * 100.0;
        rows[2][col] = m.l1 * 100.0;
        rows[3][col] = m.intersection * 100.0;
    }
    for (name, row) in [
        "graph reachability (% of S3k answers TopkS cannot reach)",
        "semantic reachability (candidates w/o ext ÷ with ext, %)",
        "L1 (normalized foot-rule distance, %)",
        "intersection size (%)",
    ]
    .iter()
    .zip(&rows)
    {
        t.row(vec![
            name.to_string(),
            format!("{:.1}", row[0]),
            format!("{:.1}", row[1]),
            format!("{:.1}", row[2]),
        ]);
    }
    println!("{}", t.render());
    println!("(paper: graph reach. 12/23/41%, semantic reach. 83/100/78%, L1 8/10/4%, intersection 13.7/18.4/5.6%)\n");
}

// ------------------------------------------------------------- parallel --

fn parallel(opt: Options) {
    println!("-- §5.2 parallel explore step: thread sweep --\n");
    let ds = build_i1(opt);
    let instance = &ds.instance;
    let w = workload::generate(
        instance,
        workload::WorkloadConfig {
            frequency: s3_text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: opt.queries,
            seed: 77,
        },
    );
    // Query-level timing with the engine's auto fallback.
    let mut t = Table::new(&["threads", "query median (ms)", "speedup"]);
    let mut base = None;
    for threads in [1usize, 2, 4, 8] {
        let cfg = SearchConfig { threads, ..s3_bench::runner::s3k_config(1.5) };
        let engine = S3kEngine::new(instance, cfg);
        let (times, _) = run_s3k_workload(&engine, &w);
        let median = times.summary().median;
        let speedup = match base {
            None => {
                base = Some(median);
                1.0
            }
            Some(b) => b.as_secs_f64() / median.as_secs_f64().max(1e-12),
        };
        t.row(vec![threads.to_string(), ms(median), format!("{speedup:.2}x")]);
    }
    println!("{}", t.render());

    // Raw explore-step timing with the fan-out FORCED, to expose the
    // buffer-and-merge overhead the cutoff protects against at this scale
    // (dispatch to the parked pool itself is only microseconds).
    let seeker = instance.user_node(s3_core::UserId(0));
    let mut t2 = Table::new(&["threads (forced fan-out)", "30 steps (ms)"]);
    for threads in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let mut p = s3_graph::Propagation::new(instance.graph(), 1.5, seeker);
        for _ in 0..30 {
            if threads == 1 {
                p.step();
            } else {
                p.step_parallel_forced(threads);
            }
        }
        t2.row(vec![threads.to_string(), ms(t0.elapsed())]);
    }
    println!("{}", t2.render());
    println!(
        "(paper: ~2x with 8 threads on their 4-core, million-node instances. A step
 at this scale carries ~6k emission units of ~100ns each, so forced fan-out
 pays more in per-worker buffering and the sequential merge than it saves;
 the engine auto-falls back below Propagation::PARALLEL_CUTOFF units — see
 the cutoff sweep in crates/graph/benches/propagation.rs)\n"
    );
}

// -------------------------------------------------------------- anytime --

fn anytime(opt: Options) {
    println!("-- §4.1 any-time termination: answer quality vs iteration cap --\n");
    let ds = build_i1(opt);
    let instance = &ds.instance;
    let w = workload::generate(
        instance,
        workload::WorkloadConfig {
            frequency: s3_text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: opt.queries,
            seed: 13,
        },
    );
    // Ground truth: the converged answers.
    let full_engine = S3kEngine::new(instance, s3_bench::runner::s3k_config(1.5));
    let truth: Vec<Vec<_>> = w
        .queries
        .iter()
        .map(|q| full_engine.run(&q.query).hits.iter().map(|h| h.doc).collect())
        .collect();

    let mut t = Table::new(&[
        "iteration cap",
        "median (ms)",
        "avg recall vs converged",
        "avg certified regret",
    ]);
    for cap in [1u32, 2, 4, 8, 16] {
        let cfg = SearchConfig { max_iterations: cap, ..s3_bench::runner::s3k_config(1.5) };
        let engine = S3kEngine::new(instance, cfg);
        let (times, results) = run_s3k_workload(&engine, &w);
        let mut recall_sum = 0.0;
        let mut regret_sum = 0.0;
        let mut counted = 0usize;
        for (res, exact) in results.iter().zip(&truth) {
            regret_sum += res.stats.quality.regret;
            if exact.is_empty() {
                continue;
            }
            let got: std::collections::HashSet<_> = res.hits.iter().map(|h| h.doc).collect();
            recall_sum +=
                exact.iter().filter(|d| got.contains(d)).count() as f64 / exact.len() as f64;
            counted += 1;
        }
        let recall = if counted == 0 { 1.0 } else { recall_sum / counted as f64 };
        let regret = regret_sum / results.len().max(1) as f64;
        t.row(vec![
            cap.to_string(),
            ms(times.summary().median),
            format!("{:.1}%", recall * 100.0),
            format!("{regret:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!("(any-time mode trades exploration for latency; recall climbs to 100% and the\n certified regret bound — how much better anything outside the answer could\n still be — falls to 0 well before the threshold-based stop triggers)\n");
}

// ------------------------------------------------------------- ablation --

fn ablation(opt: Options) {
    println!("-- Ablations: component pruning and semantic expansion --\n");
    let ds = build_i1(opt);
    let instance = &ds.instance;
    let w = workload::generate(
        instance,
        workload::WorkloadConfig {
            frequency: s3_text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: opt.queries,
            seed: 99,
        },
    );
    let mut t = Table::new(&["configuration", "median (ms)", "mean candidates"]);
    for (name, cfg) in [
        ("baseline (pruning on, expansion on)", s3_bench::runner::s3k_config(1.5)),
        (
            "component pruning OFF",
            SearchConfig { component_pruning: false, ..s3_bench::runner::s3k_config(1.5) },
        ),
        (
            "semantic expansion OFF",
            SearchConfig { semantic_expansion: false, ..s3_bench::runner::s3k_config(1.5) },
        ),
    ] {
        let engine = S3kEngine::new(instance, cfg);
        let (times, results) = run_s3k_workload(&engine, &w);
        let cand: f64 = results.iter().map(|r| r.stats.candidates as f64).sum::<f64>()
            / results.len().max(1) as f64;
        t.row(vec![name.to_string(), ms(times.summary().median), format!("{cand:.1}")]);
    }
    println!("{}", t.render());

    // γ sweep (Figure 5's knob, isolated).
    let mut t2 = Table::new(&["γ", "median (ms)", "mean iterations"]);
    for gamma in [1.25, 1.5, 2.0, 4.0] {
        let engine = S3kEngine::new(instance, s3_bench::runner::s3k_config(gamma));
        let (times, results) = run_s3k_workload(&engine, &w);
        let iters: f64 = results.iter().map(|r| r.stats.iterations as f64).sum::<f64>()
            / results.len().max(1) as f64;
        t2.row(vec![format!("{gamma}"), ms(times.summary().median), format!("{iters:.1}")]);
    }
    println!("{}", t2.render());
    println!("(larger γ damps long paths harder ⇒ earlier termination)\n");
}
