//! Executing query workloads against S3k and TopkS, with the summary
//! statistics the paper plots (median for Figures 5/6, min/Q1/median/Q3/max
//! for Figure 7).

use s3_core::{S3kEngine, SearchConfig, TopKResult};
use s3_datasets::Workload;
use s3_topks::{TopkSConfig, TopkSEngine, TopkSResult, UitAdaptation};
use std::time::{Duration, Instant};

/// Wall-clock times of one workload run.
#[derive(Debug, Clone)]
pub struct WorkloadTimes {
    /// Workload label (`f,l,k`).
    pub label: String,
    /// Per-query durations, in execution order.
    pub times: Vec<Duration>,
}

impl WorkloadTimes {
    /// Five-number summary.
    pub fn summary(&self) -> RuntimeSummary {
        let mut sorted = self.times.clone();
        sorted.sort_unstable();
        let q = |f: f64| -> Duration {
            if sorted.is_empty() {
                return Duration::ZERO;
            }
            let idx = ((sorted.len() - 1) as f64 * f).round() as usize;
            sorted[idx]
        };
        RuntimeSummary {
            min: q(0.0),
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: q(1.0),
            mean: if sorted.is_empty() {
                Duration::ZERO
            } else {
                sorted.iter().sum::<Duration>() / sorted.len() as u32
            },
        }
    }
}

/// Min/Q1/median/Q3/max/mean of a workload (Figure 7 plots exactly these).
#[derive(Debug, Clone, Copy)]
pub struct RuntimeSummary {
    /// Fastest query.
    pub min: Duration,
    /// First quartile.
    pub q1: Duration,
    /// Median (Figures 5/6 plot this).
    pub median: Duration,
    /// Third quartile.
    pub q3: Duration,
    /// Slowest query.
    pub max: Duration,
    /// Mean.
    pub mean: Duration,
}

/// Run a workload through S3k; returns times plus the per-query results
/// (consumed by the Figure 8 metrics).
pub fn run_s3k_workload(
    engine: &S3kEngine<'_>,
    workload: &Workload,
) -> (WorkloadTimes, Vec<TopKResult>) {
    let mut times = Vec::with_capacity(workload.queries.len());
    let mut results = Vec::with_capacity(workload.queries.len());
    for q in &workload.queries {
        let t0 = Instant::now();
        let res = engine.run(&q.query);
        times.push(t0.elapsed());
        results.push(res);
    }
    (WorkloadTimes { label: workload.label.clone(), times }, results)
}

/// Run a workload through TopkS on the adapted UIT instance.
pub fn run_topks_workload(
    adaptation: &UitAdaptation,
    config: TopkSConfig,
    workload: &Workload,
) -> (WorkloadTimes, Vec<TopkSResult>) {
    let engine = TopkSEngine::new(&adaptation.uit, config);
    let mut times = Vec::with_capacity(workload.queries.len());
    let mut results = Vec::with_capacity(workload.queries.len());
    for q in &workload.queries {
        let t0 = Instant::now();
        let res = engine.run(q.query.seeker, &q.query.keywords, q.query.k);
        times.push(t0.elapsed());
        results.push(res);
    }
    (WorkloadTimes { label: workload.label.clone(), times }, results)
}

/// A [`SearchConfig`] preset matching the paper's S3k runs for a given γ.
pub fn s3k_config(gamma: f64) -> SearchConfig {
    SearchConfig { score: s3_core::S3kScore::new(gamma, 0.5), ..SearchConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_quartiles() {
        let times: Vec<Duration> = (1..=9).map(Duration::from_millis).collect();
        let w = WorkloadTimes { label: "t".into(), times };
        let s = w.summary();
        assert_eq!(s.min, Duration::from_millis(1));
        assert_eq!(s.median, Duration::from_millis(5));
        assert_eq!(s.q1, Duration::from_millis(3));
        assert_eq!(s.q3, Duration::from_millis(7));
        assert_eq!(s.max, Duration::from_millis(9));
        assert_eq!(s.mean, Duration::from_millis(5));
    }

    #[test]
    fn empty_summary_is_zero() {
        let w = WorkloadTimes { label: "e".into(), times: vec![] };
        assert_eq!(w.summary().median, Duration::ZERO);
    }
}
