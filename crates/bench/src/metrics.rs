//! Qualitative comparison of S3k vs TopkS answers (paper §5.4 / Figure 8).
//!
//! Four measures, averaged over a workload:
//!
//! * **graph reachability** — fraction of S3k candidates that TopkS cannot
//!   reach (S3k follows links between documents; TopkS sees only items
//!   directly tagged with a query keyword);
//! * **semantic reachability** — candidates examined *without* query
//!   expansion over candidates examined *with* it (1.0 = semantics added
//!   nothing);
//! * **intersection size** — fraction of S3k results that TopkS also
//!   returned (item-level comparison);
//! * **L1** — Spearman's foot-rule distance between the two ranked lists,
//!   using the paper's exact formula, normalized by its maximum `k(k+1)`
//!   so 0 = identical rankings and 1 = disjoint.

use s3_core::{Query, S3Instance, S3kEngine, SearchConfig, TopKResult};
use s3_datasets::Workload;
use s3_topks::{ItemId, TopkSConfig, TopkSEngine, TopkSResult, UitAdaptation};
use std::collections::{HashMap, HashSet};

/// The Figure 8 row for one instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct QualitativeMeasures {
    /// Fraction of S3k candidates unreachable by TopkS.
    pub graph_reachability: f64,
    /// Candidates without expansion / candidates with expansion.
    pub semantic_reachability: f64,
    /// Normalized Spearman foot-rule distance (0 = identical).
    pub l1: f64,
    /// Fraction of S3k results also returned by TopkS.
    pub intersection: f64,
}

/// Streaming accumulator for [`QualitativeMeasures`]: each measure only
/// averages over the queries that carry signal for it (e.g. queries with
/// zero candidates say nothing about semantic reachability).
#[derive(Debug, Clone, Copy, Default)]
pub struct QualAccumulator {
    sums: [f64; 4],
    counts: [usize; 4],
}

impl QualAccumulator {
    /// Merge another accumulator.
    pub fn merge(&mut self, other: &QualAccumulator) {
        for i in 0..4 {
            self.sums[i] += other.sums[i];
            self.counts[i] += other.counts[i];
        }
    }

    fn push(&mut self, i: usize, v: f64) {
        self.sums[i] += v;
        self.counts[i] += 1;
    }

    /// Final averages; measures with no signal default to their neutral
    /// value (0 for distances/fractions, 1 for the semantic ratio).
    pub fn finish(&self) -> QualitativeMeasures {
        let avg = |i: usize, default: f64| {
            if self.counts[i] == 0 {
                default
            } else {
                self.sums[i] / self.counts[i] as f64
            }
        };
        QualitativeMeasures {
            graph_reachability: avg(0, 0.0),
            semantic_reachability: avg(1, 1.0),
            l1: avg(2, 0.0),
            intersection: avg(3, 0.0),
        }
    }
}

/// Paper formula for the foot-rule distance between two ranked lists
/// (ranks are 1-based; items outside the intersection contribute their own
/// rank), normalized by the maximum `k(k+1)`.
pub fn spearman_foot_rule(tau1: &[ItemId], tau2: &[ItemId]) -> f64 {
    let k = tau1.len().max(tau2.len());
    if k == 0 {
        return 0.0;
    }
    let rank = |tau: &[ItemId]| -> HashMap<ItemId, usize> {
        tau.iter().enumerate().map(|(i, &x)| (x, i + 1)).collect()
    };
    let r1 = rank(tau1);
    let r2 = rank(tau2);
    let inter: HashSet<ItemId> = r1.keys().filter(|i| r2.contains_key(i)).copied().collect();
    let mut l1 = 2.0 * (k - inter.len()) as f64 * (k + 1) as f64;
    for i in &inter {
        l1 += (r1[i] as f64 - r2[i] as f64).abs();
    }
    for (ranks, other) in [(&r1, &r2), (&r2, &r1)] {
        for (i, &r) in ranks.iter() {
            if !other.contains_key(i) {
                l1 -= r as f64;
            }
        }
    }
    let max = (k * (k + 1)) as f64;
    (l1 / max).clamp(0.0, 1.0)
}

/// Can TopkS reach this *document* for this query? TopkS sees only direct
/// `(user, item, tag)` associations: a candidate is reachable iff its own
/// content (subtree) contains an exact query keyword. Candidates that S3k
/// surfaces through comment/tag links, document structure or keyword
/// extension are exactly the ones TopkS misses (§5.4).
fn topks_reachable_doc(instance: &S3Instance, d: s3_doc::DocNodeId, query: &Query) -> bool {
    let forest = instance.forest();
    let kws: HashSet<_> = query.keywords.iter().copied().collect();
    forest.fragments(d).any(|f| forest.content(f).iter().any(|k| kws.contains(k)))
}

/// Compare the two systems over one workload, accumulating the Figure 8
/// measures. `s3k_results` must come from the default (expansion-enabled)
/// configuration.
pub fn compare_runs(
    instance: &S3Instance,
    adaptation: &UitAdaptation,
    workload: &Workload,
    s3k_results: &[TopKResult],
    topks_results: &[TopkSResult],
    base_config: &SearchConfig,
) -> QualAccumulator {
    assert_eq!(workload.queries.len(), s3k_results.len());
    assert_eq!(workload.queries.len(), topks_results.len());

    // Semantic reachability needs a no-expansion S3k run (candidates only).
    let no_ext_cfg = SearchConfig { semantic_expansion: false, ..base_config.clone() };
    let no_ext_engine = S3kEngine::new(instance, no_ext_cfg);

    let mut acc = QualAccumulator::default();

    for ((spec, s3k), topks) in workload.queries.iter().zip(s3k_results).zip(topks_results) {
        let query = &spec.query;

        // Graph reachability: over the candidates S3k examined — the
        // fraction TopkS's direct-tagging view cannot reach.
        if !s3k.candidate_docs.is_empty() {
            let unreachable = s3k
                .candidate_docs
                .iter()
                .filter(|&&d| !topks_reachable_doc(instance, d, query))
                .count();
            acc.push(0, unreachable as f64 / s3k.candidate_docs.len() as f64);
        }

        // Semantic reachability: candidate counts without / with expansion
        // (queries with no candidates at all carry no signal).
        let with = s3k.stats.candidates;
        if with > 0 {
            let without = no_ext_engine.run(query).stats.candidates;
            acc.push(1, without as f64 / with as f64);
        }

        let s3k_items: Vec<ItemId> =
            s3k.hits.iter().filter_map(|h| adaptation.item_of_doc(instance, h.doc)).collect();

        // Ranked item lists (dedup keeps first occurrence).
        let mut seen = HashSet::new();
        let tau1: Vec<ItemId> = s3k_items.iter().copied().filter(|i| seen.insert(*i)).collect();
        let tau2: Vec<ItemId> = topks.hits.iter().map(|h| h.item).collect();
        if !tau1.is_empty() || !tau2.is_empty() {
            acc.push(2, spearman_foot_rule(&tau1, &tau2));
        }

        if !tau1.is_empty() {
            let t2: HashSet<ItemId> = tau2.iter().copied().collect();
            let inter = tau1.iter().filter(|i| t2.contains(i)).count();
            acc.push(3, inter as f64 / tau1.len() as f64);
        }
    }
    acc
}

/// Convenience used by the harness: run both systems on a workload and
/// compare.
pub fn run_and_compare(
    instance: &S3Instance,
    adaptation: &UitAdaptation,
    workload: &Workload,
    s3k_config: &SearchConfig,
    topks_config: TopkSConfig,
) -> QualitativeMeasures {
    // (averages over one workload)
    let engine = S3kEngine::new(instance, s3k_config.clone());
    let (_, s3k_results) = crate::runner::run_s3k_workload(&engine, workload);
    let topks_engine = TopkSEngine::new(&adaptation.uit, topks_config);
    let topks_results: Vec<TopkSResult> = workload
        .queries
        .iter()
        .map(|q| topks_engine.run(q.query.seeker, &q.query.keywords, q.query.k))
        .collect();
    compare_runs(instance, adaptation, workload, &s3k_results, &topks_results, s3k_config).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn foot_rule_identical_lists() {
        let a = vec![ItemId(1), ItemId(2), ItemId(3)];
        assert_eq!(spearman_foot_rule(&a, &a), 0.0);
    }

    #[test]
    fn foot_rule_disjoint_lists() {
        let a = vec![ItemId(1), ItemId(2)];
        let b = vec![ItemId(3), ItemId(4)];
        assert!((spearman_foot_rule(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn foot_rule_partial_overlap_is_between() {
        let a = vec![ItemId(1), ItemId(2), ItemId(3)];
        let b = vec![ItemId(1), ItemId(9), ItemId(8)];
        let d = spearman_foot_rule(&a, &b);
        assert!(d > 0.0 && d < 1.0, "{d}");
    }

    #[test]
    fn foot_rule_swap_costs_little() {
        let a = vec![ItemId(1), ItemId(2)];
        let b = vec![ItemId(2), ItemId(1)];
        let d = spearman_foot_rule(&a, &b);
        // 2·0·3 + (|1−2| + |2−1|) − 0 = 2, normalized by 6.
        assert!((d - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn foot_rule_empty() {
        assert_eq!(spearman_foot_rule(&[], &[]), 0.0);
    }
}
