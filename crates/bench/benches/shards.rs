//! Sharded-serving bench: queries/sec through `ShardedEngine` at 1/2/4/8
//! shards, cold cache (full scatter-gather) vs warm cache (one front-cache
//! lookup regardless of shard count), against an unsharded `S3Engine`
//! baseline whose answers every sharded run must reproduce exactly.
//!
//! Run with `cargo bench --bench shards`. On a single-CPU container the
//! cold columns mostly show the scatter's bookkeeping overhead; the
//! interesting signals are warm/cold ratio (cache in front of the
//! scatter) and the per-shard document balance.

use s3_bench::{JsonReport, Table};
use s3_core::Query;
use s3_datasets::{twitter, workload, Scale};
use s3_engine::{EngineConfig, S3Engine, ShardedEngine};
use s3_text::FrequencyClass;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);

    let mut queries: Vec<Query> = Vec::new();
    for (frequency, keywords_per_query, seed) in [
        (FrequencyClass::Common, 1, 11),
        (FrequencyClass::Rare, 1, 13),
        (FrequencyClass::Common, 2, 17),
        (FrequencyClass::Rare, 2, 19),
    ] {
        let w = workload::generate(
            &instance,
            workload::WorkloadConfig { frequency, keywords_per_query, k: 10, queries: 40, seed },
        );
        queries.extend(w.queries.into_iter().map(|q| q.query));
    }
    println!(
        "sharded serving: {} queries over {} users / {} docs / {} components\n",
        queries.len(),
        instance.num_users(),
        instance.num_documents(),
        instance.graph().components().len()
    );

    let baseline = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig { threads: 4, cache_capacity: 8192, ..EngineConfig::default() },
    );
    let expected = baseline.run_batch(&queries);

    // Detected core count: the shard-scaling columns can't be read without
    // knowing how much hardware parallelism the host actually had.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut report = JsonReport::new("shards");
    report.int("queries", queries.len() as u64).int("cores", cores as u64);

    let mut table =
        Table::new(&["shards", "doc balance", "cold q/s", "warm q/s", "speedup", "hits"]);
    for shards in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(
            Arc::clone(&instance),
            EngineConfig { threads: 4, cache_capacity: 8192, ..EngineConfig::default() },
            shards,
        );
        let p = engine.partition();
        let balance = {
            let counts: Vec<usize> = (0..shards).map(|s| p.doc_count(s)).collect();
            let min = counts.iter().min().copied().unwrap_or(0);
            let max = counts.iter().max().copied().unwrap_or(0);
            format!("{min}..{max}")
        };

        let t0 = Instant::now();
        let cold_results = engine.run_batch(&queries);
        let cold = t0.elapsed();

        let t1 = Instant::now();
        let warm_results = engine.run_batch(&queries);
        let warm = t1.elapsed();

        for ((c, w), e) in cold_results.iter().zip(warm_results.iter()).zip(expected.iter()) {
            assert_eq!(c.hits, e.hits, "sharded answers must equal the unsharded baseline");
            assert_eq!(w.hits, e.hits, "warm answers must equal cold answers");
        }

        let qps = |elapsed: std::time::Duration| queries.len() as f64 / elapsed.as_secs_f64();
        report
            .num(&format!("shards{shards}.cold_qps"), qps(cold))
            .num(&format!("shards{shards}.warm_qps"), qps(warm));
        table.row(vec![
            shards.to_string(),
            balance,
            format!("{:.0}", qps(cold)),
            format!("{:.0}", qps(warm)),
            format!("{:.1}x", cold.as_secs_f64() / warm.as_secs_f64()),
            engine.cache_stats().hits.to_string(),
        ]);
    }
    print!("{}", table.render());
    report.write_and_announce();
}
