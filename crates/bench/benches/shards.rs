//! Sharded-serving bench: queries/sec through `ShardedEngine` at 1/2/4/8
//! shards, cold cache (full scatter-gather) vs warm cache (one front-cache
//! lookup regardless of shard count), against an unsharded `S3Engine`
//! baseline whose answers every sharded run must reproduce exactly.
//!
//! A second arm runs the *fleet* — shard servers behind the `Local`,
//! `Loopback` and unix-`Socket` transports — over shard counts {1, 2, 4},
//! recording per-round wire bytes and round latency into `BENCH_wire.json`.
//! Two gates ride on it:
//!
//! - **bytes/round** (always asserted): a pipelined round is a compact
//!   request/reply frame pair per shard plus amortized stop-check and
//!   query framing — ~110–180 bytes on this corpus. Blowing past the
//!   512-byte ceiling means the encoding grew or the client started
//!   chattering mid-round, and the check is host-independent.
//! - **loopback ≤ 1.25× local round latency** (judged): pipelining must
//!   make the round max-of-shards, not sum. The comparison is only
//!   meaningful where the host's bare cross-thread handoff floor is
//!   itself low; a probe measures that floor directly and the gate
//!   records itself unjudged instead of asserting noise (see
//!   [`handoff_floor`]).
//!
//! Run with `cargo bench --bench shards` (`BENCH_SMOKE=1` shrinks both
//! arms to CI-smoke size). On a single-CPU container the cold columns
//! mostly show the scatter's bookkeeping overhead; the interesting signals
//! are warm/cold ratio (cache in front of the scatter), the per-shard
//! document balance, and the loopback-over-local round ratio.

use s3_bench::{JsonReport, Table};
use s3_core::Query;
use s3_datasets::twitter::TwitterConfig;
use s3_datasets::{twitter, workload, Scale};
use s3_engine::{
    EngineConfig, FleetEngine, LocalShard, S3Engine, ShardHost, ShardServer, ShardedEngine,
};
use s3_text::FrequencyClass;
use s3_wire::ShardTransport;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `BENCH_SMOKE=1` shrinks the run to CI-smoke size.
fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
}

fn main() {
    let smoke = smoke_mode();
    let config = TwitterConfig::scaled(Scale::Tiny);
    let dataset = twitter::generate(&config);
    let instance = Arc::new(dataset.instance);

    let per_class = if smoke { 8 } else { 40 };
    let mut queries: Vec<Query> = Vec::new();
    for (frequency, keywords_per_query, seed) in [
        (FrequencyClass::Common, 1, 11),
        (FrequencyClass::Rare, 1, 13),
        (FrequencyClass::Common, 2, 17),
        (FrequencyClass::Rare, 2, 19),
    ] {
        let w = workload::generate(
            &instance,
            workload::WorkloadConfig {
                frequency,
                keywords_per_query,
                k: 10,
                queries: per_class,
                seed,
            },
        );
        queries.extend(w.queries.into_iter().map(|q| q.query));
    }
    println!(
        "sharded serving: {} queries over {} users / {} docs / {} components\n",
        queries.len(),
        instance.num_users(),
        instance.num_documents(),
        instance.graph().components().len()
    );

    let baseline = S3Engine::new(
        Arc::clone(&instance),
        EngineConfig::builder().threads(4).cache_capacity(8192).build(),
    );
    let expected = baseline.run_batch(&queries);

    // Detected core count: the shard-scaling columns can't be read without
    // knowing how much hardware parallelism the host actually had.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut report = JsonReport::new("shards");
    report
        .str("scale", if smoke { "smoke" } else { "small" })
        .int("queries", queries.len() as u64)
        .int("cores", cores as u64);

    let mut table =
        Table::new(&["shards", "doc balance", "cold q/s", "warm q/s", "speedup", "hits"]);
    for shards in [1usize, 2, 4, 8] {
        let engine = ShardedEngine::new(
            Arc::clone(&instance),
            EngineConfig::builder().threads(4).cache_capacity(8192).build(),
            shards,
        );
        let p = engine.partition();
        let balance = {
            let counts: Vec<usize> = (0..shards).map(|s| p.doc_count(s)).collect();
            let min = counts.iter().min().copied().unwrap_or(0);
            let max = counts.iter().max().copied().unwrap_or(0);
            format!("{min}..{max}")
        };

        let t0 = Instant::now();
        let cold_results = engine.run_batch(&queries);
        let cold = t0.elapsed();

        let t1 = Instant::now();
        let warm_results = engine.run_batch(&queries);
        let warm = t1.elapsed();

        for ((c, w), e) in cold_results.iter().zip(warm_results.iter()).zip(expected.iter()) {
            assert_eq!(c.hits, e.hits, "sharded answers must equal the unsharded baseline");
            assert_eq!(w.hits, e.hits, "warm answers must equal cold answers");
        }

        let qps = |elapsed: std::time::Duration| queries.len() as f64 / elapsed.as_secs_f64();
        report
            .num(&format!("shards{shards}.cold_qps"), qps(cold))
            .num(&format!("shards{shards}.warm_qps"), qps(warm));
        table.row(vec![
            shards.to_string(),
            balance,
            format!("{:.0}", qps(cold)),
            format!("{:.0}", qps(warm)),
            format!("{:.1}x", cold.as_secs_f64() / warm.as_secs_f64()),
            engine.cache_stats().hits.to_string(),
        ]);
    }
    print!("{}", table.render());
    report.write_and_announce();

    transport_arm(&config, &queries, &expected, smoke, cores);
}

// ---- Transport arm: the fleet over Local / Loopback / Socket. ----

#[derive(Clone, Copy)]
enum Transport {
    Local,
    Loopback,
    Socket,
}

impl Transport {
    fn name(self) -> &'static str {
        match self {
            Transport::Local => "local",
            Transport::Loopback => "loopback",
            Transport::Socket => "socket",
        }
    }
}

/// No result cache and no warm pool: every fleet query runs the full
/// scatter cold, so repeated runs measure the round exchange itself.
fn fleet_config() -> EngineConfig {
    EngineConfig::builder().threads(1).cache_capacity(0).warm_seekers(0).build()
}

/// Spawn a fleet over `transport`; every replica regenerates the corpus
/// from the deterministic `config` (the builder is not `Clone`).
fn spawn_fleet(
    config: &TwitterConfig,
    shards: usize,
    transport: Transport,
) -> (FleetEngine, Vec<ShardHost>) {
    let mut hosts = Vec::new();
    let mut transports: Vec<Box<dyn ShardTransport>> = Vec::new();
    for s in 0..shards {
        let server =
            ShardServer::new(twitter::generate_builder(config).0, fleet_config(), shards, s);
        match transport {
            Transport::Local => transports.push(Box::new(LocalShard::new(server))),
            Transport::Loopback => {
                let (conn, host) = server.spawn_loopback();
                transports.push(Box::new(conn));
                hosts.push(host);
            }
            Transport::Socket => {
                let path = std::env::temp_dir()
                    .join(format!("s3-bench-fleet-{}-{shards}-{s}.sock", std::process::id()));
                let (conn, host) = server.spawn_unix(&path).expect("bind unix socket");
                transports.push(Box::new(conn));
                hosts.push(host);
            }
        }
    }
    (FleetEngine::new(twitter::generate_builder(config).0, fleet_config(), transports), hosts)
}

/// Run the fleet across transports × shard counts {1, 2, 4}, recording
/// per-round wire bytes and round latency into `BENCH_wire.json`, and
/// gate the wire: bytes/round deterministically, the pipelined loopback
/// round against the in-process round where the host supports the
/// comparison.
fn transport_arm(
    config: &TwitterConfig,
    queries: &[Query],
    expected: &[std::sync::Arc<s3_core::TopKResult>],
    smoke: bool,
    cores: usize,
) {
    println!("\nfleet transports: {} queries, shard counts {{1, 2, 4}}\n", queries.len());
    let reps = if smoke { 1 } else { 2 };

    let mut report = JsonReport::new("wire");
    report
        .str("scale", if smoke { "smoke" } else { "small" })
        .int("queries", queries.len() as u64)
        .int("reps", reps as u64)
        .int("cores", cores as u64);

    let mut table =
        Table::new(&["transport", "shards", "rounds/query", "round µs", "bytes/round", "q/s"]);
    // Per-transport totals for the gate: best-rep elapsed and the rounds
    // it covered, summed over shard counts.
    let mut gate_elapsed = [Duration::ZERO; 3];
    let mut gate_rounds = [0u64; 3];
    // Worst bytes/round over every combination that moved bytes (the
    // in-process transport moves none).
    let mut max_bytes_per_round = 0.0f64;

    for (t, transport) in
        [Transport::Local, Transport::Loopback, Transport::Socket].into_iter().enumerate()
    {
        for shards in [1usize, 2, 4] {
            let (mut fleet, hosts) = spawn_fleet(config, shards, transport);
            let mut best = Duration::MAX;
            let mut rounds_per_rep = 0;
            for _ in 0..reps {
                let before = fleet.rounds();
                let t0 = Instant::now();
                for (q, want) in queries.iter().zip(expected) {
                    let got = fleet.query(q).expect("fleet query");
                    assert_eq!(
                        got.hits, want.hits,
                        "fleet answers must equal the unsharded baseline"
                    );
                }
                let elapsed = t0.elapsed();
                rounds_per_rep = fleet.rounds() - before;
                best = best.min(elapsed);
            }
            let stats = fleet.transport_stats();
            let bytes: u64 = stats.iter().map(|s| s.bytes_sent + s.bytes_received).sum();
            let total_rounds = fleet.rounds();
            let bytes_per_round = bytes as f64 / total_rounds.max(1) as f64;
            let round_us = best.as_secs_f64() * 1e6 / rounds_per_rep.max(1) as f64;
            let qps = queries.len() as f64 / best.as_secs_f64();
            gate_elapsed[t] += best;
            gate_rounds[t] += rounds_per_rep;
            if bytes > 0 {
                max_bytes_per_round = max_bytes_per_round.max(bytes_per_round);
            }

            let key = format!("{}.shards{shards}", transport.name());
            report
                .num(&format!("{key}.round_us"), round_us)
                .num(&format!("{key}.bytes_per_round"), bytes_per_round)
                .num(&format!("{key}.qps"), qps)
                .int(
                    &format!("{key}.rounds_per_query"),
                    rounds_per_rep / queries.len().max(1) as u64,
                )
                .int(&format!("{key}.wire_bytes"), bytes);
            table.row(vec![
                transport.name().to_string(),
                shards.to_string(),
                format!("{:.1}", rounds_per_rep as f64 / queries.len().max(1) as f64),
                format!("{round_us:.1}"),
                format!("{bytes_per_round:.0}"),
                format!("{qps:.0}"),
            ]);

            shutdown(fleet, hosts);
        }
    }
    print!("{}", table.render());

    // ---- Deterministic gate: frames stay compact and the client never
    // chatters mid-round, on any host. ----
    let bytes_ok = max_bytes_per_round <= 512.0;

    // ---- Judged gate: pipelining must keep the loopback round within
    // 1.25× of the in-process round — max-of-shards latency, not sum.
    // (The unix-socket round pays real syscalls and is reported, not
    // gated.) The ratio only measures the wire on hosts whose bare
    // cross-thread handoff floor is itself low; elsewhere it is
    // recorded unjudged, the same way the propagation bench documents
    // the parallel crossover its 2-core host cannot demonstrate. ----
    let floor = handoff_floor();
    let judged = floor <= 1.15;
    let round_us = |t: usize| gate_elapsed[t].as_secs_f64() * 1e6 / gate_rounds[t].max(1) as f64;
    let gate_ratio = round_us(1) / round_us(0).max(1e-9);
    let latency_ok = gate_ratio <= 1.25;
    report
        .num("local.round_us", round_us(0))
        .num("loopback.round_us", round_us(1))
        .num("socket.round_us", round_us(2))
        .num("host.handoff_floor", floor)
        .num("gate.max_bytes_per_round", max_bytes_per_round)
        .num("gate.loopback_over_local", gate_ratio)
        .int("gate.latency_judged", judged as u64)
        .int("gate.passed", (bytes_ok && (!judged || latency_ok)) as u64);
    report.write_and_announce();

    if judged {
        assert!(
            latency_ok,
            "wire gate: pipelined loopback round is {gate_ratio:.2}x the in-process \
             round (must be <= 1.25x)"
        );
    } else {
        println!(
            "wire gate: latency unjudged — this host's bare cross-thread handoff \
             floor is {floor:.2}x single-threaded (need <= 1.15x); loopback/local \
             ratio {gate_ratio:.2}x recorded, not asserted"
        );
    }
    assert!(
        bytes_ok,
        "wire gate: {max_bytes_per_round:.0} bytes/round exceeds the 512-byte ceiling"
    );
}

/// Measure this host's floor for the structure a fleet round has: two
/// threads alternating memory-bound compute turns handed off through a
/// single atomic — no wire code at all — timed against the same compute
/// on one thread. Returns the worst with/solo ratio over a few reps
/// (worst, because the question is whether the host *can* stay quiet
/// for a whole bench arm, not whether it sometimes does).
///
/// On idle multi-core hardware the handoff costs ~100ns against ~20µs
/// turns and the ratio sits at ~1.0. On the 2-vCPU sandbox this bench
/// was developed on it measured 1.13–1.48 run-to-run: a busy-waiting
/// peer taxes the other thread's memory-bound work by 10–50% (shared
/// memory subsystem), cross-thread wakes cost 50–150µs, and repeat
/// runs of the in-process arm alone differed by ~70%. When even this
/// bare floor exceeds 1.15×, no transport implementation could
/// demonstrate the ≤ 1.25× property here — asserting it would only
/// measure the host.
fn handoff_floor() -> f64 {
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    // A deterministic single-cycle permutation over a 256 KiB working
    // set: every load depends on the previous one, so each turn is
    // memory-latency-bound like the per-round propagation work it
    // stands in for.
    const N: usize = 1 << 16;
    let mut order: Vec<u32> = (0..N as u32).collect();
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    for i in (1..N).rev() {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (rng >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    let mut next = vec![0u32; N];
    for w in order.windows(2) {
        next[w[0] as usize] = w[1];
    }
    next[order[N - 1] as usize] = order[0];
    let next = Arc::new(next);

    fn chase(next: &[u32], mut at: u32, steps: usize) -> u32 {
        for _ in 0..steps {
            at = next[at as usize];
        }
        at
    }
    const STEPS: usize = 2048;
    const ROUNDS: usize = 200;
    const REPS: usize = 3;

    // Solo arm: both halves of every round on one thread.
    let solo = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            let mut at = 0u32;
            for _ in 0..2 * ROUNDS {
                at = chase(&next, at, STEPS);
            }
            std::hint::black_box(at);
            t0.elapsed()
        })
        .min()
        .expect("REPS > 0");

    // Ping-pong arm: the same rounds split across two threads, handed
    // off through a turn counter each side spin-waits on.
    let mut floor = 0.0f64;
    for _ in 0..REPS {
        let turn = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicBool::new(false));
        let server = {
            let (next, turn, done) = (Arc::clone(&next), Arc::clone(&turn), Arc::clone(&done));
            std::thread::spawn(move || {
                let mut at = 1u32;
                let mut mine = 1usize;
                loop {
                    while turn.load(Ordering::Acquire) != mine {
                        if done.load(Ordering::Relaxed) {
                            std::hint::black_box(at);
                            return;
                        }
                        std::hint::spin_loop();
                    }
                    at = chase(&next, at, STEPS);
                    turn.store(mine + 1, Ordering::Release);
                    mine += 2;
                }
            })
        };
        let t0 = Instant::now();
        let mut at = 0u32;
        let mut mine = 0usize;
        for _ in 0..ROUNDS {
            while turn.load(Ordering::Acquire) != mine {
                std::hint::spin_loop();
            }
            at = chase(&next, at, STEPS);
            turn.store(mine + 1, Ordering::Release);
            mine += 2;
        }
        while turn.load(Ordering::Acquire) != mine {
            std::hint::spin_loop();
        }
        let elapsed = t0.elapsed();
        done.store(true, Ordering::Relaxed);
        server.join().expect("ping-pong server exits");
        std::hint::black_box(at);
        floor = floor.max(elapsed.as_secs_f64() / solo.as_secs_f64().max(1e-12));
    }
    floor
}

fn shutdown(fleet: FleetEngine, hosts: Vec<ShardHost>) {
    fleet.shutdown().expect("fleet shutdown");
    for host in hosts {
        host.join().expect("shard server exits cleanly");
    }
}
