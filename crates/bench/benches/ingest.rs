//! Live-ingestion bench: batch apply latency against corpus size, and what
//! shard-scoped invalidation buys during cache recovery.
//!
//! Run with `cargo bench --bench ingest` (`BENCH_SMOKE=1` or `--smoke`
//! for CI's one-iteration smoke tier).
//!
//! Three measurements:
//!
//! * **apply latency** — time to ingest a batch into a live engine as the
//!   corpus grows, detached batches vs attached ones (the attached path
//!   reruns the `con` fixpoint inside the touched components; a cold
//!   `InstanceBuilder::snapshot` of the same data is timed alongside as
//!   the stop-the-world baseline the incremental path replaces);
//! * **recovery hits** — per-shard cache hits while replaying a Zipf
//!   stream after an ingest, scoped bump vs forced-global bump on
//!   identical twin fleets;
//! * **mutation arm** — tombstoned apply (deletes + updates riding along
//!   with appends) vs append-only at equal batch size, plus the cost of
//!   the off-path compaction epoch and what it reclaims.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_bench::{JsonReport, Table};
use s3_core::Query;
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_datasets::{twitter, workload, zipf::Zipf, Scale};
use s3_engine::{EngineConfig, LiveEngine, LiveShardedEngine};
use s3_text::FrequencyClass;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn builder(tweets: usize) -> s3_core::InstanceBuilder {
    let mut c = twitter::TwitterConfig::scaled(Scale::Tiny);
    c.users = (tweets / 6).max(20);
    c.tweets = tweets;
    twitter::generate_builder(&c).0
}

fn main() {
    let smoke = smoke_mode();
    if smoke {
        println!("[smoke mode: smallest corpus, one batch per class]\n");
    }
    let mut report = JsonReport::new("ingest");
    report.str("scale", if smoke { "smoke" } else { "tiny" });

    // ---- Apply latency vs corpus size, detached vs attached. ----
    let sizes: &[usize] = if smoke { &[200] } else { &[200, 800, 2000] };
    let batches_per_class = if smoke { 1 } else { 4 };
    let mut table =
        Table::new(&["tweets", "class", "apply ms", "cold rebuild ms", "speedup", "touched comps"]);
    for &tweets in sizes {
        for (class, attach_probability) in [("detached", 0.0), ("attached", 1.0)] {
            let mut b = builder(tweets);
            let live = LiveEngine::new(
                {
                    // The live engine retains its own builder; keep a twin
                    // for the cold-baseline timing below.
                    builder(tweets)
                },
                EngineConfig::builder().threads(1).build(),
            );
            let steps = live_workload(
                &live.instance(),
                &LiveWorkloadConfig {
                    batches: batches_per_class,
                    docs_per_batch: 4,
                    attach_probability,
                    seed: 7,
                    ..LiveWorkloadConfig::default()
                },
            );
            let mut apply_total = 0.0;
            let mut cold_total = 0.0;
            let mut touched = 0usize;
            let mut prev = b.snapshot();
            for step in &steps {
                let t = Instant::now();
                let report = live.ingest(&step.batch);
                apply_total += t.elapsed().as_secs_f64();
                touched += report.summary.touched_components.len();

                let (next, _) = b.apply(&prev, &step.batch);
                prev = next;
                let t = Instant::now();
                let cold = b.snapshot();
                cold_total += t.elapsed().as_secs_f64();
                assert_eq!(cold.num_documents(), live.instance().num_documents());
            }
            let n = steps.len() as f64;
            report
                .num(&format!("apply.{class}.{tweets}.apply_ms"), 1e3 * apply_total / n)
                .num(&format!("apply.{class}.{tweets}.cold_ms"), 1e3 * cold_total / n);
            table.row(vec![
                tweets.to_string(),
                class.to_string(),
                format!("{:.2}", 1e3 * apply_total / n),
                format!("{:.2}", 1e3 * cold_total / n),
                format!("{:.1}x", cold_total / apply_total.max(1e-12)),
                (touched / steps.len()).to_string(),
            ]);
        }
    }
    print!("{}", table.render());

    // ---- Scoped vs global recovery on twin fleets. ----
    let num_shards = 4;
    let replays = if smoke { 100 } else { 600 };
    let make = || {
        LiveShardedEngine::new(
            builder(if smoke { 200 } else { 800 }),
            EngineConfig::builder().threads(1).cache_capacity(256).build(),
            num_shards,
        )
    };
    let scoped = make();
    let global = make();
    let w = workload::generate(
        &scoped.instance(),
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: 120,
            seed: 7,
        },
    );
    let pool: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = StdRng::seed_from_u64(99);
    let stream: Vec<usize> = (0..replays).map(|_| zipf.sample(&mut rng)).collect();
    let shard_hits = |live: &LiveShardedEngine| -> u64 {
        let e = live.engine();
        (0..num_shards).map(|s| e.shard(s).cache_stats().hits).sum()
    };
    for live in [&scoped, &global] {
        for (i, &q) in stream.iter().enumerate() {
            live.engine().shard(i % num_shards).query(&pool[q]);
        }
    }
    let batch = {
        let mut steps = live_workload(
            &scoped.instance(),
            &LiveWorkloadConfig {
                batches: 1,
                attach_probability: 0.0,
                seed: 3,
                ..Default::default()
            },
        );
        steps.remove(0).batch
    };
    let rs = scoped.ingest(&batch);
    let rg = global.ingest_with(&batch, true);
    let (before_s, before_g) = (shard_hits(&scoped), shard_hits(&global));
    for live in [&scoped, &global] {
        for (i, &q) in stream.iter().enumerate() {
            live.engine().shard(i % num_shards).query(&pool[q]);
        }
    }
    let mut recovery =
        Table::new(&["bump", "entries dropped", "warm rebased", "recovery hits", "hit rate"]);
    for (label, ingest_report, hits) in [
        ("scoped", &rs, shard_hits(&scoped) - before_s),
        ("global", &rg, shard_hits(&global) - before_g),
    ] {
        report
            .int(&format!("recovery.{label}.dropped"), ingest_report.results_invalidated)
            .int(&format!("recovery.{label}.hits"), hits)
            .num(&format!("recovery.{label}.hit_rate"), hits as f64 / stream.len() as f64);
        recovery.row(vec![
            label.to_string(),
            ingest_report.results_invalidated.to_string(),
            ingest_report.warm_rebased.to_string(),
            hits.to_string(),
            format!("{:.2}", hits as f64 / stream.len() as f64),
        ]);
    }
    println!();
    print!("{}", recovery.render());

    // ---- Mutation arm: tombstoned apply vs append-only at equal batch
    // size (both arms append 4 documents per batch; the mutating arm
    // additionally tombstones 2 trees per batch), plus the off-path
    // compaction cost and what it reclaims. ----
    let tweets = if smoke { 200 } else { 800 };
    let batches = if smoke { 4 } else { 8 };
    let mut mutation =
        Table::new(&["arm", "apply ms/batch", "dead fraction", "compact ms", "docs dropped"]);
    for (arm, deletes, updates, docs) in
        [("append-only", 0usize, 0usize, 4usize), ("mutating", 1, 1, 3)]
    {
        let live = LiveEngine::new(builder(tweets), EngineConfig::builder().threads(1).build());
        let steps = live_workload(
            &live.instance(),
            &LiveWorkloadConfig {
                batches,
                docs_per_batch: docs,
                deletes_per_batch: deletes,
                updates_per_batch: updates,
                // Deletions always touch pre-existing components, so both
                // arms run fully attached to keep the comparison fair.
                attach_probability: 1.0,
                seed: 11,
                ..LiveWorkloadConfig::default()
            },
        );
        let mut apply_total = 0.0;
        for step in &steps {
            let t = Instant::now();
            live.ingest(&step.batch);
            apply_total += t.elapsed().as_secs_f64();
        }
        let apply_ms = 1e3 * apply_total / steps.len() as f64;
        let dead = live.dead_fraction();
        let (compact_ms, dropped) = if deletes > 0 {
            let t = Instant::now();
            let r = live.compact().expect("compact");
            (1e3 * t.elapsed().as_secs_f64(), r.compaction.dropped_documents)
        } else {
            (0.0, 0)
        };
        report
            .num(&format!("mutation.{arm}.apply_ms"), apply_ms)
            .num(&format!("mutation.{arm}.dead_fraction"), dead);
        if deletes > 0 {
            report
                .num("mutation.compact_ms", compact_ms)
                .int("mutation.compact_dropped_docs", dropped as u64);
            assert_eq!(live.dead_fraction(), 0.0, "compaction reclaims every tombstone");
        }
        mutation.row(vec![
            arm.to_string(),
            format!("{apply_ms:.2}"),
            format!("{dead:.3}"),
            if deletes > 0 { format!("{compact_ms:.2}") } else { "-".to_string() },
            dropped.to_string(),
        ]);
    }
    println!();
    print!("{}", mutation.render());

    report.write_and_announce();
    println!(
        "\nscoped vs global: both fleets ingested the same detached batch; the\n\
         scoped fleet dropped only the touched shard's cache entries (plus the\n\
         front) and rebased untouched warm propagations, so the replayed Zipf\n\
         stream recovers its hit rate faster."
    );
}
