//! Propagation-lifecycle bench: sparse reset cost vs graph size and
//! search extent.
//!
//! Run with `cargo bench --bench reset` (the bench carries its own
//! `main`). `Propagation::reset` clears only the journaled (touched)
//! entries, so its cost must track the number of nodes a search actually
//! reached — the sweep below grows the graph at fixed step counts (reset
//! time should stay put) and grows the step count at fixed graph size
//! (reset time should track the touched count). The fresh-build column
//! (`Propagation::new`, which allocates and zero-fills the SoA node
//! buffers — four per-node f64 arrays plus the word-packed visited
//! bitset) is the dense baseline the sparse reset replaces.

use s3_bench::Table;
use s3_core::UserId;
use s3_datasets::{twitter, Scale};
use s3_graph::Propagation;
use std::time::{Duration, Instant};

fn main() {
    println!("propagation reset: sparse O(touched) vs dense O(|graph|)\n");
    let mut table = Table::new(&[
        "graph",
        "nodes",
        "steps",
        "touched",
        "sparse reset",
        "fresh build",
        "speedup",
    ]);
    for mult in [1usize, 2, 4] {
        let mut cfg = twitter::TwitterConfig::scaled(Scale::Tiny);
        cfg.users *= mult;
        cfg.tweets *= mult;
        let ds = twitter::generate(&cfg);
        let inst = ds.instance;
        let graph = inst.graph();
        let seeker = inst.user_node(UserId(0));
        let nodes = graph.num_nodes();
        for steps in [0u32, 1, 2, 4, 8] {
            let reps = 40usize;
            let mut p = Propagation::new(graph, 1.5, seeker);
            let mut touched = 0usize;
            let mut sparse = Duration::ZERO;
            for _ in 0..reps {
                for _ in 0..steps {
                    p.step();
                }
                touched = p.touched_count();
                let t = Instant::now();
                p.reset(seeker);
                sparse += t.elapsed();
            }
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(Propagation::new(graph, 1.5, seeker));
            }
            let fresh = t.elapsed();
            let per = |total: Duration| total.as_secs_f64() * 1e6 / reps as f64;
            table.row(vec![
                format!("tiny×{mult}"),
                nodes.to_string(),
                steps.to_string(),
                touched.to_string(),
                format!("{:.2}µs", per(sparse)),
                format!("{:.2}µs", per(fresh)),
                format!("{:.1}x", fresh.as_secs_f64() / sparse.as_secs_f64().max(1e-12)),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nsparse reset time tracks the touched count (search extent); the fresh\n\
         build tracks graph size — the gap is what every small query on a large\n\
         instance saves per reset."
    );
}
