//! Durability-path bench: snapshot save/load, fsync-bound WAL append
//! throughput, and warm-restart latency (snapshot load plus WAL-tail
//! replay vs rebuilding the instance from its builder).
//!
//! Run with `cargo bench --bench persist` (the bench carries its own
//! `main`). Writes `BENCH_persist.json`. Gates deterministically: the
//! reopened engine must answer byte-identically to the engine that wrote
//! the journal, the WAL tail must replay exactly the uncheckpointed
//! batches, and a post-checkpoint reopen must replay nothing.

use s3_bench::{JsonReport, Table};
use s3_core::Query;
use s3_datasets::workload::{live_workload, LiveWorkloadConfig};
use s3_datasets::{twitter, Scale};
use s3_engine::{EngineConfig, LiveEngine, RecoverySource};
use std::time::Instant;

/// `BENCH_SMOKE=1` (or `--smoke`) shrinks the run to one fast iteration —
/// CI's smoke tier executes the bench this way so runtime panics are
/// caught without paying for a measurement-grade sweep.
fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn engine_config() -> EngineConfig {
    EngineConfig::builder().threads(1).cache_capacity(0).warm_seekers(0).build()
}

fn main() {
    let smoke = smoke_mode();
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    if smoke {
        config.users = 50;
        config.tweets = 300;
        println!("[smoke mode: tiny corpus, short journal]\n");
    }
    // The builder is regenerated per open (it is retained by the engine
    // and `generate_builder` is deterministic); the seed is only used
    // when no snapshot exists, so the reopens below ignore it anyway.
    let seed_builder = || twitter::generate_builder(&config).0;
    let meta = twitter::generate_builder(&config).1;
    let batches = if smoke { 4 } else { 16 };
    println!(
        "durability paths: {} documents from {} tweets, {batches} journaled batches\n",
        meta.documents, meta.tweets
    );

    let dir = std::env::temp_dir().join(format!("s3-persist-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut report = JsonReport::new("persist");
    report.str("scale", if smoke { "smoke" } else { "tiny" }).int("batches", batches as u64);
    let mut table = Table::new(&["path", "time", "detail"]);
    let ms = |d: std::time::Duration| format!("{:.1} ms", d.as_secs_f64() * 1e3);

    // ---- Cold open: seed the store, journal a live workload. ----
    let t = Instant::now();
    let (engine, recovery) =
        LiveEngine::open(&dir, seed_builder(), engine_config()).expect("seed open");
    let seed_open = t.elapsed();
    assert_eq!(recovery.source, RecoverySource::Seed);
    table.row(vec!["seed open".into(), ms(seed_open), "no snapshot on disk".into()]);
    report.num("open.seed_ms", seed_open.as_secs_f64() * 1e3);

    let steps = live_workload(
        &engine.instance(),
        &LiveWorkloadConfig { batches, queries_per_batch: 4, seed: 42, ..Default::default() },
    );
    let t = Instant::now();
    for step in &steps {
        engine.ingest(&step.batch);
    }
    let journal = t.elapsed();
    table.row(vec![
        "journaled ingest".into(),
        ms(journal),
        format!("{batches} batches, fsync per commit"),
    ]);
    report
        .num("wal.journal_ms", journal.as_secs_f64() * 1e3)
        .num("wal.batches_per_s", batches as f64 / journal.as_secs_f64());

    // The answers the restarted engine must reproduce byte-for-byte.
    let instance = engine.instance();
    let queries: Vec<Query> = steps
        .iter()
        .flat_map(|s| s.queries.iter())
        .map(|spec| Query::new(spec.seeker, instance.query_keywords(&spec.text), spec.k))
        .collect();
    let expected: Vec<_> = queries.iter().map(|q| engine.query(q)).collect();
    drop(engine);

    // ---- Warm restart, journal-heavy: snapshot absent, full replay. ----
    let t = Instant::now();
    let (engine, recovery) =
        LiveEngine::open(&dir, seed_builder(), engine_config()).expect("replay open");
    let replay_open = t.elapsed();
    assert_eq!(recovery.replayed, batches, "every journaled batch replays");
    table.row(vec![
        "reopen (WAL only)".into(),
        ms(replay_open),
        format!("{} records replayed", recovery.replayed),
    ]);
    report.num("open.replay_ms", replay_open.as_secs_f64() * 1e3);
    for (q, want) in queries.iter().zip(&expected) {
        let got = engine.query(q);
        assert_eq!(got.hits, want.hits, "restart must be byte-identical");
        assert_eq!(got.stats.stop, want.stats.stop);
    }

    // ---- Checkpoint: absorb the journal into the snapshot. ----
    let t = Instant::now();
    let absorbed = engine.checkpoint().expect("checkpoint").absorbed;
    let checkpoint = t.elapsed();
    assert_eq!(absorbed, batches as u64);
    let snapshot_bytes = std::fs::metadata(dir.join("snapshot.s3k")).expect("snapshot").len();
    table.row(vec![
        "checkpoint".into(),
        ms(checkpoint),
        format!("{absorbed} records absorbed, {snapshot_bytes} B snapshot"),
    ]);
    report
        .num("checkpoint.ms", checkpoint.as_secs_f64() * 1e3)
        .int("checkpoint.snapshot_bytes", snapshot_bytes);
    drop(engine);

    // ---- Warm restart, snapshot-only: load, replay nothing. ----
    let t = Instant::now();
    let (engine, recovery) =
        LiveEngine::open(&dir, seed_builder(), engine_config()).expect("snapshot open");
    let snap_open = t.elapsed();
    assert_eq!(recovery.source, RecoverySource::Snapshot);
    assert_eq!(recovery.replayed, 0, "the checkpoint truncated the journal");
    table.row(vec!["reopen (snapshot)".into(), ms(snap_open), "0 records replayed".into()]);
    report.num("open.snapshot_ms", snap_open.as_secs_f64() * 1e3);
    for (q, want) in queries.iter().zip(&expected) {
        assert_eq!(engine.query(q).hits, want.hits, "snapshot restart must be byte-identical");
    }
    drop(engine);

    print!("{}", table.render());
    report.write_and_announce();
    println!(
        "\nrestart: the WAL-only reopen replays every batch through the ingest\n\
         path; the post-checkpoint reopen deserializes the snapshot instead.\n\
         Both are gated byte-identical to the engine that wrote the journal."
    );
    let _ = std::fs::remove_dir_all(&dir);
}
