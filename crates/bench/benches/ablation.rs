//! Ablation benches for the design choices called out in DESIGN.md:
//! component pruning, parallel explore step, semantic expansion and the
//! tree-aggregated neighborhood emission (vs the naive quadratic expansion,
//! measured through the `naive` oracle's per-neighbor loop on one step).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use s3_core::{S3kEngine, S3kScore, SearchConfig};
use s3_datasets::{twitter, workload, Scale};

fn small_instance() -> s3_datasets::twitter::TwitterDataset {
    twitter::generate(&twitter::TwitterConfig::scaled(Scale::Small))
}

fn queries(inst: &s3_core::S3Instance) -> Vec<s3_core::Query> {
    workload::generate(
        inst,
        workload::WorkloadConfig {
            frequency: s3_text::FrequencyClass::Rare,
            keywords_per_query: 1,
            k: 10,
            queries: 8,
            seed: 5,
        },
    )
    .queries
    .into_iter()
    .map(|q| q.query)
    .collect()
}

fn bench_component_pruning(c: &mut Criterion) {
    let ds = small_instance();
    let inst = &ds.instance;
    let qs = queries(inst);
    let mut group = c.benchmark_group("component_pruning");
    for (name, pruning) in [("on", true), ("off", false)] {
        let engine = S3kEngine::new(
            inst,
            SearchConfig { component_pruning: pruning, ..SearchConfig::default() },
        );
        let mut i = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                engine.run(q).stats.candidates
            })
        });
    }
    group.finish();
}

fn bench_parallel_explore(c: &mut Criterion) {
    let ds = small_instance();
    let inst = &ds.instance;
    let qs = queries(inst);
    let mut group = c.benchmark_group("explore_threads");
    for threads in [1usize, 2, 4, 8] {
        let engine = S3kEngine::new(inst, SearchConfig { threads, ..SearchConfig::default() });
        let mut i = 0usize;
        group.bench_function(format!("{threads}"), |b| {
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                engine.run(q).stats.iterations
            })
        });
    }
    group.finish();
}

fn bench_gamma(c: &mut Criterion) {
    let ds = small_instance();
    let inst = &ds.instance;
    let qs = queries(inst);
    let mut group = c.benchmark_group("gamma");
    for gamma in [1.25f64, 1.5, 2.0, 4.0] {
        let engine = S3kEngine::new(
            inst,
            SearchConfig { score: S3kScore::new(gamma, 0.5), ..SearchConfig::default() },
        );
        let mut i = 0usize;
        group.bench_function(format!("{gamma}"), |b| {
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                engine.run(q).stats.iterations
            })
        });
    }
    group.finish();
}

fn bench_connection_index_build(c: &mut Criterion) {
    // Eager connection indexing is our stated deviation (DESIGN.md §3.5):
    // measure what it costs to build.
    let mut cfg = twitter::TwitterConfig::scaled(Scale::Tiny);
    cfg.tweets = 400;
    c.bench_function("instance_build_tiny_i1", |b| {
        b.iter_batched(
            || cfg.clone(),
            |cfg| twitter::generate(&cfg).instance.stats().connections,
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = bench_component_pruning, bench_parallel_explore, bench_gamma,
        bench_connection_index_build
);
criterion_main!(ablation);
