//! Criterion micro-benchmarks for the substrate layers:
//! RDFS saturation, one propagation (explore) step, connection-index
//! construction and a full S3k query, plus the TopkS baseline query.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use s3_core::{S3kEngine, SearchConfig};
use s3_datasets::{twitter, workload, Scale};
use s3_graph::Propagation;
use s3_rdf::{vocabulary as voc, Term, TripleStore};
use s3_topks::{uit_from_s3, TopkSConfig, TopkSEngine};

fn bench_saturation(c: &mut Criterion) {
    // A subclass chain + instance assertions: classic saturation stress.
    let build = || {
        let mut st = TripleStore::new();
        let classes: Vec<_> =
            (0..200).map(|i| st.dictionary_mut().intern(&format!("c{i}"))).collect();
        for w in classes.windows(2) {
            st.insert(w[0], voc::RDFS_SUBCLASS_OF, Term::Uri(w[1]), 1.0);
        }
        for i in 0..400 {
            let e = st.dictionary_mut().intern(&format!("e{i}"));
            st.insert(e, voc::RDF_TYPE, Term::Uri(classes[i % 50]), 1.0);
        }
        st
    };
    c.bench_function("rdfs_saturation_chain200_inst400", |b| {
        b.iter_batched(build, |mut st| st.saturate(), BatchSize::SmallInput)
    });
}

fn bench_propagation_step(c: &mut Criterion) {
    let ds = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Small));
    let inst = &ds.instance;
    let seeker = inst.user_node(s3_core::UserId(0));
    c.bench_function("propagation_explore_step_small_i1", |b| {
        b.iter_batched(
            || {
                let mut p = Propagation::new(inst.graph(), 1.5, seeker);
                // Warm to a dense frontier (the expensive regime).
                for _ in 0..3 {
                    p.step();
                }
                p
            },
            |mut p| {
                p.step();
                p.border_mass()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_s3k_query(c: &mut Criterion) {
    let ds = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Small));
    let inst = &ds.instance;
    let engine = S3kEngine::new(inst, SearchConfig::default());
    let w = workload::generate(
        inst,
        workload::WorkloadConfig {
            frequency: s3_text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: 16,
            seed: 11,
        },
    );
    let mut i = 0usize;
    c.bench_function("s3k_query_common_k10_small_i1", |b| {
        b.iter(|| {
            let q = &w.queries[i % w.queries.len()].query;
            i += 1;
            engine.run(q).hits.len()
        })
    });
}

fn bench_topks_query(c: &mut Criterion) {
    let ds = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Small));
    let inst = &ds.instance;
    let adaptation = uit_from_s3(inst);
    let engine = TopkSEngine::new(&adaptation.uit, TopkSConfig { alpha: 0.5, epsilon: 1e-9 });
    let w = workload::generate(
        inst,
        workload::WorkloadConfig {
            frequency: s3_text::FrequencyClass::Common,
            keywords_per_query: 1,
            k: 10,
            queries: 16,
            seed: 11,
        },
    );
    let mut i = 0usize;
    c.bench_function("topks_query_common_k10_small_i1", |b| {
        b.iter(|| {
            let q = &w.queries[i % w.queries.len()].query;
            i += 1;
            engine.run(q.seeker, &q.keywords, q.k).hits.len()
        })
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = bench_saturation, bench_propagation_step, bench_s3k_query, bench_topks_query
);
criterion_main!(micro);
