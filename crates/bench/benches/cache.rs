//! Result-cache policy shootout: LRU vs W-TinyLFU hit rates on seeded
//! Zipf query streams, with the CI hit-rate regression gate built in.
//!
//! Run with `cargo bench --bench cache` (`BENCH_SMOKE=1` or `--smoke`
//! shrinks the corpus for CI's smoke tier; the gate is enforced either
//! way). Two streams over the same distinct-query pool, cache sized at
//! **half** the pool:
//!
//! * **zipf** — plain Zipf(s=1.1) replay: the head dominates, so any
//!   reasonable policy stays hot. The gate on this arm is the ROADMAP's
//!   baseline claim: TinyLFU ≥ LRU, and ≥ 0.55 absolute.
//! * **zipf+scan** — every other access is a one-hit-wonder query seen
//!   exactly once. Wonders flush an LRU's hot head; TinyLFU's admission
//!   filter rejects them, so its hit rate must stay strictly ahead.
//!
//! The gate panics (failing the bench, and CI's smoke job with it) when
//! a bound is violated. Results are also emitted as `BENCH_cache.json`
//! when `BENCH_JSON_DIR` is set, so the perf trajectory is tracked as a
//! workflow artifact instead of log text.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_bench::{JsonReport, Table};
use s3_core::Query;
use s3_datasets::{twitter, workload, zipf::Zipf, Scale};
use s3_engine::{CachePolicy, EngineConfig, S3Engine};
use s3_text::FrequencyClass;
use std::sync::Arc;
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

/// `(policy label, policy)` arms compared on every stream.
fn policies() -> Vec<(&'static str, CachePolicy)> {
    vec![
        ("lru", CachePolicy::Lru),
        ("tinylfu", CachePolicy::tiny_lfu()),
        ("tinylfu_w1", CachePolicy::TinyLfu { window_frac: 0.01, protected_frac: 0.8 }),
    ]
}

fn main() {
    let smoke = smoke_mode();
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    if smoke {
        config.users = 50;
        config.tweets = 300;
        println!("[smoke mode: tiny corpus]\n");
    }
    let dataset = twitter::generate(&config);
    let instance = Arc::new(dataset.instance);

    // The seeded distinct-query pool (identical to
    // `tests/zipf_hit_rate.rs`) and the Zipf replay order over it; the
    // cache holds half the pool.
    let distinct = 120;
    let replays = if smoke { 600 } else { 2400 };
    let capacity = distinct / 2;
    let w = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 1,
            k: 5,
            queries: distinct,
            seed: 7,
        },
    );
    let pool: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();
    let zipf = Zipf::new(pool.len(), 1.1);
    let mut rng = StdRng::seed_from_u64(99);
    let stream: Vec<usize> = (0..replays).map(|_| zipf.sample(&mut rng)).collect();

    // One-hit wonders for the scan arm: distinct rare-keyword queries,
    // each replayed exactly once.
    let wonders = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Rare,
            keywords_per_query: 2,
            k: 7,
            queries: if smoke { 300 } else { 1200 },
            seed: 23,
        },
    );
    let wonder_pool: Vec<Query> = wonders.queries.into_iter().map(|q| q.query).collect();

    println!(
        "cache policy shootout: {} distinct queries, cache capacity {} (half), \
         {} Zipf replays over {} users / {} docs\n",
        pool.len(),
        capacity,
        stream.len(),
        instance.num_users(),
        instance.num_documents()
    );

    let run = |policy: CachePolicy, scan: bool| -> (s3_engine::CacheStats, f64) {
        let engine = S3Engine::new(
            Arc::clone(&instance),
            EngineConfig::builder()
                .threads(1)
                .cache_capacity(capacity)
                .cache_policy(policy)
                .build(),
        );
        let t0 = Instant::now();
        for (j, &i) in stream.iter().enumerate() {
            engine.query(&pool[i]);
            if scan && j % 2 == 0 {
                engine.query(&wonder_pool[(j / 2) % wonder_pool.len()]);
            }
        }
        (engine.cache_stats(), t0.elapsed().as_secs_f64())
    };

    let mut report = JsonReport::new("cache");
    report
        .str("scale", if smoke { "smoke" } else { "tiny" })
        .int("distinct_queries", pool.len() as u64)
        .int("cache_capacity", capacity as u64)
        .int("replays", stream.len() as u64);

    let mut gates: Vec<(String, f64, f64)> = Vec::new(); // (arm, lru, tinylfu)
    for (arm, scan) in [("zipf", false), ("zipf+scan", true)] {
        let mut table = Table::new(&[
            "policy", "hit rate", "hits", "misses", "admitted", "rejected", "evicted", "q/s",
        ]);
        let mut arm_rates = (0.0, 0.0);
        for (label, policy) in policies() {
            let (stats, secs) = run(policy, scan);
            let lookups = stats.hits + stats.misses;
            table.row(vec![
                label.to_string(),
                format!("{:.3}", stats.hit_rate()),
                stats.hits.to_string(),
                stats.misses.to_string(),
                stats.admitted.to_string(),
                stats.rejected.to_string(),
                stats.evictions.to_string(),
                format!("{:.0}", lookups as f64 / secs),
            ]);
            let key = arm.replace('+', "_");
            report
                .num(&format!("{key}.{label}.hit_rate"), stats.hit_rate())
                .int(&format!("{key}.{label}.hits"), stats.hits)
                .int(&format!("{key}.{label}.admitted"), stats.admitted)
                .int(&format!("{key}.{label}.rejected"), stats.rejected);
            match label {
                "lru" => arm_rates.0 = stats.hit_rate(),
                "tinylfu" => arm_rates.1 = stats.hit_rate(),
                _ => {}
            }
        }
        println!("stream: {arm}");
        print!("{}", table.render());
        println!();
        gates.push((arm.to_string(), arm_rates.0, arm_rates.1));
    }

    report.write_and_announce();

    // ---- The CI hit-rate regression gate. ----
    for (arm, lru, tinylfu) in &gates {
        assert!(
            tinylfu >= lru,
            "GATE FAILED [{arm}]: TinyLFU hit rate {tinylfu:.3} fell below LRU {lru:.3}"
        );
    }
    let (_, _, zipf_tinylfu) = &gates[0];
    assert!(
        *zipf_tinylfu >= 0.55,
        "GATE FAILED [zipf]: TinyLFU hit rate {zipf_tinylfu:.3} below the 0.55 floor"
    );
    println!(
        "hit-rate gate OK: zipf tinylfu {:.3} >= lru {:.3} (floor 0.55); \
         zipf+scan tinylfu {:.3} >= lru {:.3}",
        gates[0].2, gates[0].1, gates[1].2, gates[1].1
    );
}
