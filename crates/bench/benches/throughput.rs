//! Placeholder; replaced by the serving-throughput workload bench.
fn main() {}
