//! Serving-throughput workload bench: queries/sec through the `S3Engine`
//! serving layer at 1/2/4/8 worker threads, cold cache vs warm cache.
//!
//! Run with `cargo bench --bench throughput` (the bench carries its own
//! `main`). Each thread count gets a fresh engine: the cold pass computes
//! every distinct query; the warm pass replays the same batch against the
//! populated LRU cache. The paper's algorithm is single-query (§4); this
//! measures the serving substrate the reproduction grew around it.

use s3_bench::Table;
use s3_core::Query;
use s3_datasets::{twitter, workload, Scale};
use s3_engine::{EngineConfig, S3Engine};
use s3_text::FrequencyClass;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let dataset = twitter::generate(&twitter::TwitterConfig::scaled(Scale::Tiny));
    let instance = Arc::new(dataset.instance);

    // A mixed workload: rare and common keywords, 1 and 2 keywords per
    // query, k = 10 (the paper's middle result size).
    let mut queries: Vec<Query> = Vec::new();
    for (frequency, keywords_per_query, seed) in [
        (FrequencyClass::Common, 1, 11),
        (FrequencyClass::Rare, 1, 13),
        (FrequencyClass::Common, 2, 17),
        (FrequencyClass::Rare, 2, 19),
    ] {
        let w = workload::generate(
            &instance,
            workload::WorkloadConfig { frequency, keywords_per_query, k: 10, queries: 60, seed },
        );
        queries.extend(w.queries.into_iter().map(|q| q.query));
    }
    println!(
        "serving throughput: {} queries over {} users / {} docs\n",
        queries.len(),
        instance.num_users(),
        instance.num_documents()
    );

    let mut table = Table::new(&["threads", "cold q/s", "warm q/s", "speedup", "hits", "misses"]);
    for threads in [1usize, 2, 4, 8] {
        let engine = S3Engine::new(
            Arc::clone(&instance),
            EngineConfig { threads, cache_capacity: 8192, ..EngineConfig::default() },
        );

        let t0 = Instant::now();
        let cold_results = engine.run_batch(&queries);
        let cold = t0.elapsed();

        let t1 = Instant::now();
        let warm_results = engine.run_batch(&queries);
        let warm = t1.elapsed();

        assert_eq!(cold_results.len(), warm_results.len());
        for (c, w) in cold_results.iter().zip(warm_results.iter()) {
            assert_eq!(c.hits, w.hits, "warm answers must equal cold answers");
        }

        let qps = |elapsed: std::time::Duration| queries.len() as f64 / elapsed.as_secs_f64();
        let stats = engine.cache_stats();
        table.row(vec![
            threads.to_string(),
            format!("{:.0}", qps(cold)),
            format!("{:.0}", qps(warm)),
            format!("{:.1}x", cold.as_secs_f64() / warm.as_secs_f64()),
            stats.hits.to_string(),
            stats.misses.to_string(),
        ]);
    }
    print!("{}", table.render());
}
