//! Serving-throughput workload bench: queries/sec through the `S3Engine`
//! serving layer at 1/2/4/8 worker threads, cold cache vs warm cache,
//! plus a Zipf-seeker stream measuring same-seeker propagation resume.
//!
//! Run with `cargo bench --bench throughput` (the bench carries its own
//! `main`). Each thread count gets a fresh engine: the cold pass computes
//! every distinct query; the warm pass replays the same batch against the
//! populated LRU cache. The paper's algorithm is single-query (§4); this
//! measures the serving substrate the reproduction grew around it.
//!
//! The resume sweep replays a stream whose seekers are Zipf-distributed
//! (the realistic social-search shape: a few hot users issue most
//! queries) but whose keyword/k combinations vary, so the result cache
//! cannot absorb the repeats — only the seeker-keyed warm propagation
//! pool can, by resuming each hot seeker's propagation instead of
//! recomputing it from step 0.

use rand::rngs::StdRng;
use rand::SeedableRng;
use s3_bench::{JsonReport, Table};
use s3_core::{Query, SearchConfig, UserId};
use s3_datasets::{twitter, workload, zipf::Zipf, Scale};
use s3_engine::{EngineConfig, S3Engine};
use s3_text::{FrequencyClass, KeywordId};
use std::sync::Arc;
use std::time::Instant;

/// `BENCH_SMOKE=1` (or `--smoke`) shrinks the run to one fast iteration —
/// CI's smoke tier executes the bench this way so runtime panics are
/// caught without paying for a measurement-grade sweep.
fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

fn main() {
    let smoke = smoke_mode();
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    if smoke {
        config.users = 50;
        config.tweets = 300;
        println!("[smoke mode: tiny corpus, single thread count, short streams]\n");
    }
    let dataset = twitter::generate(&config);
    let instance = Arc::new(dataset.instance);
    let queries_per_workload = if smoke { 10 } else { 60 };
    let thread_counts: &[usize] = if smoke { &[1] } else { &[1, 2, 4, 8] };
    let stream_len = if smoke { 50 } else { 400 };

    // A mixed workload: rare and common keywords, 1 and 2 keywords per
    // query, k = 10 (the paper's middle result size).
    let mut queries: Vec<Query> = Vec::new();
    for (frequency, keywords_per_query, seed) in [
        (FrequencyClass::Common, 1, 11),
        (FrequencyClass::Rare, 1, 13),
        (FrequencyClass::Common, 2, 17),
        (FrequencyClass::Rare, 2, 19),
    ] {
        let w = workload::generate(
            &instance,
            workload::WorkloadConfig {
                frequency,
                keywords_per_query,
                k: 10,
                queries: queries_per_workload,
                seed,
            },
        );
        queries.extend(w.queries.into_iter().map(|q| q.query));
    }
    println!(
        "serving throughput: {} queries over {} users / {} docs\n",
        queries.len(),
        instance.num_users(),
        instance.num_documents()
    );

    // Detected core count: thread-scaling numbers are meaningless without
    // knowing how much hardware parallelism the host actually had.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut report = JsonReport::new("throughput");
    report
        .str("scale", if smoke { "smoke" } else { "tiny" })
        .int("queries", queries.len() as u64)
        .int("cores", cores as u64);
    let mut table = Table::new(&["threads", "cold q/s", "warm q/s", "speedup", "hits", "misses"]);
    for &threads in thread_counts {
        let engine = S3Engine::new(
            Arc::clone(&instance),
            EngineConfig::builder().threads(threads).cache_capacity(8192).build(),
        );

        let t0 = Instant::now();
        let cold_results = engine.run_batch(&queries);
        let cold = t0.elapsed();

        let t1 = Instant::now();
        let warm_results = engine.run_batch(&queries);
        let warm = t1.elapsed();

        assert_eq!(cold_results.len(), warm_results.len());
        for (c, w) in cold_results.iter().zip(warm_results.iter()) {
            assert_eq!(c.hits, w.hits, "warm answers must equal cold answers");
        }

        let qps = |elapsed: std::time::Duration| queries.len() as f64 / elapsed.as_secs_f64();
        let stats = engine.cache_stats();
        report
            .num(&format!("threads{threads}.cold_qps"), qps(cold))
            .num(&format!("threads{threads}.warm_qps"), qps(warm))
            .num(&format!("threads{threads}.hit_rate"), stats.hit_rate());
        table.row(vec![
            threads.to_string(),
            format!("{:.0}", qps(cold)),
            format!("{:.0}", qps(warm)),
            format!("{:.1}x", cold.as_secs_f64() / warm.as_secs_f64()),
            stats.hits.to_string(),
            stats.misses.to_string(),
        ]);
    }
    print!("{}", table.render());

    // ---- Zipf-seeker propagation-resume sweep. ----
    let kw_pool: Vec<KeywordId> = {
        let mut kws: Vec<KeywordId> = queries.iter().flat_map(|q| q.keywords.clone()).collect();
        kws.sort_unstable();
        kws.dedup();
        kws
    };
    let zipf = Zipf::new(instance.num_users(), 1.1);
    let mut rng = StdRng::seed_from_u64(42);
    let stream: Vec<Query> = (0..stream_len)
        .map(|i| {
            let seeker = UserId(zipf.sample(&mut rng) as u32);
            Query::new(seeker, vec![kw_pool[i % kw_pool.len()]], 5 + (i % 3))
        })
        .collect();
    println!(
        "\nZipf-seeker stream (s=1.1, {} queries over {} users, cache off):\n",
        stream.len(),
        instance.num_users()
    );
    let mut resume_table =
        Table::new(&["propagation", "q/s", "resumed", "fallbacks", "warm hits", "resume rate"]);
    for (label, resume) in [("cold each query", false), ("same-seeker resume", true)] {
        let engine = S3Engine::new(
            Arc::clone(&instance),
            EngineConfig::builder()
                .search(SearchConfig { resume, ..SearchConfig::default() })
                .threads(1)
                .cache_capacity(0) // isolate the propagation lifecycle
                .warm_seekers(if resume { 32 } else { 0 })
                .build(),
        );
        let t = Instant::now();
        for q in &stream {
            engine.query(q);
        }
        let elapsed = t.elapsed();
        let stats = engine.resume_stats();
        let key = if resume { "resume" } else { "cold" };
        report
            .num(&format!("zipf_seeker.{key}.qps"), stream.len() as f64 / elapsed.as_secs_f64())
            .num(&format!("zipf_seeker.{key}.resume_rate"), stats.resume_rate());
        resume_table.row(vec![
            label.to_string(),
            format!("{:.0}", stream.len() as f64 / elapsed.as_secs_f64()),
            stats.resumed.to_string(),
            stats.fallbacks.to_string(),
            stats.warm_hits.to_string(),
            format!("{:.2}", stats.resume_rate()),
        ]);
    }
    print!("{}", resume_table.render());
    report.write_and_announce();
    println!(
        "\nwarm-vs-cold: the resume row serves repeat seekers by continuing their\n\
         propagation (hit rate above); the cold row recomputes every propagation\n\
         from step 0."
    );
}
