//! Anytime-serving quality trajectory and overload shootout, with the CI
//! soundness gates built in.
//!
//! Run with `cargo bench --bench anytime` (`BENCH_SMOKE=1` or `--smoke`
//! shrinks the corpus for CI's smoke tier; the gates are enforced either
//! way). Two parts:
//!
//! * **budget sweep** — the same seeded workload under growing iteration
//!   caps (the deterministic stand-in for a wall-clock budget), compared
//!   against converged ground truth. Tracks recall, the *certified*
//!   regret each answer reports, and the *observed* regret ground truth
//!   reveals. Gates: recall is monotone non-decreasing in the budget,
//!   certified regret is never below observed regret (the bound is
//!   sound), and the uncapped arm is fully exact.
//! * **overload** — oversubscribed concurrent clients against a gated
//!   engine. Gates: `DegradeAnytime` sheds nothing and every answer
//!   carries a finite certified bound; `Reject` accounts for every
//!   arrival as either admitted or shed.
//!
//! Gate violations panic (failing the bench, and CI's smoke job with
//! it). Results are emitted as `BENCH_anytime.json` when
//! `BENCH_JSON_DIR` is set.

use s3_bench::{JsonReport, Table};
use s3_core::{Query, SearchConfig, TopKResult};
use s3_datasets::{twitter, workload, Scale};
use s3_engine::{EngineConfig, OverloadConfig, OverloadPolicy, S3Engine, ServeOutcome};
use s3_text::FrequencyClass;
use std::sync::{Arc, Barrier};
use std::time::Instant;

fn smoke_mode() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| v != "0")
        || std::env::args().any(|a| a == "--smoke")
}

/// The regret ground truth actually reveals: how much better than the
/// anytime answer's bar the best missing converged hit scores (0 when
/// nothing is missing). Converged hits replaced by a selected vertical
/// neighbor don't count — the selection rule excludes neighbors, so the
/// answer already speaks for that chain.
fn observed_regret(
    inst: &s3_core::S3Instance,
    k: usize,
    any: &TopKResult,
    truth: &TopKResult,
) -> f64 {
    let forest = inst.forest();
    let full = any.hits.len() == k;
    let bar = if full { any.stats.quality.floor } else { 0.0 };
    truth
        .hits
        .iter()
        .filter(|t| !any.hits.iter().any(|h| h.doc == t.doc))
        .filter(|t| !any.hits.iter().any(|h| forest.is_vertical_neighbor(h.doc, t.doc)))
        .map(|t| (t.lower - bar).max(0.0))
        .fold(0.0, f64::max)
}

fn main() {
    let smoke = smoke_mode();
    let mut config = twitter::TwitterConfig::scaled(Scale::Tiny);
    if smoke {
        config.users = 50;
        config.tweets = 300;
        println!("[smoke mode: tiny corpus]\n");
    }
    let dataset = twitter::generate(&config);
    let instance = Arc::new(dataset.instance);

    let w = workload::generate(
        &instance,
        workload::WorkloadConfig {
            frequency: FrequencyClass::Common,
            keywords_per_query: 2,
            k: 5,
            queries: if smoke { 60 } else { 200 },
            seed: 31,
        },
    );
    let queries: Vec<Query> = w.queries.into_iter().map(|q| q.query).collect();

    let engine_at = |cap: u32| {
        S3Engine::new(
            Arc::clone(&instance),
            EngineConfig::builder()
                .search(SearchConfig { max_iterations: cap, ..SearchConfig::default() })
                .threads(1)
                .cache_capacity(0)
                .build(),
        )
    };
    let full = engine_at(u32::MAX);
    let truths: Vec<Arc<TopKResult>> = queries.iter().map(|q| full.query(q)).collect();

    println!(
        "anytime budget sweep: {} queries over {} users / {} docs, k=5\n",
        queries.len(),
        instance.num_users(),
        instance.num_documents()
    );

    let mut report = JsonReport::new("anytime");
    report.str("scale", if smoke { "smoke" } else { "tiny" }).int("queries", queries.len() as u64);

    // ---- Part 1: the budget sweep. ----
    let caps: Vec<(String, u32)> = [1u32, 2, 4, 8, 16]
        .iter()
        .map(|&c| (c.to_string(), c))
        .chain(std::iter::once(("uncapped".to_string(), u32::MAX)))
        .collect();
    let mut table = Table::new(&[
        "cap",
        "recall",
        "exact",
        "avg certified regret",
        "avg observed regret",
        "q/s",
    ]);
    let mut recalls: Vec<(String, f64)> = Vec::new();
    let mut soundness_violations = 0usize;
    let mut uncapped_exact = 0.0f64;
    for (label, cap) in &caps {
        let engine = engine_at(*cap);
        let t0 = Instant::now();
        let results: Vec<Arc<TopKResult>> = queries.iter().map(|q| engine.query(q)).collect();
        let secs = t0.elapsed().as_secs_f64();

        let mut recall_sum = 0.0;
        let mut certified_sum = 0.0;
        let mut observed_sum = 0.0;
        let mut exact = 0usize;
        for ((any, truth), q) in results.iter().zip(&truths).zip(&queries) {
            let hit = truth.hits.iter().filter(|t| any.hits.iter().any(|h| h.doc == t.doc)).count();
            recall_sum +=
                if truth.hits.is_empty() { 1.0 } else { hit as f64 / truth.hits.len() as f64 };
            let observed = observed_regret(&instance, q.k, any, truth);
            let certified = any.stats.quality.regret;
            if certified + 1e-6 < observed {
                soundness_violations += 1;
            }
            certified_sum += certified;
            observed_sum += observed;
            exact += any.stats.quality.exact as usize;
        }
        let n = results.len() as f64;
        let recall = recall_sum / n;
        let exact_frac = exact as f64 / n;
        table.row(vec![
            label.clone(),
            format!("{recall:.3}"),
            format!("{exact_frac:.3}"),
            format!("{:.4}", certified_sum / n),
            format!("{:.4}", observed_sum / n),
            format!("{:.0}", n / secs),
        ]);
        report
            .num(&format!("cap_{label}.recall"), recall)
            .num(&format!("cap_{label}.exact_frac"), exact_frac)
            .num(&format!("cap_{label}.avg_certified_regret"), certified_sum / n)
            .num(&format!("cap_{label}.avg_observed_regret"), observed_sum / n);
        recalls.push((label.clone(), recall));
        if label == "uncapped" {
            uncapped_exact = exact_frac;
        }
    }
    print!("{}", table.render());
    println!();

    // ---- Part 2: overload arms. ----
    const CLIENTS: usize = 4;
    let serve_arm = |policy: OverloadPolicy| -> (Vec<ServeOutcome>, s3_engine::LoadStats, f64) {
        let engine = S3Engine::new(
            Arc::clone(&instance),
            EngineConfig::builder()
                .threads(1)
                .cache_capacity(0)
                .overload(Some(OverloadConfig { max_inflight: 1, policy }))
                .build(),
        );
        let barrier = Barrier::new(CLIENTS);
        let t0 = Instant::now();
        let outcomes = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        queries.iter().map(|q| engine.serve(q, None)).collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("client thread")).collect::<Vec<_>>()
        });
        (outcomes, engine.load_stats(), t0.elapsed().as_secs_f64())
    };

    let mut overload_table = Table::new(&[
        "policy",
        "arrivals",
        "admitted",
        "shed",
        "degraded",
        "answered exact",
        "q/s",
    ]);
    let arms: Vec<(&str, OverloadPolicy)> = vec![
        ("degrade", OverloadPolicy::DegradeAnytime { floor_budget: std::time::Duration::ZERO }),
        ("reject", OverloadPolicy::Reject),
    ];
    let mut degrade_finite = true;
    let mut degrade_shed = 0u64;
    let mut reject_accounted = true;
    for (label, policy) in arms {
        let (outcomes, stats, secs) = serve_arm(policy);
        let answered_exact = outcomes
            .iter()
            .filter_map(ServeOutcome::answer)
            .filter(|r| r.stats.quality.exact)
            .count();
        overload_table.row(vec![
            label.to_string(),
            outcomes.len().to_string(),
            stats.admitted.to_string(),
            stats.shed.to_string(),
            stats.degraded.to_string(),
            answered_exact.to_string(),
            format!("{:.0}", outcomes.len() as f64 / secs),
        ]);
        report
            .int(&format!("overload.{label}.arrivals"), outcomes.len() as u64)
            .int(&format!("overload.{label}.admitted"), stats.admitted)
            .int(&format!("overload.{label}.shed"), stats.shed)
            .int(&format!("overload.{label}.degraded"), stats.degraded);
        match label {
            "degrade" => {
                degrade_shed = stats.shed;
                degrade_finite = outcomes
                    .iter()
                    .all(|out| out.answer().is_some_and(|r| r.stats.quality.regret.is_finite()));
            }
            _ => {
                reject_accounted = stats.admitted + stats.shed == outcomes.len() as u64;
            }
        }
        println!("overload [{label}]: {stats}");
    }
    println!();
    print!("{}", overload_table.render());
    println!();

    report.write_and_announce();

    // ---- The CI soundness gates. ----
    for pair in recalls.windows(2) {
        assert!(
            pair[1].1 + 1e-9 >= pair[0].1,
            "GATE FAILED: recall dropped from {:.3} (cap {}) to {:.3} (cap {}) — \
             more budget must never hurt",
            pair[0].1,
            pair[0].0,
            pair[1].1,
            pair[1].0
        );
    }
    assert!(
        soundness_violations == 0,
        "GATE FAILED: {soundness_violations} answers reported certified regret \
         below the regret ground truth reveals"
    );
    assert!(
        uncapped_exact == 1.0,
        "GATE FAILED: uncapped arm only {uncapped_exact:.3} exact — must converge everywhere"
    );
    assert!(
        degrade_shed == 0 && degrade_finite,
        "GATE FAILED: DegradeAnytime shed {degrade_shed} arrivals or returned a \
         non-finite bound — it must answer everything with a certified bound"
    );
    assert!(reject_accounted, "GATE FAILED: Reject lost arrivals (admitted + shed != total)");
    println!(
        "anytime gates OK: recall monotone over {} caps, certified >= observed regret on \
         {} answers, uncapped fully exact, degrade answered all, reject accounted all",
        recalls.len(),
        queries.len() * caps.len()
    );
}
