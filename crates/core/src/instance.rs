//! The S3 instance: assembly of the social, structured and semantic layers
//! (paper §2), plus the derived query-time structures.

use crate::connections::{ConnectionIndex, TagInput};
use crate::ids::{TagId, TagSubject, UserId};
use s3_doc::{DocBuilder, DocNodeId, Forest, TreeId};
use s3_graph::{CompId, EdgeKind, GraphBuilder, NodeId, SocialGraph};
use s3_rdf::{TripleStore, UriId};
use s3_text::{Analyzer, KeywordId, Language, Vocabulary};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Construction-time record of a tag.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PendingTag {
    pub(crate) subject: TagSubject,
    pub(crate) author: UserId,
    pub(crate) keyword: Option<KeywordId>,
}

/// One entity event, in insertion order. Graph nodes are numbered by
/// replaying this log, so an instance extended incrementally (live
/// ingestion appends events) numbers its nodes exactly like a cold
/// [`InstanceBuilder::build`] of the same final data — the invariant behind
/// the live engine's byte-identity guarantee.
///
/// Retractions append `Dead*` events instead of erasing creation events:
/// dead entities keep their ids (and their graph nodes stay allocated as
/// permanent gaps), so nothing already handed out to callers ever
/// renumbers. Replaying the log therefore reconstructs both the entity
/// numbering *and* the tombstone sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuildEvent {
    /// `add_user` (users are numbered in event order).
    User,
    /// `add_document` (trees are numbered in event order).
    Tree,
    /// `add_tag` (tags are numbered in event order).
    Tag,
    /// `delete_user` (the id stays allocated; the node loses all edges).
    DeadUser(UserId),
    /// `delete_document` (likewise).
    DeadTree(TreeId),
    /// `delete_tag` (likewise; also pushed by cascades).
    DeadTag(TagId),
}

/// The builder's tombstone sets: entities deleted but never deallocated
/// (ids are stable forever). A dead entity keeps its graph node but loses
/// every edge, every content seed and every `con` contribution — it can
/// never be discovered, admitted or emitted again.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tombstones {
    pub(crate) users: HashSet<UserId>,
    pub(crate) trees: HashSet<TreeId>,
    pub(crate) tags: HashSet<TagId>,
}

impl Tombstones {
    pub(crate) fn user_alive(&self, u: UserId) -> bool {
        !self.users.contains(&u)
    }

    pub(crate) fn tree_alive(&self, t: TreeId) -> bool {
        !self.trees.contains(&t)
    }

    pub(crate) fn tag_alive(&self, t: TagId) -> bool {
        !self.tags.contains(&t)
    }

    pub(crate) fn doc_alive(&self, forest: &Forest, d: DocNodeId) -> bool {
        self.tree_alive(forest.tree_of(d))
    }

    /// The tombstoned graph nodes as a bit set over `graph`'s node ids.
    pub(crate) fn mark_nodes(
        &self,
        graph: &SocialGraph,
        user_nodes: &[NodeId],
        tag_nodes: &[NodeId],
    ) -> s3_graph::BitSet {
        let mut dead = s3_graph::BitSet::with_len(graph.num_nodes());
        for &u in &self.users {
            dead.set(user_nodes[u.index()].index());
        }
        for &t in &self.trees {
            for idx in graph.forest().tree_range(t) {
                let node = graph.node_of_frag(DocNodeId(idx as u32)).expect("registered");
                dead.set(node.index());
            }
        }
        for &t in &self.tags {
            dead.set(tag_nodes[t.index()].index());
        }
        dead
    }
}

/// What a batch of retractions actually killed (cascades included) and
/// physically unlinked — the delta [`InstanceBuilder::apply`] needs to
/// compute the retraction-affected components.
#[derive(Debug, Clone, Default)]
pub(crate) struct RetractionLog {
    pub(crate) dead_users: Vec<UserId>,
    pub(crate) dead_trees: Vec<TreeId>,
    pub(crate) dead_tags: Vec<TagId>,
    pub(crate) removed_social: usize,
    pub(crate) removed_comments: Vec<(TreeId, DocNodeId)>,
}

impl RetractionLog {
    pub(crate) fn is_empty(&self) -> bool {
        self.dead_users.is_empty()
            && self.dead_trees.is_empty()
            && self.dead_tags.is_empty()
            && self.removed_social == 0
            && self.removed_comments.is_empty()
    }
}

/// What one [`InstanceBuilder::compact`] reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// Tombstoned users dropped.
    pub dropped_users: usize,
    /// Tombstoned documents dropped.
    pub dropped_documents: usize,
    /// Tombstoned tags dropped.
    pub dropped_tags: usize,
    /// Forest nodes reclaimed (the dead trees' fragments).
    pub dropped_forest_nodes: usize,
    /// Event-log length before compaction (creations + tombstones).
    pub events_before: usize,
    /// Event-log length after (surviving creations only).
    pub events_after: usize,
}

impl std::fmt::Display for CompactionReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "compacted away {} users, {} docs ({} nodes), {} tags; event log {} -> {}",
            self.dropped_users,
            self.dropped_documents,
            self.dropped_forest_nodes,
            self.dropped_tags,
            self.events_before,
            self.events_after,
        )
    }
}

/// Remap a fragment id across a compaction: same offset inside its tree's
/// (re-frozen, offset-preserving — [`Forest::extract`]) node range.
fn remap_frag(old: &Forest, new: &Forest, tree_map: &[Option<TreeId>], f: DocNodeId) -> DocNodeId {
    let tree = old.tree_of(f);
    let offset = f.index() - old.tree_range(tree).start;
    let new_tree = tree_map[tree.index()].expect("fragment of a dead tree");
    DocNodeId((new.tree_range(new_tree).start + offset) as u32)
}

/// Mutable S3 instance under construction, following the paper's data
/// model: users + social edges (§2.2), documents (§2.3), tags and comments
/// (§2.4), RDF schema (§2.1) — then [`InstanceBuilder::build`] freezes
/// everything and derives the network graph, the saturation, the `con`
/// index and the component keyword sets.
///
/// For live serving the builder is *retained* instead of consumed:
/// [`InstanceBuilder::snapshot`] freezes the current data without giving
/// the builder up, and [`InstanceBuilder::apply`] (see [`crate::ingest`])
/// extends a previous snapshot with an [`crate::IngestBatch`] — appending
/// to, not rebuilding, the forest, vocabulary, graph and connection index.
#[derive(Debug)]
pub struct InstanceBuilder {
    pub(crate) analyzer: Analyzer,
    pub(crate) rdf: TripleStore,
    pub(crate) forest: Forest,
    pub(crate) num_users: u32,
    pub(crate) user_uris: HashMap<UriId, UserId>,
    pub(crate) social_edges: Vec<(UserId, UserId, f64)>,
    pub(crate) posters: Vec<(TreeId, UserId)>,
    pub(crate) comments: Vec<(TreeId, DocNodeId)>,
    pub(crate) tags: Vec<PendingTag>,
    pub(crate) events: Vec<BuildEvent>,
    pub(crate) dead: Tombstones,
    /// Has the RDF layer (store or dictionary) been touched since the
    /// last [`InstanceBuilder::snapshot`]? [`InstanceBuilder::apply`]
    /// `Arc`-shares the previous snapshot's saturated store, so schema
    /// changes require a fresh snapshot — apply refuses to silently drop
    /// them. A `Cell` because `snapshot(&self)` clears it.
    pub(crate) rdf_dirty: std::cell::Cell<bool>,
}

impl InstanceBuilder {
    /// Start an empty instance for a corpus language.
    pub fn new(language: Language) -> Self {
        InstanceBuilder {
            analyzer: Analyzer::new(language),
            rdf: TripleStore::new(),
            forest: Forest::new(),
            num_users: 0,
            user_uris: HashMap::new(),
            social_edges: Vec::new(),
            posters: Vec::new(),
            comments: Vec::new(),
            tags: Vec::new(),
            events: Vec::new(),
            dead: Tombstones::default(),
            rdf_dirty: std::cell::Cell::new(false),
        }
    }

    /// Analyze a text into content keywords (counted in corpus statistics).
    pub fn analyze(&mut self, text: &str) -> Vec<KeywordId> {
        self.analyzer.analyze(text)
    }

    /// The text analyzer (vocabulary access, query analysis…).
    pub fn analyzer_mut(&mut self) -> &mut Analyzer {
        &mut self.analyzer
    }

    /// The RDF store, for schema and knowledge-base triples. Marks the
    /// RDF layer dirty: a later [`Self::apply`] needs a fresh
    /// [`Self::snapshot`] first (see [`crate::ingest`]).
    pub fn rdf_mut(&mut self) -> &mut TripleStore {
        self.rdf_dirty.set(true);
        &mut self.rdf
    }

    /// Intern a keyword that is a URI (entity mention) and bridge it to the
    /// RDF dictionary, so keyword extension can see it. Returns the keyword.
    pub fn intern_entity_keyword(&mut self, uri: &str) -> KeywordId {
        self.rdf_dirty.set(true);
        self.rdf.dictionary_mut().intern(uri);
        self.analyzer.vocabulary_mut().intern(uri)
    }

    /// Add a user (§2.2: `u type S3:user`).
    pub fn add_user(&mut self) -> UserId {
        let id = UserId(self.num_users);
        self.num_users += 1;
        self.events.push(BuildEvent::User);
        id
    }

    /// Add a user identified by a URI, bridging them to the RDF layer: the
    /// triple `u type S3:user` is asserted, and at [`Self::build`] any
    /// `u' S3:social u''` triple between registered user URIs — asserted
    /// directly, or *derived* by saturation from a sub-property like the
    /// paper's `workedWith ≺sp S3:social`, possibly produced by a
    /// [`s3_rdf::Rule`] (§2.2 "Extensibility") — becomes a social edge.
    pub fn add_user_with_uri(&mut self, uri: &str) -> UserId {
        let id = self.add_user();
        self.rdf_dirty.set(true);
        let u = self.rdf.dictionary_mut().intern(uri);
        self.rdf.insert(u, s3_rdf::vocabulary::RDF_TYPE, s3_rdf::Term::Uri(voc_user()), 1.0);
        self.user_uris.insert(u, id);
        id
    }

    /// The user registered under an RDF URI, if any.
    pub fn user_by_uri(&self, uri: UriId) -> Option<UserId> {
        self.user_uris.get(&uri).copied()
    }

    /// Add a weighted social edge `from S3:social to` (§2.2). The higher
    /// the weight, the closer the users.
    pub fn add_social_edge(&mut self, from: UserId, to: UserId, weight: f64) {
        assert!(from.0 < self.num_users && to.0 < self.num_users, "unknown user");
        assert!(self.dead.user_alive(from) && self.dead.user_alive(to), "deleted user");
        assert!(weight > 0.0 && weight <= 1.0, "social weight must be in (0,1]");
        self.social_edges.push((from, to, weight));
    }

    /// Add a document tree (§2.3), optionally recording its poster
    /// (`d S3:postedBy u`).
    pub fn add_document(&mut self, doc: DocBuilder, poster: Option<UserId>) -> TreeId {
        let tree = self.forest.add_document(doc);
        self.events.push(BuildEvent::Tree);
        if let Some(u) = poster {
            assert!(u.0 < self.num_users, "unknown poster");
            assert!(self.dead.user_alive(u), "deleted poster");
            self.posters.push((tree, u));
        }
        tree
    }

    /// Resolve a builder-local node id to the global document node id.
    pub fn doc_node(&self, tree: TreeId, local: s3_doc::LocalNodeId) -> DocNodeId {
        self.forest.resolve(tree, local)
    }

    /// The root fragment of a document.
    pub fn doc_root(&self, tree: TreeId) -> DocNodeId {
        self.forest.root(tree)
    }

    /// Declare that document `comment` comments on fragment `target`
    /// (§2.4: `S3:commentsOn`; replies, reviews-of-the-same-item, etc. are
    /// specializations of it).
    pub fn add_comment_edge(&mut self, comment: TreeId, target: DocNodeId) {
        assert_ne!(self.forest.tree_of(target), comment, "a document cannot comment on itself");
        assert!(
            self.dead.tree_alive(comment) && self.dead.doc_alive(&self.forest, target),
            "deleted document"
        );
        self.comments.push((comment, target));
    }

    /// Add a tag (§2.4). `keyword = None` is an endorsement (like, +1,
    /// retweet). The subject may be a fragment or another tag (R4).
    pub fn add_tag(
        &mut self,
        subject: TagSubject,
        author: UserId,
        keyword: Option<KeywordId>,
    ) -> TagId {
        assert!(author.0 < self.num_users, "unknown author");
        assert!(self.dead.user_alive(author), "deleted author");
        match subject {
            TagSubject::Tag(t) => {
                assert!(t.index() < self.tags.len(), "tag subjects must already exist");
                assert!(self.dead.tag_alive(t), "deleted tag subject");
            }
            TagSubject::Frag(f) => {
                assert!(self.dead.doc_alive(&self.forest, f), "deleted tag subject");
            }
        }
        let id = TagId(self.tags.len() as u32);
        self.tags.push(PendingTag { subject, author, keyword });
        self.events.push(BuildEvent::Tag);
        id
    }

    /// Delete a user (tombstone: the id stays allocated, the node loses
    /// all edges). Cascades: the user's incident social edges, poster
    /// records and authored tags (recursively through tags-on-tags) are
    /// retracted too. Documents the user posted survive, merely losing
    /// their `S3:postedBy` edge. Unknown or already-deleted ids are
    /// idempotent no-ops (returns `false`) — the wire path relies on this
    /// when a replica receives a delete for an id it never saw.
    pub fn delete_user(&mut self, u: UserId) -> bool {
        let mut log = RetractionLog::default();
        self.retract_user(u, &mut log)
    }

    /// Delete a document tree (tombstone). Cascades: its poster record,
    /// every comment edge touching it (either side) and every tag on any
    /// of its fragments (recursively) are retracted. Returns `false` on
    /// unknown or already-deleted ids (idempotent no-op).
    pub fn delete_document(&mut self, tree: TreeId) -> bool {
        let mut log = RetractionLog::default();
        self.retract_document(tree, &mut log)
    }

    /// Delete a tag (tombstone). Cascades: tags whose subject is this tag
    /// die with it, recursively. Returns `false` on unknown or
    /// already-deleted ids (idempotent no-op).
    pub fn delete_tag(&mut self, t: TagId) -> bool {
        let mut log = RetractionLog::default();
        self.retract_tag(t, &mut log)
    }

    /// Remove every explicit social edge `from → to` (derived edges from
    /// RDF triples are not touched — retract the triple instead). Returns
    /// how many edges were removed (0 is an idempotent no-op).
    pub fn remove_social_edge(&mut self, from: UserId, to: UserId) -> usize {
        let before = self.social_edges.len();
        self.social_edges.retain(|&(a, b, _)| !(a == from && b == to));
        before - self.social_edges.len()
    }

    /// Remove every `comment S3:commentsOn target` edge. Returns how many
    /// were removed (0 is an idempotent no-op).
    pub fn remove_comment_edge(&mut self, comment: TreeId, target: DocNodeId) -> usize {
        let mut log = RetractionLog::default();
        self.retract_comment_edge(comment, target, &mut log);
        log.removed_comments.len()
    }

    /// Is this user deleted?
    pub fn user_is_deleted(&self, u: UserId) -> bool {
        !self.dead.user_alive(u)
    }

    /// Is this document deleted?
    pub fn document_is_deleted(&self, tree: TreeId) -> bool {
        !self.dead.tree_alive(tree)
    }

    /// Is this tag deleted?
    pub fn tag_is_deleted(&self, t: TagId) -> bool {
        !self.dead.tag_alive(t)
    }

    /// Tombstone counts `(users, documents, tags)`.
    pub fn dead_counts(&self) -> (usize, usize, usize) {
        (self.dead.users.len(), self.dead.trees.len(), self.dead.tags.len())
    }

    /// Rebuild a dense, tombstone-free builder by replaying the surviving
    /// events in their original interleaving. The compacted builder is
    /// exactly what a cold build of the surviving data produces — same
    /// event order, same (renumbered) ids, same graph — so its snapshot
    /// answers queries identically to one built from scratch without the
    /// deleted entities. The analyzer (keyword ids stay stable) and the
    /// RDF store are carried over unchanged.
    ///
    /// Surviving entities are **renumbered densely**: external holders of
    /// old `UserId`/`TreeId`/`TagId`/`DocNodeId` values must re-resolve
    /// after a compaction (the serving layer invalidates globally for
    /// this reason). Runs entirely off the serving path — `&self`.
    pub fn compact(&self) -> (InstanceBuilder, CompactionReport) {
        let mut out = InstanceBuilder::new(self.analyzer.language());
        out.analyzer =
            Analyzer::from_parts(self.analyzer.language(), self.analyzer.vocabulary().clone());
        out.rdf = self.rdf.clone();

        let mut user_map: Vec<Option<UserId>> = vec![None; self.num_users as usize];
        let mut tree_map: Vec<Option<TreeId>> = vec![None; self.forest.num_trees()];
        let mut tag_map: Vec<Option<TagId>> = vec![None; self.tags.len()];
        let (mut users, mut trees, mut tags) = (0u32, 0u32, 0u32);
        for &ev in &self.events {
            match ev {
                BuildEvent::User => {
                    let old = UserId(users);
                    users += 1;
                    if self.dead.user_alive(old) {
                        user_map[old.index()] = Some(out.add_user());
                    }
                }
                BuildEvent::Tree => {
                    let old = TreeId(trees);
                    trees += 1;
                    if self.dead.tree_alive(old) {
                        let new = out.forest.add_document(self.forest.extract(old));
                        out.events.push(BuildEvent::Tree);
                        tree_map[old.index()] = Some(new);
                    }
                }
                BuildEvent::Tag => {
                    let old = TagId(tags);
                    tags += 1;
                    if self.dead.tag_alive(old) {
                        let rec = &self.tags[old.index()];
                        // Cascades keep live tags closed over live
                        // subjects and authors, so the remaps are total.
                        let subject = match rec.subject {
                            TagSubject::Frag(f) => TagSubject::Frag(remap_frag(
                                &self.forest,
                                &out.forest,
                                &tree_map,
                                f,
                            )),
                            TagSubject::Tag(b) => {
                                TagSubject::Tag(tag_map[b.index()].expect("live tag on a dead tag"))
                            }
                        };
                        let author =
                            user_map[rec.author.index()].expect("live tag by a dead author");
                        tag_map[old.index()] = Some(TagId(out.tags.len() as u32));
                        out.tags.push(PendingTag { subject, author, keyword: rec.keyword });
                        out.events.push(BuildEvent::Tag);
                    }
                }
                BuildEvent::DeadUser(_) | BuildEvent::DeadTree(_) | BuildEvent::DeadTag(_) => {}
            }
        }

        // Relational state holds only live endpoints (retractions pruned
        // eagerly), so every remap below is total; list order — which
        // freeze() preserves into edge order — is kept.
        out.user_uris = self
            .user_uris
            .iter()
            .map(|(&uri, &u)| (uri, user_map[u.index()].expect("uri of a dead user")))
            .collect();
        out.social_edges = self
            .social_edges
            .iter()
            .map(|&(a, b, w)| {
                (
                    user_map[a.index()].expect("social edge from a dead user"),
                    user_map[b.index()].expect("social edge to a dead user"),
                    w,
                )
            })
            .collect();
        out.posters = self
            .posters
            .iter()
            .map(|&(t, u)| {
                (
                    tree_map[t.index()].expect("poster of a dead tree"),
                    user_map[u.index()].expect("dead poster"),
                )
            })
            .collect();
        out.comments = self
            .comments
            .iter()
            .map(|&(c, tgt)| {
                (
                    tree_map[c.index()].expect("comment from a dead tree"),
                    remap_frag(&self.forest, &out.forest, &tree_map, tgt),
                )
            })
            .collect();

        let report = CompactionReport {
            dropped_users: self.dead.users.len(),
            dropped_documents: self.dead.trees.len(),
            dropped_tags: self.dead.tags.len(),
            dropped_forest_nodes: self.forest.num_nodes() - out.forest.num_nodes(),
            events_before: self.events.len(),
            events_after: out.events.len(),
        };
        (out, report)
    }

    pub(crate) fn retract_user(&mut self, u: UserId, log: &mut RetractionLog) -> bool {
        if u.index() >= self.num_users as usize || !self.dead.users.insert(u) {
            return false;
        }
        self.events.push(BuildEvent::DeadUser(u));
        log.dead_users.push(u);
        self.user_uris.retain(|_, id| *id != u);
        let before = self.social_edges.len();
        self.social_edges.retain(|&(a, b, _)| a != u && b != u);
        log.removed_social += before - self.social_edges.len();
        self.posters.retain(|&(_, p)| p != u);
        // Cascade: tags the user authored die with them (deterministic
        // index-order scan; cascades may recurse through tags-on-tags).
        let authored: Vec<TagId> = self
            .tags
            .iter()
            .enumerate()
            .filter(|&(i, t)| t.author == u && self.dead.tag_alive(TagId(i as u32)))
            .map(|(i, _)| TagId(i as u32))
            .collect();
        for t in authored {
            self.retract_tag(t, log);
        }
        true
    }

    pub(crate) fn retract_document(&mut self, tree: TreeId, log: &mut RetractionLog) -> bool {
        if tree.index() >= self.forest.num_trees() || !self.dead.trees.insert(tree) {
            return false;
        }
        self.events.push(BuildEvent::DeadTree(tree));
        log.dead_trees.push(tree);
        self.posters.retain(|&(t, _)| t != tree);
        // Comment edges touching the tree on either side vanish; both
        // endpoints are logged so apply() can flag the split-off parts.
        let forest = &self.forest;
        let removed: Vec<(TreeId, DocNodeId)> = self
            .comments
            .iter()
            .copied()
            .filter(|&(c, tgt)| c == tree || forest.tree_of(tgt) == tree)
            .collect();
        self.comments.retain(|&(c, tgt)| c != tree && forest.tree_of(tgt) != tree);
        log.removed_comments.extend(removed);
        // Cascade: tags on any fragment of the tree die.
        let range = self.forest.tree_range(tree);
        let on_tree: Vec<TagId> = self
            .tags
            .iter()
            .enumerate()
            .filter(|&(i, t)| {
                self.dead.tag_alive(TagId(i as u32))
                    && matches!(t.subject, TagSubject::Frag(f) if range.contains(&f.index()))
            })
            .map(|(i, _)| TagId(i as u32))
            .collect();
        for t in on_tree {
            self.retract_tag(t, log);
        }
        true
    }

    pub(crate) fn retract_tag(&mut self, t: TagId, log: &mut RetractionLog) -> bool {
        if t.index() >= self.tags.len() || !self.dead.tag_alive(t) {
            return false;
        }
        // Worklist instead of recursion: tag-on-tag chains can be long.
        let mut stack = vec![t];
        while let Some(t) = stack.pop() {
            if !self.dead.tags.insert(t) {
                continue;
            }
            self.events.push(BuildEvent::DeadTag(t));
            log.dead_tags.push(t);
            for (i, tag) in self.tags.iter().enumerate() {
                let id = TagId(i as u32);
                if self.dead.tag_alive(id) && tag.subject == TagSubject::Tag(t) {
                    stack.push(id);
                }
            }
        }
        true
    }

    pub(crate) fn retract_comment_edge(
        &mut self,
        comment: TreeId,
        target: DocNodeId,
        log: &mut RetractionLog,
    ) {
        let removed: Vec<(TreeId, DocNodeId)> = self
            .comments
            .iter()
            .copied()
            .filter(|&(c, tgt)| c == comment && tgt == target)
            .collect();
        self.comments.retain(|&(c, tgt)| !(c == comment && tgt == target));
        log.removed_comments.extend(removed);
    }

    /// Current number of users.
    pub fn num_users(&self) -> usize {
        self.num_users as usize
    }

    /// [`Self::build`], plus a balanced assignment of the frozen instance's
    /// content components to `num_shards` shards — the partition-aware
    /// build path behind sharded serving (`s3-engine`'s `ShardedEngine`).
    pub fn build_sharded(
        self,
        num_shards: usize,
    ) -> (S3Instance, crate::partition::ComponentPartition) {
        let instance = self.build();
        let partition = crate::partition::ComponentPartition::balanced(&instance, num_shards);
        (instance, partition)
    }

    /// Freeze the instance: saturate the RDF graph, build the network graph
    /// (with inverse edges, normalization weights and components), run the
    /// `con(d,k)` fixpoint, and bridge keywords to RDF URIs.
    pub fn build(self) -> S3Instance {
        let InstanceBuilder {
            analyzer,
            mut rdf,
            forest,
            num_users: _,
            user_uris,
            social_edges,
            posters,
            comments,
            tags,
            events,
            dead,
            rdf_dirty: _,
        } = self;
        rdf.saturate();
        let language = analyzer.language();
        let vocabulary = analyzer.into_vocabulary();
        freeze(
            language,
            vocabulary,
            rdf,
            forest,
            user_uris,
            social_edges,
            posters,
            comments,
            tags,
            events,
            dead,
        )
    }

    /// [`Self::build`] without consuming the builder: freezes a snapshot of
    /// the current data (cloning it) and leaves the builder free to keep
    /// growing. This is the cold-rebuild reference the live-ingestion
    /// property tests compare against, and the initial snapshot of a live
    /// engine.
    pub fn snapshot(&self) -> S3Instance {
        self.rdf_dirty.set(false);
        let mut rdf = self.rdf.clone();
        rdf.saturate();
        freeze(
            self.analyzer.language(),
            self.analyzer.vocabulary().clone(),
            rdf,
            self.forest.clone(),
            self.user_uris.clone(),
            self.social_edges.clone(),
            self.posters.clone(),
            self.comments.clone(),
            self.tags.clone(),
            self.events.clone(),
            self.dead.clone(),
        )
    }
}

/// §2.2 extensibility: `S3:social` triples between registered user URIs
/// (direct, or derived through `≺sp` by saturation) materialize as social
/// edges, deduplicated against the explicit ones (which win) and each
/// other. Deterministic in the store's triple order, so an incremental
/// rebuild derives the same list a cold build would.
pub(crate) fn derived_social_edges(
    rdf: &TripleStore,
    user_uris: &HashMap<UriId, UserId>,
    explicit: &[(UserId, UserId, f64)],
) -> Vec<(UserId, UserId, f64)> {
    if user_uris.is_empty() {
        return Vec::new();
    }
    let mut seen: HashSet<(UserId, UserId)> = explicit.iter().map(|&(a, b, _)| (a, b)).collect();
    let mut out = Vec::new();
    for t in rdf.with_property(s3_rdf::vocabulary::S3_SOCIAL) {
        let (Some(&a), Some(b)) = (
            user_uris.get(&t.triple.s),
            t.triple.o.as_uri().and_then(|o| user_uris.get(&o)).copied(),
        ) else {
            continue;
        };
        if a != b && t.weight > 0.0 && seen.insert((a, b)) {
            out.push((a, b, t.weight.min(1.0)));
        }
    }
    out
}

/// The frozen network graph plus the node tables derived while wiring it.
pub(crate) struct GraphParts {
    pub(crate) graph: SocialGraph,
    pub(crate) user_nodes: Vec<NodeId>,
    pub(crate) tag_nodes: Vec<NodeId>,
    pub(crate) poster_of: HashMap<TreeId, UserId>,
    pub(crate) comment_pairs: Vec<(DocNodeId, DocNodeId)>,
}

/// Build the network graph by replaying the entity-creation event log
/// (nodes are numbered in insertion order — each tree's fragments stay
/// contiguous in pre-order) and then adding edges grouped by kind in
/// raw-list order. Replaying base events plus delta events yields the same
/// node numbering and edge order a cold build of the final data produces —
/// the determinism the live engine's byte-identity rests on.
/// `prev_comps` selects stable component ids (the incremental path).
///
/// Dead entities still allocate their nodes (ids are permanent) but
/// contribute no edges: social edges, poster records and comment edges of
/// dead entities were physically removed at retraction time, and dead
/// tags' `HasSubject`/`HasAuthor` edges are skipped here.
#[allow(clippy::too_many_arguments)] // one positional slice per builder side table
pub(crate) fn build_graph(
    events: &[BuildEvent],
    forest: Forest,
    social_edges: &[(UserId, UserId, f64)],
    posters: &[(TreeId, UserId)],
    comments: &[(TreeId, DocNodeId)],
    tags: &[PendingTag],
    dead_tags: &HashSet<TagId>,
    prev_comps: Option<&s3_graph::Components>,
) -> GraphParts {
    let mut gb = GraphBuilder::new(forest);
    let mut user_nodes: Vec<NodeId> = Vec::new();
    let mut tag_nodes: Vec<NodeId> = Vec::new();
    let mut next_tree = 0u32;
    for ev in events {
        match ev {
            BuildEvent::User => user_nodes.push(gb.add_user()),
            BuildEvent::Tree => {
                gb.register_tree(TreeId(next_tree));
                next_tree += 1;
            }
            BuildEvent::Tag => tag_nodes.push(gb.add_tag()),
            BuildEvent::DeadUser(_) | BuildEvent::DeadTree(_) | BuildEvent::DeadTag(_) => {}
        }
    }

    for &(from, to, w) in social_edges {
        gb.add_edge(user_nodes[from.index()], user_nodes[to.index()], EdgeKind::Social, w);
    }
    let mut poster_of: HashMap<TreeId, UserId> = HashMap::new();
    for &(tree, u) in posters {
        let root = gb.forest().root(tree);
        let root_node = gb.node_of_frag(root).expect("registered");
        gb.add_edge(root_node, user_nodes[u.index()], EdgeKind::PostedBy, 1.0);
        poster_of.insert(tree, u);
    }
    let mut comment_pairs: Vec<(DocNodeId, DocNodeId)> = Vec::new();
    for &(tree, target) in comments {
        let root = gb.forest().root(tree);
        let root_node = gb.node_of_frag(root).expect("registered");
        let target_node = gb.node_of_frag(target).expect("registered");
        gb.add_edge(root_node, target_node, EdgeKind::CommentsOn, 1.0);
        comment_pairs.push((root, target));
    }
    for (i, t) in tags.iter().enumerate() {
        if dead_tags.contains(&TagId(i as u32)) {
            continue;
        }
        let tag_node = tag_nodes[i];
        let subject_node = match t.subject {
            TagSubject::Frag(f) => gb.node_of_frag(f).expect("registered"),
            TagSubject::Tag(b) => tag_nodes[b.index()],
        };
        gb.add_edge(tag_node, subject_node, EdgeKind::HasSubject, 1.0);
        gb.add_edge(tag_node, user_nodes[t.author.index()], EdgeKind::HasAuthor, 1.0);
    }
    let graph = match prev_comps {
        Some(prev) => gb.build_extending(prev),
        None => gb.build(),
    };
    GraphParts { graph, user_nodes, tag_nodes, poster_of, comment_pairs }
}

/// The `con`-index inputs of the stored tags.
pub(crate) fn tag_inputs(tags: &[PendingTag], user_nodes: &[NodeId]) -> Vec<TagInput> {
    tags.iter()
        .map(|t| TagInput {
            subject: t.subject,
            author_node: user_nodes[t.author.index()],
            keyword: t.keyword,
        })
        .collect()
}

/// The keyword ↔ URI bridge for vocabulary entries `from_kw..` (entity
/// mentions are interned in both the vocabulary and the RDF dictionary).
pub(crate) fn keyword_bridges(
    vocabulary: &Vocabulary,
    rdf: &TripleStore,
    from_kw: usize,
    kw_to_uri: &mut HashMap<KeywordId, UriId>,
    uri_to_kw: &mut HashMap<UriId, KeywordId>,
) {
    for idx in from_kw..vocabulary.len() {
        let kw = KeywordId(idx as u32);
        if let Some(uri) = rdf.dictionary().get(vocabulary.text(kw)) {
            kw_to_uri.insert(kw, uri);
            uri_to_kw.insert(uri, kw);
        }
    }
}

/// The frozen tags as [`TagRecord`]s.
pub(crate) fn tag_records(tags: &[PendingTag], tag_nodes: &[NodeId]) -> Vec<TagRecord> {
    tags.iter()
        .enumerate()
        .map(|(i, t)| TagRecord {
            node: tag_nodes[i],
            subject: t.subject,
            author: t.author,
            keyword: t.keyword,
        })
        .collect()
}

/// The full cold freeze shared by [`InstanceBuilder::build`] and
/// [`InstanceBuilder::snapshot`]: derive rdf-asserted social edges, replay
/// the graph, run the `con` fixpoint over everything alive, bridge
/// keywords. `rdf` must already be saturated. Dead entities keep their
/// node ids but seed nothing — a cold freeze of a tombstoned builder is
/// the byte-identity reference for the live mutation path.
#[allow(clippy::too_many_arguments)] // one caller-pair, builder-shaped data
fn freeze(
    language: Language,
    vocabulary: Vocabulary,
    rdf: TripleStore,
    forest: Forest,
    user_uris: HashMap<UriId, UserId>,
    mut social_edges: Vec<(UserId, UserId, f64)>,
    posters: Vec<(TreeId, UserId)>,
    comments: Vec<(TreeId, DocNodeId)>,
    tags: Vec<PendingTag>,
    events: Vec<BuildEvent>,
    dead: Tombstones,
) -> S3Instance {
    social_edges.extend(derived_social_edges(&rdf, &user_uris, &social_edges));
    let GraphParts { graph, user_nodes, tag_nodes, poster_of, comment_pairs } =
        build_graph(&events, forest, &social_edges, &posters, &comments, &tags, &dead.tags, None);

    // Connection index (seeker-independent); dead documents and tags are
    // excluded from the fixpoint, so their entries stay empty.
    let inputs = tag_inputs(&tags, &user_nodes);
    let conn_index = ConnectionIndex::build_tombstoned(
        graph.forest(),
        &inputs,
        &comment_pairs,
        |d| graph.node_of_frag(d).expect("registered"),
        |d| dead.doc_alive(graph.forest(), d),
        |t| dead.tag_alive(t),
    );

    // Keyword ↔ URI bridge (entity mentions are interned in both).
    let mut kw_to_uri: HashMap<KeywordId, UriId> = HashMap::new();
    let mut uri_to_kw: HashMap<UriId, KeywordId> = HashMap::new();
    keyword_bridges(&vocabulary, &rdf, 0, &mut kw_to_uri, &mut uri_to_kw);

    // Component → keyword sets (the §5.2 pruning test "each keyword is
    // present in every component").
    let mut comp_keywords: Vec<HashSet<KeywordId>> = vec![HashSet::new(); graph.components().len()];
    for idx in 0..graph.forest().num_nodes() {
        let d = DocNodeId(idx as u32);
        let node = graph.node_of_frag(d).expect("registered");
        let comp = graph.components().component_of(node);
        comp_keywords[comp.index()].extend(conn_index.keywords_of(d));
    }

    let tag_records = tag_records(&tags, &tag_nodes);
    let dead_nodes = dead.mark_nodes(&graph, &user_nodes, &tag_nodes);

    S3Instance {
        language,
        vocabulary,
        rdf: Arc::new(rdf),
        graph,
        user_nodes,
        tag_records,
        poster_of,
        comment_pairs,
        conn_index,
        comp_keywords,
        kw_to_uri,
        uri_to_kw,
        dead_nodes,
        ext_cache: Mutex::new(HashMap::new()),
        smax_cache: Mutex::new(HashMap::new()),
    }
}

fn voc_user() -> UriId {
    s3_rdf::vocabulary::S3_USER
}

/// Cached `Smax` tables keyed by the score's `(γ, η)` bit patterns.
type SmaxCache = Mutex<HashMap<(u64, u64), Arc<HashMap<KeywordId, f64>>>>;

/// A frozen tag.
#[derive(Debug, Clone, Copy)]
pub struct TagRecord {
    /// The tag's graph node.
    pub node: NodeId,
    /// What it annotates.
    pub subject: TagSubject,
    /// Its author.
    pub author: UserId,
    /// Its keyword (`None` = endorsement).
    pub keyword: Option<KeywordId>,
}

/// Frozen, query-ready S3 instance.
#[derive(Debug)]
pub struct S3Instance {
    pub(crate) language: Language,
    pub(crate) vocabulary: Vocabulary,
    /// Saturated; `Arc`-shared so an incremental snapshot whose batch
    /// carries no schema change reuses the store instead of cloning it.
    pub(crate) rdf: Arc<TripleStore>,
    pub(crate) graph: SocialGraph,
    pub(crate) user_nodes: Vec<NodeId>,
    pub(crate) tag_records: Vec<TagRecord>,
    pub(crate) poster_of: HashMap<TreeId, UserId>,
    pub(crate) comment_pairs: Vec<(DocNodeId, DocNodeId)>,
    pub(crate) conn_index: ConnectionIndex,
    pub(crate) comp_keywords: Vec<HashSet<KeywordId>>,
    pub(crate) kw_to_uri: HashMap<KeywordId, UriId>,
    pub(crate) uri_to_kw: HashMap<UriId, KeywordId>,
    /// Tombstoned graph nodes (dead users/fragments/tags). Dead nodes have
    /// no edges and no `con` entries, so discovery, admission and emission
    /// skip them structurally; this set makes the invariant checkable.
    pub(crate) dead_nodes: s3_graph::BitSet,
    pub(crate) ext_cache: Mutex<HashMap<KeywordId, Arc<Vec<KeywordId>>>>,
    pub(crate) smax_cache: SmaxCache,
}

impl S3Instance {
    /// The corpus vocabulary (keyword texts and frequencies).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// The saturated RDF store.
    pub fn rdf(&self) -> &TripleStore {
        &self.rdf
    }

    /// The network graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// The document forest.
    pub fn forest(&self) -> &Forest {
        self.graph.forest()
    }

    /// The `con(d,k)` index.
    pub fn connections(&self) -> &ConnectionIndex {
        &self.conn_index
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.user_nodes.len()
    }

    /// Number of tags.
    pub fn num_tags(&self) -> usize {
        self.tag_records.len()
    }

    /// Number of documents (trees).
    pub fn num_documents(&self) -> usize {
        self.forest().num_trees()
    }

    /// The graph node of a user.
    pub fn user_node(&self, u: UserId) -> NodeId {
        self.user_nodes[u.index()]
    }

    /// The frozen tags.
    pub fn tags(&self) -> &[TagRecord] {
        &self.tag_records
    }

    /// The poster of a document, if recorded.
    pub fn poster_of(&self, tree: TreeId) -> Option<UserId> {
        self.poster_of.get(&tree).copied()
    }

    /// The `(comment root, commented fragment)` pairs.
    pub fn comment_pairs(&self) -> &[(DocNodeId, DocNodeId)] {
        &self.comment_pairs
    }

    /// Keywords a component is connected to (the §5.2 pruning sets).
    pub fn component_keywords(&self, comp: CompId) -> &HashSet<KeywordId> {
        &self.comp_keywords[comp.index()]
    }

    /// `Ext(k)` at the keyword level (Definition 2.1): the keyword itself
    /// plus every specialization/instance from the saturated RDF graph that
    /// also exists as a corpus keyword. Cached.
    pub fn expand_keyword(&self, k: KeywordId) -> Arc<Vec<KeywordId>> {
        if let Some(hit) = self.ext_cache.lock().expect("ext cache poisoned").get(&k) {
            return Arc::clone(hit);
        }
        let mut out = vec![k];
        if let Some(&uri) = self.kw_to_uri.get(&k) {
            for b in self.rdf.extension(uri) {
                if b == uri {
                    continue;
                }
                if let Some(&kw) = self.uri_to_kw.get(&b) {
                    if !out.contains(&kw) {
                        out.push(kw);
                    }
                }
            }
        }
        let arc = Arc::new(out);
        self.ext_cache.lock().expect("ext cache poisoned").insert(k, Arc::clone(&arc));
        arc
    }

    /// The `Smax` table for a concrete S3k score, cached per `(γ, η)`.
    /// `S3Instance::search` builds a fresh engine per call; without this
    /// cache, every such call re-ran the full `Smax` aggregation over the
    /// connection index.
    pub fn smax_for(&self, score: &crate::score::S3kScore) -> Arc<HashMap<KeywordId, f64>> {
        use crate::score::ScoreModel;
        let key = (score.gamma.to_bits(), score.eta.to_bits());
        if let Some(hit) = self.smax_cache.lock().expect("smax cache poisoned").get(&key) {
            return Arc::clone(hit);
        }
        let table = Arc::new(self.conn_index.smax_table_with(|t, d| score.structural_weight(t, d)));
        self.smax_cache.lock().expect("smax cache poisoned").insert(key, Arc::clone(&table));
        table
    }

    /// Is a graph node tombstoned (a deleted user, fragment of a deleted
    /// document, or deleted tag)? Dead nodes keep their ids but have no
    /// edges and no connections — they can never appear in results.
    pub fn node_is_dead(&self, n: NodeId) -> bool {
        self.dead_nodes.get(n.index())
    }

    /// Number of tombstoned graph nodes.
    pub fn num_dead_nodes(&self) -> usize {
        self.dead_nodes.count_ones()
    }

    /// Fraction of graph nodes that are tombstoned — the signal compaction
    /// trigger policies watch (`s3-engine`'s `CompactionPolicy`).
    pub fn dead_fraction(&self) -> f64 {
        if self.graph.num_nodes() == 0 {
            0.0
        } else {
            self.num_dead_nodes() as f64 / self.graph.num_nodes() as f64
        }
    }

    /// The corpus language.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Convenience: analyze a query string into keywords of this instance's
    /// vocabulary (unknown words yield no keyword — they cannot match).
    pub fn query_keywords(&self, text: &str) -> Vec<KeywordId> {
        // Re-tokenize with a throwaway analyzer sharing no state, then map
        // through the frozen vocabulary.
        let mut scratch = Analyzer::new(self.language);
        let mut out = Vec::new();
        for kw in scratch.analyze_query(text) {
            let t = scratch.vocabulary().text(kw).to_string();
            if let Some(id) = self.vocabulary.get(&t) {
                out.push(id);
            }
        }
        out
    }

    /// Run an S3k search (see [`crate::search`]).
    pub fn search(
        &self,
        query: &crate::search::Query,
        config: &crate::search::SearchConfig,
    ) -> crate::search::TopKResult {
        crate::search::S3kEngine::new(self, config.clone()).run(query)
    }

    /// Instance statistics in the spirit of the paper's Figure 4.
    pub fn stats(&self) -> InstanceStats {
        let forest = self.forest();
        InstanceStats {
            users: self.num_users(),
            social_edges: self
                .graph
                .nodes()
                .filter(|n| self.graph.kind(*n).is_user())
                .map(|n| self.graph.out_edges(n).filter(|(_, k, _)| *k == EdgeKind::Social).count())
                .sum(),
            documents: forest.num_trees(),
            fragments_non_root: forest.num_nodes() - forest.num_trees(),
            tags: self.num_tags(),
            keywords: forest.total_keywords(),
            distinct_keywords: self.vocabulary.len(),
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            connections: self.conn_index.len(),
            dead_nodes: self.num_dead_nodes(),
        }
    }
}

/// Counters mirroring the paper's Figure 4 statistics tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceStats {
    /// Number of users.
    pub users: usize,
    /// Number of directed `S3:social` edges.
    pub social_edges: usize,
    /// Number of documents (trees).
    pub documents: usize,
    /// Non-root fragments.
    pub fragments_non_root: usize,
    /// Number of tags.
    pub tags: usize,
    /// Total keyword occurrences in document content.
    pub keywords: usize,
    /// Distinct keywords in the vocabulary.
    pub distinct_keywords: usize,
    /// Graph nodes (users + fragments + tags).
    pub nodes: usize,
    /// Directed network edges (inverses included).
    pub edges: usize,
    /// `con` tuples in the index.
    pub connections: usize,
    /// Tombstoned graph nodes (kept allocated; reclaimed derived-state-wise
    /// by compaction).
    pub dead_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> S3Instance {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        b.add_social_edge(u1, u0, 1.0);
        let kws = b.analyze("university degrees are great");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        let t = b.add_document(doc, Some(u0));
        let root = b.doc_root(t);
        let kw = b.analyzer_mut().vocabulary_mut().intern("univers");
        b.add_tag(TagSubject::Frag(root), u1, Some(kw));
        b.build()
    }

    #[test]
    fn build_wires_everything() {
        let inst = tiny();
        assert_eq!(inst.num_users(), 2);
        assert_eq!(inst.num_documents(), 1);
        assert_eq!(inst.num_tags(), 1);
        let stats = inst.stats();
        assert_eq!(stats.users, 2);
        assert_eq!(stats.social_edges, 1);
        assert!(stats.edges >= 1 + 2 + 4); // social + postedBy± + tag edges±
        assert!(stats.connections > 0);
    }

    #[test]
    fn component_keywords_cover_doc_keywords() {
        let inst = tiny();
        let root = inst.forest().root(s3_doc::TreeId(0));
        let node = inst.graph().node_of_frag(root).unwrap();
        let comp = inst.graph().components().component_of(node);
        let kws = inst.component_keywords(comp);
        let univers = inst.vocabulary().get("univers").unwrap();
        assert!(kws.contains(&univers));
    }

    #[test]
    fn expand_keyword_without_ontology_is_identity() {
        let inst = tiny();
        let k = inst.vocabulary().get("great").unwrap();
        assert_eq!(inst.expand_keyword(k).as_slice(), &[k]);
    }

    #[test]
    fn expand_keyword_with_ontology() {
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        // Content mentions the entity URI "ex:MS" and the word "degree".
        let ms = b.intern_entity_keyword("ex:MS");
        let degree = b.intern_entity_keyword("ex:Degree");
        let (ms_uri, deg_uri) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern("ex:MS"), d.intern("ex:Degree"))
        };
        b.rdf_mut().insert(
            ms_uri,
            s3_rdf::vocabulary::RDFS_SUBCLASS_OF,
            s3_rdf::Term::Uri(deg_uri),
            1.0,
        );
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), vec![ms]);
        b.add_document(doc, Some(u));
        let inst = b.build();
        let ext = inst.expand_keyword(degree);
        assert!(ext.contains(&ms), "Ext(degree) must contain the M.S. specialization");
        assert_eq!(ext[0], degree);
    }

    #[test]
    fn rdf_social_triples_become_edges() {
        // §2.2 extensibility: a workedWith ≺sp S3:social triple between
        // URI-registered users materializes as a graph edge at build.
        let mut b = InstanceBuilder::new(Language::English);
        let ana = b.add_user_with_uri("ex:ana");
        let bob = b.add_user_with_uri("ex:bob");
        {
            let rdf = b.rdf_mut();
            let ww = rdf.dictionary_mut().intern("ex:workedWith");
            rdf.insert(
                ww,
                s3_rdf::vocabulary::RDFS_SUBPROPERTY_OF,
                s3_rdf::Term::Uri(s3_rdf::vocabulary::S3_SOCIAL),
                1.0,
            );
            let (a, b_) =
                (rdf.dictionary().get("ex:ana").unwrap(), rdf.dictionary().get("ex:bob").unwrap());
            rdf.insert(a, ww, s3_rdf::Term::Uri(b_), 1.0);
        }
        let inst = b.build();
        let ana_node = inst.user_node(ana);
        let bob_node = inst.user_node(bob);
        let found = inst
            .graph()
            .out_edges(ana_node)
            .any(|(t, k, w)| t == bob_node && k == EdgeKind::Social && w == 1.0);
        assert!(found, "derived social edge missing");
    }

    #[test]
    fn explicit_edges_take_precedence_over_rdf_duplicates() {
        let mut b = InstanceBuilder::new(Language::English);
        let ana = b.add_user_with_uri("ex:ana");
        let bob = b.add_user_with_uri("ex:bob");
        b.add_social_edge(ana, bob, 0.4);
        {
            let rdf = b.rdf_mut();
            let (a, b_) =
                (rdf.dictionary().get("ex:ana").unwrap(), rdf.dictionary().get("ex:bob").unwrap());
            rdf.insert(a, s3_rdf::vocabulary::S3_SOCIAL, s3_rdf::Term::Uri(b_), 0.9);
        }
        let inst = b.build();
        let ana_node = inst.user_node(ana);
        let social: Vec<f64> = inst
            .graph()
            .out_edges(ana_node)
            .filter(|(_, k, _)| *k == EdgeKind::Social)
            .map(|(_, _, w)| w)
            .collect();
        assert_eq!(social, vec![0.4], "the explicit edge wins; no duplicate");
    }

    #[test]
    fn build_sharded_partitions_all_documents() {
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        for i in 0..6 {
            let kws = b.analyze(&format!("post number {i}"));
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            b.add_document(doc, Some(u));
        }
        let (inst, partition) = b.build_sharded(3);
        assert_eq!(partition.num_shards(), 3);
        assert_eq!(partition.num_components(), inst.graph().components().len());
        let total: usize = (0..3).map(|s| partition.doc_count(s)).sum();
        assert_eq!(total, inst.num_documents());
    }

    #[test]
    fn query_keywords_map_through_frozen_vocabulary() {
        let inst = tiny();
        let kws = inst.query_keywords("universities");
        assert_eq!(kws.len(), 1);
        assert_eq!(inst.vocabulary().text(kws[0]), "univers");
        assert!(inst.query_keywords("nonexistentword").is_empty());
    }

    use crate::search::{Query, SearchConfig};

    fn mutation_base() -> (InstanceBuilder, UserId, UserId) {
        let mut b = InstanceBuilder::new(Language::English);
        let author = b.add_user();
        let seeker = b.add_user();
        b.add_social_edge(seeker, author, 1.0);
        for text in ["rust degrees", "java degrees", "python degrees"] {
            let kws = b.analyze(text);
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            b.add_document(doc, Some(author));
        }
        (b, author, seeker)
    }

    #[test]
    fn deleted_document_disappears_from_results() {
        let (mut b, _, seeker) = mutation_base();
        assert!(b.delete_document(s3_doc::TreeId(1)));
        assert!(!b.delete_document(s3_doc::TreeId(1)), "second delete is an idempotent no-op");
        assert!(b.document_is_deleted(s3_doc::TreeId(1)));
        let inst = b.snapshot();
        assert!(inst.stats().dead_nodes >= 1);
        let kws = inst.query_keywords("degrees");
        let res = inst.search(&Query::new(seeker, kws, 10), &SearchConfig::default());
        assert_eq!(res.hits.len(), 2);
        for h in &res.hits {
            assert_ne!(inst.forest().tree_of(h.doc), s3_doc::TreeId(1));
        }
    }

    #[test]
    fn deleted_user_loses_edges_but_documents_survive() {
        let (mut b, author, seeker) = mutation_base();
        let root = b.doc_root(s3_doc::TreeId(0));
        let kw = b.analyzer_mut().vocabulary_mut().intern("tagword");
        b.add_tag(TagSubject::Frag(root), author, Some(kw));
        assert!(b.delete_user(author));
        let inst = b.snapshot();
        // Documents survive; the social edge, poster records and the
        // author's tag are gone, so the seeker can no longer reach them.
        assert_eq!(inst.num_documents(), 3);
        assert_eq!(inst.stats().social_edges, 0);
        let kws = inst.query_keywords("degrees");
        let res = inst.search(&Query::new(seeker, kws, 10), &SearchConfig::default());
        assert!(res.hits.is_empty(), "no social path to the orphaned documents");
    }

    #[test]
    fn tag_cascade_follows_tags_on_tags() {
        let (mut b, author, seeker) = mutation_base();
        let root = b.doc_root(s3_doc::TreeId(0));
        let kw = b.analyzer_mut().vocabulary_mut().intern("tagword");
        let t0 = b.add_tag(TagSubject::Frag(root), author, Some(kw));
        let t1 = b.add_tag(TagSubject::Tag(t0), seeker, None);
        assert!(b.delete_tag(t0));
        assert!(b.tag_is_deleted(t1), "the endorsement dies with its subject");
        assert_eq!(b.dead_counts(), (0, 0, 2));
    }

    #[test]
    fn compact_equals_cold_build_of_survivors() {
        let (mut b, _author, seeker) = mutation_base();
        let root1 = b.doc_root(s3_doc::TreeId(1));
        let kw = b.analyzer_mut().vocabulary_mut().intern("tagword");
        b.add_tag(TagSubject::Frag(root1), seeker, Some(kw));
        let mut comment = DocBuilder::new("comment");
        let ckws = b.analyze("great degrees");
        comment.set_content(comment.root(), ckws);
        let c = b.add_document(comment, Some(seeker));
        b.add_comment_edge(c, root1);
        b.delete_document(s3_doc::TreeId(0));

        let (compacted, report) = b.compact();
        assert_eq!(report.dropped_documents, 1);
        assert_eq!(report.events_after, report.events_before - 2);
        let ci = compacted.snapshot();
        assert_eq!(ci.stats().dead_nodes, 0, "compaction reclaims every tombstone");

        // Cold reference: only the surviving entities, original order.
        let mut cold = InstanceBuilder::new(Language::English);
        let author2 = cold.add_user();
        let seeker2 = cold.add_user();
        cold.add_social_edge(seeker2, author2, 1.0);
        for text in ["java degrees", "python degrees"] {
            let kws = cold.analyze(text);
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            cold.add_document(doc, Some(author2));
        }
        let root1c = cold.doc_root(s3_doc::TreeId(0));
        let kwc = cold.analyzer_mut().vocabulary_mut().intern("tagword");
        cold.add_tag(TagSubject::Frag(root1c), seeker2, Some(kwc));
        let mut comment = DocBuilder::new("comment");
        let ckws = cold.analyze("great degrees");
        comment.set_content(comment.root(), ckws);
        let cc = cold.add_document(comment, Some(seeker2));
        cold.add_comment_edge(cc, root1c);
        let coldi = cold.build();

        // Vocabulary sizes differ (the compacted side never forgets a
        // word), but every structural and derived count must agree…
        let (a, b_) = (ci.stats(), coldi.stats());
        assert_eq!(
            (a.users, a.social_edges, a.documents, a.fragments_non_root, a.tags),
            (b_.users, b_.social_edges, b_.documents, b_.fragments_non_root, b_.tags),
        );
        assert_eq!((a.nodes, a.edges, a.connections), (b_.nodes, b_.edges, b_.connections));
        // …and so must search results, byte for byte (ids renumber
        // identically because the replay order is identical).
        let q = Query::new(seeker, ci.query_keywords("degrees"), 10);
        let qc = Query::new(seeker2, coldi.query_keywords("degrees"), 10);
        let (ra, rb) =
            (ci.search(&q, &SearchConfig::default()), coldi.search(&qc, &SearchConfig::default()));
        assert_eq!(ra.hits, rb.hits);
        assert_eq!(ra.candidate_docs, rb.candidate_docs);
        assert_eq!(ra.stats.stop, rb.stats.stop);
    }
}
