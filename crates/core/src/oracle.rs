//! Brute-force reference implementation, used by tests to certify S3k
//! (Theorems 4.1–4.3) on small instances.
//!
//! The oracle ignores every optimization: it converges the proximity
//! engine until the attenuation bound drops below a requested precision,
//! then scores **every** document in the instance and applies Definition
//! 3.2 greedily (best score first, skipping vertical neighbors of already
//! chosen documents). Exponentially safer but linearly slower than S3k —
//! never use it outside tests and benchmarks.

use crate::instance::S3Instance;
use crate::score::{S3kScore, ScoreModel};
use crate::search::Query;
use s3_doc::DocNodeId;
use s3_graph::{NodeId, Propagation};
use s3_text::KeywordId;
use std::collections::{HashMap, HashSet};

/// A scored document from the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OracleHit {
    /// The document/fragment.
    pub doc: DocNodeId,
    /// Its score, exact up to the requested precision.
    pub score: f64,
}

/// Exhaustive top-k per Definition 3.2.
pub fn oracle_topk(
    instance: &S3Instance,
    query: &Query,
    score: &S3kScore,
    precision: f64,
) -> Vec<OracleHit> {
    let prox = converged_proximity(instance, query.seeker, score, precision);
    let mut scored = score_all(instance, &query.keywords, score, |n| prox[n.index()]);
    scored.sort_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal).then(a.doc.cmp(&b.doc))
    });
    // Greedy selection skipping vertical neighbors (Definition 3.2).
    let forest = instance.forest();
    let mut out: Vec<OracleHit> = Vec::new();
    for h in scored {
        if out.len() == query.k {
            break;
        }
        if h.score <= 0.0 {
            break;
        }
        if out.iter().all(|s| !forest.is_vertical_neighbor(s.doc, h.doc)) {
            out.push(h);
        }
    }
    out
}

/// Converge `prox≤n` until `B>n < precision`; returns per-node proximity.
pub fn converged_proximity(
    instance: &S3Instance,
    seeker: crate::ids::UserId,
    score: &S3kScore,
    precision: f64,
) -> Vec<f64> {
    let graph = instance.graph();
    let mut prop = Propagation::new(graph, score.gamma(), instance.user_node(seeker));
    let mut guard = 0u32;
    while prop.bound_beyond() > precision && guard < 100_000 {
        prop.step();
        guard += 1;
    }
    (0..graph.num_nodes()).map(|i| prop.prox_leq(NodeId(i as u32))).collect()
}

/// Score every document node under a proximity function, with the same
/// `Ext`-union + tuple-dedup semantics as the engine.
pub fn score_all(
    instance: &S3Instance,
    keywords: &[KeywordId],
    score: &S3kScore,
    mut prox: impl FnMut(NodeId) -> f64,
) -> Vec<OracleHit> {
    let mut kws: Vec<KeywordId> = keywords.to_vec();
    kws.sort_unstable();
    kws.dedup();
    let exts: Vec<_> = kws.iter().map(|&k| instance.expand_keyword(k)).collect();
    let index = instance.connections();
    let forest = instance.forest();
    let mut out = Vec::new();
    for idx in 0..forest.num_nodes() {
        let d = DocNodeId(idx as u32);
        let mut doc_score = 1.0f64;
        let mut ok = true;
        for ext in &exts {
            let mut seen: HashSet<(crate::connections::ConnType, DocNodeId, NodeId)> =
                HashSet::new();
            let mut agg: HashMap<NodeId, f64> = HashMap::new();
            for &k in ext.iter() {
                for c in index.connections(d, k) {
                    if seen.insert((c.ctype, c.frag, c.src)) {
                        *agg.entry(c.src).or_insert(0.0) +=
                            score.structural_weight(c.ctype, c.depth);
                    }
                }
            }
            if agg.is_empty() {
                ok = false;
                break;
            }
            let part: f64 = agg.iter().map(|(&src, &coef)| coef * prox(src)).sum();
            doc_score *= part;
        }
        if ok {
            out.push(OracleHit { doc: d, score: doc_score });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use crate::search::{Query, SearchConfig, StopReason};
    use s3_doc::DocBuilder;
    use s3_text::Language;

    fn small_instance() -> (S3Instance, crate::ids::UserId, Vec<KeywordId>) {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        let u2 = b.add_user();
        b.add_social_edge(u0, u1, 0.9);
        b.add_social_edge(u1, u2, 0.4);
        b.add_social_edge(u2, u0, 0.6);
        let mut kws = Vec::new();
        for (i, text) in [
            "university degrees open doors",
            "a degree from a good university",
            "doors and windows",
        ]
        .iter()
        .enumerate()
        {
            let content = b.analyze(text);
            kws.push(content.clone());
            let mut doc = DocBuilder::new("post");
            let t = doc.child(doc.root(), "text");
            doc.set_content(t, content);
            let poster = crate::ids::UserId((i % 3) as u32);
            b.add_document(doc, Some(poster));
        }
        let inst = b.build();
        let degre = inst.vocabulary().get("degre").unwrap();
        (inst, u0, vec![degre])
    }

    #[test]
    fn oracle_agrees_with_engine_on_small_instance() {
        let (inst, seeker, kws) = small_instance();
        let q = Query::new(seeker, kws, 3);
        let cfg = SearchConfig::default();
        let engine_res = inst.search(&q, &cfg);
        assert_eq!(engine_res.stats.stop, StopReason::Converged);
        let oracle_res = oracle_topk(&inst, &q, &cfg.score, 1e-12);
        assert_eq!(engine_res.hits.len(), oracle_res.len());
        for (h, o) in engine_res.hits.iter().zip(&oracle_res) {
            assert_eq!(h.doc, o.doc, "engine {:?} oracle {:?}", engine_res.hits, oracle_res);
            assert!(h.lower - 1e-6 <= o.score && o.score <= h.upper + 1e-6);
        }
    }

    #[test]
    fn oracle_score_positive_only_with_all_keywords() {
        let (inst, seeker, _) = small_instance();
        let univers = inst.vocabulary().get("univers").unwrap();
        let door = inst.vocabulary().get("door").unwrap();
        let prox = converged_proximity(&inst, seeker, &S3kScore::default(), 1e-12);
        let scored = score_all(&inst, &[univers, door], &S3kScore::default(), |n| prox[n.index()]);
        // Only doc 0 ("university degrees open doors") has both.
        assert!(!scored.is_empty());
        for h in &scored {
            let node = inst.graph().node_of_frag(h.doc).unwrap();
            let comp = inst.graph().components().component_of(node);
            let ks = inst.component_keywords(comp);
            assert!(ks.contains(&univers) && ks.contains(&door));
        }
    }
}
