//! Live ingestion: extending a frozen [`S3Instance`] with new data without
//! a stop-the-world rebuild.
//!
//! [`InstanceBuilder::build`] freezes an instance once; the ROADMAP's
//! north-star is a server ingesting documents, tags, social edges and users
//! *while serving*. This module provides the instance-level half of that
//! story (the serving half — snapshot swap, epoch-scoped cache
//! invalidation — lives in `s3-engine`):
//!
//! * [`IngestBatch`] collects a batch of additions, referencing existing
//!   entities by id and batch-local ones positionally ([`UserRef`],
//!   [`DocRef`], [`FragRef`], [`TagRef`]);
//! * [`InstanceBuilder::apply`] appends the batch to the retained builder
//!   and produces a **new** [`S3Instance`] by *extending* the previous
//!   snapshot: the forest and vocabulary grow in place (cloned, appended),
//!   the network graph is replayed with stable node numbering and
//!   stable component ids ([`s3_graph::Components::build_extending`]), the
//!   saturated RDF store is `Arc`-shared, and the expensive `con(d,k)`
//!   fixpoint reruns **only inside the touched components** — untouched
//!   documents keep their connection entries verbatim.
//!
//! The correctness bar, property-tested in `crates/engine/tests/ingest.rs`:
//! after any sequence of batches, the extended instance is
//! query-for-query **byte-identical** to a cold
//! [`InstanceBuilder::snapshot`] of the same final data. The key invariant
//! is numbering: nodes are numbered by replaying the builder's
//! insertion-order event log, so appending events never renumbers anything.
//!
//! # Detached deltas
//!
//! [`IngestSummary::detached`] classifies a batch: a *detached* delta adds
//! no out-edge to any pre-existing graph node (social edges leave batch-new
//! users only — social edges have no inverse; documents are posted by
//! batch-new users or nobody; tags are authored by batch-new users on
//! batch-new subjects; comments relate batch-new documents) and bridges no
//! new keyword into the RDF dictionary. For such a delta every
//! pre-existing node keeps its exact adjacency, out-weights and
//! neighborhood weights, and nothing new is reachable from any
//! pre-existing node — so every previously computed propagation, score and
//! result remains exact. This is what lets the sharded serving layer scope
//! its epoch bump to the touched shards plus the front cache, and *rebase*
//! untouched warm propagation states onto the new graph
//! ([`s3_graph::PropagationState::rebase`]) instead of dropping them.

use crate::connections::ConnectionIndex;
use crate::ids::{TagId, TagSubject, UserId};
use crate::instance::{
    build_graph, derived_social_edges, keyword_bridges, tag_inputs, tag_records, GraphParts,
    InstanceBuilder, RetractionLog, S3Instance,
};
use s3_doc::{DocBuilder, DocNodeId, LocalNodeId, TreeId};
use s3_graph::{CompId, NodeId};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// A user mentioned by a batch: one that already exists in the instance, or
/// one the batch itself creates (by position in the batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserRef {
    /// A user of the current instance.
    Existing(UserId),
    /// The `i`-th user added by this batch ([`IngestBatch::add_user`]).
    New(usize),
}

/// A document (tree) mentioned by a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocRef {
    /// A tree of the current instance.
    Existing(TreeId),
    /// The `i`-th document added by this batch
    /// ([`IngestBatch::add_document`]).
    New(usize),
}

/// A document fragment mentioned by a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragRef {
    /// A fragment of the current instance.
    Existing(DocNodeId),
    /// A node of the `doc`-th document added by this batch.
    New {
        /// Batch-local document index.
        doc: usize,
        /// The node inside that document's builder.
        node: LocalNodeId,
    },
}

/// A tag mentioned by a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagRef {
    /// A tag of the current instance.
    Existing(TagId),
    /// The `i`-th tag added by this batch (must precede the referencing
    /// tag, mirroring [`InstanceBuilder::add_tag`]'s ordering rule).
    New(usize),
}

/// What a batch tag annotates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagSubjectRef {
    /// A document fragment.
    Frag(FragRef),
    /// Another tag (higher-level annotation, requirement R4).
    Tag(TagRef),
}

/// One document under construction for a batch: a [`DocBuilder`] tree shape
/// plus raw text per node, analyzed against the live vocabulary when the
/// batch is applied (so new terms are interned exactly as a cold build
/// would intern them).
#[derive(Debug, Clone)]
pub struct IngestDoc {
    pub(crate) builder: DocBuilder,
    pub(crate) texts: Vec<(LocalNodeId, String)>,
}

impl IngestDoc {
    /// Start a document whose root node has the given name.
    pub fn new(root_name: impl Into<String>) -> Self {
        IngestDoc { builder: DocBuilder::new(root_name), texts: Vec::new() }
    }

    /// The root node id.
    pub fn root(&self) -> LocalNodeId {
        self.builder.root()
    }

    /// Append a child node under `parent`; returns its id.
    pub fn child(&mut self, parent: LocalNodeId, name: impl Into<String>) -> LocalNodeId {
        self.builder.child(parent, name)
    }

    /// Set the text content of a node (analyzed at apply time; calling
    /// again replaces the node's pending text).
    pub fn set_text(&mut self, node: LocalNodeId, text: impl Into<String>) {
        assert!((node.0 as usize) < self.builder.len(), "unknown node");
        self.texts.retain(|(n, _)| *n != node);
        self.texts.push((node, text.into()));
    }

    /// The underlying tree builder (read-only; the wire protocol
    /// flattens it for shipping).
    pub fn builder(&self) -> &DocBuilder {
        &self.builder
    }

    /// Pending `(node, text)` assignments, in call order.
    pub fn texts(&self) -> &[(LocalNodeId, String)] {
        &self.texts
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.builder.len()
    }

    /// A document always has at least its root.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A batch of additions for [`InstanceBuilder::apply`]: users, weighted
/// social edges, documents (with posters), comment edges and tags.
///
/// ```
/// use s3_core::{IngestBatch, IngestDoc};
///
/// let mut batch = IngestBatch::new();
/// let poster = batch.add_user();
/// let mut doc = IngestDoc::new("post");
/// doc.set_text(doc.root(), "a fresh degree");
/// batch.add_document(doc, Some(poster));
/// assert_eq!((batch.num_users(), batch.num_documents()), (1, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IngestBatch {
    pub(crate) new_users: usize,
    pub(crate) social_edges: Vec<(UserRef, UserRef, f64)>,
    pub(crate) documents: Vec<(IngestDoc, Option<UserRef>)>,
    pub(crate) comments: Vec<(DocRef, FragRef)>,
    pub(crate) tags: Vec<(TagSubjectRef, UserRef, Option<String>)>,
    pub(crate) delete_users: Vec<UserId>,
    pub(crate) delete_documents: Vec<TreeId>,
    pub(crate) delete_tags: Vec<TagId>,
    pub(crate) remove_social_edges: Vec<(UserId, UserId)>,
    pub(crate) remove_comments: Vec<(TreeId, DocNodeId)>,
}

impl IngestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        IngestBatch::default()
    }

    /// Add a user; the returned reference is valid within this batch.
    pub fn add_user(&mut self) -> UserRef {
        self.new_users += 1;
        UserRef::New(self.new_users - 1)
    }

    /// Add a weighted social edge `from S3:social to` (weight in `(0, 1]`).
    pub fn add_social_edge(&mut self, from: UserRef, to: UserRef, weight: f64) {
        self.social_edges.push((from, to, weight));
    }

    /// Add a document, optionally posted by a user.
    pub fn add_document(&mut self, doc: IngestDoc, poster: Option<UserRef>) -> DocRef {
        self.documents.push((doc, poster));
        DocRef::New(self.documents.len() - 1)
    }

    /// Declare that document `comment` comments on fragment `target`.
    pub fn add_comment(&mut self, comment: DocRef, target: FragRef) {
        self.comments.push((comment, target));
    }

    /// Add a tag; `keyword = None` is an endorsement (like/+1/retweet).
    /// The keyword string is interned verbatim into the vocabulary at
    /// apply time (pass the stemmed/normalized form, as
    /// [`InstanceBuilder::add_tag`] callers do).
    pub fn add_tag(
        &mut self,
        subject: TagSubjectRef,
        author: UserRef,
        keyword: Option<&str>,
    ) -> TagRef {
        self.tags.push((subject, author, keyword.map(str::to_owned)));
        TagRef::New(self.tags.len() - 1)
    }

    /// Delete an existing user (tombstone; cascades to their social edges,
    /// poster records and authored tags — see
    /// [`InstanceBuilder::delete_user`]). Unknown or already-deleted ids
    /// are idempotent no-ops.
    pub fn delete_user(&mut self, u: UserId) {
        self.delete_users.push(u);
    }

    /// Delete an existing document (tombstone; cascades to its poster
    /// record, comment edges and tags — see
    /// [`InstanceBuilder::delete_document`]). Idempotent no-op for unknown
    /// or already-deleted ids.
    pub fn delete_document(&mut self, tree: TreeId) {
        self.delete_documents.push(tree);
    }

    /// Delete an existing tag (tombstone; cascades to tags on it — see
    /// [`InstanceBuilder::delete_tag`]). Idempotent no-op for unknown or
    /// already-deleted ids.
    pub fn delete_tag(&mut self, t: TagId) {
        self.delete_tags.push(t);
    }

    /// Remove every explicit social edge `from → to`. Idempotent no-op
    /// when no such edge exists.
    pub fn remove_social_edge(&mut self, from: UserId, to: UserId) {
        self.remove_social_edges.push((from, to));
    }

    /// Remove every `comment S3:commentsOn target` edge. Idempotent no-op
    /// when no such edge exists.
    pub fn remove_comment(&mut self, comment: TreeId, target: DocNodeId) {
        self.remove_comments.push((comment, target));
    }

    /// Update-in-place as delete + append: tombstone `old` and add `doc`
    /// as its replacement. The replacement gets a **fresh stable id** (the
    /// old id stays allocated as a tombstone); callers that track external
    /// keys remap them to the returned [`DocRef`]'s resolved id.
    pub fn update_document(
        &mut self,
        old: TreeId,
        doc: IngestDoc,
        poster: Option<UserRef>,
    ) -> DocRef {
        self.delete_documents.push(old);
        self.add_document(doc, poster)
    }

    /// Retag as delete + append: tombstone tag `old` (cascading to tags on
    /// it) and add a replacement tag with a fresh id.
    pub fn retag(
        &mut self,
        old: TagId,
        subject: TagSubjectRef,
        author: UserRef,
        keyword: Option<&str>,
    ) -> TagRef {
        self.delete_tags.push(old);
        self.add_tag(subject, author, keyword)
    }

    /// Users this batch creates.
    pub fn num_users(&self) -> usize {
        self.new_users
    }

    /// Documents this batch creates.
    pub fn num_documents(&self) -> usize {
        self.documents.len()
    }

    /// Tags this batch creates.
    pub fn num_tags(&self) -> usize {
        self.tags.len()
    }

    /// Weighted social edges the batch adds.
    pub fn social_edges(&self) -> &[(UserRef, UserRef, f64)] {
        &self.social_edges
    }

    /// Documents the batch adds, with their posters.
    pub fn documents(&self) -> &[(IngestDoc, Option<UserRef>)] {
        &self.documents
    }

    /// Comment edges the batch adds.
    pub fn comments(&self) -> &[(DocRef, FragRef)] {
        &self.comments
    }

    /// Tags the batch adds: subject, author, optional keyword.
    pub fn tags(&self) -> &[(TagSubjectRef, UserRef, Option<String>)] {
        &self.tags
    }

    /// Users the batch deletes.
    pub fn deleted_users(&self) -> &[UserId] {
        &self.delete_users
    }

    /// Documents the batch deletes.
    pub fn deleted_documents(&self) -> &[TreeId] {
        &self.delete_documents
    }

    /// Tags the batch deletes.
    pub fn deleted_tags(&self) -> &[TagId] {
        &self.delete_tags
    }

    /// Social edges the batch removes.
    pub fn removed_social_edges(&self) -> &[(UserId, UserId)] {
        &self.remove_social_edges
    }

    /// Comment edges the batch removes.
    pub fn removed_comments(&self) -> &[(TreeId, DocNodeId)] {
        &self.remove_comments
    }

    /// Does the batch carry any retraction?
    pub fn has_retractions(&self) -> bool {
        !self.delete_users.is_empty()
            || !self.delete_documents.is_empty()
            || !self.delete_tags.is_empty()
            || !self.remove_social_edges.is_empty()
            || !self.remove_comments.is_empty()
    }

    /// True when the batch adds and retracts nothing.
    pub fn is_empty(&self) -> bool {
        self.new_users == 0
            && self.social_edges.is_empty()
            && self.documents.is_empty()
            && self.comments.is_empty()
            && self.tags.is_empty()
            && !self.has_retractions()
    }
}

/// What an [`InstanceBuilder::apply`] did: delta sizes, the delta class and
/// the components it touched (under the new instance's stable numbering).
#[derive(Debug, Clone)]
pub struct IngestSummary {
    /// Users added.
    pub new_users: usize,
    /// Documents (trees) added.
    pub new_documents: usize,
    /// Tags added.
    pub new_tags: usize,
    /// Graph nodes of the previous snapshot (new nodes are
    /// `first_new_node..`).
    pub first_new_node: usize,
    /// Was the delta *detached* (see the module docs)? Detached deltas
    /// leave every pre-existing propagation, score and cached result
    /// exact, so the serving layer may scope invalidation to the touched
    /// shards plus its front cache and rebase warm propagation state.
    pub detached: bool,
    /// Components that gained nodes or edges (or were merged away),
    /// ascending. Their connection entries were recomputed.
    pub touched_components: Vec<CompId>,
    /// The subset of [`Self::touched_components`] that did not exist
    /// before (ids at or beyond the previous component count).
    pub new_components: Vec<CompId>,
    /// Users tombstoned by this batch, cascades included.
    pub deleted_users: usize,
    /// Documents tombstoned by this batch, cascades included.
    pub deleted_documents: usize,
    /// Tags tombstoned by this batch, cascades included.
    pub deleted_tags: usize,
    /// Explicit social edges removed (deletions cascade here too).
    pub removed_social_edges: usize,
    /// Comment edges removed (deletions cascade here too).
    pub removed_comment_edges: usize,
}

impl InstanceBuilder {
    /// Append `batch` to this builder and extend `prev` — which must be the
    /// instance last built from this builder (`build`, `snapshot` or a
    /// previous `apply`) — into a new frozen instance.
    ///
    /// Query results over the returned instance are byte-identical to a
    /// cold [`InstanceBuilder::snapshot`] of the builder's (now grown)
    /// data; only component *ids* may differ (merged-away ids stay
    /// allocated and empty), which no query-visible output depends on.
    ///
    /// Panics on invalid references or weights, before mutating anything.
    pub fn apply(&mut self, prev: &S3Instance, batch: &IngestBatch) -> (S3Instance, IngestSummary) {
        self.validate(prev, batch);
        let users0 = self.num_users as usize;
        let vocab0 = self.analyzer.vocabulary().len();
        let nodes0 = prev.graph.num_nodes();
        let comps0 = prev.graph.components().len();

        // ---- Retractions first: tombstone entities (with cascades) and
        // physically unlink their edges, so the additions below see the
        // post-retraction state — a batch may delete a document and add
        // its replacement in one atomic step (`update_document`). ----
        let mut rlog = RetractionLog::default();
        for &u in &batch.delete_users {
            self.retract_user(u, &mut rlog);
        }
        for &t in &batch.delete_documents {
            self.retract_document(t, &mut rlog);
        }
        for &t in &batch.delete_tags {
            self.retract_tag(t, &mut rlog);
        }
        for &(from, to) in &batch.remove_social_edges {
            rlog.removed_social += self.remove_social_edge(from, to);
        }
        for &(c, tgt) in &batch.remove_comments {
            self.retract_comment_edge(c, tgt, &mut rlog);
        }

        // ---- Append the batch to the builder, classifying the delta. ----
        // Any effective retraction invalidates pre-existing propagation
        // state globally (edges vanished), so the delta is not detached.
        let new_users: Vec<UserId> = (0..batch.new_users).map(|_| self.add_user()).collect();
        let user = |r: UserRef| match r {
            UserRef::Existing(u) => u,
            UserRef::New(i) => new_users[i],
        };
        let mut detached = rlog.is_empty();
        for &(from, to, w) in &batch.social_edges {
            detached &= matches!(from, UserRef::New(_));
            self.add_social_edge(user(from), user(to), w);
        }
        let mut new_trees: Vec<TreeId> = Vec::with_capacity(batch.documents.len());
        for (doc, poster) in &batch.documents {
            detached &= matches!(poster, None | Some(UserRef::New(_)));
            let mut db = doc.builder.clone();
            for (node, text) in &doc.texts {
                let kws = self.analyzer.analyze(text);
                db.set_content(*node, kws);
            }
            new_trees.push(self.add_document(db, poster.map(user)));
        }
        let tree = |r: DocRef| match r {
            DocRef::Existing(t) => t,
            DocRef::New(i) => new_trees[i],
        };
        let frag = |forest: &s3_doc::Forest, r: FragRef| match r {
            FragRef::Existing(f) => f,
            FragRef::New { doc, node } => forest.resolve(new_trees[doc], node),
        };
        for &(comment, target) in &batch.comments {
            detached &= matches!(comment, DocRef::New(_)) && matches!(target, FragRef::New { .. });
            let (c, t) = (tree(comment), frag(&self.forest, target));
            self.add_comment_edge(c, t);
        }
        let tags0 = self.tags.len();
        for (subject, author, keyword) in &batch.tags {
            detached &= matches!(author, UserRef::New(_));
            let subject = match *subject {
                TagSubjectRef::Frag(f) => {
                    detached &= matches!(f, FragRef::New { .. });
                    TagSubject::Frag(frag(&self.forest, f))
                }
                TagSubjectRef::Tag(t) => {
                    detached &= matches!(t, TagRef::New(_));
                    TagSubject::Tag(match t {
                        TagRef::Existing(id) => id,
                        TagRef::New(i) => TagId((tags0 + i) as u32),
                    })
                }
            };
            let keyword = keyword.as_deref().map(|s| self.analyzer.vocabulary_mut().intern(s));
            self.add_tag(subject, user(*author), keyword);
        }
        // A new vocabulary entry that matches an RDF URI bridges keyword
        // extension to the ontology: old queries' `Ext` sets may grow, so
        // the delta cannot be treated as detached. Only the entries this
        // batch interned need checking.
        for idx in vocab0..self.analyzer.vocabulary().len() {
            let text = self.analyzer.vocabulary().text(s3_text::KeywordId(idx as u32));
            if prev.rdf.dictionary().get(text).is_some() {
                detached = false;
                break;
            }
        }

        // ---- Extend the graph: stable node numbering, stable comp ids. ----
        let mut social_all = self.social_edges.clone();
        social_all.extend(derived_social_edges(&prev.rdf, &self.user_uris, &social_all));
        let GraphParts { graph, user_nodes, tag_nodes, poster_of, comment_pairs } = build_graph(
            &self.events,
            self.forest.clone(),
            &social_all,
            &self.posters,
            &self.comments,
            &self.tags,
            &self.dead.tags,
            Some(prev.graph.components()),
        );
        debug_assert_eq!(graph.num_nodes(), nodes0 + (graph.num_nodes() - nodes0));
        debug_assert!(user_nodes[..users0].iter().zip(&prev.user_nodes).all(|(a, b)| a == b));

        // ---- Touched components: every component holding a new node,
        // plus old ids merged away (their entries must empty out), plus
        // every component affected by a retraction — the tombstoned
        // entities' own nodes, removed comment edges' endpoints and dead
        // tags' subjects. Node ids are stable, so prev-graph nodes keep
        // their ids in the new graph; a split scatters a prev component
        // over several new ids, and each split-off part contains at least
        // one of the nodes below (the dead node, or the endpoint it lost
        // its bridge to), so flagging their *new* components covers every
        // document whose connections changed. ----
        let comps = graph.components();
        let mut touched: Vec<CompId> =
            (nodes0..graph.num_nodes()).map(|i| comps.component_of(NodeId(i as u32))).collect();
        for c in 0..comps0 {
            let c = CompId(c as u32);
            if comps.members(c).is_empty() && !prev.graph.components().members(c).is_empty() {
                touched.push(c);
            }
        }
        let mut retracted_nodes: Vec<NodeId> = Vec::new();
        for &t in &rlog.dead_trees {
            for idx in self.forest.tree_range(t) {
                retracted_nodes
                    .push(graph.node_of_frag(DocNodeId(idx as u32)).expect("registered"));
            }
        }
        for &u in &rlog.dead_users {
            retracted_nodes.push(user_nodes[u.index()]);
        }
        for &t in &rlog.dead_tags {
            retracted_nodes.push(tag_nodes[t.index()]);
            retracted_nodes.push(match self.tags[t.index()].subject {
                TagSubject::Frag(f) => graph.node_of_frag(f).expect("registered"),
                TagSubject::Tag(b) => tag_nodes[b.index()],
            });
        }
        for &(c, tgt) in &rlog.removed_comments {
            retracted_nodes.push(graph.node_of_frag(self.forest.root(c)).expect("registered"));
            retracted_nodes.push(graph.node_of_frag(tgt).expect("registered"));
        }
        touched.extend(retracted_nodes.iter().map(|&n| comps.component_of(n)));
        touched.sort_unstable();
        touched.dedup();
        let mut comp_touched = vec![false; comps.len()];
        for &c in &touched {
            comp_touched[c.index()] = true;
        }
        let new_components: Vec<CompId> =
            touched.iter().copied().filter(|c| c.index() >= comps0).collect();

        // ---- Extend the con index: rerun the fixpoint inside the touched
        // components only; untouched documents keep their entries. ----
        let inputs = tag_inputs(&self.tags, &user_nodes);
        let comp_of_frag =
            |d: DocNodeId| comps.component_of(graph.node_of_frag(d).expect("registered"));
        let conn_index = ConnectionIndex::rebuilt_scoped(
            &prev.conn_index,
            graph.forest(),
            &inputs,
            &comment_pairs,
            |d| graph.node_of_frag(d).expect("registered"),
            |d| comp_touched[comp_of_frag(d).index()],
            |t| comp_touched[comps.component_of(tag_nodes[t.index()]).index()],
            |d| self.dead.doc_alive(&self.forest, d),
            |t| self.dead.tag_alive(t),
        );

        // ---- Extend the per-component keyword sets. ----
        let mut comp_keywords: Vec<HashSet<_>> = Vec::with_capacity(comps.len());
        for c in comps.iter() {
            if c.index() < comps0 && !comp_touched[c.index()] {
                comp_keywords.push(prev.comp_keywords[c.index()].clone());
            } else {
                let mut kws = HashSet::new();
                for &node in comps.members(c) {
                    if let Some(d) = graph.frag_of_node(node) {
                        kws.extend(conn_index.keywords_of(d));
                    }
                }
                comp_keywords.push(kws);
            }
        }

        // ---- Extend the keyword ↔ URI bridge over the new vocabulary. ----
        let vocabulary = self.analyzer.vocabulary().clone();
        let mut kw_to_uri = prev.kw_to_uri.clone();
        let mut uri_to_kw = prev.uri_to_kw.clone();
        keyword_bridges(&vocabulary, &prev.rdf, vocab0, &mut kw_to_uri, &mut uri_to_kw);

        let dead_nodes = self.dead.mark_nodes(&graph, &user_nodes, &tag_nodes);
        let instance = S3Instance {
            language: self.analyzer.language(),
            vocabulary,
            rdf: Arc::clone(&prev.rdf),
            graph,
            tag_records: tag_records(&self.tags, &tag_nodes),
            user_nodes,
            poster_of,
            comment_pairs,
            conn_index,
            comp_keywords,
            kw_to_uri,
            uri_to_kw,
            dead_nodes,
            ext_cache: Mutex::new(HashMap::new()),
            smax_cache: Mutex::new(HashMap::new()),
        };
        let summary = IngestSummary {
            new_users: batch.new_users,
            new_documents: batch.documents.len(),
            new_tags: batch.tags.len(),
            first_new_node: nodes0,
            detached,
            touched_components: touched,
            new_components,
            deleted_users: rlog.dead_users.len(),
            deleted_documents: rlog.dead_trees.len(),
            deleted_tags: rlog.dead_tags.len(),
            removed_social_edges: rlog.removed_social,
            removed_comment_edges: rlog.removed_comments.len(),
        };
        (instance, summary)
    }

    /// Check every reference and weight of `batch` against the current
    /// builder state, before anything is mutated. `Existing` references
    /// must be alive: already-tombstoned entities and entities the same
    /// batch *directly* deletes are rejected here (retractions apply
    /// before additions). References to entities that die only through a
    /// cascade (e.g. a tag on a document the batch deletes) are caught by
    /// the builder's liveness assertions during the apply itself.
    fn validate(&self, prev: &S3Instance, batch: &IngestBatch) {
        assert_eq!(
            prev.graph.num_nodes(),
            self.num_users as usize + self.forest.num_nodes() + self.tags.len(),
            "`prev` must be the instance last built from this builder"
        );
        assert!(
            !self.rdf_dirty.get(),
            "the RDF layer changed since the last snapshot; apply() shares the previous \
             snapshot's saturated store and would drop those changes — take a fresh \
             snapshot() (full rebuild) first"
        );
        let del_users: HashSet<UserId> = batch.delete_users.iter().copied().collect();
        let del_trees: HashSet<TreeId> = batch.delete_documents.iter().copied().collect();
        let del_tags: HashSet<TagId> = batch.delete_tags.iter().copied().collect();
        let users = self.num_users as usize;
        let check_user = |r: UserRef| match r {
            UserRef::Existing(u) => {
                assert!(u.index() < users, "unknown user {u}");
                assert!(self.dead.user_alive(u) && !del_users.contains(&u), "user {u} is deleted");
            }
            UserRef::New(i) => assert!(i < batch.new_users, "batch user {i} out of range"),
        };
        let check_doc = |r: DocRef| match r {
            DocRef::Existing(t) => {
                assert!(t.index() < self.forest.num_trees(), "unknown tree {t:?}");
                assert!(
                    self.dead.tree_alive(t) && !del_trees.contains(&t),
                    "document {t:?} is deleted"
                );
            }
            DocRef::New(i) => assert!(i < batch.documents.len(), "batch doc {i} out of range"),
        };
        let check_frag = |r: FragRef| match r {
            FragRef::Existing(f) => {
                assert!(f.index() < self.forest.num_nodes(), "unknown fragment {f}");
                let t = self.forest.tree_of(f);
                assert!(
                    self.dead.tree_alive(t) && !del_trees.contains(&t),
                    "fragment {f} belongs to a deleted document"
                );
            }
            FragRef::New { doc, node } => {
                assert!(doc < batch.documents.len(), "batch doc {doc} out of range");
                assert!(
                    (node.0 as usize) < batch.documents[doc].0.len(),
                    "node {node:?} outside batch doc {doc}"
                );
            }
        };
        for &(from, to, w) in &batch.social_edges {
            assert!(w > 0.0 && w <= 1.0, "social weight must be in (0,1]");
            check_user(from);
            check_user(to);
        }
        for (_, poster) in &batch.documents {
            if let Some(p) = poster {
                check_user(*p);
            }
        }
        for &(comment, target) in &batch.comments {
            check_doc(comment);
            check_frag(target);
        }
        for (i, (subject, author, _)) in batch.tags.iter().enumerate() {
            check_user(*author);
            match *subject {
                TagSubjectRef::Frag(f) => check_frag(f),
                TagSubjectRef::Tag(TagRef::Existing(t)) => {
                    assert!(t.index() < self.tags.len(), "unknown tag {t}");
                    assert!(self.dead.tag_alive(t) && !del_tags.contains(&t), "tag {t} is deleted");
                }
                TagSubjectRef::Tag(TagRef::New(j)) => {
                    assert!(j < i, "tag subjects must already exist (batch tag {j} after {i})")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{Query, SearchConfig};
    use s3_text::Language;

    fn base() -> (InstanceBuilder, UserId, S3Instance) {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let seeker = b.add_user();
        b.add_social_edge(seeker, u0, 1.0);
        let kws = b.analyze("universities give degrees");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(u0));
        let prev = b.snapshot();
        (b, seeker, prev)
    }

    fn all_queries(inst: &S3Instance, text: &str) -> Vec<Query> {
        let kws = inst.query_keywords(text);
        (0..inst.num_users()).map(|u| Query::new(UserId(u as u32), kws.clone(), 4)).collect()
    }

    fn assert_matches_cold(builder: &InstanceBuilder, live: &S3Instance, text: &str) {
        let cold = builder.snapshot();
        let config = SearchConfig::default();
        for (ql, qc) in all_queries(live, text).iter().zip(all_queries(&cold, text).iter()) {
            let a = live.search(ql, &config);
            let b = cold.search(qc, &config);
            assert_eq!(a.hits, b.hits, "live vs cold hits for {ql:?}");
            assert_eq!(a.candidate_docs, b.candidate_docs);
            assert_eq!(a.stats.stop, b.stats.stop);
            assert_eq!(a.stats.iterations, b.stats.iterations);
        }
    }

    #[test]
    fn detached_batch_is_classified_and_exact() {
        let (mut b, _, prev) = base();
        let mut batch = IngestBatch::new();
        let poster = batch.add_user();
        let fan = batch.add_user();
        batch.add_social_edge(fan, poster, 0.9);
        batch.add_social_edge(fan, UserRef::Existing(UserId(0)), 0.4);
        let mut doc = IngestDoc::new("post");
        doc.set_text(doc.root(), "degrees in the rust language");
        let d = batch.add_document(doc, Some(poster));
        let t = batch.add_tag(
            TagSubjectRef::Frag(FragRef::New { doc: 0, node: LocalNodeId(0) }),
            fan,
            Some("degre"),
        );
        batch.add_tag(TagSubjectRef::Tag(t), fan, None);
        let mut reply = IngestDoc::new("reply");
        reply.set_text(reply.root(), "congratulations");
        let r = batch.add_document(reply, Some(fan));
        batch.add_comment(r, FragRef::New { doc: 0, node: LocalNodeId(0) });
        let _ = d;

        let (live, summary) = b.apply(&prev, &batch);
        assert!(summary.detached, "nothing points at a pre-existing node");
        assert_eq!(summary.new_users, 2);
        assert_eq!(summary.new_documents, 2);
        assert_eq!(summary.first_new_node, prev.graph().num_nodes());
        assert!(!summary.new_components.is_empty());
        assert_eq!(summary.touched_components, summary.new_components);
        assert_matches_cold(&b, &live, "degrees");
    }

    #[test]
    fn attached_batch_touches_the_old_component_and_stays_exact() {
        let (mut b, seeker, prev) = base();
        let old_root = prev.forest().root(TreeId(0));
        let old_comp =
            prev.graph().components().component_of(prev.graph().node_of_frag(old_root).unwrap());

        let mut batch = IngestBatch::new();
        let fan = batch.add_user();
        batch.add_social_edge(UserRef::Existing(seeker), fan, 0.7);
        batch.add_tag(
            TagSubjectRef::Frag(FragRef::Existing(old_root)),
            UserRef::Existing(seeker),
            Some("univers"),
        );
        let mut reply = IngestDoc::new("reply");
        reply.set_text(reply.root(), "universities matter");
        let r = batch.add_document(reply, Some(UserRef::Existing(seeker)));
        batch.add_comment(r, FragRef::Existing(old_root));

        let (live, summary) = b.apply(&prev, &batch);
        assert!(!summary.detached, "old nodes gained edges");
        assert!(
            summary.touched_components.contains(&old_comp),
            "the annotated component must be recomputed"
        );
        assert_matches_cold(&b, &live, "universities");
        // The old document gained tag + comment connections.
        let kws = live.query_keywords("universities");
        let res = live.search(&Query::new(seeker, kws, 3), &SearchConfig::default());
        assert!(!res.hits.is_empty());
    }

    #[test]
    fn batches_compose_across_applies() {
        let (mut b, seeker, prev) = base();
        let mut live = prev;
        for round in 0..3 {
            let mut batch = IngestBatch::new();
            let u = batch.add_user();
            batch.add_social_edge(u, UserRef::Existing(seeker), 0.8);
            let mut doc = IngestDoc::new("post");
            doc.set_text(doc.root(), format!("degrees round {round}"));
            batch.add_document(doc, Some(u));
            let (next, _) = b.apply(&live, &batch);
            live = next;
            assert_matches_cold(&b, &live, "degrees");
        }
        assert_eq!(live.num_users(), 5);
        assert_eq!(live.num_documents(), 4);
    }

    #[test]
    fn merging_two_old_components_keeps_results_exact() {
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        let seeker = b.add_user();
        b.add_social_edge(seeker, u, 1.0);
        for text in ["rust degrees", "java degrees"] {
            let kws = b.analyze(text);
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            b.add_document(doc, Some(u));
        }
        let prev = b.snapshot();
        let comps0 = prev.graph().components().len();

        // A new comment bridging the two previously-separate documents.
        let mut batch = IngestBatch::new();
        let mut bridge = IngestDoc::new("bridge");
        bridge.set_text(bridge.root(), "both languages give degrees");
        let r = batch.add_document(bridge, None);
        batch.add_comment(r, FragRef::Existing(prev.forest().root(TreeId(0))));
        batch.add_comment(r, FragRef::Existing(prev.forest().root(TreeId(1))));

        let (live, summary) = b.apply(&prev, &batch);
        assert!(!summary.detached);
        let comps = live.graph().components();
        assert!(comps.len() > comps0 || comps.iter().any(|c| comps.members(c).is_empty()));
        // One of the two old components merged away and empties out.
        let dead: Vec<CompId> = (0..comps0)
            .map(|c| CompId(c as u32))
            .filter(|&c| comps.members(c).is_empty())
            .collect();
        assert_eq!(dead.len(), 1, "exactly one old component merged away");
        assert!(summary.touched_components.contains(&dead[0]));
        assert_matches_cold(&b, &live, "degrees");
    }

    #[test]
    fn empty_batch_is_a_detached_noop() {
        let (mut b, _, prev) = base();
        let nodes = prev.graph().num_nodes();
        let (live, summary) = b.apply(&prev, &IngestBatch::new());
        assert!(summary.detached);
        assert!(summary.touched_components.is_empty());
        assert_eq!(live.graph().num_nodes(), nodes);
        assert_matches_cold(&b, &live, "degrees");
    }

    #[test]
    #[should_panic(expected = "RDF layer changed since the last snapshot")]
    fn rdf_mutation_between_snapshot_and_apply_is_refused() {
        let (mut b, _, prev) = base();
        b.rdf_mut().insert_str("ex:a", "ex:p", "ex:b");
        b.apply(&prev, &IngestBatch::new());
    }

    #[test]
    fn rdf_mutation_followed_by_fresh_snapshot_applies_fine() {
        let (mut b, _, _) = base();
        b.rdf_mut().insert_str("ex:a", "ex:p", "ex:b");
        let prev = b.snapshot();
        let (live, _) = b.apply(&prev, &IngestBatch::new());
        assert_eq!(live.num_users(), prev.num_users());
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn bad_reference_panics_before_mutation() {
        let (mut b, _, prev) = base();
        let mut batch = IngestBatch::new();
        batch.add_social_edge(UserRef::Existing(UserId(99)), UserRef::Existing(UserId(0)), 0.5);
        b.apply(&prev, &batch);
    }

    #[test]
    fn validation_failure_leaves_the_builder_unchanged() {
        let (mut b, _, prev) = base();
        let users = b.num_users();
        let mut batch = IngestBatch::new();
        let u = batch.add_user();
        batch.add_social_edge(u, UserRef::Existing(UserId(99)), 0.5);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.apply(&prev, &batch);
        }));
        assert!(result.is_err());
        assert_eq!(b.num_users(), users, "validation precedes mutation");
        // The builder still works.
        let (live, _) = b.apply(&prev, &IngestBatch::new());
        assert_eq!(live.num_users(), users);
    }
}
