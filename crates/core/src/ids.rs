//! Instance-level identifiers.

use s3_doc::DocNodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense id of a social-network user (`Ω`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

impl UserId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Dense id of a tag (`T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TagId(pub u32);

impl TagId {
    /// The id as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// What a tag is about (§2.4: "The tag subject is either a document or
/// another tag. The latter allows to express higher-level annotations").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TagSubject {
    /// A document fragment.
    Frag(DocNodeId),
    /// Another tag (higher-level annotation, requirement R4).
    Tag(TagId),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(UserId(3).to_string(), "u3");
        assert_eq!(TagId(0).to_string(), "a0");
    }

    #[test]
    fn subjects() {
        let s = TagSubject::Frag(DocNodeId(1));
        assert_ne!(s, TagSubject::Tag(TagId(1)));
    }
}
