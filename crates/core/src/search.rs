//! The S3k query-answering algorithm (paper §4).
//!
//! The instance is explored from the seeker outwards, one social-path hop
//! per iteration (Algorithm 3 / `ExploreStep`, implemented by
//! `s3_graph::Propagation` in the paper's optimized `borderProx` form).
//! Candidate documents accumulate a score interval `[lower, upper]`:
//!
//! * `lower` uses the bounded proximity `prox≤n` of the paths seen so far —
//!   a candidate "can only get closer to the seeker";
//! * `upper` replaces each source proximity with
//!   `min(1, prox≤n + B>n)`, where `B>n` is the long-path attenuation bound.
//!
//! A `threshold` bounds the score of every **undiscovered** document: a
//! document is discovered as soon as any node of its content component — or
//! any author of a tag inside it — carries border mass, so an undiscovered
//! document's sources all have `prox≤n = 0`, giving
//! `score ≤ ⊕gen(SmaxExt(k)·B>n)` (DESIGN.md §3.4). Once the frontier stops
//! growing, no undiscovered document can ever have positive score and the
//! threshold collapses to 0.
//!
//! The search stops (Algorithm 2 / `StopCondition`) when the greedy,
//! vertical-neighbor-respecting top-k selection is provably final: every
//! unselected candidate either cannot beat the selection's worst lower
//! bound, or is dominated by a selected vertical neighbor (Definition 3.2
//! forbids a fragment and its ancestor from co-existing in an answer), and
//! the threshold cannot beat the selection either. Any-time termination
//! (time budget / iteration cap) returns the current best-effort selection,
//! as in §4.1 "Any-time termination".

use crate::ids::UserId;
use crate::instance::S3Instance;
use crate::score::{S3kScore, ScoreModel};
use s3_doc::DocNodeId;
use s3_graph::{CompId, EdgeKind, NodeId, NodeKind, Propagation};
use s3_text::KeywordId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A keyword query `(u, φ)` with a result size `k` (Definition 3.1).
#[derive(Debug, Clone)]
pub struct Query {
    /// The seeker.
    pub seeker: UserId,
    /// The query keywords `φ` (duplicates are ignored).
    pub keywords: Vec<KeywordId>,
    /// Number of results requested.
    pub k: usize,
}

impl Query {
    /// Construct a query.
    pub fn new(seeker: UserId, keywords: Vec<KeywordId>, k: usize) -> Self {
        Query { seeker, keywords, k }
    }
}

/// Search tuning knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The concrete score (γ for proximity damping, η for structure).
    pub score: S3kScore,
    /// Hard cap on explore iterations (any-time safeguard).
    pub max_iterations: u32,
    /// Optional wall-clock budget (any-time termination, §4.1).
    pub time_budget: Option<Duration>,
    /// Worker threads for the explore step (1 = sequential).
    pub threads: usize,
    /// Enable the §5.2 component-keyword pruning.
    pub component_pruning: bool,
    /// Expand query keywords through `Ext` (Definition 2.1). Disabling
    /// reduces S3k to keyword-only matching — used by the Figure 8
    /// "semantic reachability" measurement.
    pub semantic_expansion: bool,
    /// Slack used to break ties between converging bounds (the paper's
    /// finite-precision de-facto tie-breaking).
    pub epsilon: f64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            score: S3kScore::default(),
            max_iterations: 256,
            time_budget: None,
            threads: 1,
            component_pruning: true,
            semantic_expansion: true,
            epsilon: 1e-9,
        }
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub enum StopReason {
    /// The stop condition held: the returned answer is provably a top-k
    /// answer (Theorem 4.1).
    #[default]
    Converged,
    /// No document can match every query keyword (empty answer is exact).
    NoMatch,
    /// Iteration cap hit: best-effort answer (any-time mode).
    MaxIterations,
    /// Time budget exhausted: best-effort answer (any-time mode).
    TimeBudget,
}

/// One result document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The returned fragment (identified by the URI of its root, §2.3).
    pub doc: DocNodeId,
    /// Certified lower bound on its score.
    pub lower: f64,
    /// Certified upper bound on its score.
    pub upper: f64,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The top-k documents, best first.
    pub hits: Vec<Hit>,
    /// Every candidate document examined (used by the §5.4 qualitative
    /// measures — "candidates reached by our algorithm").
    pub candidate_docs: Vec<DocNodeId>,
    /// Diagnostics.
    pub stats: SearchStats,
}

/// Search diagnostics (used by the benchmark harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Explore iterations executed.
    pub iterations: u32,
    /// Candidate documents ever considered.
    pub candidates: usize,
    /// Documents rejected by the per-document keyword check.
    pub rejected: usize,
    /// Content components processed.
    pub components: usize,
    /// Components skipped by the keyword pruning test.
    pub pruned_components: usize,
    /// Why the search ended.
    pub stop: StopReason,
}


#[derive(Debug)]
struct Candidate {
    doc: DocNodeId,
    /// Per query keyword: deduplicated `(source, structural coefficient)`
    /// pairs aggregated over `Ext(k)` (DESIGN.md §3.3).
    kw_sources: Vec<Vec<(NodeId, f64)>>,
    lower: f64,
    upper: f64,
}

/// Reusable S3k engine: holds the per-(instance, score) precomputations
/// (the `Smax` table). Build once, run many queries.
///
/// The engine is generic over the score model (the paper's §3.3 "generic
/// score"): [`S3kEngine::new`] uses the concrete S3k score from the
/// configuration, [`S3kEngine::with_model`] accepts any [`ScoreModel`].
pub struct S3kEngine<'i, S: ScoreModel = S3kScore> {
    instance: &'i S3Instance,
    config: SearchConfig,
    model: S,
    smax: HashMap<KeywordId, f64>,
}

impl<'i> S3kEngine<'i> {
    /// Precompute the `Smax` table for this score's structural damping.
    pub fn new(instance: &'i S3Instance, config: SearchConfig) -> Self {
        let model = config.score;
        S3kEngine::with_model(instance, config, model)
    }
}

impl<'i, S: ScoreModel> S3kEngine<'i, S> {
    /// Build an engine around an arbitrary feasible score model; the
    /// `config.score` field is ignored in favor of `model`.
    pub fn with_model(instance: &'i S3Instance, config: SearchConfig, model: S) -> Self {
        let smax =
            instance.connections().smax_table_with(|t, d| model.structural_weight(t, d));
        S3kEngine { instance, config, model, smax }
    }

    /// The score model driving this engine.
    pub fn model(&self) -> &S {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// Answer one query.
    pub fn run(&self, query: &Query) -> TopKResult {
        let started = Instant::now();
        let inst = self.instance;
        let graph = inst.graph();

        // Deduplicate φ and expand each keyword (Definition 2.1).
        let mut keywords: Vec<KeywordId> = query.keywords.clone();
        keywords.sort_unstable();
        keywords.dedup();
        let exts: Vec<Arc<Vec<KeywordId>>> = keywords
            .iter()
            .map(|&k| {
                if self.config.semantic_expansion {
                    inst.expand_keyword(k)
                } else {
                    Arc::new(vec![k])
                }
            })
            .collect();

        let mut stats = SearchStats::default();

        // SmaxExt(k) = Σ_{k' ∈ Ext(k)} Smax(k'): threshold coefficients.
        let smax_ext: Vec<f64> = exts
            .iter()
            .map(|ext| ext.iter().map(|k| self.smax.get(k).copied().unwrap_or(0.0)).sum())
            .collect();
        let unanswerable = if self.model.requires_all_keywords() {
            smax_ext.iter().any(|&s| s <= 0.0)
        } else {
            smax_ext.iter().all(|&s| s <= 0.0)
        };
        if keywords.is_empty() || unanswerable {
            // Some keyword (or its whole extension) never occurs: the score
            // of every document is 0 and the (positive-score) answer is
            // empty — exact.
            stats.stop = StopReason::NoMatch;
            return TopKResult { hits: Vec::new(), candidate_docs: Vec::new(), stats };
        }

        let seeker = inst.user_node(query.seeker);
        let mut prop = Propagation::new(graph, self.model.gamma(), seeker);

        let mut candidates: Vec<Candidate> = Vec::new();
        let mut candidate_of: HashMap<DocNodeId, usize> = HashMap::new();
        let mut processed: Vec<bool> = vec![false; graph.components().len()];
        let mut frontier_closed = false;

        // Discovery from the seed (the seeker may source tags/documents).
        let mut newly: Vec<NodeId> = vec![seeker];

        loop {
            // ---- Discovery (Algorithm GetDocuments, component form). ----
            for &v in &newly {
                match graph.kind(v) {
                    NodeKind::Frag(_) | NodeKind::Tag(_) => {
                        self.discover(
                            graph.components().component_of(v),
                            &exts,
                            &mut candidates,
                            &mut candidate_of,
                            &mut processed,
                            &mut stats,
                        );
                    }
                    NodeKind::User(_) => {
                        // Tags authored by this user may source connections
                        // in otherwise-unreached components.
                        for (t, kind, _) in graph.out_edges(v) {
                            if kind == EdgeKind::HasAuthorInv {
                                self.discover(
                                    graph.components().component_of(t),
                                    &exts,
                                    &mut candidates,
                                    &mut candidate_of,
                                    &mut processed,
                                    &mut stats,
                                );
                            }
                        }
                    }
                }
            }

            // ---- Bounds (Algorithm ComputeCandidatesBounds). ----
            let bound = prop.bound_beyond();
            let mut lo_parts: Vec<f64> = Vec::with_capacity(exts.len());
            let mut hi_parts: Vec<f64> = Vec::with_capacity(exts.len());
            for c in candidates.iter_mut() {
                lo_parts.clear();
                hi_parts.clear();
                for srcs in &c.kw_sources {
                    let mut lo = 0.0f64;
                    let mut hi = 0.0f64;
                    for &(src, coef) in srcs {
                        let p = prop.prox_leq(src);
                        lo += coef * p;
                        hi += coef * (p + bound).min(1.0);
                    }
                    lo_parts.push(lo);
                    hi_parts.push(hi);
                }
                c.lower = self.model.combine_keywords(&lo_parts);
                c.upper = self.model.combine_keywords(&hi_parts);
            }
            let threshold = if frontier_closed {
                0.0
            } else {
                let parts: Vec<f64> =
                    smax_ext.iter().map(|&s| s * bound.min(1.0)).collect();
                self.model.combine_keywords(&parts)
            };

            // ---- Selection + stop test (Algorithm StopCondition). ----
            let selection = self.select(&candidates, query.k);
            if self.stop_condition(&candidates, &selection, query.k, threshold, frontier_closed)
            {
                stats.stop = StopReason::Converged;
                stats.iterations = prop.iteration();
                return self.finish(candidates, selection, stats);
            }
            if prop.iteration() >= self.config.max_iterations {
                stats.stop = StopReason::MaxIterations;
                stats.iterations = prop.iteration();
                return self.finish(candidates, selection, stats);
            }
            if let Some(budget) = self.config.time_budget {
                if started.elapsed() >= budget {
                    stats.stop = StopReason::TimeBudget;
                    stats.iterations = prop.iteration();
                    return self.finish(candidates, selection, stats);
                }
            }

            // ---- Explore one more hop (Algorithm ExploreStep). ----
            newly = if self.config.threads > 1 {
                prop.step_parallel(self.config.threads)
            } else {
                prop.step()
            };
            if newly.is_empty() {
                frontier_closed = true;
            }
        }
    }

    /// Process one content component: keyword pruning (§5.2), then the
    /// per-document `con` check.
    fn discover(
        &self,
        comp: CompId,
        exts: &[Arc<Vec<KeywordId>>],
        candidates: &mut Vec<Candidate>,
        candidate_of: &mut HashMap<DocNodeId, usize>,
        processed: &mut [bool],
        stats: &mut SearchStats,
    ) {
        if processed[comp.index()] {
            return;
        }
        processed[comp.index()] = true;
        stats.components += 1;

        let inst = self.instance;
        if self.config.component_pruning {
            let comp_kws = inst.component_keywords(comp);
            let hit = |ext: &Arc<Vec<KeywordId>>| ext.iter().any(|k| comp_kws.contains(k));
            let matches = if self.model.requires_all_keywords() {
                exts.iter().all(hit)
            } else {
                exts.iter().any(hit)
            };
            if !matches {
                stats.pruned_components += 1;
                return;
            }
        }

        let graph = inst.graph();
        let index = inst.connections();
        let conjunctive = self.model.requires_all_keywords();
        for &node in graph.components().members(comp) {
            let Some(d) = graph.frag_of_node(node) else { continue };
            if candidate_of.contains_key(&d) {
                continue;
            }
            // con(d, k) = ∪_{k' ∈ Ext(k)} conDirect(d, k'), deduplicated on
            // (type, fragment, source) — con is a set.
            let mut kw_sources: Vec<Vec<(NodeId, f64)>> = Vec::with_capacity(exts.len());
            let mut matched = 0usize;
            let mut missing = false;
            for ext in exts {
                let mut seen: HashSet<(crate::connections::ConnType, DocNodeId, NodeId)> =
                    HashSet::new();
                let mut agg: HashMap<NodeId, f64> = HashMap::new();
                for &k in ext.iter() {
                    for c in index.connections(d, k) {
                        if seen.insert((c.ctype, c.frag, c.src)) {
                            *agg.entry(c.src).or_insert(0.0) +=
                                self.model.structural_weight(c.ctype, c.depth);
                        }
                    }
                }
                if agg.is_empty() {
                    missing = true;
                    if conjunctive {
                        break;
                    }
                } else {
                    matched += 1;
                }
                let mut v: Vec<(NodeId, f64)> = agg.into_iter().collect();
                v.sort_unstable_by_key(|(n, _)| *n);
                kw_sources.push(v);
            }
            let qualifies = if conjunctive { !missing } else { matched > 0 };
            if !qualifies {
                stats.rejected += 1;
                continue;
            }
            // Disjunctive models may have skipped pushing nothing; pad the
            // keyword slots so bounds line up positionally.
            while kw_sources.len() < exts.len() {
                kw_sources.push(Vec::new());
            }
            candidate_of.insert(d, candidates.len());
            candidates.push(Candidate { doc: d, kw_sources, lower: 0.0, upper: f64::MAX });
            stats.candidates += 1;
        }
    }

    /// Greedy top-k selection by upper bound, skipping vertical neighbors
    /// of already-selected documents (Definition 3.2's constraint).
    fn select(&self, candidates: &[Candidate], k: usize) -> Vec<usize> {
        let forest = self.instance.forest();
        let mut order: Vec<usize> = (0..candidates.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            candidates[b]
                .upper
                .partial_cmp(&candidates[a].upper)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(candidates[a].doc.cmp(&candidates[b].doc))
        });
        let mut selection: Vec<usize> = Vec::with_capacity(k);
        for i in order {
            if selection.len() == k {
                break;
            }
            let d = candidates[i].doc;
            if candidates[i].upper <= 0.0 {
                break;
            }
            let conflict = selection
                .iter()
                .any(|&s| forest.is_vertical_neighbor(candidates[s].doc, d));
            if !conflict {
                selection.push(i);
            }
        }
        selection
    }

    /// Is the current selection provably a top-k answer?
    fn stop_condition(
        &self,
        candidates: &[Candidate],
        selection: &[usize],
        k: usize,
        threshold: f64,
        frontier_closed: bool,
    ) -> bool {
        let eps = self.config.epsilon;
        let forest = self.instance.forest();
        let in_selection: HashSet<usize> = selection.iter().copied().collect();
        let min_lower = selection
            .iter()
            .map(|&i| candidates[i].lower)
            .fold(f64::INFINITY, f64::min);

        if selection.len() == k {
            // Undiscovered documents must not be able to enter.
            if threshold > min_lower + eps {
                return false;
            }
        } else {
            // Fewer than k positive-score documents may exist; that is only
            // certain once the frontier stopped growing (no undiscovered
            // document can have positive score) — see module docs.
            if !frontier_closed {
                return false;
            }
        }
        // Every unselected candidate must be provably excluded: either it
        // cannot beat the selection's weakest member, or a selected
        // vertical neighbor provably dominates it.
        for (i, c) in candidates.iter().enumerate() {
            if in_selection.contains(&i) || c.upper <= 0.0 {
                continue;
            }
            let beaten_globally = selection.len() == k && c.upper <= min_lower + eps;
            if beaten_globally {
                continue;
            }
            let dominated = selection.iter().any(|&s| {
                forest.is_vertical_neighbor(candidates[s].doc, c.doc)
                    && candidates[s].lower + eps >= c.upper
            });
            if !dominated {
                return false;
            }
        }
        true
    }

    /// Materialize the result.
    fn finish(
        &self,
        candidates: Vec<Candidate>,
        selection: Vec<usize>,
        stats: SearchStats,
    ) -> TopKResult {
        let hits = selection
            .into_iter()
            .map(|i| Hit {
                doc: candidates[i].doc,
                lower: candidates[i].lower,
                upper: candidates[i].upper,
            })
            .collect();
        let candidate_docs = candidates.iter().map(|c| c.doc).collect();
        TopKResult { hits, candidate_docs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TagSubject;
    use crate::instance::InstanceBuilder;
    use s3_doc::DocBuilder;
    use s3_text::Language;

    /// Figure-1-style instance: u1 (seeker) is a friend of u0; u0 posted d0;
    /// u2 replied to d0 with d1 containing "M.S."; an ontology says
    /// M.S. ≺sc degree ≺sc graduate-related keywords.
    fn motivating() -> (S3Instance, UserId, KeywordId, DocNodeId) {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        let u2 = b.add_user();
        b.add_social_edge(u1, u0, 1.0);
        b.add_social_edge(u0, u1, 1.0);

        // Ontology: ex:MS ≺sc ex:degree.
        let ms_kw = b.intern_entity_keyword("ex:MS");
        let degree_kw = b.intern_entity_keyword("ex:degree");
        let (ms_uri, deg_uri) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern("ex:MS"), d.intern("ex:degree"))
        };
        b.rdf_mut().insert(
            ms_uri,
            s3_rdf::vocabulary::RDFS_SUBCLASS_OF,
            s3_rdf::Term::Uri(deg_uri),
            1.0,
        );

        // d0 by u0: "a university education matters".
        let kws0 = b.analyze("a university education matters");
        let mut d0 = DocBuilder::new("post");
        d0.set_content(d0.root(), kws0);
        let t0 = b.add_document(d0, Some(u0));
        let d0_root = b.doc_root(t0);

        // d1 by u2, replying to d0, mentions the ex:MS entity.
        let mut d1 = DocBuilder::new("reply");
        let text = d1.child(d1.root(), "text");
        d1.set_content(text, vec![ms_kw]);
        let t1 = b.add_document(d1, Some(u2));
        b.add_comment_edge(t1, d0_root);
        let d1_text = b.doc_node(t1, text);

        (b.build(), u1, degree_kw, d1_text)
    }

    #[test]
    fn semantic_search_finds_the_reply_snippet() {
        // The paper's R3 scenario: u1 searches "degree"; d1 only says
        // "M.S.", but the ontology bridges them.
        let (inst, u1, degree, d1_text) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 3), &SearchConfig::default());
        assert_eq!(res.stats.stop, StopReason::Converged);
        assert!(!res.hits.is_empty(), "semantics must surface the M.S. snippet");
        assert!(
            res.hits.iter().any(|h| h.doc == d1_text
                || inst.forest().is_vertical_neighbor(h.doc, d1_text)),
            "expected the d1 snippet among {:?}",
            res.hits
        );
        // Without vertical neighbors in the answer (Definition 3.2).
        for (i, a) in res.hits.iter().enumerate() {
            for b in &res.hits[i + 1..] {
                assert!(!inst.forest().is_vertical_neighbor(a.doc, b.doc));
            }
        }
    }

    #[test]
    fn no_match_returns_empty_exactly() {
        let (inst, u1, _, _) = motivating();
        let ghost = KeywordId(9999);
        let res = inst.search(&Query::new(u1, vec![ghost], 3), &SearchConfig::default());
        assert_eq!(res.stats.stop, StopReason::NoMatch);
        assert!(res.hits.is_empty());
    }

    #[test]
    fn bounds_bracket_each_other() {
        let (inst, u1, degree, _) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 2), &SearchConfig::default());
        for h in &res.hits {
            assert!(h.lower <= h.upper + 1e-12);
            assert!(h.lower > 0.0, "converged hits have certified positive score");
        }
    }

    #[test]
    fn k_limits_result_size() {
        let (inst, u1, degree, _) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 1), &SearchConfig::default());
        assert_eq!(res.hits.len(), 1);
    }

    #[test]
    fn anytime_time_budget_returns_best_effort() {
        let (inst, u1, degree, _) = motivating();
        let cfg = SearchConfig {
            time_budget: Some(Duration::from_nanos(1)),
            ..SearchConfig::default()
        };
        let res = inst.search(&Query::new(u1, vec![degree], 3), &cfg);
        // Either it converged instantly or it reports the budget.
        assert!(matches!(res.stats.stop, StopReason::TimeBudget | StopReason::Converged));
    }

    #[test]
    fn component_pruning_does_not_change_results() {
        let (inst, u1, degree, _) = motivating();
        let on = inst.search(&Query::new(u1, vec![degree], 3), &SearchConfig::default());
        let cfg_off = SearchConfig { component_pruning: false, ..SearchConfig::default() };
        let off = inst.search(&Query::new(u1, vec![degree], 3), &cfg_off);
        let docs_on: Vec<_> = on.hits.iter().map(|h| h.doc).collect();
        let docs_off: Vec<_> = off.hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs_on, docs_off);
    }

    #[test]
    fn multi_keyword_requires_all() {
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        let kws = b.analyze("university degree");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws.clone());
        b.add_document(doc, Some(u));
        let mut doc2 = DocBuilder::new("post");
        let only_first = vec![kws[0]];
        doc2.set_content(doc2.root(), only_first);
        b.add_document(doc2, Some(u));
        let inst = b.build();
        let res = inst.search(&Query::new(u, kws, 5), &SearchConfig::default());
        assert_eq!(res.hits.len(), 1, "only the document with both keywords qualifies");
    }

    #[test]
    fn endorsement_tags_contribute_to_score() {
        let mut b = InstanceBuilder::new(Language::English);
        let author = b.add_user();
        let endorser = b.add_user();
        let seeker = b.add_user();
        // The seeker is socially close to the endorser only.
        b.add_social_edge(seeker, endorser, 1.0);
        let kws = b.analyze("great university");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        let t = b.add_document(doc, Some(author));
        let root = b.doc_root(t);
        b.add_tag(TagSubject::Frag(root), endorser, None);
        let inst = b.build();
        let univers = inst.vocabulary().get("univers").unwrap();
        let res = inst.search(&Query::new(seeker, vec![univers], 1), &SearchConfig::default());
        assert_eq!(res.hits.len(), 1);
        assert!(res.hits[0].lower > 0.0, "the endorsement links the seeker to the doc");
    }
}
