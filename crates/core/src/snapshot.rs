//! Durable, versioned snapshots of an [`InstanceBuilder`] + [`S3Instance`]
//! pair — the warm-restart format behind the live engines.
//!
//! # File layout
//!
//! ```text
//! ┌──────────┬─────────┬───────┬──────────────────────────────────────┐
//! │ magic 8B │ ver u16 │ crc32 │ payload (length-prefixed sections)   │
//! └──────────┴─────────┴───────┴──────────────────────────────────────┘
//! payload = block(builder source state) ++ block(frozen derived state)
//! ```
//!
//! The **builder block** persists the replayable source of truth: the
//! language + vocabulary, the *unsaturated* RDF store, the document
//! forest, and the raw entity/edge lists plus the `BuildEvent` log that
//! [`crate::instance`]'s `build_graph` replays to number graph nodes.
//! Restoring it yields a builder that accepts further
//! [`crate::IngestBatch`]es exactly as the saved one would — the
//! load-snapshot-then-replay-WAL-tail recovery path.
//!
//! The **derived block** persists the expensive frozen structures
//! verbatim — the saturated RDF store, the social graph (CSR, weight
//! tables and components; the forest is written once, in the builder
//! block) and the `con(d,k)` index — so a load is a *warm* restart: no
//! saturation, no `con` fixpoint, and bit-identical floats. The cheap
//! side tables (user/tag node maps, poster map, comment pairs, component
//! keyword sets, keyword↔URI bridges) are rebuilt by linear scans.
//!
//! Loading is panic-free: wrong magic, wrong version, any flipped or
//! missing byte, or any structurally inconsistent value yields a
//! [`SnapError`], never a panic and never a silently wrong instance (the
//! payload is covered by a CRC-32, and every decoded index is validated
//! before use).

use crate::connections::ConnectionIndex;
use crate::ids::{TagId, TagSubject, UserId};
use crate::instance::{
    keyword_bridges, tag_records, BuildEvent, InstanceBuilder, PendingTag, S3Instance, Tombstones,
};
use s3_doc::{DocNodeId, Forest, TreeId};
use s3_graph::{NodeKind, SocialGraph};
use s3_rdf::{TripleStore, UriId};
use s3_snap::{put_block, put_bool, put_f64, put_u32v, put_usize, SnapError, SnapReader};
use s3_text::{Analyzer, KeywordId, Language, Vocabulary};
use std::collections::{HashMap, HashSet};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"S3KSNAP\0";

/// Version of the snapshot format this build writes. Any change to the
/// payload encoding must bump it. Version 2 added tombstone events
/// (`Dead*` discriminants in the event log); version-1 files predate
/// deletions, decode under the same rules (their logs simply carry no
/// tombstones) and remain loadable. Anything else is a hard load error.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Oldest snapshot version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u16 = 1;

/// Serialize a `(builder, instance)` pair into the snapshot format.
///
/// `instance` must be the builder's latest frozen snapshot (the pair the
/// live engines maintain); the entity counts are asserted to agree.
pub fn write_snapshot(builder: &InstanceBuilder, instance: &S3Instance) -> Vec<u8> {
    assert_eq!(
        builder.forest.num_nodes(),
        instance.forest().num_nodes(),
        "snapshot requires the builder and instance to be in sync"
    );
    assert_eq!(builder.num_users as usize, instance.num_users(), "user counts out of sync");
    assert_eq!(builder.tags.len(), instance.num_tags(), "tag counts out of sync");

    let mut payload = Vec::new();
    put_block(&mut payload, |out| write_builder_block(builder, out));
    put_block(&mut payload, |out| {
        instance.rdf.snap_write(out);
        instance.graph.snap_write(out);
        instance.conn_index.snap_write(out);
    });

    let mut bytes = Vec::with_capacity(payload.len() + 14);
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&s3_snap::crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Decode a snapshot produced by [`write_snapshot`]. Never panics on
/// malformed input; every rejection is a descriptive [`SnapError`].
pub fn read_snapshot(bytes: &[u8]) -> Result<(InstanceBuilder, S3Instance), SnapError> {
    if bytes.len() < 14 {
        return Err(SnapError::Truncated);
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[8], bytes[9]]);
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(SnapError::Version(version));
    }
    let crc = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]);
    let payload = &bytes[14..];
    if s3_snap::crc32(payload) != crc {
        return Err(SnapError::Checksum);
    }

    let mut r = SnapReader::new(payload);
    let mut builder_block = r.block()?;
    let builder = read_builder_block(&mut builder_block)?;
    builder_block.finish()?;

    let mut derived = r.block()?;
    let rdf_sat = TripleStore::snap_read(&mut derived)?;
    let graph = SocialGraph::snap_read(builder.forest.clone(), &mut derived)?;
    let conn_index = ConnectionIndex::snap_read(&mut derived, builder.forest.num_nodes())?;
    derived.finish()?;
    r.finish()?;

    let instance = assemble_instance(&builder, rdf_sat, graph, conn_index)?;
    Ok((builder, instance))
}

/// [`write_snapshot`] to a file, atomically: the bytes land in a
/// temporary sibling first, are fsynced, and replace `path` by rename
/// (with a directory fsync), so a crash mid-save never clobbers the
/// previous snapshot with a torn one.
pub fn save_snapshot(
    path: &Path,
    builder: &InstanceBuilder,
    instance: &S3Instance,
) -> Result<(), SnapError> {
    let bytes = write_snapshot(builder, instance);
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// [`read_snapshot`] from a file.
pub fn load_snapshot(path: &Path) -> Result<(InstanceBuilder, S3Instance), SnapError> {
    let bytes = std::fs::read(path)?;
    read_snapshot(&bytes)
}

fn write_builder_block(b: &InstanceBuilder, out: &mut Vec<u8>) {
    b.analyzer.language().snap_write(out);
    b.analyzer.vocabulary().snap_write(out);
    b.rdf.snap_write(out);
    b.forest.snap_write(out);
    put_u32v(out, b.num_users);
    let mut uris: Vec<(UriId, UserId)> = b.user_uris.iter().map(|(&u, &id)| (u, id)).collect();
    uris.sort_unstable();
    put_usize(out, uris.len());
    for (uri, user) in uris {
        put_u32v(out, uri.0);
        put_u32v(out, user.0);
    }
    put_usize(out, b.social_edges.len());
    for &(from, to, w) in &b.social_edges {
        put_u32v(out, from.0);
        put_u32v(out, to.0);
        put_f64(out, w);
    }
    put_usize(out, b.posters.len());
    for &(tree, user) in &b.posters {
        put_u32v(out, tree.0);
        put_u32v(out, user.0);
    }
    put_usize(out, b.comments.len());
    for &(tree, target) in &b.comments {
        put_u32v(out, tree.0);
        put_u32v(out, target.0);
    }
    put_usize(out, b.tags.len());
    for t in &b.tags {
        match t.subject {
            TagSubject::Frag(f) => {
                out.push(0);
                put_u32v(out, f.0);
            }
            TagSubject::Tag(tag) => {
                out.push(1);
                put_u32v(out, tag.0);
            }
        }
        put_u32v(out, t.author.0);
        put_bool(out, t.keyword.is_some());
        if let Some(kw) = t.keyword {
            put_u32v(out, kw.0);
        }
    }
    put_usize(out, b.events.len());
    for ev in &b.events {
        match ev {
            BuildEvent::User => out.push(0),
            BuildEvent::Tree => out.push(1),
            BuildEvent::Tag => out.push(2),
            BuildEvent::DeadUser(u) => {
                out.push(3);
                put_u32v(out, u.0);
            }
            BuildEvent::DeadTree(t) => {
                out.push(4);
                put_u32v(out, t.0);
            }
            BuildEvent::DeadTag(t) => {
                out.push(5);
                put_u32v(out, t.0);
            }
        }
    }
}

fn read_builder_block(r: &mut SnapReader<'_>) -> Result<InstanceBuilder, SnapError> {
    let language = Language::snap_read(r)?;
    let vocabulary = Vocabulary::snap_read(r)?;
    let rdf = TripleStore::snap_read(r)?;
    let forest = Forest::snap_read(r)?;
    let num_users = r.u32v()?;
    let num_trees = forest.num_trees();
    let num_kws = vocabulary.len() as u32;
    let num_uris = rdf.dictionary().len() as u32;

    let n = r.seq(2)?;
    let mut user_uris = HashMap::with_capacity(n);
    for _ in 0..n {
        let uri = r.u32v()?;
        let user = r.u32v()?;
        if uri >= num_uris || user >= num_users {
            return Err(SnapError::Value("user-uri entry out of range"));
        }
        if user_uris.insert(UriId(uri), UserId(user)).is_some() {
            return Err(SnapError::Value("duplicate user uri"));
        }
    }

    let n = r.seq(10)?;
    let mut social_edges = Vec::with_capacity(n);
    for _ in 0..n {
        let from = r.u32v()?;
        let to = r.u32v()?;
        let w = r.f64()?;
        if from >= num_users || to >= num_users {
            return Err(SnapError::Value("social edge user out of range"));
        }
        if !(w > 0.0 && w <= 1.0) {
            return Err(SnapError::Value("social weight outside (0,1]"));
        }
        social_edges.push((UserId(from), UserId(to), w));
    }

    let n = r.seq(2)?;
    let mut posters = Vec::with_capacity(n);
    for _ in 0..n {
        let tree = r.u32v()?;
        let user = r.u32v()?;
        if tree as usize >= num_trees || user >= num_users {
            return Err(SnapError::Value("poster entry out of range"));
        }
        posters.push((TreeId(tree), UserId(user)));
    }

    let n = r.seq(2)?;
    let mut comments = Vec::with_capacity(n);
    for _ in 0..n {
        let tree = r.u32v()?;
        let target = r.u32v()?;
        if tree as usize >= num_trees || target as usize >= forest.num_nodes() {
            return Err(SnapError::Value("comment entry out of range"));
        }
        if forest.tree_of(DocNodeId(target)) == TreeId(tree) {
            return Err(SnapError::Value("document comments on itself"));
        }
        comments.push((TreeId(tree), DocNodeId(target)));
    }

    let n = r.seq(4)?;
    let mut tags: Vec<PendingTag> = Vec::with_capacity(n);
    for i in 0..n {
        let subject = match r.u8()? {
            0 => {
                let f = r.u32v()?;
                if f as usize >= forest.num_nodes() {
                    return Err(SnapError::Value("tag fragment out of range"));
                }
                TagSubject::Frag(DocNodeId(f))
            }
            1 => {
                let t = r.u32v()?;
                if t as usize >= i {
                    return Err(SnapError::Value("tag subject must be an earlier tag"));
                }
                TagSubject::Tag(TagId(t))
            }
            _ => return Err(SnapError::Value("tag-subject discriminant")),
        };
        let author = r.u32v()?;
        if author >= num_users {
            return Err(SnapError::Value("tag author out of range"));
        }
        let keyword = if r.bool()? {
            let kw = r.u32v()?;
            if kw >= num_kws {
                return Err(SnapError::Value("tag keyword out of range"));
            }
            Some(KeywordId(kw))
        } else {
            None
        };
        tags.push(PendingTag { subject, author: UserId(author), keyword });
    }

    // Event log: creation events must replay to the entity counts, and
    // tombstone events (version 2) must kill only already-created, not
    // yet dead entities — replaying the log reconstructs the dead sets.
    let n = r.seq(1)?;
    let mut events = Vec::with_capacity(n);
    let mut dead = Tombstones::default();
    let (mut ev_users, mut ev_trees, mut ev_tags) = (0u32, 0usize, 0usize);
    for _ in 0..n {
        events.push(match r.u8()? {
            0 => {
                ev_users += 1;
                BuildEvent::User
            }
            1 => {
                ev_trees += 1;
                BuildEvent::Tree
            }
            2 => {
                ev_tags += 1;
                BuildEvent::Tag
            }
            3 => {
                let u = r.u32v()?;
                if u >= ev_users || !dead.users.insert(UserId(u)) {
                    return Err(SnapError::Value("invalid user tombstone"));
                }
                BuildEvent::DeadUser(UserId(u))
            }
            4 => {
                let t = r.u32v()?;
                if t as usize >= ev_trees || !dead.trees.insert(TreeId(t)) {
                    return Err(SnapError::Value("invalid document tombstone"));
                }
                BuildEvent::DeadTree(TreeId(t))
            }
            5 => {
                let t = r.u32v()?;
                if t as usize >= ev_tags || !dead.tags.insert(TagId(t)) {
                    return Err(SnapError::Value("invalid tag tombstone"));
                }
                BuildEvent::DeadTag(TagId(t))
            }
            _ => return Err(SnapError::Value("build-event discriminant")),
        });
    }
    if ev_users != num_users || ev_trees != num_trees || ev_tags != tags.len() {
        return Err(SnapError::Value("event log disagrees with entity counts"));
    }

    // Retractions physically unlink edges when they land, so a consistent
    // snapshot never stores a list entry touching a tombstoned entity
    // (live tags only; dead tags legitimately keep their stored shape).
    if social_edges.iter().any(|&(a, b, _)| !dead.user_alive(a) || !dead.user_alive(b)) {
        return Err(SnapError::Value("social edge touches a tombstoned user"));
    }
    if posters.iter().any(|&(t, u)| !dead.tree_alive(t) || !dead.user_alive(u)) {
        return Err(SnapError::Value("poster entry touches a tombstoned entity"));
    }
    if comments.iter().any(|&(t, tgt)| !dead.tree_alive(t) || !dead.tree_alive(forest.tree_of(tgt)))
    {
        return Err(SnapError::Value("comment edge touches a tombstoned document"));
    }
    for (i, t) in tags.iter().enumerate() {
        if !dead.tag_alive(TagId(i as u32)) {
            continue;
        }
        let subject_dead = match t.subject {
            TagSubject::Frag(f) => !dead.tree_alive(forest.tree_of(f)),
            TagSubject::Tag(b) => !dead.tag_alive(b),
        };
        if subject_dead || !dead.user_alive(t.author) {
            return Err(SnapError::Value("live tag touches a tombstoned entity"));
        }
    }

    Ok(InstanceBuilder {
        analyzer: Analyzer::from_parts(language, vocabulary),
        rdf,
        forest,
        num_users,
        user_uris,
        social_edges,
        posters,
        comments,
        tags,
        events,
        dead,
        rdf_dirty: std::cell::Cell::new(false),
    })
}

/// Rebuild the cheap side tables and assemble the frozen instance from
/// the loaded source + derived state. Mirrors the tail of
/// `crate::instance::freeze`, minus everything expensive.
fn assemble_instance(
    builder: &InstanceBuilder,
    rdf_sat: TripleStore,
    graph: SocialGraph,
    conn_index: ConnectionIndex,
) -> Result<S3Instance, SnapError> {
    if !rdf_sat.is_saturated() {
        return Err(SnapError::Value("derived RDF store is not saturated"));
    }
    if graph.num_users() != builder.num_users as usize
        || graph.num_tags() != builder.tags.len()
        || graph.forest().num_trees() != builder.forest.num_trees()
    {
        return Err(SnapError::Value("graph entity counts disagree with the builder"));
    }

    // Node tables: users and tags appear in payload order (validated by
    // the graph decoder), so one ascending scan recovers both maps.
    let mut user_nodes = Vec::with_capacity(graph.num_users());
    let mut tag_nodes = Vec::with_capacity(graph.num_tags());
    for node in graph.nodes() {
        match graph.kind(node) {
            NodeKind::User(_) => user_nodes.push(node),
            NodeKind::Tag(_) => tag_nodes.push(node),
            NodeKind::Frag(_) => {}
        }
    }

    let poster_of: HashMap<TreeId, UserId> = builder.posters.iter().copied().collect();
    let comment_pairs: Vec<(DocNodeId, DocNodeId)> = builder
        .comments
        .iter()
        .map(|&(tree, target)| (builder.forest.root(tree), target))
        .collect();

    // Component → keyword sets (§5.2 pruning), rebuilt from the loaded
    // connection index.
    let mut comp_keywords: Vec<HashSet<KeywordId>> = vec![HashSet::new(); graph.components().len()];
    for idx in 0..graph.forest().num_nodes() {
        let d = DocNodeId(idx as u32);
        let Some(node) = graph.node_of_frag(d) else {
            return Err(SnapError::Value("forest node missing from the graph"));
        };
        let comp = graph.components().component_of(node);
        comp_keywords[comp.index()].extend(conn_index.keywords_of(d));
    }

    let mut kw_to_uri: HashMap<KeywordId, UriId> = HashMap::new();
    let mut uri_to_kw: HashMap<UriId, KeywordId> = HashMap::new();
    keyword_bridges(builder.analyzer.vocabulary(), &rdf_sat, 0, &mut kw_to_uri, &mut uri_to_kw);

    let dead_nodes = builder.dead.mark_nodes(&graph, &user_nodes, &tag_nodes);

    Ok(S3Instance {
        language: builder.analyzer.language(),
        vocabulary: builder.analyzer.vocabulary().clone(),
        rdf: Arc::new(rdf_sat),
        graph,
        user_nodes,
        tag_records: tag_records(&builder.tags, &tag_nodes),
        poster_of,
        comment_pairs,
        conn_index,
        comp_keywords,
        kw_to_uri,
        uri_to_kw,
        dead_nodes,
        ext_cache: Mutex::new(HashMap::new()),
        smax_cache: Mutex::new(HashMap::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_doc::DocBuilder;

    fn sample() -> InstanceBuilder {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user_with_uri("ex:u0");
        let u1 = b.add_user();
        b.add_social_edge(u1, u0, 0.7);
        let kws = b.analyze("universities and degrees");
        let mut doc = DocBuilder::new("post");
        let child = doc.child(doc.root(), "sec");
        doc.set_content(child, kws);
        let t = b.add_document(doc, Some(u0));
        let root = b.doc_root(t);
        let c = b.add_document(DocBuilder::new("reply"), Some(u1));
        b.add_comment_edge(c, root);
        let kw = b.analyzer_mut().vocabulary_mut().intern("univers");
        let a = b.add_tag(TagSubject::Frag(root), u1, Some(kw));
        b.add_tag(TagSubject::Tag(a), u0, None);
        b
    }

    #[test]
    fn round_trip_preserves_counts_and_stats() {
        let b = sample();
        let inst = b.snapshot();
        let bytes = write_snapshot(&b, &inst);
        let (b2, inst2) = read_snapshot(&bytes).expect("round trip");
        assert_eq!(inst.stats(), inst2.stats());
        assert_eq!(b2.num_users(), b.num_users());
        // The loaded pair snapshots to the same bytes again.
        let bytes2 = write_snapshot(&b2, &inst2);
        assert_eq!(bytes, bytes2, "snapshot encoding must be deterministic");
    }

    #[test]
    fn round_trip_preserves_search_results() {
        let b = sample();
        let inst = b.snapshot();
        let bytes = write_snapshot(&b, &inst);
        let (_, inst2) = read_snapshot(&bytes).expect("round trip");
        let q = crate::search::Query::new(
            crate::ids::UserId(1),
            inst.query_keywords("universities"),
            2,
        );
        let cfg = crate::search::SearchConfig::default();
        let r1 = inst.search(&q, &cfg);
        let r2 = inst2.search(&q, &cfg);
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"), "results must be byte-identical");
    }

    #[test]
    fn version1_snapshots_still_load() {
        // A tombstone-free event log is byte-identical between versions 1
        // and 2 (version 2 only *added* the `Dead*` discriminants), so a
        // faithful v1 file is today's bytes with the header version
        // patched — the CRC covers the payload only.
        let b = sample();
        let inst = b.snapshot();
        let mut bytes = write_snapshot(&b, &inst);
        assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), SNAPSHOT_VERSION);
        bytes[8..10].copy_from_slice(&SNAPSHOT_MIN_VERSION.to_le_bytes());
        let (b2, inst2) = read_snapshot(&bytes).expect("v1 snapshots must keep loading");
        assert_eq!(inst2.num_users(), inst.num_users());
        assert_eq!(inst2.num_documents(), inst.num_documents());
        assert_eq!(b2.dead_counts(), (0, 0, 0));
    }

    #[test]
    fn wrong_magic_version_and_crc_are_rejected() {
        let b = sample();
        let inst = b.snapshot();
        let bytes = write_snapshot(&b, &inst);

        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(matches!(read_snapshot(&bad), Err(SnapError::BadMagic)));

        let mut bad = bytes.clone();
        bad[8] = 0xfe;
        assert!(matches!(read_snapshot(&bad), Err(SnapError::Version(_))));

        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(read_snapshot(&bad), Err(SnapError::Checksum)));

        assert!(matches!(read_snapshot(&bytes[..10]), Err(SnapError::Truncated)));
    }

    #[test]
    fn loaded_builder_keeps_ingesting() {
        let b = sample();
        let inst = b.snapshot();
        let bytes = write_snapshot(&b, &inst);
        let (mut b2, inst2) = read_snapshot(&bytes).expect("round trip");
        let mut batch = crate::IngestBatch::new();
        let u = batch.add_user();
        let mut doc = crate::IngestDoc::new("post");
        let root = doc.root();
        doc.set_text(root, "fresh degrees");
        batch.add_document(doc, Some(u));
        let (next, summary) = b2.apply(&inst2, &batch);
        assert_eq!(summary.new_users, 1);
        assert_eq!(next.num_documents(), inst.num_documents() + 1);
    }
}
