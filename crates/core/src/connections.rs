//! The connection relation `con(d, k)` (paper §3.2).
//!
//! `con(d, k)` is the set of `(type, frag, src)` tuples witnessing that
//! document `d` is connected to keyword `k`:
//!
//! * **contains** — a fragment `f` of `d` contains `k`: `(S3:contains, f, d)`
//!   (one tuple per ancestor-or-self `d` of `f`, each with itself as
//!   source);
//! * **tags** — a tag on a fragment `f` of `d` whose keyword is `k` gives
//!   `(S3:relatedTo, f, author)`; more generally *any* connection of a tag
//!   on `f` flows to `d` as `S3:relatedTo`, keeping its source;
//! * **endorsements** — a keyword-less tag (like/+1/retweet) on `x`
//!   *inherits* `x`'s connections with the endorser as source (they then
//!   flow back to ancestors by the tag rule — the paper's `(S3:relatedTo,
//!   d0.5.1, u5)` example);
//! * **higher-level tags** (R4) — a tag on a tag contributes through the
//!   same two rules, chained;
//! * **comments** — when a comment `c` on fragment `f` is connected to `k`,
//!   every ancestor `d` of `f` gains `(S3:commentsOn, f, src)` with the
//!   source carried over (the paper's `(S3:commentsOn, d0.3.2, d2)`
//!   example).
//!
//! The rules are mutually recursive; we compute the fixpoint with a
//! worklist over a finite tuple domain, so it terminates. The result is
//! **seeker-independent** and is built once per instance; at query time
//! `con(d, k) = ⋃_{k' ∈ Ext(k)} conDirect(d, k')` (see DESIGN.md §3.3/§3.5).
//!
//! Each stored tuple also records `|pos(d, f)|` (the structural depth used
//! by the concrete score), so scores never need to re-walk the tree.

use crate::ids::{TagId, TagSubject};
use s3_doc::{DocNodeId, Forest};
use s3_graph::NodeId;
use s3_text::KeywordId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Connection type (§3.2): how `d` relates to the keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConnType {
    /// `S3:contains`: the keyword occurs in a fragment.
    Contains,
    /// `S3:relatedTo`: a tag relates the fragment to the keyword.
    RelatedTo,
    /// `S3:commentsOn`: a comment on the fragment carries the keyword.
    CommentsOn,
}

/// One `con(d, k)` tuple, stored under its document `d` and keyword `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Connection {
    /// Connection type.
    pub ctype: ConnType,
    /// The fragment of `d` due to which the connection holds.
    pub frag: DocNodeId,
    /// `|pos(d, frag)|`: structural distance from `d` to the fragment.
    pub depth: u8,
    /// The source: a user (tag author) or a document node, as a graph node.
    pub src: NodeId,
}

/// Tag description needed to build the index.
#[derive(Debug, Clone, Copy)]
pub struct TagInput {
    /// What the tag is on.
    pub subject: TagSubject,
    /// The tag author, as a graph node (user).
    pub author_node: NodeId,
    /// The tag keyword; `None` for endorsements (like/+1/retweet).
    pub keyword: Option<KeywordId>,
}

/// Connection tuple carried by a *tag* during the fixpoint. A tag's only
/// fragment is itself (paper footnote 6), so tuples remember instead the
/// *originating* document fragment when one exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct TagConn {
    ctype: ConnType,
    origin_frag: Option<DocNodeId>,
    src: NodeId,
    kw: KeywordId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DocConn {
    ctype: ConnType,
    frag: DocNodeId,
    src: NodeId,
    kw: KeywordId,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Item {
    Doc(DocNodeId),
    Tag(TagId),
}

/// The frozen `con` index. Per-document entries are `Arc`-shared: an
/// incremental rebuild (`rebuilt_scoped`, crate-internal) keeps untouched
/// documents' entries by bumping a refcount instead of deep-cloning the
/// maps, making the live `apply` path O(touched) in memory traffic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ConnectionIndex {
    /// Per doc node: keyword → connections, sorted by (frag, src, type).
    per_doc: Vec<Arc<HashMap<KeywordId, Vec<Connection>>>>,
    /// Total number of stored tuples.
    total: usize,
}

impl ConnectionIndex {
    /// Build the index by running the §3.2 rules to fixpoint.
    ///
    /// `comments` maps a comment document's **root** node to the fragments
    /// it comments on (the `S3:commentsOn` edges).
    pub fn build(
        forest: &Forest,
        tags: &[TagInput],
        comments: &[(DocNodeId, DocNodeId)],
        doc_src_node: impl Fn(DocNodeId) -> NodeId,
    ) -> Self {
        Self::build_filtered(
            forest,
            tags,
            comments,
            doc_src_node,
            |_| true,
            |_| true,
            |_| true,
            |_| true,
            None,
        )
    }

    /// [`Self::build`] over a tombstoned instance: dead documents seed no
    /// `contains` connections and dead tags are excluded from the fixpoint
    /// entirely, so dead entities' entries stay empty — exactly what the
    /// incremental mutation path produces, making a cold freeze the
    /// byte-identity reference for live deletions too. Comment edges of
    /// dead documents must already be gone from `comments` (the builder
    /// removes them physically at retraction time).
    pub(crate) fn build_tombstoned(
        forest: &Forest,
        tags: &[TagInput],
        comments: &[(DocNodeId, DocNodeId)],
        doc_src_node: impl Fn(DocNodeId) -> NodeId,
        doc_alive: impl Fn(DocNodeId) -> bool,
        tag_alive: impl Fn(TagId) -> bool,
    ) -> Self {
        Self::build_filtered(
            forest,
            tags,
            comments,
            doc_src_node,
            |_| true,
            |_| true,
            doc_alive,
            tag_alive,
            None,
        )
    }

    /// Rebuild the index with the fixpoint restricted to a *component-closed*
    /// scope: only in-scope documents are seeded and only in-scope tags and
    /// comments participate, while every out-of-scope document keeps its
    /// previous entry (`Arc`-shared from `prev` — no copy). Connections
    /// never cross content components (tags, comments and containment all
    /// stay inside one), so when the scope is a union of components this
    /// equals a full rebuild — at the cost of the touched components only.
    /// This is live ingestion's `con` extension path.
    ///
    /// `doc_in_scope` must be component-closed (ancestors/descendants of an
    /// in-scope fragment are in scope) and `tag_in_scope(i)` must hold
    /// exactly for tags whose subject lies in scope; `prev` must cover every
    /// out-of-scope document. `doc_alive`/`tag_alive` carry the tombstone
    /// sets: dead in-scope entities participate as if absent (their entries
    /// recompute to empty).
    #[allow(clippy::too_many_arguments)] // one internal caller chain
    pub(crate) fn rebuilt_scoped(
        prev: &ConnectionIndex,
        forest: &Forest,
        tags: &[TagInput],
        comments: &[(DocNodeId, DocNodeId)],
        doc_src_node: impl Fn(DocNodeId) -> NodeId,
        doc_in_scope: impl Fn(DocNodeId) -> bool,
        tag_in_scope: impl Fn(TagId) -> bool,
        doc_alive: impl Fn(DocNodeId) -> bool,
        tag_alive: impl Fn(TagId) -> bool,
    ) -> Self {
        Self::build_filtered(
            forest,
            tags,
            comments,
            doc_src_node,
            doc_in_scope,
            tag_in_scope,
            doc_alive,
            tag_alive,
            Some(prev),
        )
    }

    #[allow(clippy::too_many_arguments)] // one internal caller chain
    fn build_filtered(
        forest: &Forest,
        tags: &[TagInput],
        comments: &[(DocNodeId, DocNodeId)],
        doc_src_node: impl Fn(DocNodeId) -> NodeId,
        doc_in_scope: impl Fn(DocNodeId) -> bool,
        tag_in_scope: impl Fn(TagId) -> bool,
        doc_alive: impl Fn(DocNodeId) -> bool,
        tag_alive: impl Fn(TagId) -> bool,
        prev: Option<&ConnectionIndex>,
    ) -> Self {
        let n = forest.num_nodes();
        let mut doc_sets: Vec<HashSet<DocConn>> = vec![HashSet::new(); n];
        let mut tag_sets: Vec<HashSet<TagConn>> = vec![HashSet::new(); tags.len()];

        // Lookup structures for the propagation rules (scoped tags and
        // comments only; rules never leave a component-closed scope).
        let mut endorsements_on_frag: HashMap<DocNodeId, Vec<TagId>> = HashMap::new();
        let mut endorsements_on_tag: HashMap<TagId, Vec<TagId>> = HashMap::new();
        for (i, t) in tags.iter().enumerate() {
            if !tag_in_scope(TagId(i as u32)) || !tag_alive(TagId(i as u32)) {
                continue;
            }
            if t.keyword.is_none() {
                match t.subject {
                    TagSubject::Frag(f) => {
                        endorsements_on_frag.entry(f).or_default().push(TagId(i as u32))
                    }
                    TagSubject::Tag(b) => {
                        endorsements_on_tag.entry(b).or_default().push(TagId(i as u32))
                    }
                }
            }
        }
        let mut comments_of_root: HashMap<DocNodeId, Vec<DocNodeId>> = HashMap::new();
        for &(root, target) in comments {
            if doc_in_scope(root) {
                comments_of_root.entry(root).or_default().push(target);
            }
        }

        let mut queue: VecDeque<(Item, DocConn, Option<TagConn>)> = VecDeque::new();

        // Seed 1: contains — every keyword occurrence, pushed to every
        // ancestor-or-self with itself as source.
        for idx in 0..n {
            let f = DocNodeId(idx as u32);
            if forest.content(f).is_empty() || !doc_in_scope(f) || !doc_alive(f) {
                continue;
            }
            let kws: Vec<KeywordId> = {
                let mut v = forest.content(f).to_vec();
                v.sort_unstable();
                v.dedup();
                v
            };
            for d in forest.ancestors_or_self(f) {
                for &kw in &kws {
                    let conn =
                        DocConn { ctype: ConnType::Contains, frag: f, src: doc_src_node(d), kw };
                    if doc_sets[d.index()].insert(conn) {
                        queue.push_back((Item::Doc(d), conn, None));
                    }
                }
            }
        }

        // Seed 2: keyword tags.
        for (i, t) in tags.iter().enumerate() {
            if !tag_in_scope(TagId(i as u32)) || !tag_alive(TagId(i as u32)) {
                continue;
            }
            if let Some(kw) = t.keyword {
                let origin = match t.subject {
                    TagSubject::Frag(f) => Some(f),
                    TagSubject::Tag(_) => None,
                };
                let conn = TagConn {
                    ctype: ConnType::RelatedTo,
                    origin_frag: origin,
                    src: t.author_node,
                    kw,
                };
                if tag_sets[i].insert(conn) {
                    queue.push_back((
                        Item::Tag(TagId(i as u32)),
                        DocConn {
                            ctype: conn.ctype,
                            frag: DocNodeId(0),
                            src: conn.src,
                            kw: conn.kw,
                        },
                        Some(conn),
                    ));
                }
            }
        }

        // Fixpoint.
        while let Some((item, dconn, tconn)) = queue.pop_front() {
            match item {
                Item::Doc(d) => {
                    // Rule E: endorsements on d inherit its connections,
                    // with the endorser as source.
                    if let Some(endorsers) = endorsements_on_frag.get(&d) {
                        for &a in endorsers {
                            let inherited = TagConn {
                                ctype: dconn.ctype,
                                origin_frag: Some(dconn.frag),
                                src: tags[a.index()].author_node,
                                kw: dconn.kw,
                            };
                            if tag_sets[a.index()].insert(inherited) {
                                queue.push_back((Item::Tag(a), dconn, Some(inherited)));
                            }
                        }
                    }
                    // Rule C: if d is a comment root, its connections flow
                    // to the ancestors of the commented fragments as
                    // S3:commentsOn, source carried over.
                    if let Some(targets) = comments_of_root.get(&d) {
                        for &f0 in targets {
                            for anc in forest.ancestors_or_self(f0) {
                                let conn = DocConn {
                                    ctype: ConnType::CommentsOn,
                                    frag: f0,
                                    src: dconn.src,
                                    kw: dconn.kw,
                                };
                                if doc_sets[anc.index()].insert(conn) {
                                    queue.push_back((Item::Doc(anc), conn, None));
                                }
                            }
                        }
                    }
                }
                Item::Tag(a) => {
                    let tconn = tconn.expect("tag items carry their tag connection");
                    // Rule E': endorsements on the tag inherit.
                    if let Some(endorsers) = endorsements_on_tag.get(&a) {
                        for &b in endorsers {
                            let inherited = TagConn { src: tags[b.index()].author_node, ..tconn };
                            if tag_sets[b.index()].insert(inherited) {
                                queue.push_back((Item::Tag(b), dconn, Some(inherited)));
                            }
                        }
                    }
                    // Rule T: the tag's connections flow to its subject.
                    match tags[a.index()].subject {
                        TagSubject::Frag(f0) => {
                            for d in forest.ancestors_or_self(f0) {
                                // Use the originating fragment when it is a
                                // fragment of d (the paper's d0.5.1 case),
                                // else the tagged fragment itself.
                                let frag = match tconn.origin_frag {
                                    Some(g) if forest.is_ancestor_or_self(d, g) => g,
                                    _ => f0,
                                };
                                let conn = DocConn {
                                    ctype: ConnType::RelatedTo,
                                    frag,
                                    src: tconn.src,
                                    kw: tconn.kw,
                                };
                                if doc_sets[d.index()].insert(conn) {
                                    queue.push_back((Item::Doc(d), conn, None));
                                }
                            }
                        }
                        TagSubject::Tag(b) => {
                            let lifted = TagConn { ctype: ConnType::RelatedTo, ..tconn };
                            if tag_sets[b.index()].insert(lifted) {
                                queue.push_back((Item::Tag(b), dconn, Some(lifted)));
                            }
                        }
                    }
                }
            }
        }

        // Freeze: group per (doc, keyword), record |pos(d, f)| per tuple.
        // Out-of-scope documents keep their previous entries by Arc-share
        // (a refcount bump, not a copy — the O(touched) memory-traffic
        // contract), and `total` is carried over from `prev` adjusted by
        // the in-scope documents' old and new counts only.
        let mut per_doc: Vec<Arc<HashMap<KeywordId, Vec<Connection>>>> = Vec::with_capacity(n);
        let mut total = prev.map_or(0, |p| p.total);
        for (idx, set) in doc_sets.into_iter().enumerate() {
            let d = DocNodeId(idx as u32);
            if !doc_in_scope(d) {
                let prev = prev.expect("scoped builds carry the previous index");
                per_doc.push(Arc::clone(&prev.per_doc[idx]));
                continue;
            }
            if let Some(prev) = prev.filter(|p| idx < p.per_doc.len()) {
                total -= prev.per_doc[idx].values().map(Vec::len).sum::<usize>();
            }
            let mut map: HashMap<KeywordId, Vec<Connection>> = HashMap::new();
            for c in set {
                let depth = forest
                    .structural_distance(d, c.frag)
                    .expect("connection fragments are fragments of d")
                    .min(u8::MAX as u32) as u8;
                map.entry(c.kw).or_default().push(Connection {
                    ctype: c.ctype,
                    frag: c.frag,
                    depth,
                    src: c.src,
                });
                total += 1;
            }
            for v in map.values_mut() {
                v.sort_unstable_by_key(|c| (c.frag, c.src, c.ctype));
            }
            per_doc.push(Arc::new(map));
        }
        ConnectionIndex { per_doc, total }
    }

    /// `conDirect(d, k)`: connections of `d` for the *exact* keyword `k`.
    pub fn connections(&self, d: DocNodeId, k: KeywordId) -> &[Connection] {
        self.per_doc[d.index()].get(&k).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Does `d` have at least one connection for some keyword in `ext`?
    pub fn matches_any(&self, d: DocNodeId, ext: &[KeywordId]) -> bool {
        ext.iter().any(|k| !self.connections(d, *k).is_empty())
    }

    /// The keywords `d` is connected to.
    pub fn keywords_of(&self, d: DocNodeId) -> impl Iterator<Item = KeywordId> + '_ {
        self.per_doc[d.index()].keys().copied()
    }

    /// Total number of stored tuples.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True when no connection exists.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// `Smax(k) = max_d Σ_{(t,f,src) ∈ conDirect(d,k)} η^{|pos(d,f)|}`, for
    /// every keyword: the structural-weight bound used by the S3k threshold
    /// (DESIGN.md §3.4). One pass over the index.
    pub fn smax_table(&self, eta: f64) -> HashMap<KeywordId, f64> {
        self.smax_table_with(|_, depth| eta.powi(depth as i32))
    }

    /// Serialize for the durable snapshot format. Keyword entries are
    /// written in ascending keyword order (hash-map iteration order never
    /// reaches the encoding) and each entry's connection list verbatim —
    /// the stored `(frag, src, type)` sort order is part of the query
    /// contract, so a loaded index is bit-identical to the saved one.
    pub fn snap_write(&self, out: &mut Vec<u8>) {
        s3_snap::put_usize(out, self.per_doc.len());
        for map in &self.per_doc {
            let mut kws: Vec<KeywordId> = map.keys().copied().collect();
            kws.sort_unstable();
            s3_snap::put_usize(out, kws.len());
            for kw in kws {
                s3_snap::put_u32v(out, kw.0);
                let conns = &map[&kw];
                s3_snap::put_usize(out, conns.len());
                for c in conns {
                    out.push(match c.ctype {
                        ConnType::Contains => 0,
                        ConnType::RelatedTo => 1,
                        ConnType::CommentsOn => 2,
                    });
                    s3_snap::put_u32v(out, c.frag.0);
                    out.push(c.depth);
                    s3_snap::put_u32v(out, c.src.0);
                }
            }
        }
    }

    /// Decode an index written by [`Self::snap_write`] for a forest of
    /// `num_doc_nodes` document nodes. Fragment ids are validated against
    /// the forest; never panics on malformed input.
    pub fn snap_read(
        r: &mut s3_snap::SnapReader<'_>,
        num_doc_nodes: usize,
    ) -> Result<Self, s3_snap::SnapError> {
        let n = r.seq(1)?;
        if n != num_doc_nodes {
            return Err(s3_snap::SnapError::Value("connection index length mismatch"));
        }
        let mut per_doc: Vec<Arc<HashMap<KeywordId, Vec<Connection>>>> = Vec::with_capacity(n);
        let mut total = 0usize;
        for _ in 0..n {
            let nk = r.seq(2)?;
            let mut map: HashMap<KeywordId, Vec<Connection>> = HashMap::with_capacity(nk);
            for _ in 0..nk {
                let kw = KeywordId(r.u32v()?);
                let nc = r.seq(4)?;
                let mut conns = Vec::with_capacity(nc);
                for _ in 0..nc {
                    let ctype = match r.u8()? {
                        0 => ConnType::Contains,
                        1 => ConnType::RelatedTo,
                        2 => ConnType::CommentsOn,
                        _ => return Err(s3_snap::SnapError::Value("connection-type discriminant")),
                    };
                    let frag = r.u32v()?;
                    if frag as usize >= num_doc_nodes {
                        return Err(s3_snap::SnapError::Value("connection fragment out of range"));
                    }
                    let depth = r.u8()?;
                    let src = NodeId(r.u32v()?);
                    conns.push(Connection { ctype, frag: DocNodeId(frag), depth, src });
                }
                if map.insert(kw, conns).is_some() {
                    return Err(s3_snap::SnapError::Value("duplicate connection keyword"));
                }
                total += nc;
            }
            per_doc.push(Arc::new(map));
        }
        Ok(ConnectionIndex { per_doc, total })
    }

    /// Generic form of [`Self::smax_table`] for arbitrary structural-weight
    /// functions (generic score models).
    pub fn smax_table_with(&self, weight: impl Fn(ConnType, u8) -> f64) -> HashMap<KeywordId, f64> {
        let mut out: HashMap<KeywordId, f64> = HashMap::new();
        for map in &self.per_doc {
            for (&kw, conns) in map.iter() {
                let s: f64 = conns.iter().map(|c| weight(c.ctype, c.depth)).sum();
                let e = out.entry(kw).or_insert(0.0);
                if s > *e {
                    *e = s;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_doc::DocBuilder;

    /// Reconstruct the Figure 1 scenario:
    /// * d0 with fragments d0.3.2 (under d0.3) and d0.5.1 (under d0.5);
    /// * d2, posted by u3, comments on d0.3.2 and contains "university" in
    ///   its fragment d2.7.5;
    /// * u4 tags d0.5.1 with "university";
    /// * u5 endorses d0 with a keyword-less tag.
    struct Fig1 {
        forest: Forest,
        d0: DocNodeId,
        d0_3_2: DocNodeId,
        d0_5_1: DocNodeId,
        d2: DocNodeId,
        d2_7_5: DocNodeId,
        index: ConnectionIndex,
        university: KeywordId,
        u4_node: NodeId,
        u5_node: NodeId,
    }

    fn fig1() -> Fig1 {
        let university = KeywordId(0);
        let mut forest = Forest::new();
        let mut b0 = DocBuilder::new("article");
        let s3 = b0.child(b0.root(), "sec");
        let s3_2 = b0.child(s3, "p");
        let s5 = b0.child(b0.root(), "sec");
        let s5_1 = b0.child(s5, "p");
        let t0 = forest.add_document(b0);

        let mut b2 = DocBuilder::new("comment");
        let c7 = b2.child(b2.root(), "sec");
        let c7_5 = b2.child(c7, "p");
        b2.set_content(c7_5, vec![university]);
        let t2 = forest.add_document(b2);

        let d0 = forest.root(t0);
        let d0_3_2 = forest.resolve(t0, s3_2);
        let d0_5_1 = forest.resolve(t0, s5_1);
        let d2 = forest.root(t2);
        let d2_7_5 = forest.resolve(t2, c7_5);

        // Graph nodes: we only need stable ids for sources here; document
        // sources are identified by synthetic node ids derived from the doc
        // node, users by fixed ids.
        let u4_node = NodeId(1000);
        let u5_node = NodeId(1001);
        let tags = vec![
            TagInput {
                subject: TagSubject::Frag(d0_5_1),
                author_node: u4_node,
                keyword: Some(university),
            },
            TagInput { subject: TagSubject::Frag(d0), author_node: u5_node, keyword: None },
        ];
        let comments = vec![(d2, d0_3_2)];
        let index = ConnectionIndex::build(&forest, &tags, &comments, |d| NodeId(d.0));
        Fig1 { forest, d0, d0_3_2, d0_5_1, d2, d2_7_5, index, university, u4_node, u5_node }
    }

    #[test]
    fn contains_connection_with_ancestors() {
        // (S3:contains, d2.7.5, d2) ∈ con(d2, "university") — §3.2.
        let f = fig1();
        let conns = f.index.connections(f.d2, f.university);
        assert!(conns.iter().any(|c| c.ctype == ConnType::Contains
            && c.frag == f.d2_7_5
            && c.src == NodeId(f.d2.0)
            && c.depth == 2));
        // The fragment itself has a depth-0 contains connection.
        let own = f.index.connections(f.d2_7_5, f.university);
        assert!(own.iter().any(|c| c.ctype == ConnType::Contains && c.depth == 0));
    }

    #[test]
    fn tag_connection() {
        // u4's tag creates (S3:relatedTo, d0.5.1, u4) ∈ con(d0, "university").
        let f = fig1();
        let conns = f.index.connections(f.d0, f.university);
        assert!(conns.iter().any(|c| c.ctype == ConnType::RelatedTo
            && c.frag == f.d0_5_1
            && c.src == f.u4_node
            && c.depth == 2));
    }

    #[test]
    fn comment_connection_carries_source() {
        // d2 is connected to "university", d2 comments on d0.3.2 ⇒
        // (S3:commentsOn, d0.3.2, d2) ∈ con(d0, "university").
        let f = fig1();
        let conns = f.index.connections(f.d0, f.university);
        assert!(conns.iter().any(|c| c.ctype == ConnType::CommentsOn
            && c.frag == f.d0_3_2
            && c.src == NodeId(f.d2.0)
            && c.depth == 2));
    }

    #[test]
    fn endorsement_inherits_with_endorser_as_source() {
        // u5 endorses d0 ⇒ (S3:relatedTo, d0.5.1, u5) ∈ con(d0, "university")
        // — the paper's exact example.
        let f = fig1();
        let conns = f.index.connections(f.d0, f.university);
        assert!(conns
            .iter()
            .any(|c| c.ctype == ConnType::RelatedTo && c.frag == f.d0_5_1 && c.src == f.u5_node));
    }

    #[test]
    fn intermediate_ancestors_get_connections_too() {
        let f = fig1();
        // d0.3 (parent of d0.3.2) gets the comment connection at depth 1.
        let d0_3 = f.forest.parent(f.d0_3_2).unwrap();
        let conns = f.index.connections(d0_3, f.university);
        assert!(conns.iter().any(|c| c.ctype == ConnType::CommentsOn && c.depth == 1));
        // But d0.5 does not get it (d0.3.2 is not its fragment).
        let d0_5 = f.forest.parent(f.d0_5_1).unwrap();
        assert!(!f
            .index
            .connections(d0_5, f.university)
            .iter()
            .any(|c| c.ctype == ConnType::CommentsOn));
    }

    #[test]
    fn higher_level_tags_reach_the_document() {
        // Tag b (keyword) on tag a (on fragment f): the document must gain
        // a relatedTo connection sourced at b's author (requirement R4).
        let kw = KeywordId(9);
        let mut forest = Forest::new();
        let t = forest.add_document(DocBuilder::new("doc"));
        let d = forest.root(t);
        let tags = vec![
            TagInput { subject: TagSubject::Frag(d), author_node: NodeId(500), keyword: None },
            TagInput {
                subject: TagSubject::Tag(TagId(0)),
                author_node: NodeId(501),
                keyword: Some(kw),
            },
        ];
        let index = ConnectionIndex::build(&forest, &tags, &[], |d| NodeId(d.0));
        let conns = index.connections(d, kw);
        assert!(
            conns.iter().any(|c| c.ctype == ConnType::RelatedTo && c.src == NodeId(501)),
            "higher-level tag keyword must reach the base document: {conns:?}"
        );
    }

    #[test]
    fn comment_chains_propagate_transitively() {
        // c2 comments on c1, c1 comments on d; a keyword in c2 must reach d.
        let kw = KeywordId(3);
        let mut forest = Forest::new();
        let td = forest.add_document(DocBuilder::new("doc"));
        let tc1 = forest.add_document(DocBuilder::new("c1"));
        let mut b2 = DocBuilder::new("c2");
        b2.set_content(b2.root(), vec![kw]);
        let tc2 = forest.add_document(b2);
        let (d, c1, c2) = (forest.root(td), forest.root(tc1), forest.root(tc2));
        let comments = vec![(c1, d), (c2, c1)];
        let index = ConnectionIndex::build(&forest, &[], &comments, |x| NodeId(x.0));
        let conns = index.connections(d, kw);
        assert!(
            conns.iter().any(|c| c.ctype == ConnType::CommentsOn && c.src == NodeId(c2.0)),
            "comment chains must carry sources transitively: {conns:?}"
        );
    }

    #[test]
    fn smax_table_is_a_max_of_structural_sums() {
        let f = fig1();
        let eta = 0.5;
        let smax = f.index.smax_table(eta);
        let s = smax[&f.university];
        // d0 has three depth-2 connections (tag, endorsement, comment) →
        // 3·η²; d2 has contains at depths 2/1/0 → η²+η+1 = 1.75 (itself,
        // via ancestors d2.7 and d2.7.5's own entries are on those nodes).
        // The max over all docs must dominate every per-doc sum.
        for idx in 0..f.forest.num_nodes() {
            let d = DocNodeId(idx as u32);
            let sum: f64 =
                f.index.connections(d, f.university).iter().map(|c| eta.powi(c.depth as i32)).sum();
            assert!(s + 1e-12 >= sum, "smax violated at {d}");
        }
        assert!(s > 0.0);
    }

    #[test]
    fn endorsement_fixpoint_terminates_on_cycles() {
        // Two endorsements on the same doc plus a keyword tag: the
        // inherit/push-back cycle must terminate via deduplication.
        let kw = KeywordId(1);
        let mut forest = Forest::new();
        let t = forest.add_document(DocBuilder::new("doc"));
        let d = forest.root(t);
        let tags = vec![
            TagInput { subject: TagSubject::Frag(d), author_node: NodeId(600), keyword: None },
            TagInput { subject: TagSubject::Frag(d), author_node: NodeId(601), keyword: None },
            TagInput { subject: TagSubject::Frag(d), author_node: NodeId(602), keyword: Some(kw) },
        ];
        let index = ConnectionIndex::build(&forest, &tags, &[], |x| NodeId(x.0));
        let conns = index.connections(d, kw);
        // Original tag + both endorsers as sources.
        let srcs: HashSet<NodeId> = conns.iter().map(|c| c.src).collect();
        assert!(srcs.contains(&NodeId(600)));
        assert!(srcs.contains(&NodeId(601)));
        assert!(srcs.contains(&NodeId(602)));
    }

    #[test]
    fn empty_instance() {
        let forest = Forest::new();
        let index = ConnectionIndex::build(&forest, &[], &[], |x| NodeId(x.0));
        assert!(index.is_empty());
    }
}
