//! Export an [`crate::S3Instance`] as one weighted RDF graph.
//!
//! §2 of the paper defines S3 as "a single weighted RDF graph": users,
//! social edges, document structure (`S3:partOf`, `S3:contains`,
//! `S3:nodeName`), user actions (`S3:postedBy`, `S3:commentsOn`) and tags
//! (`S3:relatedTo` with `S3:hasSubject` / `S3:hasKeyword` / `S3:hasAuthor`)
//! are all triples over the namespace of Table 2. Our in-memory structures
//! are a specialized materialization of that graph; this module writes the
//! graph itself back out — for interoperability (requirement R6), for
//! pattern queries over the full instance, and as a correctness check
//! (tests assert the exact triples of Examples 2.1/2.2).

use crate::ids::{TagSubject, UserId};
use crate::instance::S3Instance;
use s3_doc::DocNodeId;
use s3_graph::EdgeKind;
use s3_rdf::{vocabulary as voc, Term, TripleStore, UriId};

/// Deterministic URI of a user.
pub fn user_uri(u: UserId) -> String {
    format!("s3i:user/{}", u.0)
}

/// Deterministic URI of a document node (fragment).
pub fn node_uri(d: DocNodeId) -> String {
    format!("s3i:node/{}", d.0)
}

/// Deterministic URI of a tag.
pub fn tag_uri(index: usize) -> String {
    format!("s3i:tag/{index}")
}

/// Materialize the instance as RDF. The export contains the knowledge-base
/// triples already present in the instance's store, plus every S3-namespace
/// triple of Table 2 (with the paper's inverse properties). Weights carry
/// over on `S3:social` edges; all structural triples have weight 1.
pub fn export_rdf(instance: &S3Instance) -> TripleStore {
    let mut out = instance.rdf().clone();
    let graph = instance.graph();
    let forest = instance.forest();

    // Users: u type S3:user (§2.2).
    let user_ids: Vec<UriId> = (0..instance.num_users())
        .map(|u| {
            let uri = out.dictionary_mut().intern(&user_uri(UserId(u as u32)));
            out.insert(uri, voc::RDF_TYPE, Term::Uri(voc::S3_USER), 1.0);
            uri
        })
        .collect();

    // Social edges with their weights.
    for u in 0..instance.num_users() {
        let node = instance.user_node(UserId(u as u32));
        for (target, kind, w) in graph.out_edges(node) {
            if kind == EdgeKind::Social {
                if let s3_graph::NodeKind::User(v) = graph.kind(target) {
                    out.insert(user_ids[u], voc::S3_SOCIAL, Term::Uri(user_ids[v as usize]), w);
                }
            }
        }
    }

    // Documents: types, partOf, nodeName, contains (§2.3).
    let mut node_ids: Vec<UriId> = Vec::with_capacity(forest.num_nodes());
    for idx in 0..forest.num_nodes() {
        let uri = out.dictionary_mut().intern(&node_uri(DocNodeId(idx as u32)));
        node_ids.push(uri);
    }
    for idx in 0..forest.num_nodes() {
        let d = DocNodeId(idx as u32);
        out.insert(node_ids[idx], voc::RDF_TYPE, Term::Uri(voc::S3_DOC), 1.0);
        if let Some(p) = forest.parent(d) {
            out.insert(node_ids[idx], voc::S3_PART_OF, Term::Uri(node_ids[p.index()]), 1.0);
        }
        let name = out.dictionary_mut().intern(forest.name(d));
        out.insert(node_ids[idx], voc::S3_NODE_NAME, Term::Literal(name), 1.0);
        for &kw in forest.content(d) {
            let lit = out.dictionary_mut().intern(instance.vocabulary().text(kw));
            out.insert(node_ids[idx], voc::S3_CONTAINS, Term::Literal(lit), 1.0);
        }
    }

    // postedBy and commentsOn, with inverse properties (§2.4).
    for tree in forest.trees() {
        if let Some(poster) = instance.poster_of(tree) {
            let root = forest.root(tree);
            let (s, o) = (node_ids[root.index()], user_ids[poster.index()]);
            out.insert(s, voc::S3_POSTED_BY, Term::Uri(o), 1.0);
            out.insert(o, voc::S3_POSTED_BY_INV, Term::Uri(s), 1.0);
        }
    }
    for &(comment_root, target) in instance.comment_pairs() {
        let (s, o) = (node_ids[comment_root.index()], node_ids[target.index()]);
        out.insert(s, voc::S3_COMMENTS_ON, Term::Uri(o), 1.0);
        out.insert(o, voc::S3_COMMENTS_ON_INV, Term::Uri(s), 1.0);
    }

    // Tags: a type S3:relatedTo; hasSubject/hasKeyword/hasAuthor (§2.4).
    let tag_ids: Vec<UriId> =
        (0..instance.num_tags()).map(|i| out.dictionary_mut().intern(&tag_uri(i))).collect();
    for (i, tag) in instance.tags().iter().enumerate() {
        let a = tag_ids[i];
        out.insert(a, voc::RDF_TYPE, Term::Uri(voc::S3_RELATED_TO), 1.0);
        let subject = match tag.subject {
            TagSubject::Frag(f) => node_ids[f.index()],
            TagSubject::Tag(t) => tag_ids[t.index()],
        };
        out.insert(a, voc::S3_HAS_SUBJECT, Term::Uri(subject), 1.0);
        out.insert(subject, voc::S3_HAS_SUBJECT_INV, Term::Uri(a), 1.0);
        let author = user_ids[tag.author.index()];
        out.insert(a, voc::S3_HAS_AUTHOR, Term::Uri(author), 1.0);
        out.insert(author, voc::S3_HAS_AUTHOR_INV, Term::Uri(a), 1.0);
        if let Some(kw) = tag.keyword {
            let lit = out.dictionary_mut().intern(instance.vocabulary().text(kw));
            out.insert(a, voc::S3_HAS_KEYWORD, Term::Literal(lit), 1.0);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use s3_doc::DocBuilder;
    use s3_rdf::{Pattern, TermOrVar, UriOrVar};
    use s3_text::Language;

    fn sample() -> (S3Instance, UserId, UserId) {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u3 = b.add_user();
        b.add_social_edge(u3, u0, 0.7);
        // d0 with a nested fragment (Example 2.1 shape).
        let mut d0 = DocBuilder::new("article");
        let sec = d0.child(d0.root(), "section");
        let kws = b.analyze("masters degrees");
        let mut d0b = d0;
        d0b.set_content(sec, kws);
        let t0 = b.add_document(d0b, Some(u0));
        let target = b.doc_node(t0, sec);
        // d2 posted by u3, comments on the fragment (Example 2.2).
        let mut d2 = DocBuilder::new("text");
        let kws2 = b.analyze("universities");
        d2.set_content(d2.root(), kws2);
        let t2 = b.add_document(d2, Some(u3));
        b.add_comment_edge(t2, target);
        let univers = b.analyzer_mut().vocabulary_mut().intern("univers");
        b.add_tag(crate::ids::TagSubject::Frag(target), u3, Some(univers));
        (b.build(), u0, u3)
    }

    #[test]
    fn example_2_1_document_triples() {
        let (inst, _, _) = sample();
        let rdf = export_rdf(&inst);
        let d = rdf.dictionary();
        // sec S3:partOf root; sec S3:contains "master"; sec nodeName.
        let sec = d.get(&node_uri(DocNodeId(1))).unwrap();
        let root = d.get(&node_uri(DocNodeId(0))).unwrap();
        assert!(rdf.contains(sec, voc::S3_PART_OF, Term::Uri(root)));
        let master = d.get("master").expect("stemmed literal interned");
        assert!(rdf.contains(sec, voc::S3_CONTAINS, Term::Literal(master)));
        let section = d.get("section").unwrap();
        assert!(rdf.contains(sec, voc::S3_NODE_NAME, Term::Literal(section)));
        assert!(rdf.contains(sec, voc::RDF_TYPE, Term::Uri(voc::S3_DOC)));
    }

    #[test]
    fn example_2_2_posting_and_comment_triples() {
        let (inst, u0, u3) = sample();
        let rdf = export_rdf(&inst);
        let d = rdf.dictionary();
        let u0_uri = d.get(&user_uri(u0)).unwrap();
        let u3_uri = d.get(&user_uri(u3)).unwrap();
        let d0 = d.get(&node_uri(DocNodeId(0))).unwrap();
        let target = d.get(&node_uri(DocNodeId(1))).unwrap();
        let d2 = d.get(&node_uri(DocNodeId(2))).unwrap();
        assert!(rdf.contains(d0, voc::S3_POSTED_BY, Term::Uri(u0_uri)));
        assert!(rdf.contains(d2, voc::S3_POSTED_BY, Term::Uri(u3_uri)));
        assert!(rdf.contains(d2, voc::S3_COMMENTS_ON, Term::Uri(target)));
        // Inverse properties (§2.4).
        assert!(rdf.contains(target, voc::S3_COMMENTS_ON_INV, Term::Uri(d2)));
        assert!(rdf.contains(u0_uri, voc::S3_POSTED_BY_INV, Term::Uri(d0)));
    }

    #[test]
    fn social_weights_carry_over() {
        let (inst, u0, u3) = sample();
        let rdf = export_rdf(&inst);
        let d = rdf.dictionary();
        let u0_uri = d.get(&user_uri(u0)).unwrap();
        let u3_uri = d.get(&user_uri(u3)).unwrap();
        assert_eq!(rdf.weight(u3_uri, voc::S3_SOCIAL, Term::Uri(u0_uri)), Some(0.7));
        assert!(rdf.contains(u3_uri, voc::RDF_TYPE, Term::Uri(voc::S3_USER)));
    }

    #[test]
    fn tag_triples_follow_table_2() {
        let (inst, _, u3) = sample();
        let rdf = export_rdf(&inst);
        let d = rdf.dictionary();
        let a = d.get(&tag_uri(0)).unwrap();
        let target = d.get(&node_uri(DocNodeId(1))).unwrap();
        let u3_uri = d.get(&user_uri(u3)).unwrap();
        assert!(rdf.contains(a, voc::RDF_TYPE, Term::Uri(voc::S3_RELATED_TO)));
        assert!(rdf.contains(a, voc::S3_HAS_SUBJECT, Term::Uri(target)));
        assert!(rdf.contains(a, voc::S3_HAS_AUTHOR, Term::Uri(u3_uri)));
        let univers = d.get("univers").unwrap();
        assert!(rdf.contains(a, voc::S3_HAS_KEYWORD, Term::Literal(univers)));
    }

    #[test]
    fn exported_graph_answers_pattern_queries() {
        // GraphSearch-style query over the export (§6): "documents posted
        // by whoever commented on something" — a two-hop BGP.
        let (inst, _, u3) = sample();
        let rdf = export_rdf(&inst);
        let mut pat = Pattern::new();
        let doc = pat.var("doc");
        let poster = pat.var("poster");
        let other = pat.var("other");
        pat.triple(UriOrVar::Var(doc), UriOrVar::Uri(voc::S3_COMMENTS_ON), TermOrVar::Var(other));
        pat.triple(UriOrVar::Var(doc), UriOrVar::Uri(voc::S3_POSTED_BY), TermOrVar::Var(poster));
        let sols = pat.solutions(&rdf);
        assert_eq!(sols.len(), 1);
        let u3_uri = rdf.dictionary().get(&user_uri(u3)).unwrap();
        assert_eq!(sols[0][1], Term::Uri(u3_uri));
    }
}
