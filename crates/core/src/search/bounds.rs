//! Stage 3 — score intervals (Algorithm `ComputeCandidatesBounds`).
//!
//! Each candidate's `[lower, upper]` interval is recomputed from the
//! current bounded proximities: `lower` uses `prox≤n` of the paths seen so
//! far, `upper` replaces each source proximity with `min(1, prox≤n + B>n)`
//! where `B>n` is the long-path attenuation bound. The threshold bounds the
//! score of every undiscovered document; it collapses to 0 once the
//! frontier stops growing (see the module docs of [`super`]).
//!
//! The two halves are separate functions because the sharded scatter
//! refreshes candidate intervals once per shard but the undiscovered
//! threshold — a function of the query and the shared propagation only —
//! exactly once per iteration.

use super::scratch::SearchScratch;
use super::S3kEngine;
use crate::score::ScoreModel;
use s3_graph::Propagation;

/// Refresh every candidate's `[lower, upper]` interval from the current
/// propagation state.
pub(crate) fn update_candidate_bounds<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &mut SearchScratch,
    prop: &Propagation<'_>,
) {
    let bound = prop.bound_beyond();
    let lo_parts = &mut scratch.lo_parts;
    let hi_parts = &mut scratch.hi_parts;
    for c in scratch.candidates.as_mut_slice() {
        lo_parts.clear();
        hi_parts.clear();
        for srcs in &c.kw_sources {
            let mut lo = 0.0f64;
            let mut hi = 0.0f64;
            for &(src, coef) in srcs {
                let p = prop.prox_leq(src);
                lo += coef * p;
                hi += coef * (p + bound).min(1.0);
            }
            lo_parts.push(lo);
            hi_parts.push(hi);
        }
        c.lower = engine.model.combine_keywords(lo_parts);
        c.upper = engine.model.combine_keywords(hi_parts);
    }
}

/// Upper bound on the score of every undiscovered document:
/// `⊕gen(SmaxExt(k) · B>n)` while the frontier is still growing, 0 once it
/// closed. `parts` is a reusable buffer.
pub(crate) fn undiscovered_threshold<S: ScoreModel>(
    model: &S,
    smax_ext: &[f64],
    parts: &mut Vec<f64>,
    prop: &Propagation<'_>,
    frontier_closed: bool,
) -> f64 {
    if frontier_closed {
        return 0.0;
    }
    let bound = prop.bound_beyond();
    parts.clear();
    parts.extend(smax_ext.iter().map(|&s| s * bound.min(1.0)));
    model.combine_keywords(parts)
}
