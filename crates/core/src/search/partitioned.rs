//! Exact scatter-gather search over a component partition.
//!
//! The sharded serving layer partitions content components across shards
//! (see [`crate::partition`]). A naive scatter — run every shard's
//! restricted search independently, merge the top-k lists — is *not*
//! result-identical to the unsharded engine: score intervals tighten as a
//! search iterates, and each shard, seeing fewer competitors, would stop
//! at its own (earlier) iteration with looser bounds. Exactness needs the
//! shards to stop together.
//!
//! [`S3kEngine::run_partitioned_with`] therefore keeps the scatter
//! *iteration-synchronous*:
//!
//! * one [`Propagation`] per query — proximity is a function of the full
//!   graph and the seeker, identical in every shard, so sharing it both
//!   removes redundant work and pins every shard to the same bounds;
//! * discovery dispatches each content component to its owning shard's
//!   [`SearchScratch`]: per-shard candidate pools partition the global
//!   candidate set (admission order is logged so the merged result lists
//!   candidates exactly like the unsharded run);
//! * each shard runs stage 3 (bounds) and stage 4's greedy selection over
//!   its own pool; the gather merges the per-shard selections with
//!   [`super::merge`]'s ranking. Definition 3.2's vertical-neighbor
//!   constraint only relates fragments of one tree — one component, one
//!   shard — so the merged prefix *is* the global greedy selection;
//! * the stop test runs against the merged selection (global `min lower`,
//!   global result count, shared threshold), making the stop iteration —
//!   and with it every returned bound — identical to the unsharded run.
//!
//! The result: for any shard count and any subset of shards covering the
//! query's matching components, the merged [`TopKResult`] is
//! byte-identical to [`S3kEngine::run`] on hits (documents, order,
//! certified bounds), candidate list and stop reason. Property-tested
//! here and end-to-end in `crates/engine/tests/sharding.rs`.

use super::scratch::SearchScratch;
use super::{bounds, discover, expand, merge, stop};
use super::{
    Hit, LifecycleScratch, Query, ResumeOutcome, S3kEngine, SearchStats, StopReason, TopKResult,
};
use crate::partition::ComponentPartition;
use crate::score::ScoreModel;
use s3_doc::DocNodeId;
use s3_graph::{NodeId, Propagation};
use std::time::Duration;

/// The partitioned scatter's query-local state, seen through the shared
/// propagation lifecycle: seeds go to the carrier's frontier list, and a
/// fallback rewind must clear the carrier *and* every active shard's
/// scratch (their cloned expansions survive).
struct ScatterCtx<'a> {
    carrier: &'a mut SearchScratch,
    scratches: &'a mut [Option<SearchScratch>],
    active: &'a [usize],
}

impl LifecycleScratch for ScatterCtx<'_> {
    fn newly_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.carrier.newly
    }

    fn rewind(&mut self) {
        self.carrier.rewind_search();
        for &s in self.active {
            self.scratches[s].as_mut().expect("active shard scratch").rewind_search();
        }
    }
}

impl<'i, S: ScoreModel> S3kEngine<'i, S> {
    /// One-shot [`Self::run_partitioned_with`] over every shard, with
    /// throwaway buffers.
    pub fn run_partitioned(&self, query: &Query, partition: &ComponentPartition) -> TopKResult {
        let active: Vec<usize> = (0..partition.num_shards()).collect();
        let mut carrier = SearchScratch::new();
        let mut scratches: Vec<Option<SearchScratch>> =
            (0..partition.num_shards()).map(|_| Some(SearchScratch::new())).collect();
        let mut prop = None;
        self.run_partitioned_with(
            query,
            partition,
            &active,
            &mut carrier,
            &mut scratches,
            &mut prop,
        )
    }

    /// Answer one query by iteration-synchronous scatter-gather over the
    /// partition's shards (see the module docs).
    ///
    /// `carrier` holds the query-global state (expansion, frontier,
    /// threshold and gather buffers); `scratches` has one slot per shard,
    /// and only the `active` shards' slots must be checked out (`Some`) —
    /// the serving layer borrows them lazily from the pools of the shards
    /// a query actually routes to, so warm memory scales with scatter
    /// width rather than workers × shards. `active` must be sorted and
    /// deduplicated; dropping a shard is exact as long as none of its
    /// components can match the query (the router's contract). A warm
    /// same-seeker propagation is resumed exactly like the unsharded
    /// path. Results are byte-identical to [`S3kEngine::run`] on hits,
    /// candidate list and stop reason; the per-component work counters
    /// (`SearchStats::components`, `pruned_components`, `rejected`) only
    /// reflect components of active shards, so they fall short of the
    /// unsharded run's whenever shards are dropped.
    pub fn run_partitioned_with(
        &self,
        query: &Query,
        partition: &ComponentPartition,
        active: &[usize],
        carrier: &mut SearchScratch,
        scratches: &mut [Option<SearchScratch>],
        prop: &mut Option<Propagation<'i>>,
    ) -> TopKResult {
        let inst = self.instance;
        let graph = inst.graph();
        let num_components = graph.components().len();
        assert_eq!(
            partition.num_components(),
            num_components,
            "partition built for a different instance"
        );
        assert_eq!(scratches.len(), partition.num_shards(), "one slot per shard");
        debug_assert!(
            active.windows(2).all(|w| w[0] < w[1]) && active.iter().all(|&s| s < scratches.len()),
            "active shard list must be sorted, deduplicated and in range"
        );
        let started = self.config.clock.now();

        // ---- Stage 1 once: expansion is instance-global, identical in
        // every shard. The carrier holds it; active shards get a copy.
        carrier.begin(num_components);
        if !expand::expand_query(self, query, carrier) {
            let stats = SearchStats { stop: StopReason::NoMatch, ..SearchStats::default() };
            return TopKResult { hits: Vec::new(), candidate_docs: Vec::new(), stats };
        }
        for &s in active {
            let sc = scratches[s].as_mut().expect("active shard scratch checked out");
            sc.begin(num_components);
            sc.keywords.clone_from(&carrier.keywords);
            sc.exts.clone_from(&carrier.exts);
            sc.smax_ext.clone_from(&carrier.smax_ext);
        }

        let seeker = inst.user_node(query.seeker);
        let gamma = self.model.gamma();
        let prop = match prop {
            Some(p) if p.gamma() == gamma && std::ptr::eq(p.graph(), graph) => p,
            slot => slot.insert(Propagation::new(graph, gamma, seeker)),
        };

        let mut ctx = ScatterCtx { carrier, scratches, active };
        self.drive_lifecycle(seeker, prop, &mut ctx, |ctx, prop, outcome| {
            self.scatter_drive(
                query,
                partition,
                ctx.active,
                ctx.carrier,
                ctx.scratches,
                prop,
                started,
                outcome,
            )
        })
    }

    /// The iteration-synchronous scatter loop over prepared scratches
    /// (`carrier.newly` holds the discovery seeds). Probe semantics match
    /// [`S3kEngine::drive`]: with `ResumeOutcome::Resumed`, a first stop
    /// evaluation that would return yields `None` and the caller replays
    /// the query cold. The admission-order log is the one fresh
    /// allocation: it becomes the result's candidate list.
    #[allow(clippy::too_many_arguments)] // internal: mirrors the public driver's parameter set
    fn scatter_drive(
        &self,
        query: &Query,
        partition: &ComponentPartition,
        active: &[usize],
        carrier: &mut SearchScratch,
        scratches: &mut [Option<SearchScratch>],
        prop: &mut Propagation<'i>,
        started: Duration,
        outcome: ResumeOutcome,
    ) -> Option<TopKResult> {
        let probe = outcome == ResumeOutcome::Resumed;
        let graph = self.instance.graph();
        let mut stats = SearchStats { resume: outcome, ..SearchStats::default() };
        let mut order_log: Vec<DocNodeId> = Vec::new();
        let mut first = true;
        loop {
            // ---- Stage 2: discovery, dispatched to the owning shard. ----
            for &v in &carrier.newly {
                discover::triggered_components(graph, v, &mut |comp| {
                    let shard = partition.shard_of(comp);
                    if !active.contains(&shard) {
                        return;
                    }
                    let sc = scratches[shard].as_mut().expect("active shard scratch");
                    let before = sc.candidates.as_slice().len();
                    discover::discover_component(self, comp, sc, &mut stats);
                    order_log.extend(sc.candidates.as_slice()[before..].iter().map(|c| c.doc));
                });
            }

            // ---- Stage 3: bounds per shard, threshold once. ----
            for &s in active {
                bounds::update_candidate_bounds(self, scratches[s].as_mut().expect("active"), prop);
            }
            let threshold = {
                let SearchScratch { smax_ext, threshold_parts, .. } = &mut *carrier;
                bounds::undiscovered_threshold(
                    &self.model,
                    smax_ext,
                    threshold_parts,
                    prop,
                    prop.frontier_closed(),
                )
            };

            // ---- Stage 4: per-shard selection, global gather + stop. ----
            for &s in active {
                stop::select(self, scratches[s].as_mut().expect("active"), query.k);
            }
            carrier.gather.clear();
            for &s in active {
                let sel = &scratches[s].as_ref().expect("active").selection;
                carrier.gather.extend(sel.iter().map(|&i| (s, i)));
            }
            carrier.gather.sort_unstable_by(|&(sa, ia), &(sb, ib)| {
                let a = &scratches[sa].as_ref().expect("active").candidates.as_slice()[ia];
                let b = &scratches[sb].as_ref().expect("active").candidates.as_slice()[ib];
                merge::rank(a.upper, a.doc, b.upper, b.doc)
            });
            carrier.gather.truncate(query.k);

            let stop_reason = if partition_stop(
                self,
                scratches,
                active,
                &carrier.gather,
                query.k,
                threshold,
                prop.frontier_closed(),
            ) {
                Some(StopReason::Converged)
            } else if prop.iteration() >= self.config.max_iterations {
                Some(StopReason::MaxIterations)
            } else if self
                .config
                .time_budget
                .is_some_and(|budget| self.config.clock.now().saturating_sub(started) >= budget)
            {
                Some(StopReason::TimeBudget)
            } else {
                None
            };
            if let Some(stop) = stop_reason {
                // Same probe semantics as the unsharded drive: divert to
                // a cold replay except on a blown time budget, where the
                // resumed best-effort answer (and the warm propagation)
                // is worth more than a colder, equally-truncated rerun.
                if probe && first && stop != StopReason::TimeBudget {
                    return None;
                }
                stats.stop = stop;
                stats.iterations = prop.iteration();
                stats.quality = partition_certify(
                    self,
                    scratches,
                    active,
                    &carrier.gather,
                    query.k,
                    threshold,
                    stop,
                );
                return Some(gather(scratches, &carrier.gather, order_log, stats));
            }
            first = false;

            // ---- Explore one more hop (shared across shards). ----
            prop.step_into(self.config.threads, false, &mut carrier.newly);
        }
    }
}

/// The global stop test of Algorithm `StopCondition`, evaluated over
/// partitioned candidate pools: `merged` is the global greedy selection,
/// and every unselected candidate of every active shard must be provably
/// excluded. Semantically identical to `stop::stop_condition` over the
/// union of the pools (vertical-neighbor domination cannot cross shards).
fn partition_stop<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratches: &[Option<SearchScratch>],
    active: &[usize],
    merged: &[(usize, usize)],
    k: usize,
    threshold: f64,
    frontier_closed: bool,
) -> bool {
    let eps = engine.config.epsilon;
    let forest = engine.instance.forest();
    let min_lower = merged
        .iter()
        .map(|&(s, i)| scratches[s].as_ref().expect("active").candidates.as_slice()[i].lower)
        .fold(f64::INFINITY, f64::min);

    if merged.len() == k {
        if threshold > min_lower + eps {
            return false;
        }
    } else if !frontier_closed {
        return false;
    }
    for &s in active {
        let candidates = scratches[s].as_ref().expect("active").candidates.as_slice();
        for (i, c) in candidates.iter().enumerate() {
            if c.upper <= 0.0 || merged.contains(&(s, i)) {
                continue;
            }
            if merged.len() == k && c.upper <= min_lower + eps {
                continue;
            }
            let dominated = merged.iter().any(|&(ss, si)| {
                ss == s && {
                    let sel = &candidates[si];
                    forest.is_vertical_neighbor(sel.doc, c.doc) && sel.lower + eps >= c.upper
                }
            });
            if !dominated {
                return false;
            }
        }
    }
    true
}

/// [`stop::certify`] over partitioned candidate pools: the floor comes
/// from the merged selection, the rival is the max of the undiscovered
/// threshold and each active shard's pool rival measured against its own
/// entries of the merged selection (vertical-neighbor domination cannot
/// cross shards, so per-shard sweeps compose exactly).
fn partition_certify<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratches: &[Option<SearchScratch>],
    active: &[usize],
    merged: &[(usize, usize)],
    k: usize,
    threshold: f64,
    reason: StopReason,
) -> super::QualityBound {
    let floor = merged
        .iter()
        .map(|&(s, i)| scratches[s].as_ref().expect("active").candidates.as_slice()[i].lower)
        .fold(f64::INFINITY, f64::min);
    let floor = if floor.is_finite() { floor } else { 0.0 };
    match reason {
        StopReason::Converged | StopReason::NoMatch => super::QualityBound::exact(floor),
        StopReason::MaxIterations | StopReason::TimeBudget => {
            let mut rival = threshold;
            for &s in active {
                let candidates = scratches[s].as_ref().expect("active").candidates.as_slice();
                let selected: Vec<usize> =
                    merged.iter().filter(|&&(ss, _)| ss == s).map(|&(_, i)| i).collect();
                rival = rival.max(stop::pool_rival_upper(engine, candidates, &selected));
            }
            super::QualityBound::anytime(floor, rival, merged.len() == k)
        }
    }
}

/// Materialize the merged result from the global selection and the
/// admission-order log.
fn gather(
    scratches: &[Option<SearchScratch>],
    merged: &[(usize, usize)],
    order_log: Vec<DocNodeId>,
    stats: SearchStats,
) -> TopKResult {
    let hits = merged
        .iter()
        .map(|&(s, i)| {
            let c = &scratches[s].as_ref().expect("active").candidates.as_slice()[i];
            Hit { doc: c.doc, lower: c.lower, upper: c.upper }
        })
        .collect();
    TopKResult { hits, candidate_docs: order_log, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{TagSubject, UserId};
    use crate::instance::{InstanceBuilder, S3Instance};
    use crate::partition::ComponentFilter;
    use crate::search::SearchConfig;
    use s3_text::{KeywordId, Language};
    use std::sync::Arc;

    /// A multi-component instance: three document threads (a post with a
    /// comment, a tagged post, a lone post), five users, an ontology
    /// bridge and an endorsement.
    fn instance() -> (S3Instance, Vec<UserId>, Vec<KeywordId>) {
        let mut b = InstanceBuilder::new(Language::English);
        let users: Vec<UserId> = (0..5).map(|_| b.add_user()).collect();
        b.add_social_edge(users[0], users[1], 1.0);
        b.add_social_edge(users[1], users[2], 0.8);
        b.add_social_edge(users[2], users[3], 0.6);
        b.add_social_edge(users[3], users[0], 0.4);
        b.add_social_edge(users[4], users[0], 0.9);

        let ms = b.intern_entity_keyword("ex:MS");
        let degree = b.intern_entity_keyword("ex:degree");
        let (ms_uri, deg_uri) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern("ex:MS"), d.intern("ex:degree"))
        };
        b.rdf_mut().insert(
            ms_uri,
            s3_rdf::vocabulary::RDFS_SUBCLASS_OF,
            s3_rdf::Term::Uri(deg_uri),
            1.0,
        );

        // Thread 1: post + reply (one component).
        let kws0 = b.analyze("a university degree matters");
        let mut d0 = s3_doc::DocBuilder::new("post");
        d0.set_content(d0.root(), kws0);
        let t0 = b.add_document(d0, Some(users[1]));
        let d0_root = b.doc_root(t0);
        let mut d1 = s3_doc::DocBuilder::new("reply");
        let sec = d1.child(d1.root(), "text");
        d1.set_content(sec, vec![ms]);
        let t1 = b.add_document(d1, Some(users[2]));
        b.add_comment_edge(t1, d0_root);

        // Thread 2: tagged post (its own component, bridged by a tag).
        let kws2 = b.analyze("university education is great");
        let mut d2 = s3_doc::DocBuilder::new("post");
        d2.set_content(d2.root(), kws2);
        let t2 = b.add_document(d2, Some(users[3]));
        let d2_root = b.doc_root(t2);
        let univers = b.analyzer_mut().vocabulary_mut().intern("univers");
        b.add_tag(TagSubject::Frag(d2_root), users[0], Some(univers));
        b.add_tag(TagSubject::Frag(d2_root), users[4], None);

        // Thread 3: lone post.
        let kws3 = b.analyze("degrees and education and universities");
        let mut d3 = s3_doc::DocBuilder::new("post");
        d3.set_content(d3.root(), kws3);
        b.add_document(d3, Some(users[2]));

        let inst = b.build();
        let mut pool = vec![degree, ms];
        pool.extend(inst.query_keywords("university education matters great"));
        (inst, users, pool)
    }

    fn queries(users: &[UserId], pool: &[KeywordId]) -> Vec<Query> {
        let mut out = Vec::new();
        for (qi, &u) in users.iter().enumerate() {
            for k in [1usize, 2, 4] {
                let kws: Vec<KeywordId> = match qi % 3 {
                    0 => vec![pool[qi % pool.len()]],
                    1 => vec![pool[qi % pool.len()], pool[(qi + 1) % pool.len()]],
                    _ => pool.to_vec(),
                };
                out.push(Query::new(u, kws, k));
            }
        }
        // Unanswerable and empty queries exercise the NoMatch path.
        out.push(Query::new(users[0], vec![KeywordId(99_999)], 3));
        out.push(Query::new(users[0], Vec::new(), 3));
        out
    }

    fn assert_same(a: &TopKResult, b: &TopKResult) {
        assert_eq!(a.stats.stop, b.stats.stop);
        assert_eq!(a.stats.quality, b.stats.quality, "certified quality must merge exactly");
        assert_eq!(a.candidate_docs, b.candidate_docs);
        assert_eq!(a.hits.len(), b.hits.len());
        for (x, y) in a.hits.iter().zip(b.hits.iter()) {
            assert_eq!(x.doc, y.doc);
            assert!(x.lower == y.lower, "lower {} != {}", x.lower, y.lower);
            assert!(x.upper == y.upper, "upper {} != {}", x.upper, y.upper);
        }
    }

    #[test]
    fn partitioned_run_is_byte_identical_to_unsharded() {
        let (inst, users, pool) = instance();
        for pruning in [true, false] {
            let config = SearchConfig { component_pruning: pruning, ..SearchConfig::default() };
            let engine = S3kEngine::new(&inst, config);
            for shards in [1usize, 2, 3, 4, 7] {
                let partition = ComponentPartition::balanced(&inst, shards);
                for q in queries(&users, &pool) {
                    let direct = engine.run(&q);
                    let merged = engine.run_partitioned(&q, &partition);
                    assert_same(&merged, &direct);
                    assert_eq!(merged.stats.candidates, direct.stats.candidates);
                    assert_eq!(merged.stats.iterations, direct.stats.iterations);
                }
            }
        }
    }

    #[test]
    fn partitioned_anytime_quality_matches_unsharded() {
        // Iteration-capped runs stop the scatter and the unsharded loop
        // at the same iteration, so the certified regret must merge to
        // the exact same bound, shard count notwithstanding.
        let (inst, users, pool) = instance();
        for cap in [0u32, 1, 2, 4] {
            let config = SearchConfig { max_iterations: cap, ..SearchConfig::default() };
            let engine = S3kEngine::new(&inst, config);
            for shards in [1usize, 2, 3] {
                let partition = ComponentPartition::balanced(&inst, shards);
                for q in queries(&users, &pool) {
                    let direct = engine.run(&q);
                    let merged = engine.run_partitioned(&q, &partition);
                    assert_same(&merged, &direct);
                    if direct.stats.stop == StopReason::MaxIterations {
                        assert!(!direct.stats.quality.exact);
                        assert!(direct.stats.quality.regret.is_finite());
                    }
                }
            }
        }
    }

    #[test]
    fn warm_partitioned_buffers_never_leak() {
        let (inst, users, pool) = instance();
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let partition = ComponentPartition::balanced(&inst, 3);
        let mut carrier = SearchScratch::new();
        let mut scratches: Vec<Option<SearchScratch>> =
            (0..3).map(|_| Some(SearchScratch::new())).collect();
        let mut prop = None;
        let active = vec![0usize, 1, 2];
        for q in queries(&users, &pool) {
            let warm = engine.run_partitioned_with(
                &q,
                &partition,
                &active,
                &mut carrier,
                &mut scratches,
                &mut prop,
            );
            assert_same(&warm, &engine.run(&q));
        }
    }

    #[test]
    fn inactive_unmatchable_shards_can_be_dropped() {
        let (inst, users, pool) = instance();
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let partition = ComponentPartition::balanced(&inst, 2);
        // Relevance by the router's conservative test: a shard whose
        // components' keyword sets miss every query keyword extension
        // can be dropped without changing the result.
        for q in queries(&users, &pool) {
            let mut exts: Vec<Arc<Vec<KeywordId>>> =
                q.keywords.iter().map(|&k| inst.expand_keyword(k)).collect();
            exts.dedup();
            let relevant: Vec<usize> = (0..2)
                .filter(|&s| {
                    partition.components_of(s).any(|c| {
                        let kws = inst.component_keywords(c);
                        exts.iter().all(|e| e.iter().any(|k| kws.contains(k)))
                    })
                })
                .collect();
            // Lazy checkout contract: only relevant shards get a scratch.
            let mut carrier = SearchScratch::new();
            let mut scratches: Vec<Option<SearchScratch>> =
                (0..2).map(|s| relevant.contains(&s).then(SearchScratch::new)).collect();
            let mut prop = None;
            let merged = engine.run_partitioned_with(
                &q,
                &partition,
                &relevant,
                &mut carrier,
                &mut scratches,
                &mut prop,
            );
            assert_same(&merged, &engine.run(&q));
        }
    }

    #[test]
    fn filtered_standalone_runs_partition_the_candidate_set() {
        let (inst, users, pool) = instance();
        let partition = ComponentPartition::balanced(&inst, 3);
        let unsharded = S3kEngine::new(&inst, SearchConfig::default());
        for q in queries(&users, &pool) {
            let full = unsharded.run(&q);
            let mut union: Vec<DocNodeId> = Vec::new();
            for s in 0..3 {
                let filter = Arc::new(ComponentFilter::for_shard(&partition, s));
                let engine = S3kEngine::new(
                    &inst,
                    SearchConfig { component_filter: Some(filter), ..SearchConfig::default() },
                );
                let part = engine.run(&q);
                for &d in &part.candidate_docs {
                    let node = inst.graph().node_of_frag(d).unwrap();
                    let comp = inst.graph().components().component_of(node);
                    assert_eq!(partition.shard_of(comp), s, "candidate outside its shard");
                }
                union.extend(part.candidate_docs.iter().copied());
            }
            union.sort_unstable();
            let before = union.len();
            union.dedup();
            assert_eq!(union.len(), before, "shard candidate sets must be disjoint");
            // A shard short of k local answers explores until its frontier
            // closes, so its standalone candidate set can exceed the
            // globally-stopped run's — the union covers the global set.
            for d in &full.candidate_docs {
                assert!(union.binary_search(d).is_ok(), "global candidate {d:?} missing");
            }
        }
    }
}
