//! Top-k gather: deterministic merging of per-shard result lists.
//!
//! One comparator — upper bound descending, document id ascending —
//! drives both the greedy selection ([`super::stop`]) and every merge, so
//! a scatter-gather over partitioned candidate pools reproduces the
//! single-engine selection order bit for bit. Cross-shard ties cannot
//! arise on documents (a document lives in exactly one component, hence
//! one shard), making the merged order total and deterministic.

use super::{Hit, SearchStats, StopReason, TopKResult};
use s3_doc::DocNodeId;
use std::cmp::Ordering;

/// The selection/merge order on `(upper bound, document)`: higher upper
/// bound first, lower document id breaking ties (the engine's de-facto
/// finite-precision tie-breaking). `NaN` bounds compare equal, falling
/// through to the id.
#[inline]
pub(crate) fn rank(a_upper: f64, a_doc: DocNodeId, b_upper: f64, b_doc: DocNodeId) -> Ordering {
    b_upper.partial_cmp(&a_upper).unwrap_or(Ordering::Equal).then(a_doc.cmp(&b_doc))
}

/// Merge per-shard hit lists (each already in selection order) into the
/// global top-`k`, ranked by upper bound with document-id tie-breaking.
pub fn merge_hits<'a, I>(lists: I, k: usize) -> Vec<Hit>
where
    I: IntoIterator<Item = &'a [Hit]>,
{
    let mut all: Vec<Hit> = lists.into_iter().flat_map(|l| l.iter().copied()).collect();
    all.sort_unstable_by(|a, b| rank(a.upper, a.doc, b.upper, b.doc));
    all.truncate(k);
    all
}

impl TopKResult {
    /// Gather per-shard results into one: hits merged by
    /// [`merge_hits`]'s deterministic order, candidate documents unioned
    /// (sorted, deduplicated) and diagnostics summed.
    ///
    /// Exactness caveat: score intervals tighten as a search iterates, so
    /// merging results whose searches stopped at *different* iterations
    /// ranks by incomparable upper bounds — a best-effort gather. The
    /// serving layer's sharded scatter instead keeps every shard on the
    /// same propagation and stops them together (`run_partitioned_with`),
    /// where this merge is exact.
    pub fn merge(parts: &[TopKResult], k: usize) -> TopKResult {
        let hits = merge_hits(parts.iter().map(|p| p.hits.as_slice()), k);
        let mut candidate_docs: Vec<DocNodeId> =
            parts.iter().flat_map(|p| p.candidate_docs.iter().copied()).collect();
        candidate_docs.sort_unstable();
        candidate_docs.dedup();
        let mut stats = SearchStats { stop: StopReason::NoMatch, ..SearchStats::default() };
        for p in parts {
            stats.iterations = stats.iterations.max(p.stats.iterations);
            stats.candidates += p.stats.candidates;
            stats.rejected += p.stats.rejected;
            stats.components += p.stats.components;
            stats.pruned_components += p.stats.pruned_components;
            // The gather is certified only if every part is: any-time
            // terminations and genuine matches take precedence over
            // NoMatch, best-effort reasons over Converged.
            stats.stop = match (stats.stop, p.stats.stop) {
                (StopReason::NoMatch, s) | (s, StopReason::NoMatch) => s,
                (StopReason::TimeBudget, _) | (_, StopReason::TimeBudget) => StopReason::TimeBudget,
                (StopReason::MaxIterations, _) | (_, StopReason::MaxIterations) => {
                    StopReason::MaxIterations
                }
                (StopReason::Converged, StopReason::Converged) => StopReason::Converged,
            };
        }
        TopKResult { hits, candidate_docs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(doc: u32, upper: f64, lower: f64) -> Hit {
        Hit { doc: DocNodeId(doc), lower, upper }
    }

    #[test]
    fn merge_ranks_by_upper_then_doc() {
        let a = vec![hit(3, 0.9, 0.8), hit(1, 0.5, 0.4)];
        let b = vec![hit(0, 0.9, 0.7), hit(2, 0.7, 0.6)];
        let merged = merge_hits([a.as_slice(), b.as_slice()], 3);
        let docs: Vec<u32> = merged.iter().map(|h| h.doc.0).collect();
        assert_eq!(docs, vec![0, 3, 2], "0.9 tie broken by doc id, then 0.7");
    }

    #[test]
    fn merge_truncates_to_k() {
        let a = vec![hit(0, 1.0, 1.0), hit(1, 0.9, 0.9)];
        let b = vec![hit(2, 0.8, 0.8)];
        assert_eq!(merge_hits([a.as_slice(), b.as_slice()], 2).len(), 2);
        assert!(merge_hits(std::iter::empty::<&[Hit]>(), 5).is_empty());
    }

    #[test]
    fn result_merge_unions_candidates_and_combines_stop() {
        let part = |docs: Vec<u32>, stop| TopKResult {
            hits: Vec::new(),
            candidate_docs: docs.into_iter().map(DocNodeId).collect(),
            stats: SearchStats { stop, ..SearchStats::default() },
        };
        let merged = TopKResult::merge(
            &[part(vec![4, 1], StopReason::Converged), part(vec![1, 2], StopReason::NoMatch)],
            5,
        );
        assert_eq!(merged.candidate_docs, vec![DocNodeId(1), DocNodeId(2), DocNodeId(4)]);
        assert_eq!(merged.stats.stop, StopReason::Converged);
        let capped = TopKResult::merge(
            &[part(vec![], StopReason::MaxIterations), part(vec![], StopReason::Converged)],
            5,
        );
        assert_eq!(capped.stats.stop, StopReason::MaxIterations);
    }
}
