//! Top-k gather: deterministic merging of per-shard result lists.
//!
//! One comparator — upper bound descending, document id ascending —
//! drives both the greedy selection ([`super::stop`]) and every merge, so
//! a scatter-gather over partitioned candidate pools reproduces the
//! single-engine selection order bit for bit. Cross-shard ties cannot
//! arise on documents (a document lives in exactly one component, hence
//! one shard), making the merged order total and deterministic.

use super::{Hit, QualityBound, SearchStats, StopReason, TopKResult};
use s3_doc::DocNodeId;
use std::cmp::Ordering;

/// The selection/merge order on `(upper bound, document)`: higher upper
/// bound first, lower document id breaking ties (the engine's de-facto
/// finite-precision tie-breaking). `NaN` bounds compare equal, falling
/// through to the id.
#[inline]
pub(crate) fn rank(a_upper: f64, a_doc: DocNodeId, b_upper: f64, b_doc: DocNodeId) -> Ordering {
    b_upper.partial_cmp(&a_upper).unwrap_or(Ordering::Equal).then(a_doc.cmp(&b_doc))
}

/// Merge per-shard hit lists (each already in selection order) into the
/// global top-`k`, ranked by upper bound with document-id tie-breaking.
pub fn merge_hits<'a, I>(lists: I, k: usize) -> Vec<Hit>
where
    I: IntoIterator<Item = &'a [Hit]>,
{
    let mut all: Vec<Hit> = lists.into_iter().flat_map(|l| l.iter().copied()).collect();
    all.sort_unstable_by(|a, b| rank(a.upper, a.doc, b.upper, b.doc));
    all.truncate(k);
    all
}

impl TopKResult {
    /// Gather per-shard results into one: hits merged by
    /// [`merge_hits`]'s deterministic order, candidate documents unioned
    /// (sorted, deduplicated) and diagnostics summed.
    ///
    /// Exactness caveat: score intervals tighten as a search iterates, so
    /// merging results whose searches stopped at *different* iterations
    /// ranks by incomparable upper bounds — a best-effort gather. The
    /// serving layer's sharded scatter instead keeps every shard on the
    /// same propagation and stops them together (`run_partitioned_with`),
    /// where this merge is exact.
    pub fn merge(parts: &[TopKResult], k: usize) -> TopKResult {
        let hits = merge_hits(parts.iter().map(|p| p.hits.as_slice()), k);
        let mut candidate_docs: Vec<DocNodeId> =
            parts.iter().flat_map(|p| p.candidate_docs.iter().copied()).collect();
        candidate_docs.sort_unstable();
        candidate_docs.dedup();
        let mut stats = SearchStats { stop: StopReason::NoMatch, ..SearchStats::default() };
        let mut all_exact = true;
        // The merged answer's rival pool: every part's own rival, plus
        // every part hit the k-cut truncated away (locally selected, so
        // excluded from its part's rival, but a displacer globally).
        let mut rival = 0.0f64;
        for p in parts {
            stats.iterations = stats.iterations.max(p.stats.iterations);
            stats.candidates += p.stats.candidates;
            stats.rejected += p.stats.rejected;
            stats.components += p.stats.components;
            stats.pruned_components += p.stats.pruned_components;
            all_exact &= p.stats.quality.exact;
            rival = rival.max(p.stats.quality.rival);
            // The gather is certified only if every part is: any-time
            // terminations and genuine matches take precedence over
            // NoMatch, best-effort reasons over Converged.
            stats.stop = match (stats.stop, p.stats.stop) {
                (StopReason::NoMatch, s) | (s, StopReason::NoMatch) => s,
                (StopReason::TimeBudget, _) | (_, StopReason::TimeBudget) => StopReason::TimeBudget,
                (StopReason::MaxIterations, _) | (_, StopReason::MaxIterations) => {
                    StopReason::MaxIterations
                }
                (StopReason::Converged, StopReason::Converged) => StopReason::Converged,
            };
            for h in &p.hits {
                if !hits.iter().any(|m| m.doc == h.doc) {
                    rival = rival.max(h.upper);
                }
            }
        }
        let floor = hits.iter().map(|h| h.lower).fold(f64::INFINITY, f64::min);
        let floor = if floor.is_finite() { floor } else { 0.0 };
        let bar = if hits.len() == k { floor } else { 0.0 };
        stats.quality = if all_exact && rival <= bar {
            // Every part converged and nothing truncated away can beat
            // the merged answer's weakest hit: the gather stayed exact.
            QualityBound::exact(floor)
        } else {
            QualityBound::anytime(floor, rival, hits.len() == k)
        };
        TopKResult { hits, candidate_docs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(doc: u32, upper: f64, lower: f64) -> Hit {
        Hit { doc: DocNodeId(doc), lower, upper }
    }

    #[test]
    fn merge_ranks_by_upper_then_doc() {
        let a = vec![hit(3, 0.9, 0.8), hit(1, 0.5, 0.4)];
        let b = vec![hit(0, 0.9, 0.7), hit(2, 0.7, 0.6)];
        let merged = merge_hits([a.as_slice(), b.as_slice()], 3);
        let docs: Vec<u32> = merged.iter().map(|h| h.doc.0).collect();
        assert_eq!(docs, vec![0, 3, 2], "0.9 tie broken by doc id, then 0.7");
    }

    #[test]
    fn merge_truncates_to_k() {
        let a = vec![hit(0, 1.0, 1.0), hit(1, 0.9, 0.9)];
        let b = vec![hit(2, 0.8, 0.8)];
        assert_eq!(merge_hits([a.as_slice(), b.as_slice()], 2).len(), 2);
        assert!(merge_hits(std::iter::empty::<&[Hit]>(), 5).is_empty());
    }

    #[test]
    fn result_merge_unions_candidates_and_combines_stop() {
        let part = |docs: Vec<u32>, stop| TopKResult {
            hits: Vec::new(),
            candidate_docs: docs.into_iter().map(DocNodeId).collect(),
            stats: SearchStats { stop, ..SearchStats::default() },
        };
        let merged = TopKResult::merge(
            &[part(vec![4, 1], StopReason::Converged), part(vec![1, 2], StopReason::NoMatch)],
            5,
        );
        assert_eq!(merged.candidate_docs, vec![DocNodeId(1), DocNodeId(2), DocNodeId(4)]);
        assert_eq!(merged.stats.stop, StopReason::Converged);
        let capped = TopKResult::merge(
            &[part(vec![], StopReason::MaxIterations), part(vec![], StopReason::Converged)],
            5,
        );
        assert_eq!(capped.stats.stop, StopReason::MaxIterations);
    }

    #[test]
    fn merged_quality_counts_truncated_hits_and_part_rivals() {
        let part = |hits: Vec<Hit>, stop, quality| TopKResult {
            hits,
            candidate_docs: Vec::new(),
            stats: SearchStats { stop, quality, ..SearchStats::default() },
        };
        // Two anytime parts, k=2: part B's second hit (upper 0.6) is
        // truncated away by the merge and must join the rival pool, as
        // must part A's own reported rival (0.75).
        let a = part(
            vec![hit(0, 0.9, 0.8)],
            StopReason::TimeBudget,
            QualityBound::anytime(0.8, 0.75, false),
        );
        let b = part(
            vec![hit(1, 0.7, 0.65), hit(2, 0.6, 0.5)],
            StopReason::TimeBudget,
            QualityBound::anytime(0.5, 0.3, true),
        );
        let merged = TopKResult::merge(&[a, b], 2);
        let docs: Vec<u32> = merged.hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(docs, vec![0, 1]);
        let q = merged.stats.quality;
        assert!(!q.exact);
        assert_eq!(q.floor, 0.65, "weakest merged hit");
        assert_eq!(q.rival, 0.75, "part A's rival beats the truncated 0.6");
        assert_eq!(q.regret, 0.75 - 0.65);
    }

    #[test]
    fn merged_quality_stays_exact_when_nothing_truncated_can_displace() {
        let part = |hits: Vec<Hit>, quality| TopKResult {
            hits,
            candidate_docs: Vec::new(),
            stats: SearchStats { stop: StopReason::Converged, quality, ..SearchStats::default() },
        };
        let a = part(vec![hit(0, 0.9, 0.9)], QualityBound::exact(0.9));
        let b = part(vec![hit(1, 0.8, 0.8)], QualityBound::exact(0.8));
        let merged = TopKResult::merge(&[a, b], 2);
        assert!(merged.stats.quality.exact);
        assert_eq!(merged.stats.quality.floor, 0.8);
        assert_eq!(merged.stats.quality.regret, 0.0);

        // ...but an exact part's truncated hit that could beat the merged
        // floor demotes the gather to best-effort.
        let c = part(vec![hit(2, 0.95, 0.6)], QualityBound::exact(0.6));
        let d = part(vec![hit(3, 0.9, 0.85)], QualityBound::exact(0.85));
        let merged = TopKResult::merge(&[c, d], 1);
        assert!(!merged.stats.quality.exact, "doc 3's upper 0.9 rivals the 0.6 floor");
        assert_eq!(merged.stats.quality.rival, 0.9);
    }
}
