//! Stage 2 — discovery and candidate maintenance (Algorithm
//! `GetDocuments`, component form).
//!
//! Every node that received border mass for the first time may reveal new
//! candidate documents: fragments and tags open their content component;
//! users open the components of the tags they authored. A component is
//! processed at most once per query — keyword pruning (§5.2) first, then
//! the per-document `con(d, k)` check admits candidates into the pool.

use super::scratch::SearchScratch;
use super::{S3kEngine, SearchStats};
use crate::score::ScoreModel;
use s3_graph::{CompId, EdgeKind, NodeId, NodeKind, SocialGraph};

/// Invoke `sink` for every content component a freshly-reached node
/// opens: its own component for fragments and tags; for users, the
/// components of the tags they authored (which may source connections in
/// otherwise-unreached components). The one copy of the discovery-trigger
/// rules, shared by the sequential pass below and the partitioned
/// scatter's dispatch-to-owner pass.
pub(crate) fn triggered_components(graph: &SocialGraph, v: NodeId, sink: &mut impl FnMut(CompId)) {
    match graph.kind(v) {
        NodeKind::Frag(_) | NodeKind::Tag(_) => sink(graph.components().component_of(v)),
        NodeKind::User(_) => {
            for (t, kind, _) in graph.out_edges(v) {
                if kind == EdgeKind::HasAuthorInv {
                    sink(graph.components().component_of(t));
                }
            }
        }
    }
}

/// Process `scratch.newly` (the seed node at step 0, the freshly-reached
/// nodes afterwards), discovering components and admitting candidates.
pub(crate) fn discover_newly<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) {
    let graph = engine.instance.graph();
    // `newly` is only refilled by the explore stage, after discovery is
    // done with it; taking it out lets the component pass borrow `scratch`
    // mutably.
    let newly = std::mem::take(&mut scratch.newly);
    for &v in &newly {
        triggered_components(graph, v, &mut |comp| {
            discover_component(engine, comp, scratch, stats);
        });
    }
    scratch.newly = newly;
}

/// Process one content component: component-filter check (sharding),
/// keyword pruning (§5.2), then the per-document `con` check. Also the
/// dispatch target of the partitioned scatter driver.
pub(crate) fn discover_component<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    comp: CompId,
    scratch: &mut SearchScratch,
    stats: &mut SearchStats,
) {
    if !scratch.processed.insert(comp.index()) {
        return;
    }
    scratch.touched.push(comp.index());
    if let Some(filter) = &engine.config.component_filter {
        if !filter.allows(comp) {
            // Outside this shard's universe: skipped before any
            // per-document work and not counted in the diagnostics.
            return;
        }
    }
    stats.components += 1;

    let inst = engine.instance;
    if engine.config.component_pruning {
        let comp_kws = inst.component_keywords(comp);
        let hit = |ext: &[s3_text::KeywordId]| ext.iter().any(|k| comp_kws.contains(k));
        let matches = if engine.model.requires_all_keywords() {
            scratch.exts.iter().all(|e| hit(e))
        } else {
            scratch.exts.iter().any(|e| hit(e))
        };
        if !matches {
            stats.pruned_components += 1;
            return;
        }
    }

    let graph = inst.graph();
    let index = inst.connections();
    let conjunctive = engine.model.requires_all_keywords();
    let n_keywords = scratch.exts.len();
    for &node in graph.components().members(comp) {
        let Some(d) = graph.frag_of_node(node) else { continue };
        if scratch.candidate_of.contains_key(&d) {
            continue;
        }
        // con(d, k) = ∪_{k' ∈ Ext(k)} conDirect(d, k'), deduplicated on
        // (type, fragment, source) — con is a set.
        let slot = scratch.candidates.stage(n_keywords);
        let mut matched = 0usize;
        let mut missing = false;
        for (ki, ext) in scratch.exts.iter().enumerate() {
            scratch.seen.clear();
            scratch.agg.clear();
            for &k in ext.iter() {
                for c in index.connections(d, k) {
                    if scratch.seen.insert((c.ctype, c.frag, c.src)) {
                        *scratch.agg.entry(c.src).or_insert(0.0) +=
                            engine.model.structural_weight(c.ctype, c.depth);
                    }
                }
            }
            if scratch.agg.is_empty() {
                missing = true;
                if conjunctive {
                    break;
                }
            } else {
                matched += 1;
            }
            let list = &mut slot.kw_sources[ki];
            list.extend(scratch.agg.drain());
            list.sort_unstable_by_key(|(n, _)| *n);
        }
        let qualifies = if conjunctive { !missing } else { matched > 0 };
        if !qualifies {
            stats.rejected += 1;
            continue;
        }
        slot.doc = d;
        let idx = scratch.candidates.commit();
        scratch.candidate_of.insert(d, idx);
        stats.candidates += 1;
    }
}
