//! Reusable per-session search state.
//!
//! A cold S3k query allocates a dozen maps and vectors; on a serving path
//! answering thousands of queries over one instance, that churn dominates.
//! [`SearchScratch`] owns every query-local buffer the staged search needs
//! and is *cleared, not reallocated* between queries: a session's second
//! and later queries perform no steady-state allocation in the search
//! driver itself (candidate source lists, aggregation maps, selection
//! buffers are all reused at their high-water capacity).

use crate::connections::ConnType;
use s3_doc::DocNodeId;
use s3_graph::NodeId;
use s3_text::KeywordId;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A candidate document's per-keyword deduplicated `(source, structural
/// coefficient)` pairs plus its certified score interval.
#[derive(Debug)]
pub(crate) struct Candidate {
    pub doc: DocNodeId,
    /// Per query keyword: deduplicated `(source, structural coefficient)`
    /// pairs aggregated over `Ext(k)` (DESIGN.md §3.3).
    pub kw_sources: Vec<Vec<(NodeId, f64)>>,
    pub lower: f64,
    pub upper: f64,
}

/// A pool of [`Candidate`] slots reused across queries: `clear` rewinds the
/// logical length but keeps every slot's inner buffers at capacity.
#[derive(Debug, Default)]
pub(crate) struct CandidatePool {
    slots: Vec<Candidate>,
    len: usize,
}

impl CandidatePool {
    /// Forget all candidates, keeping slot capacity.
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// The committed candidates.
    pub fn as_slice(&self) -> &[Candidate] {
        &self.slots[..self.len]
    }

    /// The committed candidates, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [Candidate] {
        &mut self.slots[..self.len]
    }

    /// Borrow the next free slot with `kw_sources` reset to `n_keywords`
    /// empty lists (inner capacity preserved). The slot only becomes a
    /// candidate once [`CandidatePool::commit`] is called; staging the same
    /// slot again discards the previous staging.
    pub fn stage(&mut self, n_keywords: usize) -> &mut Candidate {
        if self.len == self.slots.len() {
            self.slots.push(Candidate {
                doc: DocNodeId(0),
                kw_sources: Vec::new(),
                lower: 0.0,
                upper: f64::MAX,
            });
        }
        let slot = &mut self.slots[self.len];
        for list in slot.kw_sources.iter_mut() {
            list.clear();
        }
        if slot.kw_sources.len() > n_keywords {
            slot.kw_sources.truncate(n_keywords);
        } else {
            let missing = n_keywords - slot.kw_sources.len();
            slot.kw_sources.extend((0..missing).map(|_| Vec::new()));
        }
        slot.lower = 0.0;
        slot.upper = f64::MAX;
        slot
    }

    /// Turn the staged slot into a committed candidate; returns its index.
    pub fn commit(&mut self) -> usize {
        self.len += 1;
        self.len - 1
    }
}

/// Every query-local buffer of the staged S3k search, reusable across
/// queries. Obtain one through `S3kEngine::session` (or construct directly
/// for a custom driver) and pass it to `S3kEngine::run_with`.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Deduplicated query keywords.
    pub(crate) keywords: Vec<KeywordId>,
    /// `Ext(k)` per deduplicated keyword.
    pub(crate) exts: Vec<Arc<Vec<KeywordId>>>,
    /// `SmaxExt(k)` per deduplicated keyword.
    pub(crate) smax_ext: Vec<f64>,
    /// Candidate documents.
    pub(crate) candidates: CandidatePool,
    /// Candidate index by document.
    pub(crate) candidate_of: HashMap<DocNodeId, usize>,
    /// Per-component processed flag, word-packed (cleared through
    /// `touched`).
    pub(crate) processed: s3_graph::BitSet,
    /// Components whose `processed` flag was set this query.
    pub(crate) touched: Vec<usize>,
    /// Nodes newly reached by the last explore step (also the discovery
    /// seed list at step 0).
    pub(crate) newly: Vec<NodeId>,
    /// Per-keyword lower score parts (bounds stage).
    pub(crate) lo_parts: Vec<f64>,
    /// Per-keyword upper score parts (bounds stage).
    pub(crate) hi_parts: Vec<f64>,
    /// Per-keyword threshold parts (bounds stage).
    pub(crate) threshold_parts: Vec<f64>,
    /// Connection dedup set (discovery stage).
    pub(crate) seen: HashSet<(ConnType, DocNodeId, NodeId)>,
    /// Per-source coefficient aggregation (discovery stage).
    pub(crate) agg: HashMap<NodeId, f64>,
    /// Candidate indices ordered by upper bound (selection stage).
    pub(crate) order: Vec<usize>,
    /// Merged global selection as `(shard, candidate)` pairs — used only
    /// by the partitioned scatter driver (carried by its shard-0 scratch).
    pub(crate) gather: Vec<(usize, usize)>,
    /// The current greedy selection (selection stage).
    pub(crate) selection: Vec<usize>,
    /// Selection membership (stop stage).
    pub(crate) in_selection: HashSet<usize>,
}

impl SearchScratch {
    /// Fresh, empty scratch. Buffers grow to their high-water mark on
    /// first use and are retained afterwards.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// Rewind everything for a new query against an instance with
    /// `num_components` content components. Keeps capacity; the only
    /// possible allocation is growing `processed` the first time a larger
    /// instance is seen.
    pub(crate) fn begin(&mut self, num_components: usize) {
        self.keywords.clear();
        self.exts.clear();
        self.smax_ext.clear();
        if self.processed.len() < num_components {
            self.processed.resize(num_components);
        }
        self.rewind_search();
    }

    /// Rewind the search-loop state (candidates, discovery, selection)
    /// while keeping the query expansion (`keywords`/`exts`/`smax_ext`):
    /// what a resume fallback needs before replaying the same query cold.
    pub(crate) fn rewind_search(&mut self) {
        self.candidates.clear();
        self.candidate_of.clear();
        for &comp in &self.touched {
            self.processed.clear(comp);
        }
        self.touched.clear();
        self.newly.clear();
        self.lo_parts.clear();
        self.hi_parts.clear();
        self.threshold_parts.clear();
        self.seen.clear();
        self.agg.clear();
        self.order.clear();
        self.gather.clear();
        self.selection.clear();
        self.in_selection.clear();
    }
}
