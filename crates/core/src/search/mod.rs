//! The S3k query-answering algorithm (paper §4), as composable stages.
//!
//! The instance is explored from the seeker outwards, one social-path hop
//! per iteration (Algorithm 3 / `ExploreStep`, implemented by
//! `s3_graph::Propagation` in the paper's optimized `borderProx` form).
//! Candidate documents accumulate a score interval `[lower, upper]`:
//!
//! * `lower` uses the bounded proximity `prox≤n` of the paths seen so far —
//!   a candidate "can only get closer to the seeker";
//! * `upper` replaces each source proximity with
//!   `min(1, prox≤n + B>n)`, where `B>n` is the long-path attenuation bound.
//!
//! A `threshold` bounds the score of every **undiscovered** document: a
//! document is discovered as soon as any node of its content component — or
//! any author of a tag inside it — carries border mass, so an undiscovered
//! document's sources all have `prox≤n = 0`, giving
//! `score ≤ ⊕gen(SmaxExt(k)·B>n)` (DESIGN.md §3.4). Once the frontier stops
//! growing, no undiscovered document can ever have positive score and the
//! threshold collapses to 0.
//!
//! The search stops (Algorithm 2 / `StopCondition`) when the greedy,
//! vertical-neighbor-respecting top-k selection is provably final: every
//! unselected candidate either cannot beat the selection's worst lower
//! bound, or is dominated by a selected vertical neighbor (Definition 3.2
//! forbids a fragment and its ancestor from co-existing in an answer), and
//! the threshold cannot beat the selection either. Any-time termination
//! (time budget / iteration cap) returns the current best-effort selection,
//! as in §4.1 "Any-time termination".
//!
//! # Stages
//!
//! One query is a loop over four stages, each in its own module and each
//! operating on a caller-provided [`SearchScratch`]:
//!
//! 1. `expand` — keyword dedup + `Ext` expansion + answerability
//!    (runs once, before the loop);
//! 2. `discover` — component discovery and candidate maintenance;
//! 3. `bounds` — score-interval refresh and the undiscovered threshold;
//! 4. `stop` — greedy selection and the certified stop test.
//!
//! The scratch (and the [`s3_graph::Propagation`], via
//! [`s3_graph::Propagation::reset`]) is reused across queries: repeat
//! queries on a warm [`S3kSession`] allocate nothing in the steady state.
//! When consecutive queries share a seeker, the propagation is *resumed*
//! rather than reset (it is query-independent and monotone in the step
//! count); see [`SearchConfig::resume`] and [`ResumeOutcome`] — resumed
//! answers are byte-identical to cold ones. [`S3kEngine::run`] remains
//! the one-shot convenience path.

mod bounds;
mod discover;
mod expand;
mod fleet;
mod merge;
mod partitioned;
mod scratch;
mod stop;

pub use fleet::{selection_rank, FleetShard, SelectedCandidate};
pub use merge::merge_hits;
pub use scratch::SearchScratch;

use crate::clock::SearchClock;
use crate::ids::UserId;
use crate::instance::S3Instance;
use crate::score::{S3kScore, ScoreModel};
use s3_doc::DocNodeId;
use s3_graph::{NodeId, Propagation};
use s3_text::KeywordId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Query-local state a search driver exposes to the shared propagation
/// lifecycle ([`S3kEngine::drive_lifecycle`]): where discovery seeds go,
/// and how to rewind for the cold fallback replay. Implemented by the
/// unsharded [`SearchScratch`] and the partitioned scatter's context.
pub(crate) trait LifecycleScratch {
    /// The discovery seed list the next drive will consume.
    fn newly_mut(&mut self) -> &mut Vec<NodeId>;
    /// Rewind every search-loop buffer (candidates, discovery,
    /// selection) while keeping the query expansion.
    fn rewind(&mut self);
}

impl LifecycleScratch for SearchScratch {
    fn newly_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.newly
    }

    fn rewind(&mut self) {
        self.rewind_search();
    }
}

/// A keyword query `(u, φ)` with a result size `k` (Definition 3.1).
#[derive(Debug, Clone)]
pub struct Query {
    /// The seeker.
    pub seeker: UserId,
    /// The query keywords `φ` (duplicates are ignored).
    pub keywords: Vec<KeywordId>,
    /// Number of results requested.
    pub k: usize,
}

impl Query {
    /// Construct a query.
    pub fn new(seeker: UserId, keywords: Vec<KeywordId>, k: usize) -> Self {
        Query { seeker, keywords, k }
    }
}

/// Search tuning knobs.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// The concrete score (γ for proximity damping, η for structure).
    pub score: S3kScore,
    /// Hard cap on explore iterations (any-time safeguard).
    pub max_iterations: u32,
    /// Optional wall-clock budget (any-time termination, §4.1).
    pub time_budget: Option<Duration>,
    /// Worker threads for the explore step (1 = sequential).
    pub threads: usize,
    /// Enable the §5.2 component-keyword pruning.
    pub component_pruning: bool,
    /// Expand query keywords through `Ext` (Definition 2.1). Disabling
    /// reduces S3k to keyword-only matching — used by the Figure 8
    /// "semantic reachability" measurement.
    pub semantic_expansion: bool,
    /// Slack used to break ties between converging bounds (the paper's
    /// finite-precision de-facto tie-breaking).
    pub epsilon: f64,
    /// Continue a warm same-seeker propagation instead of resetting it
    /// (the propagation is query-independent, so a later query from the
    /// same seeker can start from the steps already taken). Results stay
    /// byte-identical to cold runs — a resume whose very first stop
    /// evaluation would return is replayed cold, since a cold run might
    /// have stopped at an earlier step with different certified bounds.
    /// Disable only to measure the cold path.
    pub resume: bool,
    /// Restrict candidate admission to the components this filter admits
    /// (`None` = the whole instance). Scoring is unchanged — proximity
    /// still propagates over the full graph — so a filtered search returns
    /// the exact top-k among the admitted components' documents: the
    /// per-shard view behind sharded serving.
    pub component_filter: Option<Arc<crate::partition::ComponentFilter>>,
    /// Time source for [`SearchConfig::time_budget`] checks: the
    /// monotonic wall clock in production, a manually-advanced counter in
    /// tests (deterministic deadline behaviour — see [`SearchClock`]).
    pub clock: SearchClock,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            score: S3kScore::default(),
            max_iterations: 256,
            time_budget: None,
            threads: 1,
            component_pruning: true,
            semantic_expansion: true,
            epsilon: 1e-9,
            resume: true,
            component_filter: None,
            clock: SearchClock::monotonic(),
        }
    }
}

/// How the propagation lifecycle served a query (diagnostics only; every
/// outcome returns byte-identical results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResumeOutcome {
    /// The search started from a fresh or reset propagation (step 0).
    #[default]
    Cold,
    /// A warm same-seeker propagation was continued from a non-zero step,
    /// skipping the explore work already done.
    Resumed,
    /// A resume attempt was discarded at its first stop evaluation (a
    /// cold run might have stopped at an earlier step with different
    /// certified bounds) and the query was replayed cold.
    Fallback,
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopReason {
    /// The stop condition held: the returned answer is provably a top-k
    /// answer (Theorem 4.1).
    #[default]
    Converged,
    /// No document can match every query keyword (empty answer is exact).
    NoMatch,
    /// Iteration cap hit: best-effort answer (any-time mode).
    MaxIterations,
    /// Time budget exhausted: best-effort answer (any-time mode).
    TimeBudget,
}

/// A certified quality statement attached to every answer (the serving
/// contract behind deadline-bounded anytime mode).
///
/// The search maintains certified `[lower, upper]` score intervals for
/// every candidate and an upper bound on every *undiscovered* document,
/// so even an answer cut short by a time budget or iteration cap can say
/// how far from the exact top-k it provably is:
///
/// * `floor` — the smallest certified lower bound among the returned
///   hits (0 when the answer is empty);
/// * `rival` — the largest certified upper bound of anything that could
///   still displace a returned hit: an unselected, non-dominated
///   candidate, or an undiscovered document (the threshold);
/// * `regret` — `max(0, rival − bar)` where `bar` is `floor` when the
///   answer is full (k hits) and 0 otherwise: no document outside the
///   answer can out-score a returned hit by more than `regret`
///   (soundness is property-tested against converged ground truth in
///   `crates/engine/tests/anytime.rs`);
/// * `exact` — the stop condition held ([`StopReason::Converged`]) or
///   the query was unanswerable ([`StopReason::NoMatch`]): the answer
///   is provably the exact top-k and `regret` is 0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityBound {
    /// Smallest certified lower bound among the returned hits.
    pub floor: f64,
    /// Largest certified upper bound of any potential displacer.
    pub rival: f64,
    /// Certified regret: how much better than the answer anything
    /// outside it could possibly be.
    pub regret: f64,
    /// The answer is provably exact (converged or no-match).
    pub exact: bool,
}

impl QualityBound {
    /// The bound of a provably exact answer.
    pub fn exact(floor: f64) -> Self {
        QualityBound { floor, rival: 0.0, regret: 0.0, exact: true }
    }

    /// The bound of a best-effort (anytime) answer: `full` says whether
    /// the answer holds k hits — a short answer's bar is 0, since even a
    /// zero-scored document could extend it.
    pub fn anytime(floor: f64, rival: f64, full: bool) -> Self {
        let bar = if full { floor } else { 0.0 };
        QualityBound { floor, rival, regret: (rival - bar).max(0.0), exact: false }
    }
}

impl Default for QualityBound {
    fn default() -> Self {
        QualityBound::exact(0.0)
    }
}

impl std::fmt::Display for QualityBound {
    /// One log-friendly line: `exact (floor 0.1234)` or
    /// `regret <= 0.0567 (floor 0.1234, rival 0.1801)`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.exact {
            write!(f, "exact (floor {:.4})", self.floor)
        } else {
            write!(
                f,
                "regret <= {:.4} (floor {:.4}, rival {:.4})",
                self.regret, self.floor, self.rival
            )
        }
    }
}

/// One result document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// The returned fragment (identified by the URI of its root, §2.3).
    pub doc: DocNodeId,
    /// Certified lower bound on its score.
    pub lower: f64,
    /// Certified upper bound on its score.
    pub upper: f64,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// The top-k documents, best first.
    pub hits: Vec<Hit>,
    /// Every candidate document examined (used by the §5.4 qualitative
    /// measures — "candidates reached by our algorithm").
    pub candidate_docs: Vec<DocNodeId>,
    /// Diagnostics.
    pub stats: SearchStats,
}

/// Search diagnostics (used by the benchmark harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Explore iterations executed.
    pub iterations: u32,
    /// Candidate documents ever considered.
    pub candidates: usize,
    /// Documents rejected by the per-document keyword check.
    pub rejected: usize,
    /// Content components processed.
    pub components: usize,
    /// Components skipped by the keyword pruning test.
    pub pruned_components: usize,
    /// Why the search ended.
    pub stop: StopReason,
    /// How the propagation lifecycle served this query.
    pub resume: ResumeOutcome,
    /// Certified quality of the answer, computed at stop time.
    pub quality: QualityBound,
}

/// Reusable S3k engine: holds the per-(instance, score) precomputations
/// (the `Smax` table). Build once, run many queries.
///
/// The engine is generic over the score model (the paper's §3.3 "generic
/// score"): [`S3kEngine::new`] uses the concrete S3k score from the
/// configuration (and shares the instance-cached `Smax` table),
/// [`S3kEngine::with_model`] accepts any [`ScoreModel`].
///
/// For repeat queries, open an [`S3kSession`]: it reuses one
/// [`SearchScratch`] and one [`Propagation`] across queries, eliminating
/// per-query allocation.
pub struct S3kEngine<'i, S: ScoreModel = S3kScore> {
    pub(crate) instance: &'i S3Instance,
    pub(crate) config: SearchConfig,
    pub(crate) model: S,
    pub(crate) smax: Arc<HashMap<KeywordId, f64>>,
}

impl<'i> S3kEngine<'i> {
    /// Build an engine around the configured concrete S3k score. The
    /// `Smax` table is served from the instance's cache, so constructing
    /// engines per query (as `S3Instance::search` does) stays cheap.
    pub fn new(instance: &'i S3Instance, config: SearchConfig) -> Self {
        let model = config.score;
        let smax = instance.smax_for(&model);
        S3kEngine { instance, config, model, smax }
    }
}

impl<'i, S: ScoreModel> S3kEngine<'i, S> {
    /// Build an engine around an arbitrary feasible score model; the
    /// `config.score` field is ignored in favor of `model`.
    pub fn with_model(instance: &'i S3Instance, config: SearchConfig, model: S) -> Self {
        let smax =
            Arc::new(instance.connections().smax_table_with(|t, d| model.structural_weight(t, d)));
        S3kEngine { instance, config, model, smax }
    }

    /// The score model driving this engine.
    pub fn model(&self) -> &S {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &SearchConfig {
        &self.config
    }

    /// The instance this engine queries.
    pub fn instance(&self) -> &'i S3Instance {
        self.instance
    }

    /// Open a session for repeat queries: scratch and propagation buffers
    /// persist (cleared, not reallocated) across [`S3kSession::run`] calls.
    pub fn session(&self) -> S3kSession<'_, 'i, S> {
        S3kSession { engine: self, scratch: SearchScratch::new(), prop: None }
    }

    /// Answer one query with throwaway buffers.
    pub fn run(&self, query: &Query) -> TopKResult {
        let mut scratch = SearchScratch::new();
        let mut prop = None;
        self.run_with(query, &mut scratch, &mut prop)
    }

    /// Answer one query using caller-owned buffers. `scratch` is cleared
    /// and refilled; `prop` is lazily created on first use (or graph /
    /// damping change), *resumed* when it is already warm for this
    /// query's seeker (unless [`SearchConfig::resume`] is off), and reset
    /// otherwise. This is the allocation-free steady-state path the
    /// serving layer drives; results are identical to [`S3kEngine::run`].
    pub fn run_with(
        &self,
        query: &Query,
        scratch: &mut SearchScratch,
        prop: &mut Option<Propagation<'i>>,
    ) -> TopKResult {
        let started = self.config.clock.now();
        let inst = self.instance;
        let graph = inst.graph();
        scratch.begin(graph.components().len());

        // ---- Stage 1: keyword expansion (Definition 2.1). ----
        if !expand::expand_query(self, query, scratch) {
            // Some keyword (or its whole extension) never occurs: the score
            // of every document is 0 and the (positive-score) answer is
            // empty — exact.
            let stats = SearchStats { stop: StopReason::NoMatch, ..SearchStats::default() };
            return TopKResult { hits: Vec::new(), candidate_docs: Vec::new(), stats };
        }

        let seeker = inst.user_node(query.seeker);
        let gamma = self.model.gamma();
        // Reuse only a propagation built over *this* graph with this γ; a
        // caller juggling several engines could otherwise hand us buffers
        // sized for a different instance.
        let prop = match prop {
            Some(p) if p.gamma() == gamma && std::ptr::eq(p.graph(), graph) => p,
            slot => slot.insert(Propagation::new(graph, gamma, seeker)),
        };

        self.drive_lifecycle(seeker, prop, scratch, |scratch, prop, outcome| {
            self.drive(query, scratch, prop, started, outcome)
        })
    }

    /// The one copy of the resume protocol (ARCHITECTURE.md "Propagation
    /// lifecycle"), shared by the unsharded and partitioned drivers:
    ///
    /// * a warm same-seeker propagation is *resumed* — discovery replays
    ///   the visited journal (the exact node sequence a cold run would
    ///   have fed it step by step, so candidate pools and admission order
    ///   match) and the loop continues from the current step;
    /// * `drive` must treat `ResumeOutcome::Resumed` as a probe and
    ///   return `None` if its **first** stop evaluation would return —
    ///   that is the one point where a cold run might already have
    ///   stopped at an earlier step with different certified bounds. The
    ///   protocol then rewinds (keeping the query expansion), resets the
    ///   propagation and replays cold for byte-identity;
    /// * anything else starts cold from the seeker seed.
    fn drive_lifecycle<C: LifecycleScratch>(
        &self,
        seeker: NodeId,
        prop: &mut Propagation<'i>,
        ctx: &mut C,
        mut drive: impl FnMut(&mut C, &mut Propagation<'i>, ResumeOutcome) -> Option<TopKResult>,
    ) -> TopKResult {
        let outcome = if self.config.resume && prop.seeker() == seeker && prop.iteration() > 0 {
            ctx.newly_mut().extend(prop.visited_journal());
            if let Some(result) = drive(ctx, prop, ResumeOutcome::Resumed) {
                return result;
            }
            ctx.rewind();
            prop.reset(seeker);
            ResumeOutcome::Fallback
        } else {
            if prop.seeker() != seeker || prop.iteration() > 0 {
                prop.reset(seeker);
            }
            ResumeOutcome::Cold
        };
        // Discovery from the seed (the seeker may source tags/documents).
        ctx.newly_mut().push(seeker);
        drive(ctx, prop, outcome).expect("a cold drive always returns")
    }

    /// The staged search loop over a prepared scratch and propagation
    /// (`scratch.newly` holds the discovery seeds).
    ///
    /// `ResumeOutcome::Resumed` makes the first stop evaluation a probe:
    /// if the loop would return at it — converged, iteration cap or time
    /// budget — `None` is returned and the caller must replay the query
    /// cold. Once the first evaluation fails, every later iteration is
    /// byte-identical to the cold run that would have reached it: the
    /// propagation state is a pure function of (seeker, γ, step), and the
    /// stop test tightens monotonically, so a cold run could not have
    /// stopped before the step the resume started from.
    fn drive(
        &self,
        query: &Query,
        scratch: &mut SearchScratch,
        prop: &mut Propagation<'i>,
        started: Duration,
        outcome: ResumeOutcome,
    ) -> Option<TopKResult> {
        let probe = outcome == ResumeOutcome::Resumed;
        let mut stats = SearchStats { resume: outcome, ..SearchStats::default() };
        let mut first = true;
        loop {
            // ---- Stage 2: discovery (Algorithm GetDocuments). ----
            discover::discover_newly(self, scratch, &mut stats);

            // ---- Stage 3: bounds (Algorithm ComputeCandidatesBounds). ----
            bounds::update_candidate_bounds(self, scratch, prop);
            let threshold = {
                let SearchScratch { smax_ext, threshold_parts, .. } = &mut *scratch;
                bounds::undiscovered_threshold(
                    &self.model,
                    smax_ext,
                    threshold_parts,
                    prop,
                    prop.frontier_closed(),
                )
            };

            // ---- Stage 4: selection + stop test (Algorithm StopCondition). ----
            stop::select(self, scratch, query.k);
            let reason = if stop::stop_condition(
                self,
                scratch,
                query.k,
                threshold,
                prop.frontier_closed(),
            ) {
                Some(StopReason::Converged)
            } else if prop.iteration() >= self.config.max_iterations {
                Some(StopReason::MaxIterations)
            } else if self
                .config
                .time_budget
                .is_some_and(|budget| self.config.clock.now().saturating_sub(started) >= budget)
            {
                Some(StopReason::TimeBudget)
            } else {
                None
            };
            if let Some(reason) = reason {
                // A resumed run rewinds and replays cold when its first
                // stop evaluation would return — except on a blown time
                // budget, where a cold replay could only burn more of a
                // budget that is already gone: the resumed best-effort
                // answer is returned (with its certified quality) and the
                // propagation stays warm, so a repeat query can upgrade
                // the degraded answer instead of restarting.
                if probe && first && reason != StopReason::TimeBudget {
                    return None;
                }
                stats.stop = reason;
                stats.iterations = prop.iteration();
                stats.quality = stop::certify(self, scratch, threshold, query.k, reason);
                return Some(stop::finish(scratch, stats));
            }
            first = false;

            // ---- Explore one more hop (Algorithm ExploreStep). ----
            prop.step_into(self.config.threads, false, &mut scratch.newly);
        }
    }
}

/// A warm query session over one engine: buffers persist across queries.
///
/// ```
/// use s3_core::{InstanceBuilder, Query, S3kEngine, SearchConfig};
/// use s3_doc::DocBuilder;
/// use s3_text::Language;
///
/// let mut b = InstanceBuilder::new(Language::English);
/// let u = b.add_user();
/// let kws = b.analyze("a degree");
/// let mut doc = DocBuilder::new("post");
/// doc.set_content(doc.root(), kws);
/// b.add_document(doc, Some(u));
/// let instance = b.build();
///
/// let engine = S3kEngine::new(&instance, SearchConfig::default());
/// let mut session = engine.session();
/// for keyword in instance.query_keywords("degree") {
///     let result = session.run(&Query::new(u, vec![keyword], 3));
///     assert_eq!(result.hits.len(), 1);
/// }
/// ```
pub struct S3kSession<'e, 'i, S: ScoreModel = S3kScore> {
    engine: &'e S3kEngine<'i, S>,
    scratch: SearchScratch,
    prop: Option<Propagation<'i>>,
}

impl<'e, 'i, S: ScoreModel> S3kSession<'e, 'i, S> {
    /// Answer one query, reusing the session's buffers. Results are
    /// identical to a cold [`S3kEngine::run`] — the scratch carries no
    /// state between queries, and a same-seeker propagation resume is
    /// exact (property-tested in `crates/engine`).
    pub fn run(&mut self, query: &Query) -> TopKResult {
        self.engine.run_with(query, &mut self.scratch, &mut self.prop)
    }

    /// The engine this session queries.
    pub fn engine(&self) -> &'e S3kEngine<'i, S> {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TagSubject;
    use crate::instance::InstanceBuilder;
    use s3_doc::DocBuilder;
    use s3_text::Language;

    /// Figure-1-style instance: u1 (seeker) is a friend of u0; u0 posted d0;
    /// u2 replied to d0 with d1 containing "M.S."; an ontology says
    /// M.S. ≺sc degree ≺sc graduate-related keywords.
    fn motivating() -> (S3Instance, UserId, KeywordId, DocNodeId) {
        let mut b = InstanceBuilder::new(Language::English);
        let u0 = b.add_user();
        let u1 = b.add_user();
        let u2 = b.add_user();
        b.add_social_edge(u1, u0, 1.0);
        b.add_social_edge(u0, u1, 1.0);

        // Ontology: ex:MS ≺sc ex:degree.
        let ms_kw = b.intern_entity_keyword("ex:MS");
        let degree_kw = b.intern_entity_keyword("ex:degree");
        let (ms_uri, deg_uri) = {
            let d = b.rdf_mut().dictionary_mut();
            (d.intern("ex:MS"), d.intern("ex:degree"))
        };
        b.rdf_mut().insert(
            ms_uri,
            s3_rdf::vocabulary::RDFS_SUBCLASS_OF,
            s3_rdf::Term::Uri(deg_uri),
            1.0,
        );

        // d0 by u0: "a university education matters".
        let kws0 = b.analyze("a university education matters");
        let mut d0 = DocBuilder::new("post");
        d0.set_content(d0.root(), kws0);
        let t0 = b.add_document(d0, Some(u0));
        let d0_root = b.doc_root(t0);

        // d1 by u2, replying to d0, mentions the ex:MS entity.
        let mut d1 = DocBuilder::new("reply");
        let text = d1.child(d1.root(), "text");
        d1.set_content(text, vec![ms_kw]);
        let t1 = b.add_document(d1, Some(u2));
        b.add_comment_edge(t1, d0_root);
        let d1_text = b.doc_node(t1, text);

        (b.build(), u1, degree_kw, d1_text)
    }

    #[test]
    fn semantic_search_finds_the_reply_snippet() {
        // The paper's R3 scenario: u1 searches "degree"; d1 only says
        // "M.S.", but the ontology bridges them.
        let (inst, u1, degree, d1_text) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 3), &SearchConfig::default());
        assert_eq!(res.stats.stop, StopReason::Converged);
        assert!(!res.hits.is_empty(), "semantics must surface the M.S. snippet");
        assert!(
            res.hits
                .iter()
                .any(|h| h.doc == d1_text || inst.forest().is_vertical_neighbor(h.doc, d1_text)),
            "expected the d1 snippet among {:?}",
            res.hits
        );
        // Without vertical neighbors in the answer (Definition 3.2).
        for (i, a) in res.hits.iter().enumerate() {
            for b in &res.hits[i + 1..] {
                assert!(!inst.forest().is_vertical_neighbor(a.doc, b.doc));
            }
        }
    }

    #[test]
    fn no_match_returns_empty_exactly() {
        let (inst, u1, _, _) = motivating();
        let ghost = KeywordId(9999);
        let res = inst.search(&Query::new(u1, vec![ghost], 3), &SearchConfig::default());
        assert_eq!(res.stats.stop, StopReason::NoMatch);
        assert!(res.hits.is_empty());
    }

    #[test]
    fn bounds_bracket_each_other() {
        let (inst, u1, degree, _) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 2), &SearchConfig::default());
        for h in &res.hits {
            assert!(h.lower <= h.upper + 1e-12);
            assert!(h.lower > 0.0, "converged hits have certified positive score");
        }
    }

    #[test]
    fn k_limits_result_size() {
        let (inst, u1, degree, _) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 1), &SearchConfig::default());
        assert_eq!(res.hits.len(), 1);
    }

    #[test]
    fn anytime_time_budget_returns_best_effort() {
        let (inst, u1, degree, _) = motivating();
        // A manual clock (frozen at 0) and a zero budget: the very first
        // stop evaluation sees the deadline blown — one exact outcome,
        // no race against the scheduler.
        let (clock, _ticks) = SearchClock::manual();
        let cfg =
            SearchConfig { time_budget: Some(Duration::ZERO), clock, ..SearchConfig::default() };
        let res = inst.search(&Query::new(u1, vec![degree], 3), &cfg);
        assert_eq!(res.stats.stop, StopReason::TimeBudget);
        assert_eq!(res.stats.iterations, 0, "stopped before the first explore step");
        let q = res.stats.quality;
        assert!(!q.exact, "a budget-stopped answer is best-effort");
        assert!(q.regret.is_finite() && q.regret >= 0.0, "certified regret is finite: {q}");
    }

    #[test]
    fn time_budget_is_measured_from_query_start() {
        // The budget is relative to the moment the query entered the
        // search loop, not to the clock's origin: a clock pre-advanced
        // far past the budget must not expire a fresh query.
        let (inst, u1, degree, _) = motivating();
        let (clock, ticks) = SearchClock::manual();
        ticks.store(2_000_000, std::sync::atomic::Ordering::Relaxed);
        let cfg = SearchConfig {
            time_budget: Some(Duration::from_millis(1)),
            clock,
            ..SearchConfig::default()
        };
        let res = inst.search(&Query::new(u1, vec![degree], 3), &cfg);
        assert_eq!(res.stats.stop, StopReason::Converged, "the clock never moved mid-query");
        assert!(res.stats.quality.exact);
        assert!(res.stats.quality.floor > 0.0);
    }

    #[test]
    fn converged_quality_is_exact_and_anchored_at_the_worst_hit() {
        let (inst, u1, degree, _) = motivating();
        let res = inst.search(&Query::new(u1, vec![degree], 3), &SearchConfig::default());
        assert_eq!(res.stats.stop, StopReason::Converged);
        let q = res.stats.quality;
        assert!(q.exact);
        assert_eq!(q.regret, 0.0);
        let min_lower = res.hits.iter().map(|h| h.lower).fold(f64::INFINITY, f64::min);
        assert_eq!(q.floor, min_lower);
        assert_eq!(format!("{q}"), format!("exact (floor {:.4})", min_lower));
    }

    #[test]
    fn iteration_capped_quality_reports_finite_regret() {
        let (inst, u1, degree, _) = motivating();
        let cfg = SearchConfig { max_iterations: 0, ..SearchConfig::default() };
        let res = inst.search(&Query::new(u1, vec![degree], 3), &cfg);
        assert_eq!(res.stats.stop, StopReason::MaxIterations);
        let q = res.stats.quality;
        assert!(!q.exact);
        assert!(q.regret >= 0.0 && q.regret.is_finite());
        // The display form carries the regret for serving logs.
        assert!(format!("{q}").starts_with("regret <= "));
    }

    #[test]
    fn component_pruning_does_not_change_results() {
        let (inst, u1, degree, _) = motivating();
        let on = inst.search(&Query::new(u1, vec![degree], 3), &SearchConfig::default());
        let cfg_off = SearchConfig { component_pruning: false, ..SearchConfig::default() };
        let off = inst.search(&Query::new(u1, vec![degree], 3), &cfg_off);
        let docs_on: Vec<_> = on.hits.iter().map(|h| h.doc).collect();
        let docs_off: Vec<_> = off.hits.iter().map(|h| h.doc).collect();
        assert_eq!(docs_on, docs_off);
    }

    #[test]
    fn multi_keyword_requires_all() {
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        let kws = b.analyze("university degree");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws.clone());
        b.add_document(doc, Some(u));
        let mut doc2 = DocBuilder::new("post");
        let only_first = vec![kws[0]];
        doc2.set_content(doc2.root(), only_first);
        b.add_document(doc2, Some(u));
        let inst = b.build();
        let res = inst.search(&Query::new(u, kws, 5), &SearchConfig::default());
        assert_eq!(res.hits.len(), 1, "only the document with both keywords qualifies");
    }

    #[test]
    fn endorsement_tags_contribute_to_score() {
        let mut b = InstanceBuilder::new(Language::English);
        let author = b.add_user();
        let endorser = b.add_user();
        let seeker = b.add_user();
        // The seeker is socially close to the endorser only.
        b.add_social_edge(seeker, endorser, 1.0);
        let kws = b.analyze("great university");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        let t = b.add_document(doc, Some(author));
        let root = b.doc_root(t);
        b.add_tag(TagSubject::Frag(root), endorser, None);
        let inst = b.build();
        let univers = inst.vocabulary().get("univers").unwrap();
        let res = inst.search(&Query::new(seeker, vec![univers], 1), &SearchConfig::default());
        assert_eq!(res.hits.len(), 1);
        assert!(res.hits[0].lower > 0.0, "the endorsement links the seeker to the doc");
    }

    #[test]
    fn shared_prop_slot_across_instances_is_rebuilt() {
        // A caller juggling two engines may pass the same scratch/prop
        // buffers to both; the propagation must be rebuilt when the graph
        // differs (same γ), not reused with wrong-sized buffers.
        let (inst_a, u1, degree, _) = motivating();
        let mut b = InstanceBuilder::new(Language::English);
        let v0 = b.add_user();
        let kws = b.analyze("a degree matters");
        let mut doc = DocBuilder::new("post");
        doc.set_content(doc.root(), kws);
        b.add_document(doc, Some(v0));
        let inst_b = b.build();
        let degree_b = inst_b.vocabulary().get("degre").unwrap();

        let engine_a = S3kEngine::new(&inst_a, SearchConfig::default());
        let engine_b = S3kEngine::new(&inst_b, SearchConfig::default());
        let mut scratch = SearchScratch::new();
        let mut prop = None;
        let qa = Query::new(u1, vec![degree], 3);
        let qb = Query::new(v0, vec![degree_b], 3);
        let warm_a = engine_a.run_with(&qa, &mut scratch, &mut prop);
        let warm_b = engine_b.run_with(&qb, &mut scratch, &mut prop);
        let warm_a2 = engine_a.run_with(&qa, &mut scratch, &mut prop);
        assert_eq!(warm_a.hits, engine_a.run(&qa).hits);
        assert_eq!(warm_b.hits, engine_b.run(&qb).hits);
        assert_eq!(warm_a2.hits, warm_a.hits);
    }

    #[test]
    fn same_seeker_queries_resume_and_stay_exact() {
        let (inst, u1, degree, _) = motivating();
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let mut session = engine.session();
        let queries = [
            Query::new(u1, vec![degree], 3),
            Query::new(u1, vec![degree], 1),
            Query::new(u1, vec![degree], 2),
        ];
        let mut outcomes = Vec::new();
        for q in &queries {
            let warm = session.run(q);
            let cold = engine.run(q);
            assert_eq!(warm.hits, cold.hits);
            assert_eq!(warm.candidate_docs, cold.candidate_docs);
            assert_eq!(warm.stats.stop, cold.stats.stop);
            assert_eq!(warm.stats.iterations, cold.stats.iterations);
            outcomes.push(warm.stats.resume);
        }
        assert_eq!(outcomes[0], ResumeOutcome::Cold, "first query starts cold");
        assert!(
            outcomes[1..].iter().all(|&o| o != ResumeOutcome::Cold),
            "later same-seeker queries must reuse the warm propagation: {outcomes:?}"
        );
    }

    #[test]
    fn seeker_switch_resets_instead_of_resuming() {
        let (inst, u1, degree, _) = motivating();
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let mut session = engine.session();
        session.run(&Query::new(u1, vec![degree], 3));
        let other = UserId(0);
        let warm = session.run(&Query::new(other, vec![degree], 3));
        assert_eq!(warm.stats.resume, ResumeOutcome::Cold);
        assert_eq!(warm.hits, engine.run(&Query::new(other, vec![degree], 3)).hits);
    }

    #[test]
    fn resume_disabled_always_runs_cold() {
        let (inst, u1, degree, _) = motivating();
        let cfg = SearchConfig { resume: false, ..SearchConfig::default() };
        let engine = S3kEngine::new(&inst, cfg);
        let mut session = engine.session();
        for k in [3usize, 2, 1] {
            let warm = session.run(&Query::new(u1, vec![degree], k));
            assert_eq!(warm.stats.resume, ResumeOutcome::Cold);
            assert_eq!(warm.hits, engine.run(&Query::new(u1, vec![degree], k)).hits);
        }
    }

    #[test]
    fn session_reuse_matches_cold_runs() {
        let (inst, u1, degree, _) = motivating();
        let engine = S3kEngine::new(&inst, SearchConfig::default());
        let mut session = engine.session();
        // Interleave queries with different keyword counts and k to stress
        // scratch rewinding; every warm answer must equal the cold one.
        let ghost = KeywordId(9999);
        let queries = [
            Query::new(u1, vec![degree], 3),
            Query::new(u1, vec![ghost], 2),
            Query::new(u1, vec![degree, degree], 1),
            Query::new(u1, vec![degree], 2),
        ];
        for q in &queries {
            let warm = session.run(q);
            let cold = engine.run(q);
            assert_eq!(warm.stats.stop, cold.stats.stop);
            assert_eq!(warm.candidate_docs, cold.candidate_docs);
            assert_eq!(
                warm.hits.iter().map(|h| h.doc).collect::<Vec<_>>(),
                cold.hits.iter().map(|h| h.doc).collect::<Vec<_>>()
            );
            for (w, c) in warm.hits.iter().zip(cold.hits.iter()) {
                assert_eq!(w.lower, c.lower);
                assert_eq!(w.upper, c.upper);
            }
        }
    }
}
