//! Stage 1 — keyword expansion (Definition 2.1).
//!
//! Deduplicates the query keywords, expands each through `Ext` (unless
//! semantic expansion is disabled), computes the `SmaxExt(k)` threshold
//! coefficients, and decides answerability: under conjunctive semantics a
//! single keyword whose whole extension is absent from the corpus makes
//! every score 0 (the empty answer is exact).

use super::scratch::SearchScratch;
use super::{Query, S3kEngine};
use crate::score::ScoreModel;
use std::sync::Arc;

/// Fill `scratch.{keywords, exts, smax_ext}` for `query`. Returns `false`
/// when the query is provably unanswerable (empty or some/every keyword
/// extension missing, per the model's conjunctive/disjunctive semantics).
pub(crate) fn expand_query<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    query: &Query,
    scratch: &mut SearchScratch,
) -> bool {
    // Deduplicate φ without cloning the caller's keyword list.
    scratch.keywords.extend_from_slice(&query.keywords);
    scratch.keywords.sort_unstable();
    scratch.keywords.dedup();

    for &k in &scratch.keywords {
        let ext = if engine.config.semantic_expansion {
            engine.instance.expand_keyword(k)
        } else {
            Arc::new(vec![k])
        };
        // SmaxExt(k) = Σ_{k' ∈ Ext(k)} Smax(k').
        let smax_ext: f64 = ext.iter().map(|k| engine.smax.get(k).copied().unwrap_or(0.0)).sum();
        scratch.exts.push(ext);
        scratch.smax_ext.push(smax_ext);
    }

    let unanswerable = if engine.model.requires_all_keywords() {
        scratch.smax_ext.iter().any(|&s| s <= 0.0)
    } else {
        scratch.smax_ext.iter().all(|&s| s <= 0.0)
    };
    !(scratch.keywords.is_empty() || unanswerable)
}
