//! Stage 4 — selection and the stop test (Algorithm `StopCondition`).
//!
//! The greedy selection picks candidates by upper bound while respecting
//! Definition 3.2's vertical-neighbor constraint; the stop test certifies
//! that no unselected or undiscovered document can displace the selection
//! (Theorem 4.1), at which point the answer is final.

use super::merge::rank;
use super::scratch::SearchScratch;
use super::{Hit, S3kEngine, SearchStats, TopKResult};
use crate::score::ScoreModel;

/// Greedy top-k selection by upper bound, skipping vertical neighbors of
/// already-selected documents (Definition 3.2's constraint). Fills
/// `scratch.selection`. Ranking is [`rank`] — the same order every gather
/// uses, which is what lets a scatter over partitioned candidate pools
/// merge back to this exact selection.
pub(crate) fn select<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &mut SearchScratch,
    k: usize,
) {
    let forest = engine.instance.forest();
    let candidates = scratch.candidates.as_slice();
    scratch.order.clear();
    scratch.order.extend(0..candidates.len());
    scratch.order.sort_unstable_by(|&a, &b| {
        rank(candidates[a].upper, candidates[a].doc, candidates[b].upper, candidates[b].doc)
    });
    scratch.selection.clear();
    for &i in &scratch.order {
        if scratch.selection.len() == k {
            break;
        }
        let d = candidates[i].doc;
        if candidates[i].upper <= 0.0 {
            break;
        }
        let conflict =
            scratch.selection.iter().any(|&s| forest.is_vertical_neighbor(candidates[s].doc, d));
        if !conflict {
            scratch.selection.push(i);
        }
    }
}

/// Is the current selection provably a top-k answer?
///
/// The partitioned scatter driver mirrors this test over per-shard
/// candidate pools (`partition_stop` in `search/partitioned.rs`); any
/// change here must be made there too — the sharded-parity property
/// tests fail loudly on divergence, but only after the fact.
pub(crate) fn stop_condition<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &mut SearchScratch,
    k: usize,
    threshold: f64,
    frontier_closed: bool,
) -> bool {
    let eps = engine.config.epsilon;
    let forest = engine.instance.forest();
    let candidates = scratch.candidates.as_slice();
    let selection = &scratch.selection;
    scratch.in_selection.clear();
    scratch.in_selection.extend(selection.iter().copied());
    let min_lower = selection.iter().map(|&i| candidates[i].lower).fold(f64::INFINITY, f64::min);

    if selection.len() == k {
        // Undiscovered documents must not be able to enter.
        if threshold > min_lower + eps {
            return false;
        }
    } else {
        // Fewer than k positive-score documents may exist; that is only
        // certain once the frontier stopped growing (no undiscovered
        // document can have positive score) — see module docs.
        if !frontier_closed {
            return false;
        }
    }
    // Every unselected candidate must be provably excluded: either it
    // cannot beat the selection's weakest member, or a selected vertical
    // neighbor provably dominates it.
    for (i, c) in candidates.iter().enumerate() {
        if scratch.in_selection.contains(&i) || c.upper <= 0.0 {
            continue;
        }
        let beaten_globally = selection.len() == k && c.upper <= min_lower + eps;
        if beaten_globally {
            continue;
        }
        let dominated = selection.iter().any(|&s| {
            forest.is_vertical_neighbor(candidates[s].doc, c.doc)
                && candidates[s].lower + eps >= c.upper
        });
        if !dominated {
            return false;
        }
    }
    true
}

/// Materialize the result from the scratch's selection and candidates.
pub(crate) fn finish(scratch: &SearchScratch, stats: SearchStats) -> TopKResult {
    let candidates = scratch.candidates.as_slice();
    let hits = scratch
        .selection
        .iter()
        .map(|&i| Hit {
            doc: candidates[i].doc,
            lower: candidates[i].lower,
            upper: candidates[i].upper,
        })
        .collect();
    let candidate_docs = candidates.iter().map(|c| c.doc).collect();
    TopKResult { hits, candidate_docs, stats }
}
