//! Stage 4 — selection and the stop test (Algorithm `StopCondition`).
//!
//! The greedy selection picks candidates by upper bound while respecting
//! Definition 3.2's vertical-neighbor constraint; the stop test certifies
//! that no unselected or undiscovered document can displace the selection
//! (Theorem 4.1), at which point the answer is final.

use super::merge::rank;
use super::scratch::{Candidate, SearchScratch};
use super::{Hit, QualityBound, S3kEngine, SearchStats, StopReason, TopKResult};
use crate::score::ScoreModel;

/// Greedy top-k selection by upper bound, skipping vertical neighbors of
/// already-selected documents (Definition 3.2's constraint). Fills
/// `scratch.selection`. Ranking is [`rank`] — the same order every gather
/// uses, which is what lets a scatter over partitioned candidate pools
/// merge back to this exact selection.
pub(crate) fn select<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &mut SearchScratch,
    k: usize,
) {
    let forest = engine.instance.forest();
    let candidates = scratch.candidates.as_slice();
    scratch.order.clear();
    scratch.order.extend(0..candidates.len());
    scratch.order.sort_unstable_by(|&a, &b| {
        rank(candidates[a].upper, candidates[a].doc, candidates[b].upper, candidates[b].doc)
    });
    scratch.selection.clear();
    for &i in &scratch.order {
        if scratch.selection.len() == k {
            break;
        }
        let d = candidates[i].doc;
        if candidates[i].upper <= 0.0 {
            break;
        }
        let conflict =
            scratch.selection.iter().any(|&s| forest.is_vertical_neighbor(candidates[s].doc, d));
        if !conflict {
            scratch.selection.push(i);
        }
    }
}

/// Is the current selection provably a top-k answer?
///
/// The partitioned scatter driver mirrors this test over per-shard
/// candidate pools (`partition_stop` in `search/partitioned.rs`); any
/// change here must be made there too — the sharded-parity property
/// tests fail loudly on divergence, but only after the fact.
pub(crate) fn stop_condition<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &mut SearchScratch,
    k: usize,
    threshold: f64,
    frontier_closed: bool,
) -> bool {
    let eps = engine.config.epsilon;
    let forest = engine.instance.forest();
    let candidates = scratch.candidates.as_slice();
    let selection = &scratch.selection;
    scratch.in_selection.clear();
    scratch.in_selection.extend(selection.iter().copied());
    let min_lower = selection.iter().map(|&i| candidates[i].lower).fold(f64::INFINITY, f64::min);

    if selection.len() == k {
        // Undiscovered documents must not be able to enter.
        if threshold > min_lower + eps {
            return false;
        }
    } else {
        // Fewer than k positive-score documents may exist; that is only
        // certain once the frontier stopped growing (no undiscovered
        // document can have positive score) — see module docs.
        if !frontier_closed {
            return false;
        }
    }
    // Every unselected candidate must be provably excluded: either it
    // cannot beat the selection's weakest member, or a selected vertical
    // neighbor provably dominates it.
    for (i, c) in candidates.iter().enumerate() {
        if scratch.in_selection.contains(&i) || c.upper <= 0.0 {
            continue;
        }
        let beaten_globally = selection.len() == k && c.upper <= min_lower + eps;
        if beaten_globally {
            continue;
        }
        let dominated = selection.iter().any(|&s| {
            forest.is_vertical_neighbor(candidates[s].doc, c.doc)
                && candidates[s].lower + eps >= c.upper
        });
        if !dominated {
            return false;
        }
    }
    true
}

/// The strongest *candidate* rival of a selection: the largest upper
/// bound among unselected, positive candidates not provably dominated by
/// a selected vertical neighbor (0 when none). The undiscovered-document
/// threshold is the other rival source; callers `max` the two.
///
/// Deliberately *without* the stop test's `beaten_globally` exclusion:
/// that exclusion is relative to the selection's `min_lower`, which is
/// exactly the bar the regret is measured against — excluding beaten
/// candidates here would make the reported regret claim more than the
/// bounds certify. The stop condition and this rival agree:
/// `stop_condition` passes its candidate sweep iff `rival` is at most
/// `min_lower + ε` (full selection) or 0 (short selection).
pub(crate) fn pool_rival_upper<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    candidates: &[Candidate],
    selected: &[usize],
) -> f64 {
    let eps = engine.config.epsilon;
    let forest = engine.instance.forest();
    let mut rival = 0.0f64;
    for (i, c) in candidates.iter().enumerate() {
        if c.upper <= 0.0 || selected.contains(&i) {
            continue;
        }
        let dominated = selected.iter().any(|&s| {
            let sel = &candidates[s];
            forest.is_vertical_neighbor(sel.doc, c.doc) && sel.lower + eps >= c.upper
        });
        if !dominated {
            rival = rival.max(c.upper);
        }
    }
    rival
}

/// Compute the answer's [`QualityBound`] at stop time, from the scratch's
/// final selection, candidate pool and undiscovered threshold.
pub(crate) fn certify<S: ScoreModel>(
    engine: &S3kEngine<'_, S>,
    scratch: &SearchScratch,
    threshold: f64,
    k: usize,
    reason: StopReason,
) -> QualityBound {
    let candidates = scratch.candidates.as_slice();
    let floor =
        scratch.selection.iter().map(|&i| candidates[i].lower).fold(f64::INFINITY, f64::min);
    let floor = if floor.is_finite() { floor } else { 0.0 };
    match reason {
        StopReason::Converged | StopReason::NoMatch => QualityBound::exact(floor),
        StopReason::MaxIterations | StopReason::TimeBudget => {
            let rival = threshold.max(pool_rival_upper(engine, candidates, &scratch.selection));
            QualityBound::anytime(floor, rival, scratch.selection.len() == k)
        }
    }
}

/// Materialize the result from the scratch's selection and candidates.
pub(crate) fn finish(scratch: &SearchScratch, stats: SearchStats) -> TopKResult {
    let candidates = scratch.candidates.as_slice();
    let hits = scratch
        .selection
        .iter()
        .map(|&i| Hit {
            doc: candidates[i].doc,
            lower: candidates[i].lower,
            upper: candidates[i].upper,
        })
        .collect();
    let candidate_docs = candidates.iter().map(|c| c.doc).collect();
    TopKResult { hits, candidate_docs, stats }
}
