//! Per-shard round executor for the cross-process fleet.
//!
//! [`super::partitioned`] runs the iteration-synchronous scatter-gather
//! in one process: one `Propagation`, per-shard `SearchScratch`es, a
//! shared admission-order log, a merged selection, one global stop test.
//! [`FleetShard`] is the same algorithm cut along the process boundary:
//! it owns *one shard's* half of the round loop so a remote shard server
//! can play its part with only small per-round messages:
//!
//! * every shard replays the **identical propagation** over the full
//!   graph (proximity is a pure function of graph × γ × seeker × step,
//!   so replicas stay bit-identical without exchanging a single float);
//! * discovery walks the same `newly` list as the in-process scatter and
//!   counts **every** trigger — owned or foreign — into a global trigger
//!   sequence number; only owned components are discovered, and each
//!   admitted document is tagged with the sequence that admitted it. The
//!   client k-way merges the per-shard admitted lists by sequence, which
//!   reconstructs the single-process admission-order log exactly (one
//!   component belongs to one shard, so sequences never tie across
//!   shards);
//! * bounds, the undiscovered-document threshold and the greedy
//!   selection run shard-locally, exactly as the in-process shards do;
//! * the stop test's per-shard candidate sweep ([`FleetShard::rival_upper`])
//!   runs against the *merged* selection the client sends back —
//!   mirroring `partition_stop` term for term.
//!
//! Fleet queries always run cold (the client owns the resume policy and
//! does not use one yet); since same-seeker resume is exact, results
//! still match a possibly-resumed in-process engine byte for byte.

use super::scratch::SearchScratch;
use super::{bounds, discover, expand, merge, stop};
use super::{Query, S3kEngine, SearchStats, StopReason};
use crate::partition::ComponentPartition;
use crate::score::ScoreModel;
use s3_doc::DocNodeId;
use s3_graph::{NodeId, Propagation, PropagationState};
use std::cmp::Ordering;

/// One selected candidate, as a shard reports it: the index addresses the
/// shard's candidate pool (stable for the query), the rest are the hit
/// fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedCandidate {
    /// Index into this shard's candidate pool.
    pub index: u32,
    /// The selected document.
    pub doc: DocNodeId,
    /// Certified lower score bound.
    pub lower: f64,
    /// Certified upper score bound.
    pub upper: f64,
}

/// The ranking every selection merge uses: upper bound descending, then
/// document id ascending — the private `merge` module's order, re-exported
/// so the fleet client (a different crate) merges per-shard selections
/// exactly like the in-process gather.
pub fn selection_rank(a_upper: f64, a_doc: DocNodeId, b_upper: f64, b_doc: DocNodeId) -> Ordering {
    merge::rank(a_upper, a_doc, b_upper, b_doc)
}

/// One shard's executor state between round messages. The owning server
/// keeps this alive across rounds (and across queries — the propagation
/// state stays warm and is `reset` in O(touched) on the next seeker).
#[derive(Debug, Default)]
pub struct FleetShard {
    scratch: SearchScratch,
    state: Option<PropagationState>,
    stats: SearchStats,
    /// Global trigger sequence: counts every component trigger this
    /// query dispatched, owned or foreign.
    seq: u32,
    k: usize,
    seeker: NodeId,
    active: bool,
    admitted: Vec<(u32, DocNodeId)>,
    threshold: f64,
    frontier_closed: bool,
    iteration: u32,
}

impl FleetShard {
    /// Fresh executor.
    pub fn new() -> Self {
        FleetShard::default()
    }

    /// Begin a query: expand it, start a cold propagation and run round
    /// zero. Returns `false` when expansion fails (no shard can answer —
    /// the query is a `NoMatch` and no round state is kept).
    ///
    /// `engine` must carry the scatter configuration: no component
    /// filter (ownership is enforced by `partition`/`shard` here), same
    /// score model and epsilon as the fleet client.
    pub fn begin<S: ScoreModel>(
        &mut self,
        engine: &S3kEngine<'_, S>,
        partition: &ComponentPartition,
        shard: usize,
        query: &Query,
    ) -> bool {
        let graph = engine.instance.graph();
        self.stats = SearchStats::default();
        self.seq = 0;
        self.k = query.k;
        self.scratch.begin(graph.components().len());
        if !expand::expand_query(engine, query, &mut self.scratch) {
            self.stats.stop = StopReason::NoMatch;
            self.active = false;
            return false;
        }
        self.active = true;
        self.seeker = engine.instance.user_node(query.seeker);
        let state = self.state.take().unwrap_or_default();
        let mut prop = Propagation::attach(graph, engine.model.gamma(), self.seeker, state);
        if prop.iteration() > 0 {
            // Fleet rounds always start cold; a warm same-seeker state
            // would otherwise resume where the last query left off.
            prop.reset(self.seeker);
        }
        self.scratch.newly.clear();
        self.scratch.newly.push(self.seeker);
        self.round(engine, partition, shard, &mut prop);
        self.state = Some(prop.detach());
        true
    }

    /// Advance the propagation one step and run the next round.
    pub fn advance<S: ScoreModel>(
        &mut self,
        engine: &S3kEngine<'_, S>,
        partition: &ComponentPartition,
        shard: usize,
    ) {
        assert!(self.active, "advance without an active query");
        let graph = engine.instance.graph();
        let state = self.state.take().expect("active query keeps propagation state");
        let mut prop = Propagation::attach(graph, engine.model.gamma(), self.seeker, state);
        prop.step_into(engine.config.threads, false, &mut self.scratch.newly);
        self.round(engine, partition, shard, &mut prop);
        self.state = Some(prop.detach());
    }

    /// One round over the freshly-visited nodes: discovery of owned
    /// components (with global trigger sequencing), bounds, threshold and
    /// greedy selection — stages 2–4 of the staged search, shard-local.
    fn round<S: ScoreModel>(
        &mut self,
        engine: &S3kEngine<'_, S>,
        partition: &ComponentPartition,
        shard: usize,
        prop: &mut Propagation<'_>,
    ) {
        let graph = engine.instance.graph();
        self.admitted.clear();
        let newly = std::mem::take(&mut self.scratch.newly);
        for &v in &newly {
            discover::triggered_components(graph, v, &mut |comp| {
                // Count the trigger *before* the ownership filter: the
                // sequence must advance identically on every shard for
                // the merged admission order to be the in-process one.
                let seq = self.seq;
                self.seq += 1;
                if partition.shard_of(comp) != shard {
                    return;
                }
                let before = self.scratch.candidates.as_slice().len();
                discover::discover_component(engine, comp, &mut self.scratch, &mut self.stats);
                self.admitted.extend(
                    self.scratch.candidates.as_slice()[before..].iter().map(|c| (seq, c.doc)),
                );
            });
        }
        self.scratch.newly = newly;

        bounds::update_candidate_bounds(engine, &mut self.scratch, prop);
        self.threshold = {
            let SearchScratch { smax_ext, threshold_parts, .. } = &mut self.scratch;
            bounds::undiscovered_threshold(
                &engine.model,
                smax_ext,
                threshold_parts,
                prop,
                prop.frontier_closed(),
            )
        };
        stop::select(engine, &mut self.scratch, self.k);
        self.frontier_closed = prop.frontier_closed();
        self.iteration = prop.iteration();
        self.stats.iterations = prop.iteration();
    }

    /// This shard's half of the global stop test (`partition_stop`'s
    /// per-shard candidate sweep), reported as a *certified rival bound*
    /// rather than a bare vote: the largest upper bound among this
    /// shard's unselected, positive candidates not provably dominated by
    /// a selected vertical neighbor (0 when none). `selected` holds the
    /// candidate-pool indices of this shard's entries in the merged
    /// selection.
    ///
    /// The client reconstructs the old boolean vote exactly —
    /// `rival ≤ min_lower + ε` when the merged selection is full,
    /// `rival ≤ 0` otherwise — and additionally gets the quantity an
    /// anytime answer's [`super::QualityBound`] needs, in one reply.
    pub fn rival_upper<S: ScoreModel>(&self, engine: &S3kEngine<'_, S>, selected: &[u32]) -> f64 {
        let eps = engine.config.epsilon;
        let forest = engine.instance.forest();
        let candidates = self.scratch.candidates.as_slice();
        let mut rival = 0.0f64;
        for (i, c) in candidates.iter().enumerate() {
            if c.upper <= 0.0 || selected.contains(&(i as u32)) {
                continue;
            }
            let dominated = selected.iter().any(|&si| {
                let sel = &candidates[si as usize];
                forest.is_vertical_neighbor(sel.doc, c.doc) && sel.lower + eps >= c.upper
            });
            if !dominated {
                rival = rival.max(c.upper);
            }
        }
        rival
    }

    /// The client decided the query is over. The propagation state stays
    /// warm for the next query's O(touched) reset.
    pub fn end(&mut self) {
        self.active = false;
    }

    /// The instance was swapped (ingest): drop state tied to the old
    /// graph.
    pub fn invalidate(&mut self) {
        self.state = None;
        self.active = false;
    }

    /// Whether a query is between `begin` and `end`.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Propagation iteration of the last round.
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// Undiscovered-document threshold of the last round (identical on
    /// every shard).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether the frontier had closed at the last round.
    pub fn frontier_closed(&self) -> bool {
        self.frontier_closed
    }

    /// Cumulative stats for the current query (this shard's share).
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// Documents admitted by the last round, tagged with their global
    /// trigger sequence.
    pub fn admitted(&self) -> &[(u32, DocNodeId)] {
        &self.admitted
    }

    /// The shard's current greedy selection, in selection order.
    pub fn selection(&self) -> impl Iterator<Item = SelectedCandidate> + '_ {
        let candidates = self.scratch.candidates.as_slice();
        self.scratch.selection.iter().map(move |&i| {
            let c = &candidates[i];
            SelectedCandidate { index: i as u32, doc: c.doc, lower: c.lower, upper: c.upper }
        })
    }
}
