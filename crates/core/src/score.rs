//! Score model: the generic interface of §3.3 and the concrete S3k score of
//! §3.4 / Definition 3.5.
//!
//! The generic score combines, for each query keyword, the contributions of
//! the document's connections — each weighted by the structural importance
//! of its fragment (`pos(d, f)`) and the social proximity of its source —
//! and then aggregates across keywords (`⊕gen`). The query-answering
//! algorithm only needs the *feasibility properties* of §3.3, which in this
//! implementation are guaranteed structurally:
//!
//! 1. **Relationship with path proximity** — proximity enters the score
//!    only through per-source values, which the propagation engine updates
//!    with its `Uprox` (the per-step accumulation);
//! 2. **Long-path attenuation** — `B>n = M_n/γ^{n+1}` from the engine;
//! 3. **Score soundness** — [`ScoreModel::keyword_part`] is monotone in
//!    every proximity and continuous;
//! 4. **Score convergence** — `Bscore(q, B) = ⊕gen(Smax(k)·B)` which tends
//!    to 0 with B (used as the S3k threshold).

use crate::connections::{ConnType, Connection};

/// A (structural weight, social proximity) pair for one connection: the
/// materialized form of `(type, pos(d,f), prox(u, src))`.
#[derive(Debug, Clone, Copy)]
pub struct ConnScorePart {
    /// `η^{|pos(d,f)|}`-style structural weight (model-dependent).
    pub structural: f64,
    /// `prox(u, src)` or a bound on it.
    pub proximity: f64,
}

/// The generic score interface (§3.3).
///
/// The S3k engine accepts any implementation; the §3.3 feasibility
/// properties are guaranteed structurally as long as implementations keep
/// the contract below:
///
/// * the per-keyword component is the **linear form**
///   `Σ structural_weight(type, |pos|) · prox(src)` (this is what lets the
///   engine maintain certified lower/upper bounds by substituting bounded
///   proximities — score soundness, property 3);
/// * [`ScoreModel::combine_keywords`] must be monotone in every component
///   and satisfy `combine(0,…,0) = 0` (score convergence, property 4: the
///   engine's threshold is `combine(SmaxExt(k)·B>n)`).
pub trait ScoreModel: Send + Sync {
    /// The proximity damping factor γ (> 1) used by the propagation.
    fn gamma(&self) -> f64;

    /// Structural weight of one connection: the model's function of the
    /// connection type and `|pos(d, f)|`.
    fn structural_weight(&self, ctype: ConnType, depth: u8) -> f64;

    /// Per-keyword aggregation: combine the connection parts into the
    /// keyword's score component (Σ structural·prox for S3k).
    fn keyword_part(&self, parts: &[ConnScorePart]) -> f64 {
        parts.iter().map(|p| p.structural * p.proximity).sum()
    }

    /// Cross-keyword aggregation `⊕gen` (product for S3k). `parts` has one
    /// entry per query keyword.
    fn combine_keywords(&self, parts: &[f64]) -> f64;

    /// Conjunctive (`true`, S3k's product: a document missing a keyword
    /// scores 0) or disjunctive (`false`, e.g. a sum `⊕gen`) semantics.
    /// Drives candidate filtering and the empty-extension early exit.
    fn requires_all_keywords(&self) -> bool {
        true
    }

    /// Convenience: score a document's connection lists (one list per query
    /// keyword) under a per-source proximity function.
    fn score_with(
        &self,
        keyword_conns: &[Vec<Connection>],
        mut prox: impl FnMut(s3_graph::NodeId) -> f64,
    ) -> f64 {
        let mut parts = Vec::with_capacity(keyword_conns.len());
        let mut scratch: Vec<ConnScorePart> = Vec::new();
        for conns in keyword_conns {
            scratch.clear();
            scratch.extend(conns.iter().map(|c| ConnScorePart {
                structural: self.structural_weight(c.ctype, c.depth),
                proximity: prox(c.src),
            }));
            parts.push(self.keyword_part(&scratch));
        }
        self.combine_keywords(&parts)
    }
}

/// The concrete S3k score (Definition 3.5):
///
/// ```text
/// score(d, (u, φ)) = Π_{k∈φ} Σ_{(type,f,src) ∈ con(d,k)} η^{|pos(d,f)|} · prox(u, src)
/// ```
///
/// with damping factor `η < 1`; the proximity is the §3.4 all-paths sum
/// with damping `γ > 1`. "If we ignore the social aspects (prox = 1), ⊕gen
/// gives the best score to the lowest common ancestor of the nodes
/// containing the query keywords" — the XML-IR behaviour (see tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct S3kScore {
    /// Social damping factor γ > 1 (paper sweeps 1.25–4).
    pub gamma: f64,
    /// Structural damping factor η < 1.
    pub eta: f64,
}

impl S3kScore {
    /// New score; panics if the parameters are out of range.
    pub fn new(gamma: f64, eta: f64) -> Self {
        assert!(gamma > 1.0, "γ must exceed 1");
        assert!(eta > 0.0 && eta < 1.0, "η must be in (0,1)");
        S3kScore { gamma, eta }
    }
}

impl Default for S3kScore {
    /// γ = 1.5 (the paper's middle setting), η = 0.5.
    fn default() -> Self {
        S3kScore { gamma: 1.5, eta: 0.5 }
    }
}

impl ScoreModel for S3kScore {
    fn gamma(&self) -> f64 {
        self.gamma
    }

    fn structural_weight(&self, _ctype: ConnType, depth: u8) -> f64 {
        self.eta.powi(depth as i32)
    }

    fn combine_keywords(&self, parts: &[f64]) -> f64 {
        parts.iter().product()
    }
}

/// A connection-type-weighted variant of the S3k score: "different types of
/// connections may not be accounted for equally" (§3.4). A direct
/// occurrence, a human tag and a comment mention each receive their own
/// multiplier on top of the structural damping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeWeightedScore {
    /// Social damping (γ > 1).
    pub gamma: f64,
    /// Structural damping (η < 1).
    pub eta: f64,
    /// Multiplier for `S3:contains` connections.
    pub contains_weight: f64,
    /// Multiplier for `S3:relatedTo` (tag) connections.
    pub related_weight: f64,
    /// Multiplier for `S3:commentsOn` connections.
    pub comments_weight: f64,
}

impl Default for TypeWeightedScore {
    /// Direct content counts full, tags 80%, comments 60%.
    fn default() -> Self {
        TypeWeightedScore {
            gamma: 1.5,
            eta: 0.5,
            contains_weight: 1.0,
            related_weight: 0.8,
            comments_weight: 0.6,
        }
    }
}

impl ScoreModel for TypeWeightedScore {
    fn gamma(&self) -> f64 {
        self.gamma
    }

    fn structural_weight(&self, ctype: ConnType, depth: u8) -> f64 {
        let type_w = match ctype {
            ConnType::Contains => self.contains_weight,
            ConnType::RelatedTo => self.related_weight,
            ConnType::CommentsOn => self.comments_weight,
        };
        type_w * self.eta.powi(depth as i32)
    }

    fn combine_keywords(&self, parts: &[f64]) -> f64 {
        parts.iter().product()
    }
}

/// A disjunctive (`OR`) variant: keyword components are *summed*, so
/// documents matching any query keyword qualify. Demonstrates the `⊕gen`
/// flexibility §3.4 calls out ("there are many possible ways to define
/// ⊕gen and ⊕path, depending on the application") while keeping all four
/// feasibility properties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnyKeywordScore {
    /// Social damping (γ > 1).
    pub gamma: f64,
    /// Structural damping (η < 1).
    pub eta: f64,
}

impl Default for AnyKeywordScore {
    fn default() -> Self {
        AnyKeywordScore { gamma: 1.5, eta: 0.5 }
    }
}

impl ScoreModel for AnyKeywordScore {
    fn gamma(&self) -> f64 {
        self.gamma
    }

    fn structural_weight(&self, _ctype: ConnType, depth: u8) -> f64 {
        self.eta.powi(depth as i32)
    }

    fn combine_keywords(&self, parts: &[f64]) -> f64 {
        parts.iter().sum()
    }

    fn requires_all_keywords(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s3_graph::NodeId;

    fn conn(depth: u8, src: u32) -> Connection {
        Connection {
            ctype: ConnType::Contains,
            frag: s3_doc::DocNodeId(0),
            depth,
            src: NodeId(src),
        }
    }

    #[test]
    fn definition_3_5_formula() {
        let s = S3kScore::new(2.0, 0.5);
        // One keyword, two connections at depths 0 and 2 with prox 1 and 0.5.
        let conns = vec![vec![conn(0, 1), conn(2, 2)]];
        let score = s.score_with(&conns, |n| if n == NodeId(1) { 1.0 } else { 0.5 });
        let expected = 0.5f64.powi(0) * 1.0 + 0.5f64.powi(2) * 0.5;
        assert!((score - expected).abs() < 1e-12);
    }

    #[test]
    fn product_over_keywords_requires_all() {
        let s = S3kScore::default();
        let conns = vec![vec![conn(0, 1)], vec![]];
        // Missing second keyword ⇒ empty sum ⇒ product is 0 (AND semantics).
        assert_eq!(s.score_with(&conns, |_| 1.0), 0.0);
    }

    #[test]
    fn monotone_in_proximity() {
        let s = S3kScore::default();
        let conns = vec![vec![conn(1, 1), conn(3, 2)], vec![conn(0, 3)]];
        let low = s.score_with(&conns, |_| 0.3);
        let high = s.score_with(&conns, |_| 0.6);
        assert!(high > low, "score soundness: monotone in prox");
    }

    #[test]
    fn lca_behaviour_without_social() {
        // With prox ≡ 1, the LCA of two keyword occurrences beats both any
        // strict ancestor of the LCA and unrelated nodes — the XML-IR view.
        let s = S3kScore::new(1.5, 0.5);
        // d = LCA: keyword 1 at depth 1, keyword 2 at depth 1.
        let lca = vec![vec![conn(1, 1)], vec![conn(1, 1)]];
        // d = parent of LCA: both at depth 2.
        let parent = vec![vec![conn(2, 1)], vec![conn(2, 1)]];
        let one = |_: NodeId| 1.0;
        assert!(s.score_with(&lca, one) > s.score_with(&parent, one));
    }

    #[test]
    #[should_panic(expected = "γ must exceed 1")]
    fn rejects_bad_gamma() {
        S3kScore::new(1.0, 0.5);
    }

    #[test]
    #[should_panic(expected = "η must be in (0,1)")]
    fn rejects_bad_eta() {
        S3kScore::new(2.0, 1.0);
    }
}
