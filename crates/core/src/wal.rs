//! Ingest write-ahead log: crash-durable journaling of opaque records.
//!
//! The live engines journal every encoded [`crate::IngestBatch`] here
//! *before* applying it — [`WriteAheadLog::append`] does not return until
//! the record is fsynced, so a batch whose apply was observed can always
//! be replayed after a crash (the WAL commit rule). Recovery is
//! load-snapshot-then-replay-tail: [`WriteAheadLog::open`] scans the
//! file, returns every intact record in order, and silently truncates a
//! torn or corrupt tail (the one failure an fsynced journal can still
//! exhibit after a crash mid-append). After a fresh snapshot lands on
//! disk, [`WriteAheadLog::truncate`] resets the journal — the checkpoint
//! invariant is `snapshot + WAL tail ≡ current state` at every instant.
//!
//! # File layout
//!
//! ```text
//! ┌──────────┬─────────┬──────────────────────────────────────────────┐
//! │ magic 8B │ ver u16 │ records: [len u32][crc32 u32][payload len B]*│
//! └──────────┴─────────┴──────────────────────────────────────────────┘
//! ```
//!
//! Records are opaque bytes to this module; the engine layer owns the
//! batch codec. Every record is covered by its own CRC-32, so a flipped
//! byte anywhere in the body yields a clean truncation at that record,
//! never a panic and never a silently wrong batch.

use s3_snap::SnapError;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"S3KWAL\0\0";

/// Version of the WAL format this build reads and writes.
pub const WAL_VERSION: u16 = 1;

/// Largest accepted record payload (a sanity bound against corrupt
/// length prefixes; real ingest batches are far smaller).
pub const MAX_WAL_RECORD: u32 = 1 << 30;

const HEADER_LEN: u64 = 10;

/// What [`WriteAheadLog::open`] recovered from an existing file.
#[derive(Debug)]
pub struct WalRecovery {
    /// The intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when a torn or corrupt tail was discarded (the file has been
    /// truncated back to the last intact record).
    pub dropped_tail: bool,
}

/// An append-only, fsync-on-commit journal of opaque byte records.
#[derive(Debug)]
pub struct WriteAheadLog {
    file: File,
    path: PathBuf,
    /// Byte length of the valid prefix (everything up to here is intact
    /// and durable).
    end: u64,
    records: u64,
}

impl WriteAheadLog {
    /// Open (or create) the journal at `path`, replaying its intact
    /// records. A missing file is created with a fresh header; an
    /// existing file must carry the right magic and version — anything
    /// else is a hard error (the journal is never silently clobbered).
    /// A torn or corrupt tail is dropped *and truncated away* so
    /// subsequent appends extend the valid prefix.
    pub fn open(path: &Path) -> Result<(Self, WalRecovery), SnapError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.is_empty() {
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(&WAL_MAGIC);
            header.extend_from_slice(&WAL_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            let wal = WriteAheadLog { file, path: path.to_path_buf(), end: HEADER_LEN, records: 0 };
            return Ok((wal, WalRecovery { records: Vec::new(), dropped_tail: false }));
        }

        if bytes.len() < HEADER_LEN as usize || bytes[..8] != WAL_MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[8], bytes[9]]);
        if version != WAL_VERSION {
            return Err(SnapError::Version(version));
        }

        let mut records = Vec::new();
        let mut pos = HEADER_LEN as usize;
        while let Some(frame) = bytes.get(pos..pos + 8) {
            let len = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]);
            let crc = u32::from_le_bytes([frame[4], frame[5], frame[6], frame[7]]);
            if len > MAX_WAL_RECORD {
                break;
            }
            let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else { break };
            if s3_snap::crc32(payload) != crc {
                break;
            }
            records.push(payload.to_vec());
            pos += 8 + len as usize;
        }

        let dropped_tail = pos < bytes.len();
        if dropped_tail {
            file.set_len(pos as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(pos as u64))?;
        let n = records.len() as u64;
        let wal = WriteAheadLog { file, path: path.to_path_buf(), end: pos as u64, records: n };
        Ok((wal, WalRecovery { records, dropped_tail }))
    }

    /// Append one record and fsync it. When this returns `Ok`, the
    /// record is durable — callers apply the batch only afterwards (the
    /// commit rule).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), SnapError> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&l| l <= MAX_WAL_RECORD)
            .ok_or(SnapError::Value("WAL record too large"))?;
        let mut rec = Vec::with_capacity(8 + payload.len());
        rec.extend_from_slice(&len.to_le_bytes());
        rec.extend_from_slice(&s3_snap::crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        self.file.seek(SeekFrom::Start(self.end))?;
        self.file.write_all(&rec)?;
        self.file.sync_data()?;
        self.end += rec.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Drop every record, keeping the header — called after a fresh
    /// snapshot (covering everything journaled so far) has durably
    /// landed, upholding the checkpoint invariant.
    pub fn truncate(&mut self) -> Result<(), SnapError> {
        self.file.set_len(HEADER_LEN)?;
        self.file.sync_all()?;
        self.end = HEADER_LEN;
        self.records = 0;
        Ok(())
    }

    /// Number of records in the valid prefix.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True when the journal holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("s3k-wal-test-{}-{name}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_and_reopen_replays_in_order() {
        let path = tmp("replay");
        {
            let (mut wal, rec) = WriteAheadLog::open(&path).unwrap();
            assert!(rec.records.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
            assert_eq!(wal.len(), 2);
        }
        let (wal, rec) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(!rec.dropped_tail);
        assert_eq!(wal.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_appends_continue() {
        let path = tmp("torn");
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            wal.append(b"keep").unwrap();
            wal.append(b"torn-away").unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut wal, rec) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"keep".to_vec()]);
        assert!(rec.dropped_tail);
        wal.append(b"after").unwrap();
        drop(wal);
        let (_, rec) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"keep".to_vec(), b"after".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn flipped_byte_truncates_at_the_corrupt_record() {
        let path = tmp("flip");
        {
            let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"evil").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let (_, rec) = WriteAheadLog::open(&path).unwrap();
        assert_eq!(rec.records, vec![b"good".to_vec()]);
        assert!(rec.dropped_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_resets_to_empty() {
        let path = tmp("truncate");
        let (mut wal, _) = WriteAheadLog::open(&path).unwrap();
        wal.append(b"x").unwrap();
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        drop(wal);
        let (_, rec) = WriteAheadLog::open(&path).unwrap();
        assert!(rec.records.is_empty());
        assert!(!rec.dropped_tail);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_files_are_rejected_not_clobbered() {
        let path = tmp("foreign");
        std::fs::write(&path, b"definitely not a WAL file").unwrap();
        assert!(matches!(WriteAheadLog::open(&path), Err(SnapError::BadMagic)));
        assert_eq!(std::fs::read(&path).unwrap(), b"definitely not a WAL file");
        std::fs::remove_file(&path).unwrap();
    }
}
