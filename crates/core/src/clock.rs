//! The search layer's time source: monotonic wall clock in production, a
//! shared manually-advanced counter in tests.
//!
//! `SearchConfig::time_budget` used to read `Instant::now()` directly,
//! which made every deadline test a race against the scheduler (the old
//! `anytime_time_budget_returns_best_effort` accepted *either* stop
//! reason). Threading a [`SearchClock`] through the budget checks makes
//! deadline behaviour a pure function of the ticks a test feeds it — the
//! same pattern the result cache uses for TTL expiry.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Time source for `time_budget` / deadline checks: monotonic wall clock
/// in production, a shared manually-advanced counter in tests
/// (deterministic deadline expiry).
#[derive(Debug, Clone)]
pub enum SearchClock {
    /// Elapsed time since the clock was created.
    Monotonic(Instant),
    /// Nanoseconds read from a shared counter the test advances.
    Manual(Arc<AtomicU64>),
}

impl SearchClock {
    /// The production clock.
    pub fn monotonic() -> Self {
        SearchClock::Monotonic(Instant::now())
    }

    /// A manual clock plus the handle that advances it (in nanoseconds).
    pub fn manual() -> (Self, Arc<AtomicU64>) {
        let ticks = Arc::new(AtomicU64::new(0));
        (SearchClock::Manual(Arc::clone(&ticks)), ticks)
    }

    /// Time elapsed since the clock's origin.
    pub fn now(&self) -> Duration {
        match self {
            SearchClock::Monotonic(base) => base.elapsed(),
            SearchClock::Manual(ticks) => Duration::from_nanos(ticks.load(Ordering::Relaxed)),
        }
    }
}

impl Default for SearchClock {
    fn default() -> Self {
        SearchClock::monotonic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let clock = SearchClock::monotonic();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_reads_the_shared_counter() {
        let (clock, ticks) = SearchClock::manual();
        assert_eq!(clock.now(), Duration::ZERO);
        ticks.store(1_500, Ordering::Relaxed);
        assert_eq!(clock.now(), Duration::from_nanos(1_500));
        let cloned = clock.clone();
        ticks.store(3_000, Ordering::Relaxed);
        assert_eq!(cloned.now(), Duration::from_nanos(3_000), "clones share the counter");
    }
}
