//! The S3 data model and the S3k top-k keyword-search algorithm
//! (reproduction of Bonaque, Cautis, Goasdoué, Manolescu — *Social,
//! Structured and Semantic Search*, EDBT 2016).
//!
//! # What this crate provides
//!
//! * [`InstanceBuilder`] / [`S3Instance`] — the data model of §2: users and
//!   weighted social relationships, structured documents (via `s3-doc`),
//!   tags (including higher-level tags and keyword-less endorsements), an
//!   RDF/RDFS semantic layer (via `s3-rdf`), all interconnected through the
//!   network edges of §2.5 (via `s3-graph`);
//! * [`connections`] — the `con(d, k)` connection relation of §3.2, built
//!   as a seeker-independent index;
//! * [`score`] — the generic score interface of §3.3 and the concrete S3k
//!   score of Definition 3.5;
//! * [`search`] — the S3k query-answering algorithm of §4, with both the
//!   threshold-based stop condition and any-time termination;
//! * [`oracle`] — a brute-force reference implementation used by the test
//!   suite to certify S3k's correctness (Theorems 4.1–4.3) on small
//!   instances.
//!
//! # Quick start
//!
//! ```
//! use s3_core::{InstanceBuilder, Query, SearchConfig};
//! use s3_doc::DocBuilder;
//! use s3_text::Language;
//!
//! let mut b = InstanceBuilder::new(Language::English);
//! let alice = b.add_user();
//! let bob = b.add_user();
//! b.add_social_edge(alice, bob, 0.8);
//!
//! let kws = b.analyze("a degree gives more opportunities");
//! let mut doc = DocBuilder::new("post");
//! let text = doc.root();
//! doc.set_content(text, kws);
//! b.add_document(doc, Some(bob));
//!
//! let instance = b.build();
//! let degree = instance.query_keywords("degree");
//! let results = instance.search(&Query::new(alice, degree, 3), &SearchConfig::default());
//! assert_eq!(results.hits.len(), 1);
//! ```

#![warn(missing_docs)]
pub mod clock;
pub mod connections;
pub mod export;
pub mod ids;
pub mod ingest;
pub mod instance;
pub mod oracle;
pub mod partition;
pub mod score;
pub mod search;
pub mod snapshot;
pub mod wal;

pub use clock::SearchClock;
pub use connections::{ConnType, Connection, ConnectionIndex};
// The component id and the propagation lifecycle types are part of this
// crate's public API (component keyword sets, partitioning, the serving
// layer's seeker-keyed warm propagation pool); re-exported so layers
// above `core` need not reach into `s3-graph`.
pub use ids::{TagId, TagSubject, UserId};
pub use ingest::{
    DocRef, FragRef, IngestBatch, IngestDoc, IngestSummary, TagRef, TagSubjectRef, UserRef,
};
pub use instance::{CompactionReport, InstanceBuilder, InstanceStats, S3Instance};
pub use partition::{ComponentFilter, ComponentPartition};
pub use s3_graph::CompId;
pub use s3_graph::{Propagation, PropagationState};
pub use score::{AnyKeywordScore, S3kScore, ScoreModel, TypeWeightedScore};
pub use search::{
    merge_hits, selection_rank, FleetShard, Hit, QualityBound, Query, ResumeOutcome, S3kEngine,
    S3kSession, SearchConfig, SearchScratch, SearchStats, SelectedCandidate, StopReason,
    TopKResult,
};
pub use snapshot::{
    load_snapshot, read_snapshot, save_snapshot, write_snapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use wal::{WalRecovery, WriteAheadLog, MAX_WAL_RECORD, WAL_VERSION};
