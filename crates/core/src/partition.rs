//! Partitioning an instance's content components across shards.
//!
//! §5.2's content components are the natural shard unit: a registered tree
//! is wholly contained in one component, connections never cross
//! components, and Definition 3.2's vertical-neighbor constraint only
//! relates fragments of one tree — so a partition of the components is a
//! partition of the documents that no scoring or selection rule ever
//! crosses. [`ComponentPartition::balanced`] assigns components to shards
//! with balanced document counts (longest-processing-time greedy), and
//! [`ComponentFilter`] restricts a search to one shard's components (see
//! `SearchConfig::component_filter`).
//!
//! Scores are *not* shard-local: proximity propagates over the full
//! network graph, so shards share the frozen [`S3Instance`] (an `Arc`
//! clone, zero copy) and differ only in which documents they admit as
//! candidates. That is what makes scatter-gather exact — see
//! [`crate::search`]'s `run_partitioned_with`.

use crate::instance::S3Instance;
use s3_graph::CompId;

/// An assignment of every content component to one of `num_shards` shards.
#[derive(Debug, Clone)]
pub struct ComponentPartition {
    shard_of: Vec<u32>,
    doc_counts: Vec<usize>,
    comp_counts: Vec<usize>,
}

impl ComponentPartition {
    /// Balanced assignment: components are placed largest-document-count
    /// first onto the currently lightest shard (ties: lowest shard id), the
    /// classic LPT greedy. Deterministic for a given instance.
    ///
    /// `num_shards` is clamped to at least 1; shards may end up empty when
    /// there are fewer non-trivial components than shards.
    pub fn balanced(instance: &S3Instance, num_shards: usize) -> Self {
        let num_shards = num_shards.max(1);
        let graph = instance.graph();
        let components = graph.components();
        let mut sized: Vec<(usize, CompId)> =
            components.iter().map(|c| (graph.component_doc_count(c), c)).collect();
        // Largest first; equal sizes keep component-id order.
        sized.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut shard_of = vec![0u32; components.len()];
        let mut doc_counts = vec![0usize; num_shards];
        let mut comp_counts = vec![0usize; num_shards];
        for (docs, comp) in sized {
            let lightest =
                (0..num_shards).min_by_key(|&s| (doc_counts[s], s)).expect("at least one shard");
            shard_of[comp.index()] = lightest as u32;
            doc_counts[lightest] += docs;
            comp_counts[lightest] += 1;
        }
        ComponentPartition { shard_of, doc_counts, comp_counts }
    }

    /// Extend this partition to cover `instance`'s (grown) component set
    /// without moving anything that already had a home: previously-assigned
    /// components keep their shard (a component merged away during
    /// ingestion stays allocated, empty, wherever it was), and each
    /// brand-new component is placed largest-document-count first on the
    /// currently lightest shard — the same LPT greedy as
    /// [`Self::balanced`], applied only to the newcomers. Per-shard
    /// document counts are refreshed from the instance.
    ///
    /// This is live ingestion's routing step: untouched shards keep their
    /// exact universe, so their caches and warm state stay valid.
    pub fn extended(&self, instance: &S3Instance) -> Self {
        let graph = instance.graph();
        let components = graph.components();
        let num_shards = self.num_shards();
        assert!(components.len() >= self.shard_of.len(), "components never disappear");

        let mut shard_of = self.shard_of.clone();
        let mut doc_counts = vec![0usize; num_shards];
        let mut comp_counts = vec![0usize; num_shards];
        for (idx, &s) in shard_of.iter().enumerate() {
            doc_counts[s as usize] += graph.component_doc_count(CompId(idx as u32));
            comp_counts[s as usize] += 1;
        }

        let mut sized: Vec<(usize, CompId)> = (self.shard_of.len()..components.len())
            .map(|i| CompId(i as u32))
            .map(|c| (graph.component_doc_count(c), c))
            .collect();
        sized.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        shard_of.resize(components.len(), 0);
        for (docs, comp) in sized {
            let lightest =
                (0..num_shards).min_by_key(|&s| (doc_counts[s], s)).expect("at least one shard");
            shard_of[comp.index()] = lightest as u32;
            doc_counts[lightest] += docs;
            comp_counts[lightest] += 1;
        }
        ComponentPartition { shard_of, doc_counts, comp_counts }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.doc_counts.len()
    }

    /// Number of components covered (the instance's component count).
    pub fn num_components(&self) -> usize {
        self.shard_of.len()
    }

    /// The shard owning a component.
    pub fn shard_of(&self, comp: CompId) -> usize {
        self.shard_of[comp.index()] as usize
    }

    /// Documents assigned to a shard.
    pub fn doc_count(&self, shard: usize) -> usize {
        self.doc_counts[shard]
    }

    /// Components assigned to a shard.
    pub fn component_count(&self, shard: usize) -> usize {
        self.comp_counts[shard]
    }

    /// The components owned by a shard, in id order.
    pub fn components_of(&self, shard: usize) -> impl Iterator<Item = CompId> + '_ {
        self.shard_of
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s as usize == shard)
            .map(|(i, _)| CompId(i as u32))
    }
}

/// A membership test restricting a search to one shard's components
/// (installed through `SearchConfig::component_filter`). Discovery skips
/// non-member components before any per-document work.
#[derive(Debug, Clone)]
pub struct ComponentFilter {
    allowed: Vec<bool>,
}

impl ComponentFilter {
    /// The filter admitting exactly `shard`'s components of `partition`.
    pub fn for_shard(partition: &ComponentPartition, shard: usize) -> Self {
        assert!(shard < partition.num_shards(), "shard {shard} out of range");
        let allowed = partition.shard_of.iter().map(|&s| s as usize == shard).collect();
        ComponentFilter { allowed }
    }

    /// Does the filter admit this component? Unknown components (a filter
    /// built for a different instance) are rejected.
    pub fn allows(&self, comp: CompId) -> bool {
        self.allowed.get(comp.index()).copied().unwrap_or(false)
    }

    /// Number of admitted components.
    pub fn len(&self) -> usize {
        self.allowed.iter().filter(|&&a| a).count()
    }

    /// True when no component is admitted.
    pub fn is_empty(&self) -> bool {
        !self.allowed.iter().any(|&a| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceBuilder;
    use s3_doc::DocBuilder;
    use s3_text::Language;

    /// Ten single-doc components of varying sizes plus user singletons.
    fn instance() -> S3Instance {
        let mut b = InstanceBuilder::new(Language::English);
        let u = b.add_user();
        b.add_user();
        for i in 0..10 {
            let kws = b.analyze(&format!("document number {i}"));
            let mut doc = DocBuilder::new("post");
            doc.set_content(doc.root(), kws);
            b.add_document(doc, Some(u));
        }
        b.build()
    }

    #[test]
    fn balanced_covers_every_document_exactly_once() {
        let inst = instance();
        for shards in [1usize, 2, 3, 4, 16] {
            let p = ComponentPartition::balanced(&inst, shards);
            assert_eq!(p.num_shards(), shards);
            assert_eq!(p.num_components(), inst.graph().components().len());
            let total: usize = (0..shards).map(|s| p.doc_count(s)).sum();
            assert_eq!(total, inst.num_documents());
            let comps: usize = (0..shards).map(|s| p.component_count(s)).sum();
            assert_eq!(comps, p.num_components());
        }
    }

    #[test]
    fn balanced_is_balanced() {
        let inst = instance();
        let p = ComponentPartition::balanced(&inst, 4);
        // 10 single-document components over 4 shards: LPT puts 2 or 3
        // documents on every shard.
        let counts: Vec<usize> = (0..4).map(|s| p.doc_count(s)).collect();
        assert!(counts.iter().all(|&c| c == 2 || c == 3), "unbalanced: {counts:?}");
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let inst = instance();
        let p = ComponentPartition::balanced(&inst, 0);
        assert_eq!(p.num_shards(), 1);
        assert_eq!(p.doc_count(0), inst.num_documents());
    }

    #[test]
    fn deterministic() {
        let inst = instance();
        let a = ComponentPartition::balanced(&inst, 3);
        let b = ComponentPartition::balanced(&inst, 3);
        assert_eq!(a.shard_of, b.shard_of);
    }

    #[test]
    fn filter_matches_partition() {
        let inst = instance();
        let p = ComponentPartition::balanced(&inst, 3);
        let mut admitted = 0usize;
        for s in 0..3 {
            let f = ComponentFilter::for_shard(&p, s);
            assert_eq!(f.len(), p.component_count(s));
            for c in inst.graph().components().iter() {
                assert_eq!(f.allows(c), p.shard_of(c) == s);
            }
            assert!(!f.allows(CompId(u32::MAX)), "foreign components rejected");
            admitted += f.len();
        }
        assert_eq!(admitted, p.num_components());
    }

    #[test]
    fn components_of_lists_owned_components() {
        let inst = instance();
        let p = ComponentPartition::balanced(&inst, 2);
        for s in 0..2 {
            let owned: Vec<CompId> = p.components_of(s).collect();
            assert_eq!(owned.len(), p.component_count(s));
            assert!(owned.iter().all(|&c| p.shard_of(c) == s));
        }
    }
}
